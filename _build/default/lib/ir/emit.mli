(** Serializer for the Mir concrete text syntax. [Parse.program] reads the
    output back; the round-trip is property-tested. *)

val program : Program.t -> string
(** Serialize a whole program.
    @raise Invalid_argument on run-time-only values (pointers, thread
    ids) in global initializers or operands — they have no source
    syntax. *)
