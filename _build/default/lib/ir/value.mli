(** Runtime values of the Mir IR. *)

(** A heap pointer: block identity plus element offset. There is no
    cross-block pointer arithmetic, which keeps the segmentation-fault
    model crisp. *)
type ptr = { block : int; offset : int }

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Ptr of ptr
  | Null
  | Mutex of string  (** handle to a named lock *)
  | Tid of int  (** thread id returned by [Spawn] *)

val zero : t
(** [Int 0], the initial content of fresh memory. *)

val truth : t
(** [Bool true]. *)

val equal : t -> t -> bool
(** Structural equality; values of different constructors are never equal
    (no implicit int/bool coercion). *)

val is_true : t -> bool
(** Truthiness for branches and asserts: [Int 0], [Bool false] and [Null]
    are false; everything else is true. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
