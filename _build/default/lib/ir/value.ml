(* Runtime values of the Mir IR.

   Pointers carry a heap block id plus an offset; there is no pointer
   arithmetic across blocks, which keeps the segmentation-fault model crisp:
   a dereference faults iff the pointer is null, the block is dead, or the
   offset is out of bounds. *)

type ptr = { block : int; offset : int }

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Ptr of ptr
  | Null
  | Mutex of string  (** handle to a named lock *)
  | Tid of int  (** thread id returned by [Spawn] *)

let zero = Int 0
let truth = Bool true

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Str x, Str y -> String.equal x y
  | Ptr x, Ptr y -> x.block = y.block && x.offset = y.offset
  | Null, Null -> true
  | Mutex x, Mutex y -> String.equal x y
  | Tid x, Tid y -> Int.equal x y
  | (Int _ | Bool _ | Str _ | Ptr _ | Null | Mutex _ | Tid _), _ -> false

(** Truthiness used by conditional branches and assertions: zero, [false]
    and [Null] are false, everything else is true. *)
let is_true = function
  | Bool b -> b
  | Int n -> n <> 0
  | Null -> false
  | Str _ | Ptr _ | Mutex _ | Tid _ -> true

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Bool b -> Format.fprintf ppf "%b" b
  | Str s -> Format.fprintf ppf "%S" s
  | Ptr { block; offset } -> Format.fprintf ppf "&%d+%d" block offset
  | Null -> Format.fprintf ppf "null"
  | Mutex m -> Format.fprintf ppf "mutex<%s>" m
  | Tid t -> Format.fprintf ppf "tid<%d>" t

let to_string v = Format.asprintf "%a" pp v
