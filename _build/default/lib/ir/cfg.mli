(** Control-flow-graph view of a function: block map, successor and
    predecessor relations, reachability. The backward walks of the ConAir
    analyses are built on top of it. *)

module Label = Ident.Label

type t = {
  func : Func.t;
  blocks : Block.t Label.Map.t;
  succs : Label.t list Label.Map.t;
  preds : Label.t list Label.Map.t;
}

val of_func : Func.t -> t

val block : t -> Label.t -> Block.t
(** @raise Invalid_argument on an unknown label. *)

val succs : t -> Label.t -> Label.t list
val preds : t -> Label.t -> Label.t list
val entry : t -> Label.t
val is_entry : t -> Label.t -> bool

val reachable : t -> Label.Set.t
(** Labels reachable from the entry block. *)
