(* Identifiers used throughout the Mir IR.

   All three identifier kinds are thin wrappers over strings.  Keeping them
   as distinct types (rather than bare strings) prevents the classic bug of
   passing a label where a register is expected, at zero runtime cost. *)

module type S = sig
  type t

  val v : string -> t
  val name : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make (P : sig
  val prefix : string
end) : S = struct
  type t = string

  let v s = s
  let name s = s
  let equal = String.equal
  let compare = String.compare
  let pp ppf s = Format.fprintf ppf "%s%s" P.prefix s

  module Map = Map.Make (String)
  module Set = Set.Make (String)
end

(** Virtual registers. Printed with a [%] prefix, LLVM style. *)
module Reg = Make (struct
  let prefix = "%"
end)

(** Basic-block labels. *)
module Label = Make (struct
  let prefix = ""
end)

(** Function names. *)
module Fname = Make (struct
  let prefix = "@"
end)
