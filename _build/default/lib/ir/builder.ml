(* Imperative construction DSL for Mir programs.

   The builder assigns program-unique instruction ids, supports fallthrough
   (an unterminated block jumps to the next label) and exposes one short
   helper per instruction, so benchmark programs read close to the C
   snippets in the paper:

   {[
     let prog =
       Builder.build ~main:"main" @@ fun b ->
       Builder.global b "flag" (Value.Int 0);
       Builder.func b "main" ~params:[] @@ fun f ->
       Builder.load f "v" (Global "flag");
       Builder.assert_ f (reg "v") ~msg:"flag must be set";
       Builder.exit_ f
   ]} *)

module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname
open Instr

type fb = {
  fname : string;
  params : string list;
  mutable cur_label : Label.t option;
  mutable cur_instrs : Instr.t list;  (** reversed *)
  mutable done_blocks : Block.t list;  (** reversed *)
  mutable entry : Label.t option;
  pb : t;
}

and t = {
  mutable next_iid : int;
  mutable globals : (string * Value.t) list;  (** reversed *)
  mutable mutexes : string list;  (** reversed *)
  mutable funcs : Func.t list;  (** reversed *)
  mutable last_marked : int;
      (** iid of the most recently emitted instruction, for tests and
          fix-mode site designation *)
}

let create () =
  { next_iid = 0; globals = []; mutexes = []; funcs = []; last_marked = -1 }

let global b name v = b.globals <- (name, v) :: b.globals
let mutex b name = b.mutexes <- name :: b.mutexes

let fresh_iid b =
  let id = b.next_iid in
  b.next_iid <- id + 1;
  id

(** Id of the last instruction emitted — handy to designate a fix-mode
    failure site right where the buggy statement is built. *)
let last_iid fb = fb.pb.last_marked

(* ------------------------------------------------------------------ *)
(* Operand constructors                                                *)
(* ------------------------------------------------------------------ *)

let reg name = Reg (Reg.v name)
let int n = Const (Value.Int n)
let bool b = Const (Value.Bool b)
let str s = Const (Value.Str s)
let null = Const Value.Null
let mutex_ref name = Const (Value.Mutex name)

(* ------------------------------------------------------------------ *)
(* Blocks and terminators                                              *)
(* ------------------------------------------------------------------ *)

let seal fb term =
  match fb.cur_label with
  | None -> invalid_arg "Builder: terminator outside any block"
  | Some label ->
      let instrs = Array.of_list (List.rev fb.cur_instrs) in
      fb.done_blocks <- { Block.label; instrs; term } :: fb.done_blocks;
      fb.cur_label <- None;
      fb.cur_instrs <- []

(** Start a new block. If the previous block has no terminator yet, it
    falls through (a [Jump]) to this one. *)
let label fb name =
  let l = Label.v name in
  (match fb.cur_label with None -> () | Some _ -> seal fb (Jump l));
  if fb.entry = None then fb.entry <- Some l;
  fb.cur_label <- Some l

let jump fb name = seal fb (Jump (Label.v name))
let branch fb cond t f = seal fb (Branch (cond, Label.v t, Label.v f))
let ret fb v = seal fb (Return v)
let exit_ fb = seal fb Exit

(* ------------------------------------------------------------------ *)
(* Instruction emitters                                                *)
(* ------------------------------------------------------------------ *)

let emit fb op =
  (match fb.cur_label with
  | None -> label fb (Printf.sprintf "%s_entry" fb.fname)
  | Some _ -> ());
  let iid = fresh_iid fb.pb in
  fb.pb.last_marked <- iid;
  fb.cur_instrs <- { Instr.iid; op } :: fb.cur_instrs

let move fb r a = emit fb (Move (Reg.v r, a))
let binop fb r op a c = emit fb (Binop (Reg.v r, op, a, c))
let unop fb r op a = emit fb (Unop (Reg.v r, op, a))
let load fb r m = emit fb (Load (Reg.v r, m))
let store fb m a = emit fb (Store (m, a))
let load_idx fb r p i = emit fb (Load_idx (Reg.v r, p, i))
let store_idx fb p i v = emit fb (Store_idx (p, i, v))
let alloc fb r n = emit fb (Alloc (Reg.v r, n))
let free fb p = emit fb (Free p)
let lock fb m = emit fb (Lock m)
let unlock fb m = emit fb (Unlock m)

let assert_ fb ?(oracle = false) cond ~msg =
  emit fb (Assert { cond; msg; oracle })

let output fb fmt args = emit fb (Output { fmt; args })
let call fb ?into f args = emit fb (Call (Option.map Reg.v into, Fname.v f, args))
let spawn fb r f args = emit fb (Spawn (Reg.v r, Fname.v f, args))
let join fb t = emit fb (Join t)
let sleep fb n = emit fb (Sleep n)
let nop fb = emit fb Nop
let wait fb e = emit fb (Wait e)
let notify fb e = emit fb (Notify e)

(* Common compound shapes. *)

(** [add fb r a c] etc. — arithmetic conveniences. *)
let add fb r a c = binop fb r Add a c

let sub fb r a c = binop fb r Sub a c
let mul fb r a c = binop fb r Mul a c
let eq fb r a c = binop fb r Eq a c
let ne fb r a c = binop fb r Ne a c
let lt fb r a c = binop fb r Lt a c
let gt fb r a c = binop fb r Gt a c

(* ------------------------------------------------------------------ *)
(* Functions and the program                                           *)
(* ------------------------------------------------------------------ *)

let func b name ~params body =
  let fb =
    {
      fname = name;
      params;
      cur_label = None;
      cur_instrs = [];
      done_blocks = [];
      entry = None;
      pb = b;
    }
  in
  body fb;
  (match fb.cur_label with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Builder: function %s ends with unterminated block"
           name)
  | None -> ());
  let entry =
    match fb.entry with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Builder: function %s is empty" name)
  in
  let f =
    Func.v ~name:(Fname.v name)
      ~params:(List.map Reg.v params)
      ~entry
      ~blocks:(List.rev fb.done_blocks)
  in
  b.funcs <- f :: b.funcs

let finish b ~main =
  Program.v ~globals:(List.rev b.globals) ~mutexes:(List.rev b.mutexes)
    ~funcs:(List.rev b.funcs) ~main:(Fname.v main) ()

(** One-shot convenience: create a builder, run [body], finish. *)
let build ~main body =
  let b = create () in
  body b;
  finish b ~main
