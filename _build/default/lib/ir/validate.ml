(* Static well-formedness checks for Mir programs.

   [check] returns the list of problems found (empty = well-formed); it is
   run by tests on every benchmark program and on every hardened program, so
   the ConAir transformation is itself validated. *)

module Label = Ident.Label
module Fname = Ident.Fname
module Reg = Ident.Reg

type problem = { where : string; what : string }

let pp_problem ppf p = Format.fprintf ppf "%s: %s" p.where p.what

let problem acc where fmt =
  Format.kasprintf (fun what -> { where; what } :: acc) fmt

let check_func (p : Program.t) acc (f : Func.t) =
  let where = Format.asprintf "%a" Fname.pp f.name in
  let labels =
    List.fold_left
      (fun s (b : Block.t) -> Label.Set.add b.label s)
      Label.Set.empty f.blocks
  in
  let acc =
    if List.length f.blocks <> Label.Set.cardinal labels then
      problem acc where "duplicate block labels"
    else acc
  in
  let acc =
    if Label.Set.mem f.entry labels then acc
    else problem acc where "entry label %a missing" Label.pp f.entry
  in
  let check_target acc b l =
    if Label.Set.mem l labels then acc
    else
      problem acc where "block %a jumps to unknown label %a" Label.pp
        b.Block.label Label.pp l
  in
  let check_callee acc b (name : Fname.t) =
    match Program.find_func p name with
    | Some _ -> acc
    | None ->
        problem acc where "block %a calls unknown function %a" Label.pp
          b.Block.label Fname.pp name
  in
  let acc =
    List.fold_left
      (fun acc (b : Block.t) ->
        let acc =
          Array.fold_left
            (fun acc (i : Instr.t) ->
              match i.op with
              | Instr.Call (_, callee, args) | Instr.Spawn (_, callee, args)
                -> (
                  let acc = check_callee acc b callee in
                  match Program.find_func p callee with
                  | Some g when List.length g.params <> List.length args ->
                      problem acc where
                        "call to %a passes %d args, expected %d" Fname.pp
                        callee (List.length args) (List.length g.params)
                  | Some _ | None -> acc)
              | _ -> acc)
            acc b.instrs
        in
        List.fold_left (fun acc l -> check_target acc b l) acc
          (Block.successors b))
      acc f.blocks
  in
  (* Unreachable blocks are suspicious in hand-written programs and would
     silently hide bugs in CFG surgery. *)
  let reach = Cfg.reachable (Cfg.of_func f) in
  List.fold_left
    (fun acc (b : Block.t) ->
      if Label.Set.mem b.label reach then acc
      else problem acc where "block %a is unreachable" Label.pp b.label)
    acc f.blocks

let check_unique_iids (p : Program.t) acc =
  let seen = Hashtbl.create 256 in
  let dup = ref [] in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          if Hashtbl.mem seen i.iid then dup := i.iid :: !dup
          else Hashtbl.add seen i.iid ()));
  List.fold_left
    (fun acc iid -> problem acc "program" "duplicate instruction id %d" iid)
    acc !dup

let check (p : Program.t) =
  let acc = [] in
  let acc =
    match Program.find_func p p.main with
    | Some f when f.params <> [] ->
        problem acc "program" "main function %a must take no parameters"
          Fname.pp p.main
    | Some _ -> acc
    | None -> problem acc "program" "missing main function %a" Fname.pp p.main
  in
  let acc = check_unique_iids p acc in
  List.rev (List.fold_left (check_func p) acc p.funcs)

(** Raise [Invalid_argument] with a readable report if [p] is ill-formed. *)
let check_exn p =
  match check p with
  | [] -> ()
  | problems ->
      invalid_arg
        (Format.asprintf "@[<v>invalid Mir program:@ %a@]"
           (Format.pp_print_list pp_problem)
           problems)
