(** Basic blocks: a label, a straight-line run of instructions, and a
    terminator. Immutable; transformations build new blocks. *)

module Label = Ident.Label

type t = {
  label : Label.t;
  instrs : Instr.t array;
  term : Instr.terminator;
}

val v : label:Label.t -> instrs:Instr.t list -> term:Instr.terminator -> t
val length : t -> int

val successors : t -> Label.t list
(** Labels this block can transfer control to (deduplicated). *)

val pp : Format.formatter -> t -> unit
