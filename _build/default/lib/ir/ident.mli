(** Identifiers of the Mir IR: virtual registers, basic-block labels and
    function names. Distinct abstract types prevent mixing them up. *)

module type S = sig
  type t

  val v : string -> t
  (** Make an identifier from its bare name (no sigil). *)

  val name : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

(** Virtual registers; printed as [%name]. *)
module Reg : S

(** Basic-block labels; printed bare. *)
module Label : S

(** Function names; printed as [@name]. *)
module Fname : S
