(* Basic blocks: a label, a straight-line run of instructions, and a
   terminator. Blocks are immutable; transformations build new ones. *)

module Label = Ident.Label

type t = {
  label : Label.t;
  instrs : Instr.t array;
  term : Instr.terminator;
}

let v ~label ~instrs ~term = { label; instrs = Array.of_list instrs; term }

let length b = Array.length b.instrs

(** Labels this block can transfer control to. *)
let successors b =
  match b.term with
  | Instr.Jump l -> [ l ]
  | Instr.Branch (_, t, f) -> if Label.equal t f then [ t ] else [ t; f ]
  | Instr.Return _ | Instr.Exit -> []

let pp ppf b =
  Format.fprintf ppf "@[<v 2>%a:@ %a@ %a@]" Label.pp b.label
    (Format.pp_print_seq Instr.pp)
    (Array.to_seq b.instrs) Instr.pp_terminator b.term
