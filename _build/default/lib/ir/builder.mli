(** Imperative construction DSL for Mir programs.

    The builder assigns program-unique instruction ids, supports
    fallthrough (an unterminated block jumps to the next label), and
    exposes one short helper per instruction:

    {[
      let prog =
        Builder.build ~main:"main" @@ fun b ->
        Builder.global b "flag" (Value.Int 0);
        Builder.func b "main" ~params:[] @@ fun f ->
        Builder.load f "v" (Instr.Global "flag");
        Builder.assert_ f (Builder.reg "v") ~msg:"flag must be set";
        Builder.exit_ f
    ]} *)

type t
(** A program under construction. *)

type fb
(** A function under construction. *)

val create : unit -> t
val global : t -> string -> Value.t -> unit
val mutex : t -> string -> unit

val func : t -> string -> params:string list -> (fb -> unit) -> unit
(** Define a function. The body callback must terminate its last block.
    @raise Invalid_argument on an empty or unterminated function. *)

val finish : t -> main:string -> Program.t
val build : main:string -> (t -> unit) -> Program.t

val last_iid : fb -> int
(** Id of the most recently emitted instruction — handy for designating a
    fix-mode failure site right where the buggy statement is built. *)

(** {1 Operand constructors} *)

val reg : string -> Instr.operand
val int : int -> Instr.operand
val bool : bool -> Instr.operand
val str : string -> Instr.operand
val null : Instr.operand
val mutex_ref : string -> Instr.operand

(** {1 Blocks and terminators} *)

val label : fb -> string -> unit
(** Start a new block; an unterminated previous block falls through. *)

val jump : fb -> string -> unit
val branch : fb -> Instr.operand -> string -> string -> unit
val ret : fb -> Instr.operand option -> unit
val exit_ : fb -> unit

(** {1 Instruction emitters} *)

val emit : fb -> Instr.op -> unit
(** Emit a raw operation (fresh id); the named helpers below cover the
    common cases. *)

val move : fb -> string -> Instr.operand -> unit
val binop : fb -> string -> Instr.binop -> Instr.operand -> Instr.operand -> unit
val unop : fb -> string -> Instr.unop -> Instr.operand -> unit
val load : fb -> string -> Instr.mem -> unit
val store : fb -> Instr.mem -> Instr.operand -> unit
val load_idx : fb -> string -> Instr.operand -> Instr.operand -> unit
val store_idx : fb -> Instr.operand -> Instr.operand -> Instr.operand -> unit
val alloc : fb -> string -> Instr.operand -> unit
val free : fb -> Instr.operand -> unit
val lock : fb -> Instr.operand -> unit
val unlock : fb -> Instr.operand -> unit

val assert_ : fb -> ?oracle:bool -> Instr.operand -> msg:string -> unit
(** [oracle:true] marks a developer output-correctness condition. *)

val output : fb -> string -> Instr.operand list -> unit
val call : fb -> ?into:string -> string -> Instr.operand list -> unit
val spawn : fb -> string -> string -> Instr.operand list -> unit
val join : fb -> Instr.operand -> unit
val sleep : fb -> int -> unit
val nop : fb -> unit

val wait : fb -> string -> unit
(** Block until the named event is notified (pulse semantics). *)

val notify : fb -> string -> unit
(** Wake every thread currently waiting on the named event. *)

(** {1 Arithmetic conveniences} *)

val add : fb -> string -> Instr.operand -> Instr.operand -> unit
val sub : fb -> string -> Instr.operand -> Instr.operand -> unit
val mul : fb -> string -> Instr.operand -> Instr.operand -> unit
val eq : fb -> string -> Instr.operand -> Instr.operand -> unit
val ne : fb -> string -> Instr.operand -> Instr.operand -> unit
val lt : fb -> string -> Instr.operand -> Instr.operand -> unit
val gt : fb -> string -> Instr.operand -> Instr.operand -> unit
