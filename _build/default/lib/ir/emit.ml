(* The concrete text syntax of Mir programs (serializer).

   The output of [program] is exactly what [Parse.program] reads back; the
   round-trip is property-tested. The syntax:

   {v
   global g = 5
   mutex nlock
   main @main

   func @worker(%x) {
   entry:
     %a = add %x, 1
     %b = load $g
     store ~slot, %a
     %v = load %p[0]
     assert %a, "message"
     branch %a, yes, no
   yes:
     return %a
   no:
     exit
   }
   v}

   Registers are [%name], globals [$name], stack slots [~name], functions
   [@name], mutex literals [&name]; labels are bare identifiers. *)

open Instr
module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

let value buf (v : Value.t) =
  match v with
  | Value.Int n -> Buffer.add_string buf (string_of_int n)
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Mutex m -> Buffer.add_string buf ("&" ^ m)
  | Value.Ptr _ | Value.Tid _ ->
      (* run-time-only values; they have no source syntax *)
      invalid_arg "Emit.value: pointers and thread ids are not serializable"

let reg buf r = Buffer.add_string buf ("%" ^ Reg.name r)

let operand buf = function
  | Reg r -> reg buf r
  | Const v -> value buf v

let mem buf = function
  | Global g -> Buffer.add_string buf ("$" ^ g)
  | Stack s -> Buffer.add_string buf ("~" ^ s)

let operands buf = function
  | [] -> ()
  | x :: rest ->
      operand buf x;
      List.iter
        (fun o ->
          Buffer.add_string buf ", ";
          operand buf o)
        rest

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | And -> "and"
  | Or -> "or"

let unop_name = function Not -> "not" | Neg -> "neg" | Is_null -> "is_null"

let kind_name = function
  | Assert_fail -> "assert"
  | Wrong_output -> "wrong_output"
  | Seg_fault -> "segfault"
  | Deadlock -> "deadlock"

let add buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let op buf (o : op) =
  match o with
  | Move (r, a) ->
      reg buf r;
      Buffer.add_string buf " = move ";
      operand buf a
  | Binop (r, b, x, y) ->
      reg buf r;
      add buf " = %s " (binop_name b);
      operand buf x;
      Buffer.add_string buf ", ";
      operand buf y
  | Unop (r, u, x) ->
      reg buf r;
      add buf " = %s " (unop_name u);
      operand buf x
  | Load (r, m) ->
      reg buf r;
      Buffer.add_string buf " = load ";
      mem buf m
  | Store (m, a) ->
      Buffer.add_string buf "store ";
      mem buf m;
      Buffer.add_string buf ", ";
      operand buf a
  | Load_idx (r, p, i) ->
      reg buf r;
      Buffer.add_string buf " = load ";
      operand buf p;
      Buffer.add_char buf '[';
      operand buf i;
      Buffer.add_char buf ']'
  | Store_idx (p, i, v) ->
      Buffer.add_string buf "store ";
      operand buf p;
      Buffer.add_char buf '[';
      operand buf i;
      Buffer.add_string buf "], ";
      operand buf v
  | Alloc (r, n) ->
      reg buf r;
      Buffer.add_string buf " = alloc ";
      operand buf n
  | Free p ->
      Buffer.add_string buf "free ";
      operand buf p
  | Lock m ->
      Buffer.add_string buf "lock ";
      operand buf m
  | Unlock m ->
      Buffer.add_string buf "unlock ";
      operand buf m
  | Assert { cond; msg; oracle } ->
      Buffer.add_string buf (if oracle then "oracle " else "assert ");
      operand buf cond;
      add buf ", %S" msg
  | Output { fmt; args } ->
      add buf "output %S" fmt;
      List.iter
        (fun a ->
          Buffer.add_string buf ", ";
          operand buf a)
        args
  | Call (r, f, args) ->
      (match r with
      | Some r ->
          reg buf r;
          Buffer.add_string buf " = "
      | None -> ());
      add buf "call @%s(" (Fname.name f);
      operands buf args;
      Buffer.add_char buf ')'
  | Spawn (r, f, args) ->
      reg buf r;
      add buf " = spawn @%s(" (Fname.name f);
      operands buf args;
      Buffer.add_char buf ')'
  | Join t ->
      Buffer.add_string buf "join ";
      operand buf t
  | Sleep n -> add buf "sleep %d" n
  | Nop -> Buffer.add_string buf "nop"
  | Wait e -> add buf "wait %s" e
  | Notify e -> add buf "notify %s" e
  | Checkpoint id -> add buf "checkpoint %d" id
  | Ptr_guard (r, p, i) ->
      reg buf r;
      Buffer.add_string buf " = ptr_guard ";
      operand buf p;
      Buffer.add_char buf '[';
      operand buf i;
      Buffer.add_char buf ']'
  | Timed_lock (r, m, t) ->
      reg buf r;
      Buffer.add_string buf " = timedlock ";
      operand buf m;
      add buf ", %d" t
  | Timed_wait (r, e, t) ->
      reg buf r;
      add buf " = timedwait %s, %d" e t
  | Try_recover { site_id; kind } ->
      add buf "try_recover %d, %s" site_id (kind_name kind)
  | Fail_stop { site_id; kind; msg } ->
      add buf "fail_stop %d, %s, %S" site_id (kind_name kind) msg

let terminator buf = function
  | Jump l -> add buf "jump %s" (Label.name l)
  | Branch (c, t, f) ->
      Buffer.add_string buf "branch ";
      operand buf c;
      add buf ", %s, %s" (Label.name t) (Label.name f)
  | Return None -> Buffer.add_string buf "return"
  | Return (Some v) ->
      Buffer.add_string buf "return ";
      operand buf v
  | Exit -> Buffer.add_string buf "exit"

let block buf (b : Block.t) =
  add buf "%s:\n" (Label.name b.label);
  Array.iter
    (fun (i : Instr.t) ->
      Buffer.add_string buf "  ";
      op buf i.op;
      Buffer.add_char buf '\n')
    b.instrs;
  Buffer.add_string buf "  ";
  terminator buf b.term;
  Buffer.add_char buf '\n'

let func buf (f : Func.t) =
  add buf "func @%s(" (Fname.name f.name);
  (match f.params with
  | [] -> ()
  | p :: rest ->
      reg buf p;
      List.iter
        (fun p ->
          Buffer.add_string buf ", ";
          reg buf p)
        rest);
  Buffer.add_string buf ") {\n";
  (* the entry block is serialized first so parsing restores it as entry *)
  let entry, rest =
    List.partition (fun (b : Block.t) -> Label.equal b.label f.entry) f.blocks
  in
  List.iter (block buf) (entry @ rest);
  Buffer.add_string buf "}\n"

(** Serialize a whole program to its concrete syntax. *)
let program (p : Program.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (g, v) ->
      add buf "global %s = " g;
      value buf v;
      Buffer.add_char buf '\n')
    p.globals;
  List.iter (fun m -> add buf "mutex %s\n" m) p.mutexes;
  add buf "main @%s\n\n" (Fname.name p.main);
  List.iter
    (fun f ->
      func buf f;
      Buffer.add_char buf '\n')
    p.funcs;
  Buffer.contents buf
