(** A whole Mir program: global initializers, named mutexes, the function
    table, and the entry function run by the main thread. *)

module Fname = Ident.Fname

type t = {
  globals : (string * Value.t) list;
  mutexes : string list;
  funcs : Func.t list;
  main : Fname.t;
}

val v :
  ?globals:(string * Value.t) list ->
  ?mutexes:string list ->
  funcs:Func.t list ->
  main:Fname.t ->
  unit ->
  t

val find_func : t -> Fname.t -> Func.t option

val func_exn : t -> Fname.t -> Func.t
(** @raise Invalid_argument if the function does not exist. *)

val iter_funcs : t -> (Func.t -> unit) -> unit

val instr_count : t -> int
(** Total static instruction count — the program-size proxy of Table 2. *)

val find_instr : t -> int -> (Func.t * Block.t * int) option
(** Locate an instruction by id anywhere in the program. *)

val max_iid : t -> int
(** The largest instruction id in use ([-1] for an empty program); fresh
    ids from transformations start above it. *)

val pp : Format.formatter -> t -> unit
