(* Control-flow graph view of a function: block map, successor and
   predecessor relations, reachability. The backward walks of the ConAir
   analyses are built on top of this. *)

module Label = Ident.Label

type t = {
  func : Func.t;
  blocks : Block.t Label.Map.t;
  succs : Label.t list Label.Map.t;
  preds : Label.t list Label.Map.t;
}

let of_func (f : Func.t) =
  let blocks =
    List.fold_left
      (fun m (b : Block.t) -> Label.Map.add b.label b m)
      Label.Map.empty f.blocks
  in
  let succs =
    List.fold_left
      (fun m (b : Block.t) -> Label.Map.add b.label (Block.successors b) m)
      Label.Map.empty f.blocks
  in
  let preds =
    List.fold_left
      (fun m (b : Block.t) ->
        List.fold_left
          (fun m s ->
            let cur = Option.value ~default:[] (Label.Map.find_opt s m) in
            Label.Map.add s (b.label :: cur) m)
          m (Block.successors b))
      (List.fold_left
         (fun m (b : Block.t) -> Label.Map.add b.label [] m)
         Label.Map.empty f.blocks)
      f.blocks
  in
  { func = f; blocks; succs; preds }

let block g l =
  match Label.Map.find_opt l g.blocks with
  | Some b -> b
  | None ->
      invalid_arg (Format.asprintf "Cfg.block: unknown label %a" Label.pp l)

let succs g l = Option.value ~default:[] (Label.Map.find_opt l g.succs)
let preds g l = Option.value ~default:[] (Label.Map.find_opt l g.preds)
let entry g = g.func.entry
let is_entry g l = Label.equal l g.func.entry

(** Labels reachable from the entry block. *)
let reachable g =
  let rec go seen = function
    | [] -> seen
    | l :: rest ->
        if Label.Set.mem l seen then go seen rest
        else go (Label.Set.add l seen) (succs g l @ rest)
  in
  go Label.Set.empty [ entry g ]
