lib/ir/validate.ml: Array Block Cfg Format Func Hashtbl Ident Instr List Program
