lib/ir/emit.mli: Program
