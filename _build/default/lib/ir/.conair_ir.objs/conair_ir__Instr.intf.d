lib/ir/instr.mli: Format Ident Value
