lib/ir/parse.ml: Array Block Buffer Format Func Ident Instr List Printf Program String Value
