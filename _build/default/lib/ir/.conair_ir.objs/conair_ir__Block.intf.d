lib/ir/block.mli: Format Ident Instr
