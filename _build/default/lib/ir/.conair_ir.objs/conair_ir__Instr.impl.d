lib/ir/instr.ml: Format Ident List Value
