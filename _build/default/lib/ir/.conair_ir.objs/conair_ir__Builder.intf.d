lib/ir/builder.mli: Instr Program Value
