lib/ir/parse.mli: Format Program
