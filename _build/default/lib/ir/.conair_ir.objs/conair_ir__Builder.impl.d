lib/ir/builder.ml: Array Block Func Ident Instr List Option Printf Program Value
