lib/ir/cfg.ml: Block Format Func Ident List Option
