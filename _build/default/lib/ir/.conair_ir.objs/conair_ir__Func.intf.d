lib/ir/func.mli: Block Format Ident Instr
