lib/ir/program.mli: Block Format Func Ident Value
