lib/ir/func.ml: Array Block Format Ident Instr List
