lib/ir/emit.ml: Array Block Buffer Func Ident Instr List Printf Program Value
