lib/ir/value.ml: Bool Format Int String
