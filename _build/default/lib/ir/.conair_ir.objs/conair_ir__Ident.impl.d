lib/ir/ident.ml: Format Map Set String
