lib/ir/block.ml: Array Format Ident Instr
