lib/ir/program.ml: Format Func Ident Instr List Option Value
