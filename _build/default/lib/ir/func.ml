(* Functions: parameters are registers; the body is a CFG of basic blocks
   stored in definition order (the entry block first by convention, but the
   [entry] field is authoritative). *)

module Label = Ident.Label
module Fname = Ident.Fname
module Reg = Ident.Reg

type t = {
  name : Fname.t;
  params : Reg.t list;
  entry : Label.t;
  blocks : Block.t list;
}

let v ~name ~params ~entry ~blocks = { name; params; entry; blocks }

let find_block f label =
  List.find_opt (fun (b : Block.t) -> Label.equal b.label label) f.blocks

let block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
      invalid_arg
        (Format.asprintf "Func.block_exn: no block %a in %a" Label.pp label
           Fname.pp f.name)

(** Iterate over every instruction of the function. *)
let iter_instrs f g =
  List.iter (fun (b : Block.t) -> Array.iter (g b) b.instrs) f.blocks

(** All instructions of the function, in block order. *)
let instrs f =
  List.concat_map (fun (b : Block.t) -> Array.to_list b.instrs) f.blocks

let instr_count f =
  List.fold_left (fun n b -> n + Block.length b) 0 f.blocks

(** Locate an instruction by id: returns the block and the index within it. *)
let find_instr f iid =
  let found = ref None in
  List.iter
    (fun (b : Block.t) ->
      Array.iteri
        (fun i (ins : Instr.t) ->
          if ins.iid = iid && !found = None then found := Some (b, i))
        b.instrs)
    f.blocks;
  !found

let pp ppf f =
  Format.fprintf ppf "@[<v 2>func %a(%a) entry=%a@ %a@]" Fname.pp f.name
    Format.(
      pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") Reg.pp)
    f.params Label.pp f.entry
    Format.(pp_print_list ~pp_sep:pp_print_cut Block.pp)
    f.blocks
