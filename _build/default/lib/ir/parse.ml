(* Parser for the Mir concrete syntax produced by {!Emit}.

   Hand-written lexer + recursive-descent parser; errors carry line
   numbers. [Parse.program (Emit.program p)] reconstructs [p] up to
   instruction ids (ids are reassigned densely in reading order), which is
   property-tested as a round-trip through a second serialization. *)

module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Error of error

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string  (** bare identifier or keyword *)
  | REG of string  (** %name *)
  | GLOBAL of string  (** $name *)
  | STACK of string  (** ~name *)
  | FNAME of string  (** @name *)
  | MUTEX of string  (** &name *)
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | EQUALS
  | COLON
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | REG s -> Printf.sprintf "register %%%s" s
  | GLOBAL s -> Printf.sprintf "global $%s" s
  | STACK s -> Printf.sprintf "stack slot ~%s" s
  | FNAME s -> Printf.sprintf "function @%s" s
  | MUTEX s -> Printf.sprintf "mutex &%s" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | EQUALS -> "'='"
  | COLON -> "':'"
  | EOF -> "end of input"

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;  (** current token *)
  mutable tok_line : int;
}

let fail_at line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let lex_ident lx =
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos = start then fail_at lx.line "expected an identifier";
  String.sub lx.src start (lx.pos - start)

let lex_string lx =
  (* lx.pos points at the opening quote *)
  let buf = Buffer.create 16 in
  lx.pos <- lx.pos + 1;
  let rec go () =
    if lx.pos >= String.length lx.src then
      fail_at lx.line "unterminated string literal"
    else
      match lx.src.[lx.pos] with
      | '"' -> lx.pos <- lx.pos + 1
      | '\\' ->
          if lx.pos + 1 >= String.length lx.src then
            fail_at lx.line "unterminated escape";
          (match lx.src.[lx.pos + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> fail_at lx.line "unknown escape '\\%c'" c);
          lx.pos <- lx.pos + 2;
          go ()
      | '\n' -> fail_at lx.line "newline in string literal"
      | c ->
          Buffer.add_char buf c;
          lx.pos <- lx.pos + 1;
          go ()
  in
  go ();
  Buffer.contents buf

let rec next_token lx =
  if lx.pos >= String.length lx.src then EOF
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        next_token lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        next_token lx
    | '#' ->
        (* comment to end of line *)
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        next_token lx
    | '(' -> lx.pos <- lx.pos + 1; LPAREN
    | ')' -> lx.pos <- lx.pos + 1; RPAREN
    | '{' -> lx.pos <- lx.pos + 1; LBRACE
    | '}' -> lx.pos <- lx.pos + 1; RBRACE
    | '[' -> lx.pos <- lx.pos + 1; LBRACKET
    | ']' -> lx.pos <- lx.pos + 1; RBRACKET
    | ',' -> lx.pos <- lx.pos + 1; COMMA
    | '=' -> lx.pos <- lx.pos + 1; EQUALS
    | ':' -> lx.pos <- lx.pos + 1; COLON
    | '%' -> lx.pos <- lx.pos + 1; REG (lex_ident lx)
    | '$' -> lx.pos <- lx.pos + 1; GLOBAL (lex_ident lx)
    | '~' -> lx.pos <- lx.pos + 1; STACK (lex_ident lx)
    | '@' -> lx.pos <- lx.pos + 1; FNAME (lex_ident lx)
    | '&' -> lx.pos <- lx.pos + 1; MUTEX (lex_ident lx)
    | '"' -> STRING (lex_string lx)
    | '-' ->
        lx.pos <- lx.pos + 1;
        (match next_token lx with
        | INT n -> INT (-n)
        | t -> fail_at lx.line "expected a number after '-', got %s"
                 (token_to_string t))
    | c when c >= '0' && c <= '9' ->
        let start = lx.pos in
        while
          lx.pos < String.length lx.src
          && lx.src.[lx.pos] >= '0'
          && lx.src.[lx.pos] <= '9'
        do
          lx.pos <- lx.pos + 1
        done;
        INT (int_of_string (String.sub lx.src start (lx.pos - start)))
    | c when is_ident_char c -> IDENT (lex_ident lx)
    | c -> fail_at lx.line "unexpected character '%c'" c

let advance lx =
  lx.tok_line <- lx.line;
  lx.tok <- next_token lx

let init src =
  let lx = { src; pos = 0; line = 1; tok = EOF; tok_line = 1 } in
  advance lx;
  lx

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let expect lx tok =
  if lx.tok = tok then advance lx
  else
    fail_at lx.tok_line "expected %s, got %s" (token_to_string tok)
      (token_to_string lx.tok)

let ident lx =
  match lx.tok with
  | IDENT s ->
      advance lx;
      s
  | t -> fail_at lx.tok_line "expected an identifier, got %s" (token_to_string t)

let keyword lx kw =
  match lx.tok with
  | IDENT s when s = kw -> advance lx
  | t ->
      fail_at lx.tok_line "expected keyword %S, got %s" kw (token_to_string t)

let reg lx =
  match lx.tok with
  | REG s ->
      advance lx;
      Reg.v s
  | t -> fail_at lx.tok_line "expected a register, got %s" (token_to_string t)

let int_lit lx =
  match lx.tok with
  | INT n ->
      advance lx;
      n
  | t -> fail_at lx.tok_line "expected an integer, got %s" (token_to_string t)

let string_lit lx =
  match lx.tok with
  | STRING s ->
      advance lx;
      s
  | t -> fail_at lx.tok_line "expected a string, got %s" (token_to_string t)

let fname lx =
  match lx.tok with
  | FNAME s ->
      advance lx;
      Fname.v s
  | t -> fail_at lx.tok_line "expected @function, got %s" (token_to_string t)

let value lx : Value.t =
  match lx.tok with
  | INT n ->
      advance lx;
      Value.Int n
  | IDENT "true" ->
      advance lx;
      Value.Bool true
  | IDENT "false" ->
      advance lx;
      Value.Bool false
  | IDENT "null" ->
      advance lx;
      Value.Null
  | STRING s ->
      advance lx;
      Value.Str s
  | MUTEX m ->
      advance lx;
      Value.Mutex m
  | t -> fail_at lx.tok_line "expected a value, got %s" (token_to_string t)

let operand lx : Instr.operand =
  match lx.tok with
  | REG s ->
      advance lx;
      Instr.Reg (Reg.v s)
  | _ -> Instr.Const (value lx)

let mem lx : Instr.mem =
  match lx.tok with
  | GLOBAL g ->
      advance lx;
      Instr.Global g
  | STACK s ->
      advance lx;
      Instr.Stack s
  | t ->
      fail_at lx.tok_line "expected $global or ~slot, got %s"
        (token_to_string t)

let binop_of_name = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "mod" -> Some Instr.Mod
  | "eq" -> Some Instr.Eq
  | "ne" -> Some Instr.Ne
  | "lt" -> Some Instr.Lt
  | "le" -> Some Instr.Le
  | "gt" -> Some Instr.Gt
  | "ge" -> Some Instr.Ge
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | _ -> None

let unop_of_name = function
  | "not" -> Some Instr.Not
  | "neg" -> Some Instr.Neg
  | "is_null" -> Some Instr.Is_null
  | _ -> None

let kind_of_name lx = function
  | "assert" -> Instr.Assert_fail
  | "wrong_output" -> Instr.Wrong_output
  | "segfault" -> Instr.Seg_fault
  | "deadlock" -> Instr.Deadlock
  | s -> fail_at lx.tok_line "unknown failure kind %S" s

let args lx =
  expect lx LPAREN;
  if lx.tok = RPAREN then begin
    advance lx;
    []
  end
  else begin
    let rec go acc =
      let a = operand lx in
      if lx.tok = COMMA then begin
        advance lx;
        go (a :: acc)
      end
      else begin
        expect lx RPAREN;
        List.rev (a :: acc)
      end
    in
    go []
  end

(* [%r = <rhs>] — everything that can follow the '='. *)
let assignment lx (dst : Reg.t) : Instr.op =
  let kw = ident lx in
  match binop_of_name kw with
  | Some b ->
      let x = operand lx in
      expect lx COMMA;
      let y = operand lx in
      Instr.Binop (dst, b, x, y)
  | None -> (
      match unop_of_name kw with
      | Some u -> Instr.Unop (dst, u, operand lx)
      | None -> (
          match kw with
          | "move" -> Instr.Move (dst, operand lx)
          | "load" -> (
              match lx.tok with
              | GLOBAL _ | STACK _ -> Instr.Load (dst, mem lx)
              | _ ->
                  let p = operand lx in
                  expect lx LBRACKET;
                  let i = operand lx in
                  expect lx RBRACKET;
                  Instr.Load_idx (dst, p, i))
          | "alloc" -> Instr.Alloc (dst, operand lx)
          | "call" ->
              let f = fname lx in
              Instr.Call (Some dst, f, args lx)
          | "spawn" ->
              let f = fname lx in
              Instr.Spawn (dst, f, args lx)
          | "ptr_guard" ->
              let p = operand lx in
              expect lx LBRACKET;
              let i = operand lx in
              expect lx RBRACKET;
              Instr.Ptr_guard (dst, p, i)
          | "timedlock" ->
              let m = operand lx in
              expect lx COMMA;
              Instr.Timed_lock (dst, m, int_lit lx)
          | "timedwait" ->
              let e = ident lx in
              expect lx COMMA;
              Instr.Timed_wait (dst, e, int_lit lx)
          | kw -> fail_at lx.tok_line "unknown instruction %S" kw))

(* An instruction or terminator; [`Instr op] or [`Term t]. *)
let statement lx =
  match lx.tok with
  | REG r ->
      advance lx;
      expect lx EQUALS;
      `Instr (assignment lx (Reg.v r))
  | IDENT kw -> (
      advance lx;
      match kw with
      | "store" -> (
          match lx.tok with
          | GLOBAL _ | STACK _ ->
              let m = mem lx in
              expect lx COMMA;
              `Instr (Instr.Store (m, operand lx))
          | _ ->
              let p = operand lx in
              expect lx LBRACKET;
              let i = operand lx in
              expect lx RBRACKET;
              expect lx COMMA;
              `Instr (Instr.Store_idx (p, i, operand lx)))
      | "free" -> `Instr (Instr.Free (operand lx))
      | "lock" -> `Instr (Instr.Lock (operand lx))
      | "unlock" -> `Instr (Instr.Unlock (operand lx))
      | "assert" | "oracle" ->
          let cond = operand lx in
          expect lx COMMA;
          let msg = string_lit lx in
          `Instr (Instr.Assert { cond; msg; oracle = kw = "oracle" })
      | "output" ->
          let fmt = string_lit lx in
          let rec go acc =
            if lx.tok = COMMA then begin
              advance lx;
              go (operand lx :: acc)
            end
            else List.rev acc
          in
          `Instr (Instr.Output { fmt; args = go [] })
      | "call" ->
          let f = fname lx in
          `Instr (Instr.Call (None, f, args lx))
      | "join" -> `Instr (Instr.Join (operand lx))
      | "sleep" -> `Instr (Instr.Sleep (int_lit lx))
      | "nop" -> `Instr Instr.Nop
      | "wait" -> `Instr (Instr.Wait (ident lx))
      | "notify" -> `Instr (Instr.Notify (ident lx))
      | "checkpoint" -> `Instr (Instr.Checkpoint (int_lit lx))
      | "try_recover" ->
          let site_id = int_lit lx in
          expect lx COMMA;
          let kind = kind_of_name lx (ident lx) in
          `Instr (Instr.Try_recover { site_id; kind })
      | "fail_stop" ->
          let site_id = int_lit lx in
          expect lx COMMA;
          let kind = kind_of_name lx (ident lx) in
          expect lx COMMA;
          let msg = string_lit lx in
          `Instr (Instr.Fail_stop { site_id; kind; msg })
      | "jump" -> `Term (Instr.Jump (Label.v (ident lx)))
      | "branch" ->
          let c = operand lx in
          expect lx COMMA;
          let t = ident lx in
          expect lx COMMA;
          let f = ident lx in
          `Term (Instr.Branch (c, Label.v t, Label.v f))
      | "return" -> (
          (* optional operand: absent iff the next token starts a new
             statement/label/close-brace *)
          match lx.tok with
          | RBRACE | IDENT _ | REG _ -> (
              (* "IDENT" here could be a label or keyword of the next
                 statement — a bare return is only followed by those; an
                 operand would be a value token *)
              match lx.tok with
              | IDENT ("true" | "false" | "null") ->
                  `Term (Instr.Return (Some (operand lx)))
              | REG _ -> `Term (Instr.Return (Some (operand lx)))
              | _ -> `Term (Instr.Return None))
          | INT _ | STRING _ | MUTEX _ ->
              `Term (Instr.Return (Some (operand lx)))
          | _ -> `Term (Instr.Return None))
      | "exit" -> `Term Instr.Exit
      | kw -> fail_at lx.tok_line "unknown statement %S" kw)
  | t ->
      fail_at lx.tok_line "expected an instruction, got %s" (token_to_string t)

(* One block: "label: statements... terminator". *)
let block lx ~fresh =
  let name = ident lx in
  expect lx COLON;
  let instrs = ref [] in
  let rec go () =
    match statement lx with
    | `Instr op ->
        instrs := { Instr.iid = fresh (); op } :: !instrs;
        go ()
    | `Term t -> t
  in
  let term = go () in
  {
    Block.label = Label.v name;
    instrs = Array.of_list (List.rev !instrs);
    term;
  }

let func lx ~fresh =
  keyword lx "func";
  let name = fname lx in
  expect lx LPAREN;
  let params =
    if lx.tok = RPAREN then []
    else
      let rec go acc =
        let r = reg lx in
        if lx.tok = COMMA then begin
          advance lx;
          go (r :: acc)
        end
        else List.rev (r :: acc)
      in
      go []
  in
  expect lx RPAREN;
  expect lx LBRACE;
  let blocks = ref [] in
  while lx.tok <> RBRACE do
    blocks := block lx ~fresh :: !blocks
  done;
  expect lx RBRACE;
  let blocks = List.rev !blocks in
  match blocks with
  | [] -> fail_at lx.tok_line "function @%s has no blocks" (Fname.name name)
  | first :: _ ->
      Func.v ~name ~params ~entry:first.Block.label ~blocks

(** Parse a whole program from its concrete syntax. *)
let program_exn (src : string) : Program.t =
  let lx = init src in
  let globals = ref [] in
  let mutexes = ref [] in
  let main = ref None in
  let funcs = ref [] in
  let counter = ref 0 in
  let fresh () =
    let n = !counter in
    incr counter;
    n
  in
  let rec go () =
    match lx.tok with
    | EOF -> ()
    | IDENT "global" ->
        advance lx;
        let name = ident lx in
        expect lx EQUALS;
        globals := (name, value lx) :: !globals;
        go ()
    | IDENT "mutex" ->
        advance lx;
        mutexes := ident lx :: !mutexes;
        go ()
    | IDENT "main" ->
        advance lx;
        main := Some (fname lx);
        go ()
    | IDENT "func" ->
        funcs := func lx ~fresh :: !funcs;
        go ()
    | t ->
        fail_at lx.tok_line
          "expected global/mutex/main/func, got %s" (token_to_string t)
  in
  go ();
  match !main with
  | None -> fail_at lx.tok_line "missing 'main @function' declaration"
  | Some main ->
      Program.v ~globals:(List.rev !globals) ~mutexes:(List.rev !mutexes)
        ~funcs:(List.rev !funcs) ~main ()

let program src =
  match program_exn src with
  | p -> Ok p
  | exception Error e -> Error e
