(** Parser for the Mir concrete syntax produced by {!Emit}.

    Instruction ids are assigned densely in reading order; everything else
    is reconstructed exactly (verified by emit/parse round-trip tests,
    including on hardened programs with recovery pseudo-instructions). *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Error of error

val program : string -> (Program.t, error) result
val program_exn : string -> Program.t
(** @raise Error on malformed input. *)
