(** Static well-formedness checking for Mir programs: label resolution,
    unique instruction ids, known callees with matching arity, a
    parameterless main, reachability of every block. Run by the tests on
    every benchmark and on every hardened program, so the ConAir
    transformation is itself validated. *)

type problem = { where : string; what : string }

val pp_problem : Format.formatter -> problem -> unit

val check : Program.t -> problem list
(** All problems found; [[]] means well-formed. *)

val check_exn : Program.t -> unit
(** @raise Invalid_argument with a readable report if the program is
    ill-formed. *)
