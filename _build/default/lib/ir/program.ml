(* A whole Mir program: global variable initializers, named mutexes, the
   function table, and the entry function run by the main thread. *)

module Fname = Ident.Fname

type t = {
  globals : (string * Value.t) list;  (** initial values of globals *)
  mutexes : string list;  (** statically-declared named locks *)
  funcs : Func.t list;
  main : Fname.t;
}

let v ?(globals = []) ?(mutexes = []) ~funcs ~main () =
  { globals; mutexes; funcs; main }

let find_func p name =
  List.find_opt (fun (f : Func.t) -> Fname.equal f.name name) p.funcs

let func_exn p name =
  match find_func p name with
  | Some f -> f
  | None ->
      invalid_arg
        (Format.asprintf "Program.func_exn: no function %a" Fname.pp name)

let iter_funcs p g = List.iter g p.funcs

(** Total static instruction count, a proxy for program size. *)
let instr_count p =
  List.fold_left (fun n f -> n + Func.instr_count f) 0 p.funcs

(** Locate an instruction by id anywhere in the program. *)
let find_instr p iid =
  List.find_map
    (fun f ->
      Option.map (fun (b, i) -> (f, b, i)) (Func.find_instr f iid))
    p.funcs

(** The largest instruction id in use; fresh ids for transformation-inserted
    instructions start above this. *)
let max_iid p =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc (i : Instr.t) -> max acc i.iid)
        acc (Func.instrs f))
    (-1) p.funcs

let pp ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (g, v) -> Format.fprintf ppf "global $%s = %a@ " g Value.pp v)
    p.globals;
  List.iter (fun m -> Format.fprintf ppf "mutex %s@ " m) p.mutexes;
  Format.fprintf ppf "main = %a@ " Fname.pp p.main;
  List.iter (fun f -> Format.fprintf ppf "%a@ " Func.pp f) p.funcs;
  Format.fprintf ppf "@]"
