(** Traditional whole-program checkpoint/rollback — the right end of the
    paper's Fig 4 spectrum (Rx/ASSURE/Frost-style). Snapshots the entire
    machine every [interval] steps; on failure or hang, restores the last
    snapshot and continues under a re-seeded schedule with perturbed
    timing (the Rx "environment change"). Recovers strictly more failures
    than ConAir — including rolled-back shared writes — at a continuous
    checkpointing overhead proportional to state size. *)

open Conair.Ir
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome

type config = {
  machine : Machine.config;
  interval : int;  (** steps between whole-program checkpoints *)
  max_restores : int;
  snapshot_cost_per_block : int;
      (** virtual cost charged per live heap block per snapshot *)
  snapshot_cost_fixed : int;
}

val default_config : config

type result = {
  outcome : Outcome.t;
  outputs : string list;
  snapshots_taken : int;
  restores : int;
  run_steps : int;  (** pure execution steps *)
  checkpoint_overhead_steps : int;  (** virtual snapshot cost *)
  total_steps : int;  (** run + overhead: what the user experiences *)
  recovery_steps : int;  (** from the first failure to final success *)
}

val run : ?config:config -> Program.t -> result
