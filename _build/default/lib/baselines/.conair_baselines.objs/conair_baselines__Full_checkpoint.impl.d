lib/baselines/full_checkpoint.ml: Conair Option Program
