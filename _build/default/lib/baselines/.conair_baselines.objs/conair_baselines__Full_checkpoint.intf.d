lib/baselines/full_checkpoint.mli: Conair Program
