lib/baselines/restart.ml: Conair Program
