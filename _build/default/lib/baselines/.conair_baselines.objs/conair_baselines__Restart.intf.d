lib/baselines/restart.mli: Conair Program
