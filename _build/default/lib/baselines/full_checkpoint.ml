(* Traditional whole-program checkpoint/rollback recovery — the right end
   of the paper's Fig 4 design spectrum (Rx/ASSURE/Frost-style, minus the
   OS: our substrate lets us snapshot the whole machine directly).

   Every [interval] scheduler steps the entire machine state (all threads,
   heap, globals, locks) is checkpointed; on a failure or a hang the last
   snapshot is restored and execution continues under a re-seeded
   scheduler. This recovers strictly more failures than ConAir — it can
   roll back shared-memory writes and multiple threads — but pays a
   continuous checkpointing overhead proportional to state size, which is
   exactly the trade-off Fig 4 sketches. *)

open Conair.Ir
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome
module Sched = Conair.Runtime.Sched
module Heap = Conair.Runtime.Heap

type config = {
  machine : Machine.config;
  interval : int;  (** steps between whole-program checkpoints *)
  max_restores : int;
  snapshot_cost_per_block : int;
      (** virtual cost charged per live heap block at each snapshot,
          modelling memory-state checkpointing time *)
  snapshot_cost_fixed : int;
}

let default_config =
  {
    machine = Machine.default_config;
    interval = 250;
    max_restores = 250;
    snapshot_cost_per_block = 2;
    snapshot_cost_fixed = 20;
  }

type result = {
  outcome : Outcome.t;
  outputs : string list;
  snapshots_taken : int;
  restores : int;
  run_steps : int;  (** pure execution steps *)
  checkpoint_overhead_steps : int;  (** virtual cost of the snapshots *)
  total_steps : int;  (** run + overhead: what the user experiences *)
  recovery_steps : int;  (** from first failure to final success *)
}

let run ?(config = default_config) (p : Program.t) : result =
  let m = ref (Machine.create ~config:config.machine p) in
  let snap = ref (Machine.snapshot !m) in
  let snapshots = ref 1 in
  let restores = ref 0 in
  let overhead = ref (config.snapshot_cost_fixed) in
  let first_failure_step = ref None in
  let last_step = ref 0 in
  let since_snapshot = ref 0 in
  let charge_snapshot () =
    incr snapshots;
    overhead :=
      !overhead + config.snapshot_cost_fixed
      + (config.snapshot_cost_per_block * Heap.live_blocks (!m).Machine.heap)
  in
  let rec loop () =
    if (!m).Machine.step >= config.machine.fuel then
      Outcome.Fuel_exhausted (!m).Machine.step
    else begin
      if Machine.step !m then begin
        incr since_snapshot;
        if !since_snapshot >= config.interval then begin
          since_snapshot := 0;
          snap := Machine.snapshot !m;
          charge_snapshot ()
        end;
        loop ()
      end
      else
        let outcome =
          Option.value ~default:Outcome.Success (!m).Machine.outcome
        in
        match outcome with
        | Outcome.Success -> outcome
        | Outcome.Fuel_exhausted _ -> outcome
        | Outcome.Failed _ | Outcome.Hang _ ->
            if !restores >= config.max_restores then outcome
            else begin
              if !first_failure_step = None then
                first_failure_step := Some (!m).Machine.step;
              incr restores;
              Machine.restore !m !snap;
              (* Explore a different interleaving on the retried epoch,
                 with perturbed timing — the Rx-style environment change. *)
              m :=
                Machine.reseed ~perturb:true !m
                  (Sched.Random (0xcafe + !restores));
              since_snapshot := 0;
              loop ()
            end
    end
  in
  let outcome = loop () in
  last_step := (!m).Machine.step;
  let stats = Machine.stats !m in
  let recovery_steps =
    match !first_failure_step with
    | Some s when Outcome.is_success outcome -> stats.steps - s
    | Some _ | None -> 0
  in
  {
    outcome;
    outputs = Machine.outputs !m;
    snapshots_taken = !snapshots;
    restores = !restores;
    run_steps = stats.steps;
    checkpoint_overhead_steps = !overhead;
    total_steps = stats.steps + !overhead;
    recovery_steps;
  }
