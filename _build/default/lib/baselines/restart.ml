(* Whole-program restart: the recovery strategy ConAir's Table 7 compares
   against. When the program fails or hangs, it is restarted from scratch;
   the inherent non-determinism of scheduling (modelled by re-seeding the
   random scheduler) eventually dodges the buggy interleaving.

   "Restart time" is all the work thrown away plus the successful rerun —
   which is why it grows with the workload while ConAir's recovery time
   does not (§6.3). *)

open Conair.Ir
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome
module Sched = Conair.Runtime.Sched

type result = {
  outcome : Outcome.t;  (** of the final attempt *)
  attempts : int;
  total_steps : int;  (** work across all attempts, the restart cost *)
  wasted_steps : int;  (** work of the failed attempts only *)
  outputs : string list;
}

let run ?(config = Machine.default_config) ?(max_attempts = 20)
    ?(accept = fun (_ : string list) -> true) (p : Program.t) : result =
  let rec attempt k total wasted =
    let config =
      if k = 1 then config
      else
        (* A real restart never reproduces the failing run's exact timing:
           later attempts get a random schedule and perturbed sleeps. *)
        {
          config with
          policy = Sched.Random (0xbeef + k);
          perturb_timing = true;
        }
    in
    let m, outcome = Machine.run_program ~config p in
    let stats = Machine.stats m in
    let outputs = Machine.outputs m in
    let ok = Outcome.is_success outcome && accept outputs in
    let total = total + stats.steps in
    if ok || k >= max_attempts then
      {
        outcome;
        attempts = k;
        total_steps = total;
        wasted_steps = (if ok then wasted else wasted + stats.steps);
        outputs;
      }
    else attempt (k + 1) total (wasted + stats.steps)
  in
  attempt 1 0 0
