(** Whole-program restart — Table 7's comparison point. On failure or
    hang, rerun from scratch with a random schedule and perturbed timing
    (a restart never reproduces the failing run's timing) until the run is
    correct. The cost is all the work thrown away plus the successful
    rerun, which grows with the workload while ConAir's recovery time does
    not (§6.3). *)

open Conair.Ir
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome

type result = {
  outcome : Outcome.t;  (** of the final attempt *)
  attempts : int;
  total_steps : int;  (** work across all attempts — the restart cost *)
  wasted_steps : int;  (** work of the failed attempts only *)
  outputs : string list;
}

val run :
  ?config:Machine.config ->
  ?max_attempts:int ->
  ?accept:(string list -> bool) ->
  Program.t ->
  result
