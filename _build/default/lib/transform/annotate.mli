(** Automatic null-check annotation (a §3.4 extension, generalizing the
    paper's assertion before every [fputs]): callers of functions that
    unconditionally and immediately dereference a pointer parameter get a
    null-check assert inserted before the call. The new asserts are
    ordinary failure sites — survival mode then catches the null *before*
    entering the callee, often turning inter-procedural recoveries into
    intra-procedural ones. *)

open Conair_ir

val immediately_dereffed_params : Func.t -> Ident.Reg.Set.t
(** Parameters the entry block dereferences before any call, spawn or
    redefinition. *)

val add_null_checks : Program.t -> Program.t * int
(** The annotated program and the number of assertions added; original
    instruction ids are preserved. *)
