(** The static-analysis report: everything Tables 4, 5 and 6 need about
    one hardened program. *)

open Conair_analysis

type t = {
  census : Find_sites.census;  (** sites by kind (Table 4) *)
  static_points : int;  (** checkpoints inserted (Table 5) *)
  recoverable_sites : int;
  unrecoverable_sites : int;
  interproc_sites : int;
  static_points_nodeadlock : int;
      (** checkpoints serving ≥1 non-deadlock site (Table 6) *)
  static_points_deadlock : int;
      (** checkpoints serving ≥1 deadlock site (Table 6) *)
}

val of_harden : Harden.t -> t
val pp : Format.formatter -> t -> unit
