(* Spill lowering: a simulation of the compiler back end's register
   allocation, reproducing the §3.2.1 discussion.

   ConAir analyses idempotency at the bitcode level, where every value
   lives in a virtual register that the checkpointed register image
   restores. Code generation then places some of those registers in stack
   slots. The paper compiles with [-no-stack-slot-sharing] so that
   "different virtual registers, when not allocated in physical
   registers, are allocated in different stack slots" — because a *shared*
   slot can be overwritten inside a reexecution region by a variable whose
   live range is sequentially disjoint from an input value's, which is
   perfectly legal for normal execution and silently corrupts rollback
   reexecution.

   [spill] rewrites a (typically already-hardened) program so chosen
   registers live in stack slots: a [Load] is inserted before each use and
   a [Store] after each definition. With [`Own_slots] every spilled
   register gets a private slot — the paper's flag — and recovery still
   works. With [`Groups] the caller coalesces registers into shared slots
   (as a live-range allocator would); the tests use it to reproduce the
   corruption the flag prevents. *)

open Conair_ir
module Reg = Ident.Reg
module Fname = Ident.Fname

type sharing =
  | Own_slots  (** each spilled register gets its own slot *)
  | Groups of (string * string list) list
      (** slot name -> register names coalesced into it *)

(* slot name for a spilled register, or None to keep it in a register *)
let slot_assignment ~sharing ~(spill : Reg.t -> bool) (r : Reg.t) =
  if not (spill r) then None
  else
    match sharing with
    | Own_slots -> Some ("__spill_" ^ Reg.name r)
    | Groups groups -> (
        match
          List.find_opt (fun (_, regs) -> List.mem (Reg.name r) regs) groups
        with
        | Some (slot, _) -> Some slot
        | None -> Some ("__spill_" ^ Reg.name r))

(* Rewrite one operand, returning (loads to prepend, new operand). *)
let lower_operand ~slot_of ~fresh_tmp = function
  | Instr.Const _ as c -> ([], c)
  | Instr.Reg r as op -> (
      match slot_of r with
      | None -> ([], op)
      | Some slot ->
          let tmp = fresh_tmp () in
          ([ Instr.Load (tmp, Instr.Stack slot) ], Instr.Reg tmp))

let lower_op ~slot_of ~fresh_tmp (op : Instr.op) :
    Instr.op list * Instr.op * Instr.op list =
  let lower1 = lower_operand ~slot_of ~fresh_tmp in
  let pre = ref [] in
  let arg a =
    let loads, a' = lower1 a in
    pre := !pre @ loads;
    a'
  in
  let args l = List.map arg l in
  (* definitions: redirect into a temp, then store to the slot *)
  let post = ref [] in
  let def r =
    match slot_of r with
    | None -> r
    | Some slot ->
        let tmp = fresh_tmp () in
        post := [ Instr.Store (Instr.Stack slot, Instr.Reg tmp) ];
        tmp
  in
  let lowered =
    match op with
    | Instr.Move (r, a) ->
        let a = arg a in
        Instr.Move (def r, a)
    | Instr.Binop (r, b, x, y) ->
        let x = arg x and y = arg y in
        Instr.Binop (def r, b, x, y)
    | Instr.Unop (r, u, a) ->
        let a = arg a in
        Instr.Unop (def r, u, a)
    | Instr.Load (r, m) -> Instr.Load (def r, m)
    | Instr.Store (m, a) -> Instr.Store (m, arg a)
    | Instr.Load_idx (r, p, i) ->
        let p = arg p and i = arg i in
        Instr.Load_idx (def r, p, i)
    | Instr.Store_idx (p, i, v) ->
        let p = arg p and i = arg i and v = arg v in
        Instr.Store_idx (p, i, v)
    | Instr.Alloc (r, n) ->
        let n = arg n in
        Instr.Alloc (def r, n)
    | Instr.Free a -> Instr.Free (arg a)
    | Instr.Lock a -> Instr.Lock (arg a)
    | Instr.Unlock a -> Instr.Unlock (arg a)
    | Instr.Assert a -> Instr.Assert { a with cond = arg a.cond }
    | Instr.Output o -> Instr.Output { o with args = args o.args }
    | Instr.Call (r, f, a) ->
        let a = args a in
        Instr.Call (Option.map def r, f, a)
    | Instr.Spawn (r, f, a) ->
        let a = args a in
        Instr.Spawn (def r, f, a)
    | Instr.Join a -> Instr.Join (arg a)
    | Instr.Sleep _ | Instr.Nop | Instr.Wait _ | Instr.Notify _
    | Instr.Checkpoint _ | Instr.Try_recover _ | Instr.Fail_stop _ ->
        op
    | Instr.Ptr_guard (r, p, i) ->
        let p = arg p and i = arg i in
        Instr.Ptr_guard (def r, p, i)
    | Instr.Timed_lock (r, a, t) ->
        let a = arg a in
        Instr.Timed_lock (def r, a, t)
    | Instr.Timed_wait (r, e, t) -> Instr.Timed_wait (def r, e, t)
  in
  (!pre, lowered, !post)

let lower_terminator ~slot_of ~fresh_tmp (t : Instr.terminator) =
  let lower1 = lower_operand ~slot_of ~fresh_tmp in
  match t with
  | Instr.Branch (c, a, b) ->
      let loads, c = lower1 c in
      (loads, Instr.Branch (c, a, b))
  | Instr.Return (Some v) ->
      let loads, v = lower1 v in
      (loads, Instr.Return (Some v))
  | Instr.Jump _ | Instr.Return None | Instr.Exit -> ([], t)

(** Lower [p]: registers selected by [spill] (default: every non-parameter
    register) move to stack slots per [sharing]. Original instruction ids
    are preserved; the inserted loads/stores get fresh ids. Parameters
    always stay in registers (the calling convention). *)
let spill ?(sharing = Own_slots) ?spill:(spill_pred = fun _ -> true)
    (p : Program.t) : Program.t =
  let next_iid = ref (Program.max_iid p + 1) in
  let next_tmp = ref 0 in
  let fresh_instr op =
    let iid = !next_iid in
    incr next_iid;
    { Instr.iid; op }
  in
  let lower_func (f : Func.t) =
    let is_param r = List.exists (Reg.equal r) f.params in
    let slot_of r =
      if is_param r then None
      else slot_assignment ~sharing ~spill:spill_pred r
    in
    let fresh_tmp () =
      let n = !next_tmp in
      incr next_tmp;
      Reg.v (Printf.sprintf "__sp%d" n)
    in
    let lower_block (b : Block.t) =
      let instrs =
        Array.to_list b.instrs
        |> List.concat_map (fun (i : Instr.t) ->
               let pre, op, post = lower_op ~slot_of ~fresh_tmp i.op in
               List.map fresh_instr pre
               @ [ { i with op } ]
               @ List.map fresh_instr post)
      in
      let term_loads, term = lower_terminator ~slot_of ~fresh_tmp b.term in
      {
        b with
        Block.instrs = Array.of_list (instrs @ List.map fresh_instr term_loads);
        term;
      }
    in
    { f with Func.blocks = List.map lower_block f.blocks }
  in
  { p with funcs = List.map lower_func p.funcs }
