(* Static-analysis report: everything Tables 4, 5 and 6 need about one
   hardened program. *)

open Conair_ir
open Conair_analysis

type t = {
  census : Find_sites.census;  (** potential failure sites by kind (Table 4) *)
  static_points : int;  (** checkpoints inserted (Table 5 "Static") *)
  recoverable_sites : int;
  unrecoverable_sites : int;
  interproc_sites : int;
  static_points_nodeadlock : int;
      (** checkpoints serving at least one non-deadlock site *)
  static_points_deadlock : int;
      (** checkpoints serving at least one deadlock site *)
}

(* A checkpoint can serve several sites; attribute it to the deadlock and/or
   non-deadlock families it serves, mirroring how Table 6 splits
   reexecution points. *)
let split_points (plan : Plan.t) =
  let serves kind_pred =
    List.filter
      (fun point ->
        List.exists
          (fun (sp : Plan.site_plan) ->
            sp.verdict = Optimize.Recoverable
            && kind_pred sp.site.kind
            && List.exists (Region.point_equal point) sp.points)
          plan.site_plans)
      plan.all_points
    |> List.length
  in
  ( serves (fun k -> k <> Instr.Deadlock),
    serves (fun k -> k = Instr.Deadlock) )

let of_harden (h : Harden.t) : t =
  let plan = h.plan in
  let sites = List.map (fun (sp : Plan.site_plan) -> sp.site) plan.site_plans in
  let recoverable, unrecoverable =
    List.partition
      (fun (sp : Plan.site_plan) -> sp.verdict = Optimize.Recoverable)
      plan.site_plans
  in
  let nodl, dl = split_points plan in
  {
    census = Find_sites.census sites;
    static_points = Harden.static_reexec_points h;
    recoverable_sites = List.length recoverable;
    unrecoverable_sites = List.length unrecoverable;
    interproc_sites =
      List.length
        (List.filter (fun (sp : Plan.site_plan) -> sp.interprocedural)
           plan.site_plans);
    static_points_nodeadlock = nodl;
    static_points_deadlock = dl;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>sites: assert=%d wrong-output=%d segfault=%d deadlock=%d (total \
     %d)@ recoverable=%d unrecoverable=%d interprocedural=%d@ static \
     reexecution points=%d (non-deadlock %d, deadlock %d)@]"
    r.census.assertion r.census.wrong_output r.census.seg_fault
    r.census.deadlock
    (Find_sites.total r.census)
    r.recoverable_sites r.unrecoverable_sites r.interproc_sites r.static_points
    r.static_points_nodeadlock r.static_points_deadlock
