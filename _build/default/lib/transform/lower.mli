(** Spill lowering — a simulation of the back end's register allocation,
    reproducing the §3.2.1 [-no-stack-slot-sharing] story: with private
    slots per spilled register, hardened programs stay recoverable (slot
    rewrites inside a region are idempotent); with live-range slot
    sharing, a region input's slot can be clobbered by a sequentially
    later variable and rollback reexecution silently corrupts. *)

open Conair_ir

type sharing =
  | Own_slots  (** each spilled register gets its own slot (the flag) *)
  | Groups of (string * string list) list
      (** slot name -> register names coalesced into it, as a live-range
          allocator would *)

val spill :
  ?sharing:sharing ->
  ?spill:(Ident.Reg.t -> bool) ->
  Program.t ->
  Program.t
(** Move registers selected by [spill] (default: all non-parameters) into
    stack slots; loads/stores are inserted around uses/definitions with
    fresh instruction ids, original ids are preserved. *)
