(* Automatic null-check annotation (§3.4: "ConAir currently inserts an
   assertion before every fputs function call to check whether the
   parameter of fputs is NULL or not" — generalized).

   For every function that *unconditionally and immediately* dereferences
   one of its pointer parameters (a deref of the untouched parameter in
   its entry block, before any call or redefinition), every call site
   passing a register for that parameter gets

     %t1 = is_null arg
     %t2 = not %t1
     assert %t2, "auto null check: ..."

   inserted just before the call. The new asserts are ordinary failure
   sites: survival mode then recovers the null *before* entering the
   callee — turning inter-procedural cases like MozillaXP's GetState into
   intra-procedural ones when the caller re-reads a shared pointer. *)

open Conair_ir
module Reg = Ident.Reg
module Fname = Ident.Fname

(* Parameters of [f] that the entry block dereferences before any call,
   spawn or redefinition. *)
let immediately_dereffed_params (f : Func.t) =
  let entry = Func.block_exn f f.entry in
  let alive = ref (Reg.Set.of_list f.params) in
  let found = ref Reg.Set.empty in
  (try
     Array.iter
       (fun (i : Instr.t) ->
         (match i.op with
         | Instr.Load_idx (_, Instr.Reg p, _)
         | Instr.Store_idx (Instr.Reg p, _, _) ->
             if Reg.Set.mem p !alive then found := Reg.Set.add p !found
         | Instr.Call _ | Instr.Spawn _ -> raise Exit
         | _ -> ());
         match Instr.def i.op with
         | Some r -> alive := Reg.Set.remove r !alive
         | None -> ())
       entry.instrs
   with Exit -> ());
  !found

(** Insert null-check assertions; returns the annotated program and the
    number of assertions added. Instruction ids are preserved for original
    instructions; the checks get fresh ids. *)
let add_null_checks (p : Program.t) : Program.t * int =
  let deref_params =
    List.filter_map
      (fun (f : Func.t) ->
        let s = immediately_dereffed_params f in
        if Reg.Set.is_empty s then None else Some (f.name, (f.params, s)))
      p.funcs
  in
  if deref_params = [] then (p, 0)
  else begin
    let edits = Rewrite.create () in
    let added = ref 0 in
    let sym = ref 0 in
    Program.iter_funcs p (fun f ->
        Func.iter_instrs f (fun _ i ->
            match i.op with
            | Instr.Call (_, callee, args) -> (
                match List.assoc_opt callee deref_params with
                | None -> ()
                | Some (params, dereffed) ->
                    let checks =
                      List.concat
                        (List.mapi
                           (fun idx param ->
                             if Reg.Set.mem param dereffed then
                               match List.nth_opt args idx with
                               | Some (Instr.Reg _ as arg) ->
                                   let n = !sym in
                                   sym := n + 2;
                                   let t1 =
                                     Reg.v (Printf.sprintf "__nn%d" n)
                                   in
                                   let t2 =
                                     Reg.v (Printf.sprintf "__nn%d" (n + 1))
                                   in
                                   incr added;
                                   [
                                     Instr.Unop (t1, Instr.Is_null, arg);
                                     Instr.Unop
                                       (t2, Instr.Not, Instr.Reg t1);
                                     Instr.Assert
                                       {
                                         cond = Instr.Reg t2;
                                         msg =
                                           Printf.sprintf
                                             "auto null check: %s(%s)"
                                             (Fname.name callee)
                                             (Reg.name param);
                                         oracle = false;
                                       };
                                   ]
                               | Some (Instr.Const _) | None -> []
                             else [])
                           params)
                    in
                    if checks <> [] then Rewrite.insert_before edits i.iid checks)
            | _ -> ()));
    let p', _ = Rewrite.apply edits p in
    (p', !added)
  end
