lib/transform/rewrite.mli: Conair_ir Ident Instr Program
