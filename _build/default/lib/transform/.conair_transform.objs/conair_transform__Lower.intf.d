lib/transform/lower.mli: Conair_ir Ident Program
