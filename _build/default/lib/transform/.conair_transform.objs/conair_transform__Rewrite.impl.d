lib/transform/rewrite.ml: Array Block Conair_ir Func Hashtbl Ident Instr List Option Printf Program
