lib/transform/report.ml: Conair_analysis Conair_ir Find_sites Format Harden Instr List Optimize Plan Region
