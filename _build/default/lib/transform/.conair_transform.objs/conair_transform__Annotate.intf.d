lib/transform/annotate.mli: Conair_ir Func Ident Program
