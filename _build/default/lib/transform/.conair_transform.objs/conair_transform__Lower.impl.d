lib/transform/lower.ml: Array Block Conair_ir Func Ident Instr List Option Printf Program
