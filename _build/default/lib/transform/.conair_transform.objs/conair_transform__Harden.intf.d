lib/transform/harden.mli: Conair_analysis Conair_ir Ident Plan Program Region
