lib/transform/harden.ml: Conair_analysis Conair_ir Ident Instr List Optimize Plan Program Region Rewrite
