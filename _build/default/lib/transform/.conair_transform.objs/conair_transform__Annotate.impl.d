lib/transform/annotate.ml: Array Conair_ir Func Ident Instr List Printf Program Rewrite
