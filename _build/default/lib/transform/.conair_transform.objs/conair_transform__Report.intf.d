lib/transform/report.mli: Conair_analysis Find_sites Format Harden
