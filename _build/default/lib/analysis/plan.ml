(* The complete ConAir analysis pipeline: sites -> regions -> local
   recoverability -> inter-procedural recovery -> per-site recovery plans.

   The ordering follows §4.3 "Other issues": intra-procedural analysis runs
   first; sites selected for inter-procedural recovery replace their
   intra-procedural points; the §4.2 optimization applies only to sites
   that stay intra-procedural. *)

open Conair_ir
module Fname = Ident.Fname

type mode = Survival | Fix of int list  (** fix mode carries the site iids *)

type options = {
  optimize : bool;  (** apply the §4.2 unrecoverable-site pruning *)
  interproc : bool;  (** attempt §4.3 inter-procedural recovery *)
  max_depth : int;  (** caller-chain depth budget (paper default: 3) *)
  prune_safe : bool;
      (** drop sites statically proven unable to fail (§3.4 extension;
          off by default, like the paper's prototype) *)
  exclude_iids : int list;
      (** sites at these instructions are skipped — the hook for
          profile-based (ConSeq-style) pruning, §3.4 *)
}

let default_options =
  {
    optimize = true;
    interproc = true;
    max_depth = 3;
    prune_safe = false;
    exclude_iids = [];
  }

type site_plan = {
  site : Site.t;
  region : Region.t;
  verdict : Optimize.verdict;  (** after optimization and interproc *)
  local_verdict : Optimize.verdict;  (** before interproc rescue *)
  interprocedural : bool;  (** recovery points live in caller(s) *)
  points : Region.point list;  (** final reexecution points, this site *)
}

type t = {
  program : Program.t;
  mode : mode;
  options : options;
  site_plans : site_plan list;
  all_points : Region.point list;
      (** union of points of recoverable + undetectable-but-hardened sites,
          deduplicated — each becomes one checkpoint *)
}

let recoverable_plans t =
  List.filter (fun sp -> sp.verdict = Optimize.Recoverable) t.site_plans

(* Points that survive: the paper keeps reexecution points only for sites
   that still carry recovery code. Undetectable wrong-output sites keep
   their points too — the paper's survival mode hardens every output
   function to measure worst-case overhead (§5). *)
let live_points site_plans =
  List.fold_left
    (fun acc sp ->
      let keep =
        sp.verdict = Optimize.Recoverable
        || ((not sp.site.detectable) && sp.verdict = Optimize.Recoverable)
      in
      if keep then
        List.fold_left
          (fun acc p ->
            if List.exists (Region.point_equal p) acc then acc else p :: acc)
          acc sp.points
      else acc)
    [] site_plans
  |> List.rev

(** Run the full analysis. *)
let analyze ?(options = default_options) (p : Program.t) (mode : mode) :
    (t, string) result =
  let sites =
    match mode with
    | Survival -> Ok (Find_sites.survival p)
    | Fix iids -> Find_sites.fix p ~iids
  in
  match sites with
  | Error e -> Error e
  | Ok sites ->
      let sites =
        if options.prune_safe then fst (Prune.filter_sites p sites) else sites
      in
      let sites =
        match options.exclude_iids with
        | [] -> sites
        | iids ->
            List.filter
              (fun (s : Site.t) -> not (List.mem s.iid iids))
              sites
      in
      let cfg_cache : (string, Cfg.t) Hashtbl.t = Hashtbl.create 16 in
      let cfg_of fname =
        let key = Fname.name fname in
        match Hashtbl.find_opt cfg_cache key with
        | Some c -> c
        | None ->
            let c = Cfg.of_func (Program.func_exn p fname) in
            Hashtbl.add cfg_cache key c;
            c
      in
      let graph = Callgraph.of_program p in
      let site_plans =
        List.map
          (fun (site : Site.t) ->
            let cfg = cfg_of site.func in
            let region = Region.of_site cfg site in
            let local_verdict =
              if options.optimize then Optimize.judge cfg region
              else Optimize.Recoverable
            in
            let ip =
              if options.interproc && options.optimize then
                Interproc.analyze ~cfg_of ~graph ~max_depth:options.max_depth
                  region local_verdict
              else Interproc.not_selected
            in
            if ip.selected && ip.success then
              {
                site;
                region;
                verdict = Optimize.Recoverable;
                local_verdict;
                interprocedural = true;
                points = ip.points;
              }
            else
              {
                site;
                region;
                verdict = local_verdict;
                local_verdict;
                interprocedural = false;
                points = region.points;
              })
          sites
      in
      Ok
        {
          program = p;
          mode;
          options;
          site_plans;
          all_points = live_points site_plans;
        }

(** Static reexecution-point count (the "Static" columns of Table 5). *)
let static_points t = List.length t.all_points

let pp_site_plan ppf sp =
  Format.fprintf ppf "@[<v 2>%a: %a%s%s@ points: %a@]" Site.pp sp.site
    Optimize.pp_verdict sp.verdict
    (if sp.interprocedural then " (inter-procedural)" else "")
    (if sp.region.reaches_entry_clean then " [clean-to-entry]" else "")
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Region.pp_point)
    sp.points
