(** The call graph: who calls whom and at which instruction. Spawn edges
    are tracked separately — a failing thread can never roll back across
    its own creation, so inter-procedural recovery stops at thread
    roots. *)

open Conair_ir
module Fname = Ident.Fname

type edge = {
  caller : Fname.t;
  call_iid : int;  (** the [Call] instruction in the caller *)
  args : Instr.operand list;
}

type t = {
  callers : edge list Fname.Map.t;
  spawned : Fname.Set.t;
  main : Fname.t;
}

val of_program : Program.t -> t
val callers_of : t -> Fname.t -> edge list

val is_thread_root : t -> Fname.t -> bool
(** Spawned as a thread body, or the main function. *)
