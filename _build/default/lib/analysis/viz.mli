(** Graphviz (DOT) export of CFGs with idempotent regions highlighted —
    the hand-drawn pictures of the paper's figures, generated. *)

open Conair_ir

val func_to_dot : ?region:Region.t -> Func.t -> string
(** Render a function as a DOT digraph. With [region]: [(X)] marks the
    failure site, [[*]] instructions inside the idempotent region, [---]
    region boundaries; blocks holding a reexecution point get a bold
    border and the site's block is red. *)

val site_to_dot : Program.t -> Site.t -> string
(** Compute the site's region and render its enclosing function. *)
