(** The complete static pipeline: sites → regions → local recoverability →
    inter-procedural recovery → per-site recovery plans, ordered as §4.3
    prescribes (intra first; inter-procedural sites replace their points;
    the optimization applies only to sites that stay intra-procedural). *)

open Conair_ir

type mode = Survival | Fix of int list  (** fix mode carries the site iids *)

type options = {
  optimize : bool;  (** the §4.2 unrecoverable-site pruning *)
  interproc : bool;  (** §4.3 inter-procedural recovery *)
  max_depth : int;  (** caller-chain depth budget (paper default 3) *)
  prune_safe : bool;
      (** drop sites statically proven unable to fail (§3.4 extension;
          off by default, like the paper's prototype) *)
  exclude_iids : int list;
      (** sites at these instructions are skipped — the hook for
          profile-based (ConSeq-style) pruning, §3.4 *)
}

val default_options : options

type site_plan = {
  site : Site.t;
  region : Region.t;
  verdict : Optimize.verdict;  (** final, after inter-procedural rescue *)
  local_verdict : Optimize.verdict;  (** before it *)
  interprocedural : bool;
  points : Region.point list;  (** final reexecution points *)
}

type t = {
  program : Program.t;
  mode : mode;
  options : options;
  site_plans : site_plan list;
  all_points : Region.point list;
      (** deduplicated union over recoverable sites — each becomes one
          checkpoint *)
}

val recoverable_plans : t -> site_plan list
val analyze : ?options:options -> Program.t -> mode -> (t, string) result

val static_points : t -> int
(** The "Static" reexecution-point count of Table 5. *)

val pp_site_plan : Format.formatter -> site_plan -> unit
