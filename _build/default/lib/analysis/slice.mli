(** Backward slicing restricted to an idempotent region (§4.2, Fig 8).

    Inside a region every write is to a virtual register, so data
    dependence is tracked purely through register def-use chains; a chain
    reaching a non-register read stops there (if it is a global or heap
    read, the slice has found a shared read; a stack read leads outside
    any region and is useless to chase). No alias analysis is needed. The
    slice is seeded with the site's operands plus the region's branch
    conditions (control dependence). *)

open Conair_ir
module Reg = Ident.Reg

type result = {
  shared_read_iids : Region.Iid_set.t;
      (** global/heap reads inside the region that can affect the site *)
  open_regs : Reg.Set.t;
      (** slice registers with no in-region definition; parameters among
          them are the §4.3 critical parameters *)
}

val reaches_shared_read : result -> bool

val site_seed_regs : Cfg.t -> Site.t -> Reg.t list
(** The registers the site instruction reads. *)

val within_region : Cfg.t -> Region.t -> seeds:Reg.t list -> result
(** Slice with explicit seeds — used by the inter-procedural analysis
    with the critical arguments of a call. Conservative in the
    keep-recovery direction: all in-region definitions of a register
    contribute. *)

val of_site : Cfg.t -> Region.t -> result
(** Slice of a site within its own region. *)

val critical_params : Cfg.t -> result -> Reg.t list
(** Parameters of the enclosing function on the slice (§4.3). *)
