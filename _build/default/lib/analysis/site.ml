(* Failure-site model (§3.1 of the paper).

   A site is an instruction where one of the four common failure symptoms
   can manifest. Sites carry a stable [site_id] used by the transformation
   and the recovery runtime. *)

open Conair_ir
module Fname = Ident.Fname

type t = {
  site_id : int;
  iid : int;  (** the instruction at which the failure manifests *)
  func : Fname.t;
  kind : Instr.failure_kind;
  detectable : bool;
      (** wrong-output sites without a developer oracle are counted and
          checkpointed but cannot be detected at run time (§6.1.2) *)
  msg : string;
}

let pp ppf s =
  Format.fprintf ppf "site#%d %a at iid=%d in %a%s" s.site_id
    Instr.pp_failure_kind s.kind s.iid Fname.pp s.func
    (if s.detectable then "" else " (undetectable)")

(** What kind of site, if any, is this instruction?

    - [assert]            -> assertion-failure site (Fig 5a)
    - [oracle assert]     -> wrong-output site with oracle (Fig 5b, Fig 9)
    - [output]            -> wrong-output site without oracle
    - [load_idx/store_idx]-> segmentation-fault site (Fig 5c)
    - [lock]              -> deadlock site candidate (Fig 5d) *)
let classify_instr (i : Instr.t) =
  match i.op with
  | Instr.Assert { oracle = false; msg; _ } ->
      Some (Instr.Assert_fail, true, msg)
  | Instr.Assert { oracle = true; msg; _ } ->
      Some (Instr.Wrong_output, true, msg)
  | Instr.Output { fmt; _ } -> Some (Instr.Wrong_output, false, fmt)
  | Instr.Load_idx _ | Instr.Store_idx _ ->
      Some (Instr.Seg_fault, true, "invalid pointer dereference")
  | Instr.Lock _ -> Some (Instr.Deadlock, true, "lock acquisition timed out")
  | Instr.Wait _ -> Some (Instr.Deadlock, true, "event wait timed out")
  | _ -> None
