lib/analysis/prune.mli: Conair_ir Program Site
