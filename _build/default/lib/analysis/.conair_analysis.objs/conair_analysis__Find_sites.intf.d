lib/analysis/find_sites.mli: Conair_ir Program Site
