lib/analysis/plan.ml: Callgraph Cfg Conair_ir Find_sites Format Hashtbl Ident Interproc List Optimize Program Prune Region Site
