lib/analysis/site.mli: Conair_ir Format Ident Instr
