lib/analysis/region.mli: Cfg Conair_ir Format Ident Set Site
