lib/analysis/site.ml: Conair_ir Format Ident Instr
