lib/analysis/optimize.mli: Conair_ir Format Region
