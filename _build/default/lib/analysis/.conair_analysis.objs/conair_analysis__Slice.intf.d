lib/analysis/slice.mli: Cfg Conair_ir Ident Region Site
