lib/analysis/viz.ml: Array Block Buffer Cfg Conair_ir Format Func Ident Instr List Printf Program Region Site String
