lib/analysis/prune.ml: Array Block Conair_ir Ident Instr List Program Site Value
