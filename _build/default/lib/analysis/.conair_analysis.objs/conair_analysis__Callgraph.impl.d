lib/analysis/callgraph.ml: Conair_ir Func Ident Instr Option Program
