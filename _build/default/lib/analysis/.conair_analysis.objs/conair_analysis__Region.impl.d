lib/analysis/region.ml: Array Block Cfg Conair_ir Format Func Ident Instr Int List Set Site
