lib/analysis/callgraph.mli: Conair_ir Ident Instr Program
