lib/analysis/interproc.mli: Callgraph Cfg Conair_ir Ident Optimize Region
