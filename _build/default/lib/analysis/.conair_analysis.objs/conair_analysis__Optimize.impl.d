lib/analysis/optimize.ml: Array Block Cfg Conair_ir Format Func Instr Region Site Slice
