lib/analysis/plan.mli: Conair_ir Format Optimize Program Region Site
