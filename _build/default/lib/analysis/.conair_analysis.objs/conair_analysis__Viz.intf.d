lib/analysis/viz.mli: Conair_ir Func Program Region Site
