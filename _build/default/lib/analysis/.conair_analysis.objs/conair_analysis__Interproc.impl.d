lib/analysis/interproc.ml: Block Callgraph Cfg Conair_ir Func Ident Instr List Optimize Option Region Slice
