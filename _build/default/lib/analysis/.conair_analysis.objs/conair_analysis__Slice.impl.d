lib/analysis/slice.ml: Array Block Cfg Conair_ir Func Hashtbl Ident Instr List Option Region Site
