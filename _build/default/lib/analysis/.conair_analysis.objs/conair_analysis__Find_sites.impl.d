lib/analysis/find_sites.ml: Array Block Conair_ir Format Func Instr List Printf Program Site
