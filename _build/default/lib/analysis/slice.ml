(* Intra-procedural backward slicing restricted to an idempotent region
   (§4.2, Fig 8).

   ConAir's slicing is much simpler than general program slicing: inside a
   reexecution region every write is to a virtual register, so data
   dependence is tracked purely through register def-use chains. When the
   chain reaches a read of a non-register location — a global, the heap, or
   a stack slot — the chain stops there: if the location is shared (global
   or heap) the slice has found a shared read; if it is a stack slot, the
   defining write lies outside any idempotent region, so continuing would
   be useless (Fig 8b). No alias analysis is needed.

   The slice is seeded with the registers the failure site reads plus the
   condition registers of branches crossed inside the region
   (control dependence). *)

open Conair_ir
module Reg = Ident.Reg

type result = {
  shared_read_iids : Region.Iid_set.t;
      (** global/heap reads inside the region that can affect the site *)
  open_regs : Reg.Set.t;
      (** registers on the slice with no defining instruction inside the
          region — if one of them is a parameter of the enclosing function
          it is a "critical parameter" for §4.3 *)
}

let reaches_shared_read r = not (Region.Iid_set.is_empty r.shared_read_iids)

(** Registers a failure site reads — the data-dependence seeds. *)
let site_seed_regs (cfg : Cfg.t) (site : Site.t) =
  match Func.find_instr cfg.func site.iid with
  | None -> []
  | Some (b, i) -> Instr.uses b.Block.instrs.(i).op

(** Compute the slice of [region] seeded by [seeds].

    Conservative in the recoverability direction: a register with several
    in-region definitions contributes all of them ("can affect" semantics),
    so we only declare a site unrecoverable when no shared read can
    possibly influence it. *)
let within_region (cfg : Cfg.t) (region : Region.t) ~(seeds : Reg.t list) =
  (* Index the in-region instructions by the register they define. *)
  let defs : (Reg.t, Instr.t) Hashtbl.t = Hashtbl.create 32 in
  Region.Iid_set.iter
    (fun iid ->
      match Func.find_instr cfg.func iid with
      | None -> ()
      | Some (b, i) ->
          let instr = b.Block.instrs.(i) in
          Option.iter (fun r -> Hashtbl.add defs r instr) (Instr.def instr.op))
    region.region_iids;
  let shared = ref Region.Iid_set.empty in
  let open_regs = ref Reg.Set.empty in
  let seen_regs = ref Reg.Set.empty in
  let seen_iids = ref Region.Iid_set.empty in
  let rec chase = function
    | [] -> ()
    | r :: rest when Reg.Set.mem r !seen_regs -> chase rest
    | r :: rest ->
        seen_regs := Reg.Set.add r !seen_regs;
        let ds = Hashtbl.find_all defs r in
        if ds = [] then open_regs := Reg.Set.add r !open_regs;
        let more =
          List.concat_map
            (fun (d : Instr.t) ->
              if Region.Iid_set.mem d.iid !seen_iids then []
              else begin
                seen_iids := Region.Iid_set.add d.iid !seen_iids;
                if Instr.reads_shared d.op then
                  shared := Region.Iid_set.add d.iid !shared;
                (* Reads of stack slots stop the chain (Fig 8); register
                   uses continue it. *)
                Instr.uses d.op
              end)
            ds
        in
        chase (more @ rest)
  in
  chase (seeds @ region.branch_conds);
  { shared_read_iids = !shared; open_regs = !open_regs }

(** Slice of a failure site within its own region. *)
let of_site (cfg : Cfg.t) (region : Region.t) =
  within_region cfg region ~seeds:(site_seed_regs cfg region.site)

(** Parameters of the enclosing function that are on the slice — the
    critical parameters of §4.3. *)
let critical_params (cfg : Cfg.t) (r : result) =
  List.filter (fun p -> Reg.Set.mem p r.open_regs) cfg.func.params
