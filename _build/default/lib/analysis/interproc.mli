(** Inter-procedural recovery analysis (§4.3).

    A site is selected when (1) every backward path from it reaches its
    function's entrance destroying-op-free, (2) for non-deadlock sites, a
    parameter is on its slice (a critical parameter — the only way a
    caller can affect the outcome), and (3) it is locally unrecoverable.
    The analysis then walks backward in each caller from the call site; a
    caller region helps when a shared read feeds a critical argument
    (non-deadlock) or contains a lock acquisition (deadlock). Clean caller
    paths recurse further up, to [max_depth] levels (paper default 3);
    exhausted budgets or thread roots abandon the attempt, falling back to
    the entry of the site's own function. *)

open Conair_ir
module Fname = Ident.Fname

type outcome = {
  selected : bool;  (** the §4.3 conditions held *)
  success : bool;  (** every caller chain produced usable points *)
  points : Region.point list;
      (** replacement points (inter-procedural on success, the
          entry-of-own-function fallback otherwise) *)
  levels_used : int;
}

val not_selected : outcome

val analyze :
  cfg_of:(Fname.t -> Cfg.t) ->
  graph:Callgraph.t ->
  max_depth:int ->
  Region.t ->
  Optimize.verdict ->
  outcome
(** [analyze ~cfg_of ~graph ~max_depth region local_verdict] — [cfg_of]
    should memoize per-function CFGs. *)
