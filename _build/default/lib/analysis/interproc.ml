(* Inter-procedural recovery analysis (§4.3).

   A site [f] inside function [foo] is selected for inter-procedural
   recovery when all three conditions hold:

   (1) every backward path from [f] reaches the entrance of [foo] without a
       destroying instruction ([Region.reaches_entry_clean]), so an
       inter-procedural rollback is always correct whatever path the failure
       run followed inside [foo];
   (2) for a non-deadlock site, at least one parameter of [foo] is on the
       backward slice of [f] (a "critical parameter") — parameters are the
       only way a caller can affect the outcome at [f], since regions
       contain no shared-variable writes;
   (3) [f] is locally unrecoverable, i.e. the §4.2 optimization would
       otherwise drop it — this is when inter-procedural recovery is needed
       most.

   The analysis then walks backward in each caller starting just before the
   call instruction. If the caller region makes the site recoverable (a
   shared read feeding a critical argument for non-deadlock sites; a lock
   acquisition for deadlock sites), its reexecution points are adopted. If
   the caller path is itself clean back to the caller's entrance, the
   analysis recurses into the callers' callers, up to [max_depth] levels
   (default 3, as in the paper). If the depth budget runs out, or a function
   on the chain is a thread root with no helpful region, the
   inter-procedural attempt for [f] is abandoned and the reexecution point
   falls back to the entrance of [foo]. *)

open Conair_ir
module Fname = Ident.Fname
module Reg = Ident.Reg

type outcome = {
  selected : bool;  (** conditions (1)-(3) held and the analysis ran *)
  success : bool;  (** some caller chain made the site recoverable *)
  points : Region.point list;
      (** replacement reexecution points (inter-procedural on success, the
          entry-of-[foo] fallback otherwise) *)
  levels_used : int;
}

let not_selected =
  { selected = false; success = false; points = []; levels_used = 0 }

(* Map the critical parameters of the callee to the caller registers feeding
   them at a given call edge. Constant arguments contribute nothing; only
   register arguments can carry a shared read. *)
let critical_args (callee : Func.t) (edge : Callgraph.edge)
    (critical : Reg.t list) =
  List.concat
    (List.mapi
       (fun i p ->
         if List.exists (Reg.equal p) critical then
           match List.nth_opt edge.args i with
           | Some (Instr.Reg r) -> [ r ]
           | Some (Instr.Const _) | None -> []
         else [])
       callee.params)

(** Analyze one site for inter-procedural recovery.

    [cfg_of] memoizes per-function CFGs. Returns [not_selected] when the
    §4.3 conditions do not hold. *)
let analyze ~(cfg_of : Fname.t -> Cfg.t) ~(graph : Callgraph.t)
    ~(max_depth : int) (region : Region.t) (local_verdict : Optimize.verdict)
    =
  let site = region.site in
  let foo = site.func in
  let foo_cfg = cfg_of foo in
  let critical =
    match site.kind with
    | Instr.Deadlock -> []
    | Instr.Assert_fail | Instr.Wrong_output | Instr.Seg_fault ->
        Slice.critical_params foo_cfg (Slice.of_site foo_cfg region)
  in
  let needs_critical =
    match site.kind with Instr.Deadlock -> false | _ -> true
  in
  let selected =
    region.reaches_entry_clean
    && local_verdict = Optimize.Unrecoverable
    && ((not needs_critical) || critical <> [])
  in
  if not selected then not_selected
  else begin
    let max_level = ref 0 in
    (* Explore one function level: for every caller of [callee], walk
       backward from the call site; succeed if the caller region helps;
       recurse when the caller path is clean to its own entrance. Returns
       [Some points] when every caller chain succeeds, [None] otherwise
       (the paper then abandons the attempt for this site). *)
    let rec explore callee_name (critical : Reg.t list) depth :
        Region.point list option =
      if depth > !max_level then max_level := depth;
      if Callgraph.is_thread_root graph callee_name then None
      else if depth > max_depth then None
      else
        let callee =
          (cfg_of callee_name).func
        in
        let edges = Callgraph.callers_of graph callee_name in
        if edges = [] then None
        else
          let results =
            List.map
              (fun (edge : Callgraph.edge) ->
                let caller_cfg = cfg_of edge.caller in
                match Func.find_instr caller_cfg.func edge.call_iid with
                | None -> None
                | Some (b, idx) ->
                    let points, region_iids, _boundary, conds, clean =
                      Region.walk caller_cfg ~label:b.Block.label ~idx
                    in
                    let caller_region =
                      {
                        Region.site;
                        points;
                        region_iids;
                        boundary_iids = Region.Iid_set.empty;
                        branch_conds = conds;
                        reaches_entry_clean = clean;
                      }
                    in
                    let seeds = critical_args callee edge critical in
                    let helps =
                      match site.kind with
                      | Instr.Deadlock ->
                          Region.contains_lock_acquisition caller_cfg
                            caller_region
                      | _ ->
                          seeds <> []
                          && Slice.reaches_shared_read
                               (Slice.within_region caller_cfg caller_region
                                  ~seeds)
                    in
                    if helps then Some points
                    else if clean then
                      (* Push further up: the new critical parameters are
                         the caller's own parameters on the argument
                         slice. *)
                      let slice =
                        Slice.within_region caller_cfg caller_region ~seeds
                      in
                      let caller_critical =
                        match site.kind with
                        | Instr.Deadlock -> []
                        | _ -> Slice.critical_params caller_cfg slice
                      in
                      if needs_critical && caller_critical = [] then None
                      else explore edge.caller caller_critical (depth + 1)
                    else None)
              edges
          in
          if List.for_all Option.is_some results then
            Some
              (List.concat_map (function Some p -> p | None -> []) results)
          else None
    in
    match explore foo critical 1 with
    | Some points ->
        let points =
          List.fold_left
            (fun acc p ->
              if List.exists (Region.point_equal p) acc then acc
              else p :: acc)
            [] points
          |> List.rev
        in
        { selected = true; success = true; points; levels_used = !max_level }
    | None ->
        (* Fallback: give up inter-procedural recovery, put the point back
           at the entrance of [foo] (§4.3 "other issues"). *)
        {
          selected = true;
          success = false;
          points = [ Region.Entry foo ];
          levels_used = !max_level;
        }
  end
