(** Statically-safe-site pruning (a §3.4 extension): drop failure sites
    that provably cannot fail — constant-indexed dereferences of fresh,
    unescaped, constant-size allocations, and constant-true asserts. Off
    by default (see {!Plan.options.prune_safe}). *)

open Conair_ir

val provably_safe : Program.t -> Site.t -> bool

val filter_sites : Program.t -> Site.t list -> Site.t list * int
(** The surviving sites and the number pruned. *)
