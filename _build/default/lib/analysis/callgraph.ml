(* Call graph: who calls (or spawns) whom, and at which instruction.

   Spawn edges are kept distinct from call edges: rolling a failing thread
   back across its own creation is impossible, so the inter-procedural
   analysis must stop at thread-root functions. *)

open Conair_ir
module Fname = Ident.Fname

type edge = {
  caller : Fname.t;
  call_iid : int;  (** the [Call] instruction in the caller *)
  args : Instr.operand list;
}

type t = {
  callers : edge list Fname.Map.t;  (** callee -> call edges *)
  spawned : Fname.Set.t;  (** functions used as thread roots *)
  main : Fname.t;
}

let of_program (p : Program.t) =
  let callers = ref Fname.Map.empty in
  let spawned = ref Fname.Set.empty in
  let add_edge callee e =
    let cur = Option.value ~default:[] (Fname.Map.find_opt callee !callers) in
    callers := Fname.Map.add callee (e :: cur) !callers
  in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ i ->
          match i.op with
          | Instr.Call (_, callee, args) ->
              add_edge callee { caller = f.name; call_iid = i.iid; args }
          | Instr.Spawn (_, callee, _) ->
              spawned := Fname.Set.add callee !spawned
          | _ -> ()));
  { callers = !callers; spawned = !spawned; main = p.main }

let callers_of g f = Option.value ~default:[] (Fname.Map.find_opt f g.callers)

(** A thread-root function starts a thread's stack: rolling back past its
    entrance is impossible. *)
let is_thread_root g f = Fname.Set.mem f g.spawned || Fname.equal f g.main
