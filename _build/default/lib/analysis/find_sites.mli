(** Failure-site identification (§3.1): survival mode scans the program
    for all potential sites; fix mode takes the instruction ids the user
    observed failing. Neither needs to be sound or complete — unhelpful
    sites only cost a little overhead, which the optimization removes. *)

open Conair_ir

val survival : Program.t -> Site.t list
(** Every assert, output, heap dereference and lock acquisition, with
    sequential site ids. *)

val fix : Program.t -> iids:int list -> (Site.t list, string) result
(** The designated instructions; rejects unknown ids and instructions
    that cannot fail. *)

(** The per-kind site counts — one row of Table 4. *)
type census = {
  assertion : int;
  wrong_output : int;
  seg_fault : int;
  deadlock : int;
}

val total : census -> int
val census : Site.t list -> census
