(* Unnecessary-rollback removal (§4.2).

   A failure site that is statically proven unrecoverable gets no recovery
   code, and reexecution points that no longer serve any site are dropped:

   - a deadlock site is unrecoverable unless at least one of its
     reexecution regions contains another lock acquisition (Fig 7a/7b) —
     otherwise no lock is released at the failure site and the other
     threads in the deadlock can never make progress;

   - a non-deadlock site is unrecoverable unless its backward slice reaches
     at least one global/heap read inside a reexecution region (Fig 7c/7d)
     — otherwise reexecution is guaranteed to evaluate the same failing
     outcome again. *)

open Conair_ir

type verdict = Recoverable | Unrecoverable

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
    | Recoverable -> "recoverable"
    | Unrecoverable -> "unrecoverable")

(* Is the site instruction an event wait? Lost-wakeup hangs recover by
   re-checking shared state, not by releasing a lock, so they are judged
   with the shared-read rule even though their symptom (and site kind) is
   a hang. *)
let is_wait_site (cfg : Cfg.t) (site : Site.t) =
  match Func.find_instr cfg.func site.iid with
  | Some (b, i) -> (
      match b.Block.instrs.(i).op with
      | Instr.Wait _ | Instr.Timed_wait _ -> true
      | _ -> false)
  | None -> false

(** Judge a site from its region (and slice, for non-deadlock sites). *)
let judge (cfg : Cfg.t) (region : Region.t) =
  match region.site.kind with
  | Instr.Deadlock when not (is_wait_site cfg region.site) ->
      if Region.contains_lock_acquisition cfg region then Recoverable
      else Unrecoverable
  | Instr.Deadlock | Instr.Assert_fail | Instr.Wrong_output | Instr.Seg_fault
    ->
      if Slice.reaches_shared_read (Slice.of_site cfg region) then Recoverable
      else Unrecoverable
