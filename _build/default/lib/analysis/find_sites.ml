(* Failure-site identification (§3.1).

   Survival mode scans the whole program for the four symptom classes;
   fix mode takes the instruction ids the user observed failing. Neither
   mode needs to be sound or complete — unrecoverable sites only cost a
   little overhead, which the §4.2 optimization then removes. *)

open Conair_ir

(** Survival mode: every assert, output, pointer dereference and lock
    acquisition is a potential failure site (§3.1.1). *)
let survival (p : Program.t) : Site.t list =
  let next = ref 0 in
  let sites = ref [] in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ i ->
          match Site.classify_instr i with
          | None -> ()
          | Some (kind, detectable, msg) ->
              let site_id = !next in
              incr next;
              sites :=
                { Site.site_id; iid = i.iid; func = f.name; kind; detectable; msg }
                :: !sites));
  List.rev !sites

(** Fix mode: the user names the failing instructions (§3.1.2); kinds are
    inferred from the instruction. Unknown or non-site iids are rejected. *)
let fix (p : Program.t) ~(iids : int list) : (Site.t list, string) result =
  let rec go acc site_id = function
    | [] -> Ok (List.rev acc)
    | iid :: rest -> (
        match Program.find_instr p iid with
        | None -> Error (Printf.sprintf "fix mode: no instruction with id %d" iid)
        | Some (f, b, i) -> (
            let instr = b.Block.instrs.(i) in
            match Site.classify_instr instr with
            | None ->
                Error
                  (Format.asprintf
                     "fix mode: instruction %d (%a) is not a failure site"
                     iid Instr.pp_op instr.op)
            | Some (kind, detectable, msg) ->
                go
                  ({ Site.site_id; iid; func = f.Func.name; kind; detectable; msg }
                  :: acc)
                  (site_id + 1) rest))
  in
  go [] 0 iids

(** Site census per failure kind — the rows of Table 4. *)
type census = {
  assertion : int;
  wrong_output : int;
  seg_fault : int;
  deadlock : int;
}

let total c = c.assertion + c.wrong_output + c.seg_fault + c.deadlock

let census sites =
  List.fold_left
    (fun c (s : Site.t) ->
      match s.kind with
      | Instr.Assert_fail -> { c with assertion = c.assertion + 1 }
      | Instr.Wrong_output -> { c with wrong_output = c.wrong_output + 1 }
      | Instr.Seg_fault -> { c with seg_fault = c.seg_fault + 1 }
      | Instr.Deadlock -> { c with deadlock = c.deadlock + 1 })
    { assertion = 0; wrong_output = 0; seg_fault = 0; deadlock = 0 }
    sites
