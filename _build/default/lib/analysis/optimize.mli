(** Unnecessary-rollback removal (§4.2): a deadlock site is unrecoverable
    unless a region of it contains another lock acquisition (nothing would
    be released, Fig 7a/7b); a non-deadlock site is unrecoverable unless
    its slice reaches a shared read inside a region (reexecution would be
    deterministic, Fig 7c/7d). Unrecoverable sites get no recovery code
    and their orphaned reexecution points are dropped. *)

type verdict = Recoverable | Unrecoverable

val pp_verdict : Format.formatter -> verdict -> unit
val judge : Conair_ir.Cfg.t -> Region.t -> verdict
