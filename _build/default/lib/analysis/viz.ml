(* Graphviz (DOT) export: render a function's CFG with a site's idempotent
   region highlighted — the picture the paper draws by hand in its
   figures. Reexecution points are marked on the edge after the
   destroying instruction (or at the function entry); region instructions
   are shaded; the failure site is the red node. *)

open Conair_ir
module Label = Ident.Label

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let instr_line ~(region : Region.t option) (i : Instr.t) =
  let text = escape (Format.asprintf "%a" Instr.pp_op i.op) in
  let mark =
    match region with
    | Some r when r.site.iid = i.iid -> "(X) "  (* the failure site *)
    | Some r when Region.Iid_set.mem i.iid r.region_iids -> "[*] "
    | Some r when Region.Iid_set.mem i.iid r.boundary_iids -> "--- "
    | Some r
      when List.exists
             (Region.point_equal (Region.After i.iid))
             r.points ->
        "--- "
    | _ -> ""
  in
  Printf.sprintf "%s%d: %s\\l" mark i.iid text

(** Render [func] as a DOT digraph; when [region] is given, its
    instructions are annotated: [(X)] the failure site, [[*]] inside the
    idempotent region, [---] a region boundary, and blocks holding a
    reexecution point get a bold border. *)
let func_to_dot ?region (f : Func.t) =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph \"%s\" {\n" (escape (Ident.Fname.name f.name));
  add "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  let has_point_in (b : Block.t) =
    match region with
    | None -> false
    | Some (r : Region.t) ->
        List.exists
          (function
            | Region.Entry g ->
                Ident.Fname.equal g f.name && Label.equal b.label f.entry
            | Region.After iid ->
                Array.exists (fun (i : Instr.t) -> i.iid = iid) b.instrs)
          r.points
  in
  let has_site (b : Block.t) =
    match region with
    | None -> false
    | Some r -> Array.exists (fun (i : Instr.t) -> i.iid = r.site.iid) b.instrs
  in
  List.iter
    (fun (b : Block.t) ->
      let body =
        Array.to_list b.instrs
        |> List.map (instr_line ~region)
        |> String.concat ""
      in
      let style =
        if has_site b then ", color=red, penwidth=2"
        else if has_point_in b then ", penwidth=2"
        else ""
      in
      add "  \"%s\" [label=\"%s:\\l%s%s\\l\"%s];\n"
        (escape (Label.name b.label))
        (escape (Label.name b.label))
        body
        (escape (Format.asprintf "%a" Instr.pp_terminator b.term))
        style)
    f.blocks;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun succ ->
          add "  \"%s\" -> \"%s\";\n"
            (escape (Label.name b.label))
            (escape (Label.name succ)))
        (Block.successors b))
    f.blocks;
  add "}\n";
  Buffer.contents buf

(** DOT for a failure site: look the site up, compute its region, render
    its function. *)
let site_to_dot (p : Program.t) (site : Site.t) =
  let f = Program.func_exn p site.func in
  let region = Region.of_site (Cfg.of_func f) site in
  func_to_dot ~region f
