(** The failure-site model (§3.1): an instruction where one of the four
    common failure symptoms can manifest. *)

open Conair_ir
module Fname = Ident.Fname

type t = {
  site_id : int;  (** stable id used by the transformation and runtime *)
  iid : int;  (** the instruction at which the failure manifests *)
  func : Fname.t;
  kind : Instr.failure_kind;
  detectable : bool;
      (** wrong-output sites without a developer oracle are counted and
          checkpointed but cannot be detected at run time (§6.1.2) *)
  msg : string;
}

val pp : Format.formatter -> t -> unit

val classify_instr : Instr.t -> (Instr.failure_kind * bool * string) option
(** What kind of site, if any, is this instruction? Returns
    [(kind, detectable, message)]:
    asserts are assertion sites, oracle asserts and outputs are
    wrong-output sites (outputs undetectable without an oracle), heap
    dereferences are segfault sites, lock acquisitions and event waits are
    deadlock/hang candidates. *)
