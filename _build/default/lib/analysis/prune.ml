(* Statically-safe-site pruning (§3.4 "Future work can extend ConAir by
   extending its failure-site identification. Some potential failure sites
   could be pruned, if we can statically prove that failures can never
   occur there").

   Two cheap, sound proofs are implemented:

   - a dereference [p[k]] with constant [k] is safe when [p] is defined by
     an [Alloc] of a constant size [n > k] *in the same block*, with no
     redefinition of [p], no [Free], and no escape of [p] (store or call)
     in between — an unescaped fresh block cannot be freed by another
     thread;

   - an [Assert]/[oracle] on a constant-true condition can never fire.

   Pruned sites get no recovery code and no reexecution points, reducing
   static footprint and overhead; `bench/main.exe` does not enable this by
   default (the paper's prototype did not either), but the ablation tests
   exercise it. *)

open Conair_ir
module Reg = Ident.Reg

(* Does operand [o] mention register [r]? *)
let mentions r = function
  | Instr.Reg r' -> Reg.equal r r'
  | Instr.Const _ -> false

(* Scan backwards inside the block from index [idx-1], looking for the
   definition of [pr]. Abort (return false) on anything that could
   invalidate the proof. *)
let provably_safe_deref (b : Block.t) ~idx ~(pr : Reg.t) ~(k : int) =
  let rec scan i =
    if i < 0 then false
    else
      let instr = b.instrs.(i) in
      match instr.op with
      | Instr.Alloc (r, Instr.Const (Value.Int n)) when Reg.equal r pr ->
          k >= 0 && k < n
      | Instr.Free _ -> false (* any free in between spoils liveness *)
      | Instr.Call _ | Instr.Spawn _ ->
          false (* the pointer could escape or the callee could free *)
      | Instr.Store (_, a) when mentions pr a -> false (* escapes *)
      | Instr.Store_idx (_, _, v) when mentions pr v ->
          false (* the pointer itself escapes into the heap; writing
                   *through* it is harmless for this proof *)
      | op when Instr.def op = Some pr -> false (* redefined by something else *)
      | _ -> scan (i - 1)
  in
  scan (idx - 1)

(** Can this site provably never fail? *)
let provably_safe (p : Program.t) (site : Site.t) =
  match Program.find_instr p site.iid with
  | None -> false
  | Some (_, b, idx) -> (
      match b.instrs.(idx).op with
      | Instr.Assert { cond = Instr.Const v; _ } -> Value.is_true v
      | Instr.Load_idx (_, Instr.Reg pr, Instr.Const (Value.Int k))
      | Instr.Store_idx (Instr.Reg pr, Instr.Const (Value.Int k), _) ->
          provably_safe_deref b ~idx ~pr ~k
      | _ -> false)

(** Drop the provably-safe sites; returns the survivors and the number
    pruned. *)
let filter_sites (p : Program.t) (sites : Site.t list) =
  let keep, dropped = List.partition (fun s -> not (provably_safe p s)) sites in
  (keep, List.length dropped)
