(* Per-thread interpreter state: the call stack, the ConAir checkpoint slot
   (the thread-local jmp_buf of Fig 6 — only the *most recent* reexecution
   point is kept), retry counters, and the resource-acquisition log used by
   the §4.1 compensation. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label

type frame = {
  func : Func.t;
  mutable block : Block.t;
  mutable idx : int;  (** next instruction index; [= length] means terminator *)
  mutable regs : Value.t Reg.Map.t;
  stack_vars : (string, Value.t) Hashtbl.t;
  ret_reg : Reg.t option;  (** where the caller wants the return value *)
}

(** The saved register image + program point (setjmp analogue). Resumption
    happens *after* the [Checkpoint] instruction, like returning from
    [setjmp] via [longjmp]: the region counter is not incremented again, so
    resources re-acquired during the retry keep the same region tag. *)
type checkpoint = {
  ck_depth : int;  (** call-stack depth at save time *)
  ck_block : Label.t;
  ck_idx : int;  (** resume index (just past the checkpoint) *)
  ck_regs : Value.t Reg.Map.t;
  ck_counter : int;
  ck_step : int;  (** when it was taken, for the rollback-safety verifier *)
}

type status =
  | Runnable
  | Sleeping of int  (** until this step *)
  | Blocked_lock of { name : string; since : int; timeout : int option }
  | Blocked_event of { name : string; since : int; timeout : int option }
  | Blocked_join of int
  | Done
  | Failed

(** A resource acquired inside the current reexecution region, to be
    released if the region rolls back (§4.1). *)
type resource = R_lock of string | R_block of int

type recovering = { rec_site : int; rec_start : int; rec_retries_before : int }

type t = {
  tid : int;
  mutable stack : frame list;  (** top of stack first *)
  mutable status : status;
  mutable checkpoint : checkpoint option;
  mutable region_counter : int;
  retries : (int, int) Hashtbl.t;  (** site_id -> rollbacks so far *)
  mutable acq_log : (resource * int) list;  (** resource, region tag *)
  mutable last_destroy_step : int;
  mutable recovering : recovering option;
}

let make_frame (func : Func.t) ~args ~ret_reg =
  if List.length func.params <> List.length args then
    invalid_arg
      (Format.asprintf "call to %a: arity mismatch" Ident.Fname.pp func.name);
  let regs =
    List.fold_left2
      (fun m p a -> Reg.Map.add p a m)
      Reg.Map.empty func.params args
  in
  {
    func;
    block = Func.block_exn func func.entry;
    idx = 0;
    regs;
    stack_vars = Hashtbl.create 8;
    ret_reg;
  }

let create ~tid (func : Func.t) ~args =
  {
    tid;
    stack = [ make_frame func ~args ~ret_reg:None ];
    status = Runnable;
    checkpoint = None;
    region_counter = 0;
    retries = Hashtbl.create 4;
    acq_log = [];
    last_destroy_step = -1;
    recovering = None;
  }

let top t =
  match t.stack with
  | f :: _ -> f
  | [] -> invalid_arg "Thread.top: empty stack"

let depth t = List.length t.stack

let retries_of t site =
  Option.value ~default:0 (Hashtbl.find_opt t.retries site)

let bump_retries t site = Hashtbl.replace t.retries site (retries_of t site + 1)

(** Log an acquisition under the current region tag, lazily dropping
    entries from older regions (the paper cleans the vector when the
    counter moves on). *)
let log_acquisition t r =
  let keep =
    List.filter (fun (_, tag) -> tag = t.region_counter) t.acq_log
  in
  t.acq_log <- (r, t.region_counter) :: keep

(** Resources acquired in the current region, and the log without them. *)
let current_region_acquisitions t =
  List.partition (fun (_, tag) -> tag = t.region_counter) t.acq_log

let is_live t =
  match t.status with
  | Done | Failed -> false
  | Runnable | Sleeping _ | Blocked_lock _ | Blocked_event _ | Blocked_join _
    ->
      true
