(* The result of running a Mir program to completion (or not). *)

open Conair_ir

type failure = {
  kind : Instr.failure_kind;
  site_id : int option;  (** known when a hardened site fail-stopped *)
  iid : int option;
      (** the instruction at which the failure manifested — what a user
          reports to fix mode (§3.1.2) *)
  tid : int;
  step : int;
  msg : string;
}

type t =
  | Success
  | Failed of failure
  | Hang of { step : int; blocked : int list }
      (** every live thread is blocked forever — the symptom of an
          unrecovered deadlock *)
  | Fuel_exhausted of int

let is_success = function
  | Success -> true
  | Failed _ | Hang _ | Fuel_exhausted _ -> false

let pp ppf = function
  | Success -> Format.fprintf ppf "success"
  | Failed f ->
      Format.fprintf ppf "failed: %a (tid=%d step=%d%s%s): %s"
        Instr.pp_failure_kind f.kind f.tid f.step
        (match f.site_id with
        | Some s -> Printf.sprintf " site=%d" s
        | None -> "")
        (match f.iid with
        | Some i -> Printf.sprintf " at instruction %d" i
        | None -> "")
        f.msg
  | Hang { step; blocked } ->
      Format.fprintf ppf "hang at step %d (blocked threads: %a)" step
        Format.(
          pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_print_int)
        blocked
  | Fuel_exhausted n -> Format.fprintf ppf "fuel exhausted after %d steps" n

let to_string o = Format.asprintf "%a" pp o
