(** The result of running a Mir program. *)

open Conair_ir

type failure = {
  kind : Instr.failure_kind;
  site_id : int option;  (** known when a hardened site fail-stopped *)
  iid : int option;
      (** the instruction at which the failure manifested — what a user
          reports to fix mode (§3.1.2) *)
  tid : int;
  step : int;
  msg : string;
}

type t =
  | Success
  | Failed of failure
  | Hang of { step : int; blocked : int list }
      (** every live thread is blocked forever — an unrecovered deadlock *)
  | Fuel_exhausted of int

val is_success : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
