(* The shared heap: a table of blocks with explicit liveness, so that
   use-after-free and out-of-bounds accesses fault exactly like the
   segmentation faults the paper's sites guard against. *)

open Conair_ir

type block = { cells : Value.t array; mutable live : bool }
type t = { blocks : (int, block) Hashtbl.t; mutable next : int }

let create () = { blocks = Hashtbl.create 64; next = 0 }

let alloc t n =
  if n < 0 then invalid_arg "Heap.alloc: negative size";
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.blocks id { cells = Array.make n Value.zero; live = true };
  { Value.block = id; offset = 0 }

let find t id = Hashtbl.find_opt t.blocks id

(** Is dereferencing [v] at extra offset [idx] valid? *)
let valid t (v : Value.t) idx =
  match v with
  | Value.Ptr { block; offset } -> (
      match find t block with
      | Some b -> b.live && offset + idx >= 0 && offset + idx < Array.length b.cells
      | None -> false)
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null | Value.Mutex _
  | Value.Tid _ ->
      false

let load t (v : Value.t) idx =
  match v with
  | Value.Ptr { block; offset } -> (
      match find t block with
      | Some b when b.live && offset + idx >= 0 && offset + idx < Array.length b.cells
        ->
          Ok b.cells.(offset + idx)
      | Some { live = false; _ } -> Error "use after free"
      | Some _ -> Error "pointer dereference out of bounds"
      | None -> Error "dangling pointer")
  | Value.Null -> Error "null pointer dereference"
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Mutex _ | Value.Tid _ ->
      Error "dereference of a non-pointer value"

let store t (v : Value.t) idx x =
  match v with
  | Value.Ptr { block; offset } -> (
      match find t block with
      | Some b when b.live && offset + idx >= 0 && offset + idx < Array.length b.cells
        ->
          b.cells.(offset + idx) <- x;
          Ok ()
      | Some { live = false; _ } -> Error "use after free"
      | Some _ -> Error "pointer store out of bounds"
      | None -> Error "dangling pointer")
  | Value.Null -> Error "null pointer store"
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Mutex _ | Value.Tid _ ->
      Error "store through a non-pointer value"

(** Free the block behind [v]; only a pointer to offset 0 of a live block
    may be freed, as in C. *)
let free t (v : Value.t) =
  match v with
  | Value.Ptr { block; offset = 0 } -> (
      match find t block with
      | Some b when b.live ->
          b.live <- false;
          Ok ()
      | Some _ -> Error "double free"
      | None -> Error "free of dangling pointer")
  | Value.Ptr _ -> Error "free of an interior pointer"
  | Value.Null -> Error "free of null"
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Mutex _ | Value.Tid _ ->
      Error "free of a non-pointer value"

(** Mark dead without the offset-0 restriction — used by the recovery
    runtime's compensation (it recorded the allocation itself). *)
let release_block t id =
  match find t id with
  | Some b when b.live ->
      b.live <- false;
      true
  | Some _ | None -> false

let live_blocks t =
  Hashtbl.fold (fun _ b n -> if b.live then n + 1 else n) t.blocks 0

(* Deep copy, for the whole-program-checkpoint baseline. *)
let snapshot t =
  let blocks = Hashtbl.create (Hashtbl.length t.blocks) in
  Hashtbl.iter
    (fun id b ->
      Hashtbl.replace blocks id { cells = Array.copy b.cells; live = b.live })
    t.blocks;
  { blocks; next = t.next }

(* Low-level accessors for Machine.restore. *)
let blocks_table t = t.blocks
let set_next t n = t.next <- n
let next_id t = t.next
