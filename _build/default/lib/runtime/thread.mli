(** Per-thread interpreter state: the call stack, the single checkpoint
    slot (the thread-local jmp_buf of Fig 6 — only the most recent
    reexecution point is kept), per-site retry counters, and the
    resource-acquisition log behind the §4.1 compensation. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label

type frame = {
  func : Func.t;
  mutable block : Block.t;
  mutable idx : int;  (** next instruction; [= length] means terminator *)
  mutable regs : Value.t Reg.Map.t;
  stack_vars : (string, Value.t) Hashtbl.t;
  ret_reg : Reg.t option;  (** where the caller wants the return value *)
}

(** The saved register image + program point. Resumption happens after
    the [Checkpoint] instruction (like returning from [setjmp] via
    [longjmp]); the region counter is not re-incremented, so resources
    re-acquired during a retry keep their region tag. *)
type checkpoint = {
  ck_depth : int;  (** call-stack depth at save time *)
  ck_block : Label.t;
  ck_idx : int;
  ck_regs : Value.t Reg.Map.t;
  ck_counter : int;
  ck_step : int;  (** when taken, for the rollback-safety verifier *)
}

type status =
  | Runnable
  | Sleeping of int  (** until this step *)
  | Blocked_lock of { name : string; since : int; timeout : int option }
  | Blocked_event of { name : string; since : int; timeout : int option }
  | Blocked_join of int
  | Done
  | Failed

(** A resource acquired inside the current reexecution region, to release
    if it rolls back (§4.1). *)
type resource = R_lock of string | R_block of int

type recovering = { rec_site : int; rec_start : int; rec_retries_before : int }

type t = {
  tid : int;
  mutable stack : frame list;  (** top first *)
  mutable status : status;
  mutable checkpoint : checkpoint option;
  mutable region_counter : int;
  retries : (int, int) Hashtbl.t;  (** site_id → rollbacks so far *)
  mutable acq_log : (resource * int) list;  (** resource, region tag *)
  mutable last_destroy_step : int;
  mutable recovering : recovering option;
}

val make_frame : Func.t -> args:Value.t list -> ret_reg:Reg.t option -> frame
(** @raise Invalid_argument on an arity mismatch. *)

val create : tid:int -> Func.t -> args:Value.t list -> t

val top : t -> frame
(** @raise Invalid_argument on an empty stack. *)

val depth : t -> int
val retries_of : t -> int -> int
val bump_retries : t -> int -> unit

val log_acquisition : t -> resource -> unit
(** Log under the current region tag, lazily dropping entries from older
    regions. *)

val current_region_acquisitions :
  t -> (resource * int) list * (resource * int) list
(** Partition the log into (current region, the rest). *)

val is_live : t -> bool
