(* Scheduling policy: which eligible thread runs the next instruction.

   Determinism matters more than realism here — the paper forces buggy
   interleavings with injected sleeps, and so do the benchmarks; given the
   same policy and seed, a run is exactly reproducible. *)

type policy =
  | Round_robin  (** strict rotation among eligible threads *)
  | Random of int  (** uniform choice, seeded *)

type t = { policy : policy; rng : Random.State.t; mutable cursor : int }

let create policy =
  let seed = match policy with Round_robin -> 0 | Random s -> s in
  { policy; rng = Random.State.make [| seed |]; cursor = 0 }

(** Pick one of [eligible] (a non-empty list of thread ids). *)
let choose t eligible =
  match eligible with
  | [] -> invalid_arg "Sched.choose: no eligible thread"
  | [ tid ] -> tid
  | _ -> (
      match t.policy with
      | Round_robin ->
          (* The first eligible tid strictly greater than the last scheduled
             one, wrapping around: a fair rotation even as threads come and
             go. *)
          let next =
            match List.find_opt (fun tid -> tid > t.cursor) eligible with
            | Some tid -> tid
            | None -> List.hd eligible
          in
          t.cursor <- next;
          next
      | Random _ ->
          List.nth eligible (Random.State.int t.rng (List.length eligible)))

(** The runtime's randomness source (deadlock-recovery backoff). *)
let rng t = t.rng
