(* The Mir interpreter with the ConAir recovery runtime built in.

   One scheduler step executes one instruction (or terminator) of one
   thread. The recovery pseudo-instructions inserted by the transformation
   are interpreted here:

   - [Checkpoint]: bump the region counter and save the register image +
     program point into the thread's single checkpoint slot;
   - [Try_recover]: if a checkpoint exists and the per-site retry budget is
     not exhausted, compensate (release locks / free blocks acquired in the
     current region, §4.1), verify the rollback-safety invariant if asked,
     restore the register image and jump back — otherwise fall through to
     the [Fail_stop];
   - [Timed_lock]: block with a timeout measured in scheduler steps and
     report success/timeout in a register.

   Unhardened programs fail exactly where hardened ones would recover:
   asserts stop the program, invalid dereferences are segmentation faults,
   and a configuration where every live thread is blocked is a hang. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

(** How a deadlock is noticed at a hardened lock site (§3.1.1: "ConAir
    can work with any deadlock-detection mechanism"). [Timeout_based] is
    the paper's prototype (MySQL-style lock timeouts); [Wait_graph]
    follows the owner chain of the contended lock and reports a deadlock
    the moment a cycle closes (Jula et al.-style), so recovery starts
    immediately instead of after the timeout. *)
type deadlock_detection = Timeout_based | Wait_graph

type config = {
  policy : Sched.policy;
  fuel : int;  (** scheduler-step budget before giving up *)
  max_retries : int;  (** paper default: one million *)
  deadlock_detection : deadlock_detection;
  deadlock_backoff : int;
      (** max random sleep after a deadlock rollback (livelock avoidance) *)
  verify_rollbacks : bool;
      (** check at every rollback that no destroying instruction executed
          since the checkpoint (the static analysis' safety invariant) *)
  perturb_timing : bool;
      (** randomize [Sleep] durations (in [0..n]) and stagger thread
          startup — the Rx-style "environment change during reexecution"
          baselines rely on; never used by ConAir itself *)
  spawn_jitter : int;
      (** max random startup delay for spawned threads when
          [perturb_timing] is on (a restarted process never reproduces the
          original thread-creation timing) *)
  profile_sites : bool;
      (** record per-instruction execution counts (ConSeq-style
          well-tested-site profiling, §3.4); off by default *)
}

let default_config =
  {
    policy = Sched.Round_robin;
    fuel = 2_000_000;
    max_retries = 1_000_000;
    deadlock_detection = Timeout_based;
    deadlock_backoff = 16;
    verify_rollbacks = true;
    perturb_timing = false;
    spawn_jitter = 150;
    profile_sites = false;
  }

(** Metadata from the hardening pass: fail-arm labels per site, used to
    detect that a recovering thread has finally passed its failure site. *)
type meta = { fail_blocks : (Label.t * int) list }

let meta_of_harden (h : Conair_transform.Harden.t) =
  { fail_blocks = h.site_fail_blocks }

exception Fault of string
(** Internal: an unrecovered runtime fault of the current thread. *)

type t = {
  prog : Program.t;
  config : config;
  meta : meta option;
  globals : (string, Value.t) Hashtbl.t;
  heap : Heap.t;
  locks : Locks.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_tid : int;
  mutable step : int;
  mutable outputs : string list;  (** newest first *)
  stats : Stats.t;
  sched : Sched.t;
  mutable outcome : Outcome.t option;
  mutable trace : Trace.sink option;
}

let create ?(config = default_config) ?meta (prog : Program.t) =
  let globals = Hashtbl.create 32 in
  List.iter (fun (g, v) -> Hashtbl.replace globals g v) prog.globals;
  let m =
    {
      prog;
      config;
      meta;
      globals;
      heap = Heap.create ();
      locks = Locks.create prog.mutexes;
      threads = Hashtbl.create 8;
      next_tid = 0;
      step = 0;
      outputs = [];
      stats = Stats.create ();
      sched = Sched.create config.policy;
      outcome = None;
      trace = None;
    }
  in
  let main = Program.func_exn prog prog.main in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  Hashtbl.replace m.threads tid (Thread.create ~tid main ~args:[]);
  m

let outputs m = List.rev m.outputs
let stats m = m.stats

(** Install a trace sink; subsequent execution reports typed events. *)
let set_trace m sink = m.trace <- Some sink

let trace m ev =
  match m.trace with None -> () | Some sink -> Trace.record sink ev

let thread m tid = Hashtbl.find m.threads tid

let live_threads m =
  Hashtbl.fold (fun tid th acc -> if Thread.is_live th then tid :: acc else acc)
    m.threads []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Evaluation helpers                                                  *)
(* ------------------------------------------------------------------ *)

let eval_reg (fr : Thread.frame) r =
  match Reg.Map.find_opt r fr.regs with
  | Some v -> v
  | None ->
      raise (Fault (Format.asprintf "use of undefined register %a" Reg.pp r))

let eval (fr : Thread.frame) = function
  | Instr.Reg r -> eval_reg fr r
  | Instr.Const v -> v

let as_int = function
  | Value.Int n -> n
  | Value.Bool true -> 1
  | Value.Bool false -> 0
  | v -> raise (Fault ("expected an integer, got " ^ Value.to_string v))

let as_mutex = function
  | Value.Mutex name -> name
  | v -> raise (Fault ("expected a mutex, got " ^ Value.to_string v))

let eval_binop op a b =
  let module I = Instr in
  match op with
  | I.Add -> Value.Int (as_int a + as_int b)
  | I.Sub -> Value.Int (as_int a - as_int b)
  | I.Mul -> Value.Int (as_int a * as_int b)
  | I.Div ->
      let d = as_int b in
      if d = 0 then raise (Fault "division by zero") else Value.Int (as_int a / d)
  | I.Mod ->
      let d = as_int b in
      if d = 0 then raise (Fault "modulo by zero") else Value.Int (as_int a mod d)
  | I.Eq -> Value.Bool (Value.equal a b)
  | I.Ne -> Value.Bool (not (Value.equal a b))
  | I.Lt -> Value.Bool (as_int a < as_int b)
  | I.Le -> Value.Bool (as_int a <= as_int b)
  | I.Gt -> Value.Bool (as_int a > as_int b)
  | I.Ge -> Value.Bool (as_int a >= as_int b)
  | I.And -> Value.Bool (Value.is_true a && Value.is_true b)
  | I.Or -> Value.Bool (Value.is_true a || Value.is_true b)

let eval_unop op a =
  match op with
  | Instr.Not -> Value.Bool (not (Value.is_true a))
  | Instr.Neg -> Value.Int (-as_int a)
  | Instr.Is_null -> Value.Bool (match a with Value.Null -> true | _ -> false)

(* Render an output: each "%v" placeholder consumes one argument. *)
let render_output fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let i = ref 0 in
  let n = String.length fmt in
  while !i < n do
    if !i + 1 < n && fmt.[!i] = '%' && fmt.[!i + 1] = 'v' then begin
      (match !args with
      | a :: rest ->
          Buffer.add_string buf (Value.to_string a);
          args := rest
      | [] -> Buffer.add_string buf "%v");
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Failure bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let set_failure m ~kind ~site_id ~iid ~tid ~msg =
  (match (thread m tid).status with
  | Thread.Done | Thread.Failed -> ()
  | _ -> (thread m tid).status <- Thread.Failed);
  m.outcome <-
    Some (Outcome.Failed { kind; site_id; iid; tid; step = m.step; msg })

(* A recovering thread has just branched around a site guard: if it took the
   non-failing arm of its own site, the recovery episode is over. *)
let note_branch_taken m (th : Thread.t) ~taken ~other =
  match (m.meta, th.recovering) with
  | Some meta, Some rec_ -> (
      let site_of l =
        List.find_opt (fun (lbl, _) -> Label.equal lbl l) meta.fail_blocks
      in
      match site_of other with
      | Some (_, site) when site = rec_.rec_site && not (Label.equal taken other)
        ->
          let ep =
            {
              Stats.ep_site_id = site;
              ep_tid = th.tid;
              ep_start = rec_.rec_start;
              ep_end = m.step;
              ep_retries = Thread.retries_of th site - rec_.rec_retries_before;
            }
          in
          m.stats.episodes <- ep :: m.stats.episodes;
          trace m
            (Trace.Ev_recovered { step = m.step; tid = th.tid; site_id = site });
          th.recovering <- None
      | _ -> ())
  | _ -> ()

let close_episode m (th : Thread.t) =
  match th.recovering with
  | None -> ()
  | Some rec_ ->
      let ep =
        {
          Stats.ep_site_id = rec_.rec_site;
          ep_tid = th.tid;
          ep_start = rec_.rec_start;
          ep_end = m.step;
          ep_retries = Thread.retries_of th rec_.rec_site - rec_.rec_retries_before;
        }
      in
      m.stats.episodes <- ep :: m.stats.episodes;
      trace m
        (Trace.Ev_recovered { step = m.step; tid = th.tid; site_id = rec_.rec_site });
      th.recovering <- None

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let compensate m (th : Thread.t) =
  let current, rest = Thread.current_region_acquisitions th in
  List.iter
    (fun (r, _) ->
      match r with
      | Thread.R_lock name ->
          if Locks.force_release m.locks name ~tid:th.tid then begin
            m.stats.compensated_locks <- m.stats.compensated_locks + 1;
            trace m (Trace.Ev_compensate_lock { step = m.step; tid = th.tid; lock = name })
          end
      | Thread.R_block id ->
          if Heap.release_block m.heap id then begin
            m.stats.compensated_blocks <- m.stats.compensated_blocks + 1;
            trace m (Trace.Ev_compensate_block { step = m.step; tid = th.tid; block = id })
          end)
    current;
  th.acq_log <- rest

let rollback m (th : Thread.t) (ck : Thread.checkpoint) =
  if m.config.verify_rollbacks && th.last_destroy_step > ck.ck_step then
    m.stats.tracecheck_violations <- m.stats.tracecheck_violations + 1;
  (* Unwind the call stack to the checkpoint's depth (the longjmp). *)
  let rec drop stack =
    if List.length stack > ck.ck_depth then
      match stack with _ :: tl -> drop tl | [] -> []
    else stack
  in
  th.stack <- drop th.stack;
  let fr = Thread.top th in
  fr.regs <- ck.ck_regs;
  fr.block <- Func.block_exn fr.func ck.ck_block;
  fr.idx <- ck.ck_idx;
  th.status <- Thread.Runnable;
  m.stats.rollbacks <- m.stats.rollbacks + 1

(* Is the checkpoint a sane rollback target for the thread's current
   stack? ConAir's static placement guarantees it (a checkpoint always
   executes between any frame-crossing destroying operation and a guarded
   site), but hand-written recovery pseudo-instructions must degrade to a
   fail-stop rather than crash the interpreter. *)
let checkpoint_applicable (th : Thread.t) (ck : Thread.checkpoint) =
  Thread.depth th >= ck.ck_depth
  &&
  match List.nth_opt th.stack (Thread.depth th - ck.ck_depth) with
  | Some fr -> Func.find_block fr.func ck.ck_block <> None
  | None -> false

let try_recover m (th : Thread.t) ~site_id ~kind =
  match th.checkpoint with
  | Some ck
    when Thread.retries_of th site_id < m.config.max_retries
         && checkpoint_applicable th ck ->
      (match th.recovering with
      | Some r when r.rec_site = site_id -> ()
      | Some _ -> close_episode m th
      | None -> ());
      if th.recovering = None then
        th.recovering <-
          Some
            {
              Thread.rec_site = site_id;
              rec_start = m.step;
              rec_retries_before = Thread.retries_of th site_id;
            };
      Thread.bump_retries th site_id;
      trace m
        (Trace.Ev_rollback
           { step = m.step; tid = th.tid; site_id;
             retry = Thread.retries_of th site_id });
      compensate m th;
      rollback m th ck;
      if kind = Instr.Deadlock && m.config.deadlock_backoff > 0 then begin
        let pause = 1 + Random.State.int (Sched.rng m.sched) m.config.deadlock_backoff in
        th.status <- Thread.Sleeping (m.step + pause)
      end;
      true
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let advance (fr : Thread.frame) = fr.idx <- fr.idx + 1

(* Wait-graph deadlock detection: would thread [tid], by waiting on
   [lock], close a cycle in the wait-for graph? Follows the owner chain
   (the owner of the lock, the lock *that* owner is blocked on, ...);
   bounded by the thread count, since each thread waits on at most one
   lock. *)
let in_wait_cycle m ~tid ~lock =
  let rec chase lock_name seen =
    match Locks.owner m.locks lock_name with
    | None -> false
    | Some owner when owner = tid -> true
    | Some owner ->
        if List.mem owner seen then false (* a cycle not involving us *)
        else begin
          match (thread m owner).status with
          | Thread.Blocked_lock { name; _ } -> chase name (owner :: seen)
          | _ -> false
        end
  in
  chase lock []

let do_return m (th : Thread.t) v =
  match th.stack with
  | [] -> invalid_arg "return with empty stack"
  | frame :: rest -> (
      th.stack <- rest;
      match rest with
      | [] ->
          close_episode m th;
          trace m (Trace.Ev_thread_done { step = m.step; tid = th.tid });
          th.status <- Thread.Done
      | caller :: _ -> (
          match frame.ret_reg with
          | None -> ()
          | Some r -> (
              match v with
              | Some value -> caller.regs <- Reg.Map.add r value caller.regs
              | None ->
                  raise (Fault "function returned no value but one was expected"))))

let exec_call m (th : Thread.t) ~ret ~callee ~args =
  let fr = Thread.top th in
  let argv = List.map (eval fr) args in
  advance fr;
  (* resume after the call *)
  let f =
    match Program.find_func m.prog callee with
    | Some f -> f
    | None -> raise (Fault (Format.asprintf "call to unknown %a" Fname.pp callee))
  in
  th.stack <- Thread.make_frame f ~args:argv ~ret_reg:ret :: th.stack

let exec_spawn m (th : Thread.t) ~reg ~callee ~args =
  let fr = Thread.top th in
  let argv = List.map (eval fr) args in
  let f =
    match Program.find_func m.prog callee with
    | Some f -> f
    | None ->
        raise (Fault (Format.asprintf "spawn of unknown %a" Fname.pp callee))
  in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let th' = Thread.create ~tid f ~args:argv in
  if m.config.perturb_timing && m.config.spawn_jitter > 0 then
    th'.status <-
      Thread.Sleeping
        (m.step + Random.State.int (Sched.rng m.sched) m.config.spawn_jitter);
  Hashtbl.replace m.threads tid th';
  trace m (Trace.Ev_spawn { step = m.step; parent = th.tid; child = tid });
  fr.regs <- Reg.Map.add reg (Value.Tid tid) fr.regs;
  advance fr

(* Execute the instruction the thread is parked on. Blocking instructions
   leave [idx] unchanged so they re-execute when the thread is next
   scheduled. *)
let exec_instr m (th : Thread.t) (i : Instr.t) =
  let fr = Thread.top th in
  let set r v = fr.regs <- Reg.Map.add r v fr.regs in
  if Instr.dynamically_destroying i.op then th.last_destroy_step <- m.step;
  (* A recovering thread that performs an irreversible state mutation has
     left the reexecution region for good (no region may contain one): the
     recovery episode is over, even if the thread never re-took the guard
     branch — e.g. a deadlock retry that takes the uncontended path this
     time. Static [Destroying] would be wrong here: inter-procedural
     retries re-execute the call that leads back to the failure site. *)
  if th.recovering <> None && Instr.dynamically_destroying i.op then
    close_episode m th;
  match i.op with
  | Instr.Move (r, a) ->
      set r (eval fr a);
      advance fr
  | Instr.Binop (r, op, a, b) ->
      set r (eval_binop op (eval fr a) (eval fr b));
      advance fr
  | Instr.Unop (r, op, a) ->
      set r (eval_unop op (eval fr a));
      advance fr
  | Instr.Load (r, Instr.Global g) -> (
      match Hashtbl.find_opt m.globals g with
      | Some v ->
          set r v;
          advance fr
      | None -> raise (Fault ("load of undeclared global " ^ g)))
  | Instr.Load (r, Instr.Stack s) ->
      (* Stack slots read as zero before their first write, like zeroed
         stack memory. *)
      set r (Option.value ~default:Value.zero (Hashtbl.find_opt fr.stack_vars s));
      advance fr
  | Instr.Store (Instr.Global g, a) ->
      if Hashtbl.mem m.globals g then begin
        Hashtbl.replace m.globals g (eval fr a);
        advance fr
      end
      else raise (Fault ("store to undeclared global " ^ g))
  | Instr.Store (Instr.Stack s, a) ->
      Hashtbl.replace fr.stack_vars s (eval fr a);
      advance fr
  | Instr.Load_idx (r, p, ix) -> (
      match Heap.load m.heap (eval fr p) (as_int (eval fr ix)) with
      | Ok v ->
          set r v;
          advance fr
      | Error e -> raise (Fault e))
  | Instr.Store_idx (p, ix, v) -> (
      match Heap.store m.heap (eval fr p) (as_int (eval fr ix)) (eval fr v) with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Instr.Alloc (r, n) ->
      let ptr = Heap.alloc m.heap (as_int (eval fr n)) in
      Thread.log_acquisition th (Thread.R_block ptr.Value.block);
      set r (Value.Ptr ptr);
      advance fr
  | Instr.Free p -> (
      match Heap.free m.heap (eval fr p) with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Instr.Lock mref ->
      let name = as_mutex (eval fr mref) in
      if Locks.try_acquire m.locks name ~tid:th.tid then begin
        Thread.log_acquisition th (Thread.R_lock name);
        th.status <- Thread.Runnable;
        advance fr
      end
      else begin
        match th.status with
        | Thread.Blocked_lock _ -> ()  (* keep the original [since] *)
        | _ ->
            trace m (Trace.Ev_block { step = m.step; tid = th.tid; lock = name });
            th.status <-
              Thread.Blocked_lock { name; since = m.step; timeout = None }
      end
  | Instr.Timed_lock (r, mref, timeout) ->
      let name = as_mutex (eval fr mref) in
      if Locks.try_acquire m.locks name ~tid:th.tid then begin
        Thread.log_acquisition th (Thread.R_lock name);
        set r Value.truth;
        th.status <- Thread.Runnable;
        advance fr
      end
      else begin
        let since =
          match th.status with
          | Thread.Blocked_lock { since; _ } -> since
          | _ -> m.step
        in
        let detected_cycle =
          m.config.deadlock_detection = Wait_graph
          && in_wait_cycle m ~tid:th.tid ~lock:name
        in
        if detected_cycle || m.step - since >= timeout then begin
          set r (Value.Bool false);
          th.status <- Thread.Runnable;
          advance fr
        end
        else begin
          (match th.status with
          | Thread.Blocked_lock _ -> ()
          | _ ->
              trace m
                (Trace.Ev_block { step = m.step; tid = th.tid; lock = name }));
          th.status <-
            Thread.Blocked_lock { name; since; timeout = Some timeout }
        end
      end
  | Instr.Unlock mref -> (
      let name = as_mutex (eval fr mref) in
      match Locks.release m.locks name ~tid:th.tid with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Instr.Assert { cond; msg; oracle } ->
      if Value.is_true (eval fr cond) then advance fr
      else
        let kind = if oracle then Instr.Wrong_output else Instr.Assert_fail in
        set_failure m ~kind ~site_id:None ~iid:(Some i.iid) ~tid:th.tid ~msg
  | Instr.Output { fmt; args } ->
      let text = render_output fmt (List.map (eval fr) args) in
      m.outputs <- text :: m.outputs;
      m.stats.outputs <- m.stats.outputs + 1;
      trace m (Trace.Ev_output { step = m.step; tid = th.tid; text });
      advance fr
  | Instr.Call (ret, callee, args) -> exec_call m th ~ret ~callee ~args
  | Instr.Spawn (r, callee, args) -> exec_spawn m th ~reg:r ~callee ~args
  | Instr.Join t -> (
      match eval fr t with
      | Value.Tid tid -> (
          match (thread m tid).status with
          | Thread.Done | Thread.Failed ->
              th.status <- Thread.Runnable;
              advance fr
          | _ -> th.status <- Thread.Blocked_join tid)
      | v -> raise (Fault ("join of a non-thread value " ^ Value.to_string v)))
  | Instr.Sleep n ->
      let n =
        if m.config.perturb_timing && n > 0 then
          Random.State.int (Sched.rng m.sched) (n + 1)
        else n
      in
      th.status <- Thread.Sleeping (m.step + n);
      advance fr
  | Instr.Nop -> advance fr
  | Instr.Wait name -> (
      (* pulse semantics: always park; only a Notify releases us *)
      match th.status with
      | Thread.Blocked_event _ -> ()
      | _ ->
          trace m
            (Trace.Ev_block
               { step = m.step; tid = th.tid; lock = "event:" ^ name });
          th.status <-
            Thread.Blocked_event { name; since = m.step; timeout = None })
  | Instr.Timed_wait (r, name, timeout) ->
      let since =
        match th.status with
        | Thread.Blocked_event { since; _ } -> since
        | _ -> m.step
      in
      if m.step - since >= timeout then begin
        set r (Value.Bool false);
        th.status <- Thread.Runnable;
        advance fr
      end
      else begin
        (match th.status with
        | Thread.Blocked_event _ -> ()
        | _ ->
            trace m
              (Trace.Ev_block
                 { step = m.step; tid = th.tid; lock = "event:" ^ name }));
        th.status <-
          Thread.Blocked_event { name; since; timeout = Some timeout }
      end
  | Instr.Notify name ->
      (* wake every thread currently parked on this event; a notify with
         no waiter is lost — the lost-wakeup bug class *)
      Hashtbl.iter
        (fun _ (waiter : Thread.t) ->
          match waiter.status with
          | Thread.Blocked_event { name = n; _ } when n = name ->
              let wfr = Thread.top waiter in
              (* the waiter is parked on its Wait/Timed_wait: complete it *)
              (match wfr.block.instrs.(wfr.idx).op with
              | Instr.Timed_wait (r, _, _) ->
                  wfr.regs <- Reg.Map.add r Value.truth wfr.regs
              | _ -> ());
              wfr.idx <- wfr.idx + 1;
              waiter.status <- Thread.Runnable;
              trace m (Trace.Ev_wake { step = m.step; tid = waiter.tid })
          | _ -> ())
        m.threads;
      advance fr
  | Instr.Checkpoint id ->
      th.region_counter <- th.region_counter + 1;
      advance fr;
      th.checkpoint <-
        Some
          {
            Thread.ck_depth = Thread.depth th;
            ck_block = fr.block.label;
            ck_idx = fr.idx;
            ck_regs = fr.regs;
            ck_counter = th.region_counter;
            ck_step = m.step;
          };
      Stats.hit_checkpoint m.stats id;
      trace m (Trace.Ev_checkpoint { step = m.step; tid = th.tid; ckpt_id = id })
  | Instr.Ptr_guard (r, p, ix) ->
      set r (Value.Bool (Heap.valid m.heap (eval fr p) (as_int (eval fr ix))));
      advance fr
  | Instr.Try_recover { site_id; kind } ->
      trace m
        (Trace.Ev_failure_detected { step = m.step; tid = th.tid; site_id; kind });
      if not (try_recover m th ~site_id ~kind) then advance fr
  | Instr.Fail_stop { site_id; kind; msg } ->
      close_episode m th;
      trace m (Trace.Ev_fail_stop { step = m.step; tid = th.tid; site_id });
      set_failure m ~kind ~site_id:(Some site_id) ~iid:(Some i.iid)
        ~tid:th.tid ~msg

let exec_terminator m (th : Thread.t) =
  let fr = Thread.top th in
  match fr.block.term with
  | Instr.Jump l ->
      fr.block <- Func.block_exn fr.func l;
      fr.idx <- 0
  | Instr.Branch (c, t, f) ->
      let taken, other = if Value.is_true (eval fr c) then (t, f) else (f, t) in
      note_branch_taken m th ~taken ~other;
      fr.block <- Func.block_exn fr.func taken;
      fr.idx <- 0
  | Instr.Return v ->
      let value = Option.map (eval fr) v in
      do_return m th value
  | Instr.Exit ->
      th.status <- Thread.Done;
      m.outcome <- Some Outcome.Success

(* ------------------------------------------------------------------ *)
(* The scheduler loop                                                  *)
(* ------------------------------------------------------------------ *)

(* Eligibility: can this thread make progress right now? *)
let eligible m (th : Thread.t) =
  match th.status with
  | Thread.Runnable -> true
  | Thread.Sleeping until -> m.step >= until
  | Thread.Blocked_lock { name; since; timeout } ->
      Locks.is_free m.locks name
      || (match timeout with Some t -> m.step - since >= t | None -> false)
      || (* under wait-graph detection, a timed waiter inside a cycle is
            woken immediately so the lock site can report the deadlock *)
      (m.config.deadlock_detection = Wait_graph
      && timeout <> None
      && in_wait_cycle m ~tid:th.tid ~lock:name)
  | Thread.Blocked_event { since; timeout; _ } -> (
      (* notifies wake the thread eagerly; only timeouts need polling *)
      match timeout with Some t -> m.step - since >= t | None -> false)
  | Thread.Blocked_join tid -> (
      match (thread m tid).status with
      | Thread.Done | Thread.Failed -> true
      | _ -> false)
  | Thread.Done | Thread.Failed -> false

let run_thread_step m tid =
  let th = thread m tid in
  (* A sleeper simply wakes; blocked threads re-execute their blocking
     instruction, which inspects and updates the status itself (notably the
     [since] timestamp of a timed lock must survive rescheduling). *)
  (match th.status with
  | Thread.Sleeping _ ->
      trace m (Trace.Ev_wake { step = m.step; tid });
      th.status <- Thread.Runnable
  | _ -> ());
  m.stats.instrs <- m.stats.instrs + 1;
  trace m (Trace.Ev_schedule { step = m.step; tid });
  (if m.config.profile_sites then
     let fr = Thread.top th in
     if fr.idx < Block.length fr.block then
       Stats.hit_iid m.stats fr.block.instrs.(fr.idx).Instr.iid);
  (* Remember where the thread stands before executing: on a fault, the
     crash report carries the faulting instruction — exactly what a user
     hands to fix mode (§3.1.2). *)
  let at_iid =
    match th.stack with
    | fr :: _ when fr.idx < Block.length fr.block ->
        Some fr.block.instrs.(fr.idx).Instr.iid
    | _ -> None
  in
  try
    let fr = Thread.top th in
    if fr.idx < Block.length fr.block then
      exec_instr m th fr.block.instrs.(fr.idx)
    else exec_terminator m th
  with Fault msg ->
    (* An unrecovered runtime fault: segmentation fault or an equivalent
       hardware-level failure of this thread, which takes the program
       down. *)
    close_episode m th;
    set_failure m ~kind:Instr.Seg_fault ~site_id:None ~iid:at_iid ~tid ~msg

(** Run one scheduler step. Returns [false] when the program has finished
    (successfully or not). *)
let step m =
  match m.outcome with
  | Some _ -> false
  | None ->
      let live = live_threads m in
      if live = [] then begin
        m.outcome <- Some Outcome.Success;
        false
      end
      else begin
        let ready = List.filter (fun tid -> eligible m (thread m tid)) live in
        (match ready with
        | [] ->
            (* Threads that will become eligible as virtual time passes:
               sleepers, and lock waiters with a pending timeout. *)
            let waiting_on_time =
              List.exists
                (fun tid ->
                  match (thread m tid).status with
                  | Thread.Sleeping _
                  | Thread.Blocked_lock { timeout = Some _; _ }
                  | Thread.Blocked_event { timeout = Some _; _ } ->
                      true
                  | _ -> false)
                live
            in
            if waiting_on_time then begin
              (* Everyone is asleep or waiting: let virtual time pass. *)
              m.step <- m.step + 1;
              m.stats.idle <- m.stats.idle + 1;
              m.stats.steps <- m.stats.steps + 1
            end
            else
              m.outcome <- Some (Outcome.Hang { step = m.step; blocked = live })
        | _ :: _ ->
            let tid = Sched.choose m.sched ready in
            run_thread_step m tid;
            m.step <- m.step + 1;
            m.stats.steps <- m.stats.steps + 1);
        m.outcome = None
      end

(** Run to completion (or until the fuel runs out). *)
let run m =
  let rec go () =
    if m.step >= m.config.fuel then begin
      m.outcome <- Some (Outcome.Fuel_exhausted m.step);
      Outcome.Fuel_exhausted m.step
    end
    else if step m then go ()
    else Option.value ~default:Outcome.Success m.outcome
  in
  go ()

(** Convenience: build a machine and run it. *)
let run_program ?config ?meta prog =
  let m = create ?config ?meta prog in
  let outcome = run m in
  (m, outcome)

(* ------------------------------------------------------------------ *)
(* Whole-machine snapshots                                             *)
(* ------------------------------------------------------------------ *)

(* These exist for the *baseline* recovery schemes of Fig 4's right end
   (traditional whole-program checkpoint/rollback): they copy every thread,
   the heap, the globals and the locks. ConAir itself never needs them —
   that is its whole point. *)

type snapshot = {
  s_globals : (string, Value.t) Hashtbl.t;
  s_heap : Heap.t;
  s_locks : Locks.t;
  s_threads : (int * Thread.t) list;
  s_next_tid : int;
  s_step : int;
  s_outputs : string list;
}

let copy_frame (fr : Thread.frame) =
  {
    fr with
    Thread.stack_vars = Hashtbl.copy fr.stack_vars;
    regs = fr.regs (* immutable map *);
  }

let copy_thread (th : Thread.t) =
  {
    th with
    Thread.stack = List.map copy_frame th.stack;
    retries = Hashtbl.copy th.retries;
  }

let snapshot m : snapshot =
  {
    s_globals = Hashtbl.copy m.globals;
    s_heap = Heap.snapshot m.heap;
    s_locks = Locks.snapshot m.locks;
    s_threads =
      Hashtbl.fold (fun tid th acc -> (tid, copy_thread th) :: acc) m.threads [];
    s_next_tid = m.next_tid;
    s_step = m.step;
    s_outputs = m.outputs;
  }

(** Restore [m] to [s]. The statistics keep accumulating across restores
    (lost work is real work); the scheduler can be re-seeded by the caller
    so the retried execution explores a different interleaving. *)
let restore m (s : snapshot) =
  Hashtbl.reset m.globals;
  Hashtbl.iter (Hashtbl.replace m.globals) s.s_globals;
  Hashtbl.reset (Heap.blocks_table m.heap);
  let heap_copy = Heap.snapshot s.s_heap in
  Hashtbl.iter
    (Hashtbl.replace (Heap.blocks_table m.heap))
    (Heap.blocks_table heap_copy);
  Heap.set_next m.heap (Heap.next_id heap_copy);
  Hashtbl.reset m.locks;
  let locks_copy = Locks.snapshot s.s_locks in
  Hashtbl.iter (Hashtbl.replace m.locks) locks_copy;
  Hashtbl.reset m.threads;
  List.iter (fun (tid, th) -> Hashtbl.replace m.threads tid (copy_thread th))
    s.s_threads;
  m.next_tid <- s.s_next_tid;
  (* Virtual time is wall-clock: a rollback restores *state*, not time, so
     sleep deadlines captured in the snapshot keep their absolute meaning
     and blocked threads eventually make progress across restores. *)
  m.step <- max m.step s.s_step;
  m.outputs <- s.s_outputs;
  m.outcome <- None

(** Swap the scheduling policy and (optionally) enable timing perturbation
    — used by baselines to explore a different interleaving after a
    rollback or restart. *)
let reseed ?(perturb = false) m policy =
  let fresh = Sched.create policy in
  fresh.Sched.cursor <- m.sched.Sched.cursor;
  {
    m with
    sched = fresh;
    config = { m.config with perturb_timing = m.config.perturb_timing || perturb };
  }
