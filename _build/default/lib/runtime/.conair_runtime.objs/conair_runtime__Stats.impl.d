lib/runtime/stats.ml: Format Hashtbl List Option
