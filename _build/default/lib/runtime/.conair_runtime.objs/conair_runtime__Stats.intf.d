lib/runtime/stats.mli: Format Hashtbl
