lib/runtime/locks.ml: Hashtbl List
