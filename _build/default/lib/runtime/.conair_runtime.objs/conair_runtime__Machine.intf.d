lib/runtime/machine.mli: Conair_ir Conair_transform Hashtbl Heap Ident Locks Outcome Program Sched Stats Thread Trace Value
