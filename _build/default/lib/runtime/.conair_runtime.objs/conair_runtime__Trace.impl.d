lib/runtime/trace.ml: Conair_ir Format List
