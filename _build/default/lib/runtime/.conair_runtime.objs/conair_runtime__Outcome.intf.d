lib/runtime/outcome.mli: Conair_ir Format Instr
