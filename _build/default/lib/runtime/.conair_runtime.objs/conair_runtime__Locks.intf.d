lib/runtime/locks.mli: Hashtbl
