lib/runtime/outcome.ml: Conair_ir Format Instr Printf
