lib/runtime/heap.ml: Array Conair_ir Hashtbl Value
