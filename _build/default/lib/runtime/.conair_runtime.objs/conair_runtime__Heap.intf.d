lib/runtime/heap.mli: Conair_ir Hashtbl Value
