lib/runtime/thread.mli: Block Conair_ir Func Hashtbl Ident Value
