lib/runtime/machine.ml: Array Block Buffer Conair_ir Conair_transform Format Func Hashtbl Heap Ident Instr List Locks Option Outcome Program Random Sched Stats String Thread Trace Value
