lib/runtime/trace.mli: Conair_ir Format
