lib/runtime/sched.ml: List Random
