lib/runtime/thread.ml: Block Conair_ir Format Func Hashtbl Ident List Option Value
