lib/runtime/sched.mli: Random
