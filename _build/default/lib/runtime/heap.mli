(** The shared heap: a table of blocks with explicit liveness, so
    use-after-free and out-of-bounds accesses fault exactly like the
    segmentation faults the paper's sites guard against. *)

open Conair_ir

type t

val create : unit -> t

val alloc : t -> int -> Value.ptr
(** Allocate [n] zeroed cells.
    @raise Invalid_argument on a negative size. *)

val valid : t -> Value.t -> int -> bool
(** Is dereferencing this value at the extra offset valid? The predicate
    behind [Ptr_guard]. *)

val load : t -> Value.t -> int -> (Value.t, string) result
val store : t -> Value.t -> int -> Value.t -> (unit, string) result

val free : t -> Value.t -> (unit, string) result
(** Only a pointer to offset 0 of a live block may be freed, as in C. *)

val release_block : t -> int -> bool
(** Mark a block dead by id, without the offset-0 restriction — used by
    the recovery compensation, which recorded the allocation itself.
    Returns whether the block was live. *)

val live_blocks : t -> int

val snapshot : t -> t
(** Deep copy, for the whole-program-checkpoint baseline. *)

(**/**)

(* Exposed for Machine.restore. *)
type block = { cells : Value.t array; mutable live : bool }

val find : t -> int -> block option
val blocks_table : t -> (int, block) Hashtbl.t
val set_next : t -> int -> unit
val next_id : t -> int
