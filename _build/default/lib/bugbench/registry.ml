(* The benchmark registry: the paper's Table 2, as data. *)

let all : Bench_spec.t list =
  [
    App_fft.spec;
    App_hawknl.spec;
    App_httrack.spec;
    App_mozilla_xp.spec;
    App_mozilla_js.spec;
    App_mysql1.spec;
    App_mysql2.spec;
    App_sqlite.spec;
    App_transmission.spec;
    App_zsnes.spec;
  ]

(* Extended set: real-world bugs from the broader concurrency-bug
   literature, beyond the paper's Table 2 — used to check that nothing in
   the pipeline is overfitted to the ten headline benchmarks. *)
let extended : Bench_spec.t list = [ App_pbzip2.spec; App_apache.spec ]

let find name =
  List.find_opt
    (fun (s : Bench_spec.t) ->
      String.lowercase_ascii s.info.name = String.lowercase_ascii name)
    (all @ extended)

let names = List.map (fun (s : Bench_spec.t) -> s.info.name) all
