(* The four atomicity-violation shapes of the paper's Fig 2, as minimal
   two-thread programs.

   Single-threaded rollback can in principle recover all four (§2.1), but
   ConAir's idempotent regions — no shared-variable writes, no state
   checkpointing — recover only the patterns whose reexecution region is
   read-only:

   - WAW (2a) and RAR (2c): the failing thread only *read* the racy
     variable; reexecuting the reads once the other thread has finished
     recovers.
   - RAW (2b) and WAR (2d): recovery would need to reexecute the failing
     thread's own shared-variable *write*, which idempotent regions exclude
     — ConAir retries and gives up; the whole-program-checkpoint baseline
     (the expensive end of Fig 4) recovers them.

   Each program fails (or emits a wrong output) with certainty under the
   round-robin schedule thanks to an injected sleep, as in §5. *)

open Conair.Ir
module B = Builder

type pattern = { name : string; conair_recoverable : bool; program : Program.t }

(* Fig 2a: T1 does [log=CLOSE; log=OPEN]; T2 fails if it reads CLOSE.
   The failing thread (T2) is a pure reader: recoverable. *)
let waw () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "log" (Value.Int 1);
    (B.func b "writer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.store f (Instr.Global "log") (B.int 0);
     B.sleep f 50;
     B.store f (Instr.Global "log") (B.int 1);
     B.ret f None);
    (B.func b "reader" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 10;
     B.load f "l" (Instr.Global "log");
     B.eq f "open_" (B.reg "l") (B.int 1);
     B.assert_ f ~oracle:true (B.reg "open_") ~msg:"log is open";
     B.output f "log=%v" [ B.reg "l" ];
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "writer"; "reader" ]
  in
  { name = "WAW (Fig 2a)"; conair_recoverable = true; program }

(* Fig 2b: T1 does [ptr=aptr; tmp=*ptr]; T2 does [ptr=NULL]. The failing
   thread's own shared write would have to be reexecuted: unrecoverable. *)
let raw () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "ptr" Value.Null;
    (B.func b "assigner" ~params:[] @@ fun f ->
     B.label f "entry";
     B.alloc f "a" (B.int 1);
     B.store_idx f (B.reg "a") (B.int 0) (B.int 9);
     B.store f (Instr.Global "ptr") (B.reg "a");
     B.sleep f 20;
     B.load f "p" (Instr.Global "ptr");
     B.load_idx f "tmp" (B.reg "p") (B.int 0);
     B.output f "tmp=%v" [ B.reg "tmp" ];
     B.ret f None);
    (B.func b "nuller" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 10;
     B.store f (Instr.Global "ptr") (B.null);
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "assigner"; "nuller" ]
  in
  { name = "RAW (Fig 2b)"; conair_recoverable = false; program }

(* Fig 2c: T1 does [if (ptr) use ptr]; T2 nulls ptr between check and use.
   Both accesses are reads of the shared pointer: recoverable (and fast —
   one reexecution of the read-after-read). *)
let rar () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "sptr" Value.Null;
    B.global b "restored" (Value.Int 0);
    (B.func b "user" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 6;
     B.load f "p1" (Instr.Global "sptr");
     B.unop f "nil" Instr.Is_null (B.reg "p1");
     B.branch f (B.reg "nil") "skip" "use";
     B.label f "use";
     B.sleep f 10;
     B.load f "p2" (Instr.Global "sptr");
     B.load_idx f "c" (B.reg "p2") (B.int 0);
     B.output f "c=%v" [ B.reg "c" ];
     B.jump f "skip";
     B.label f "skip";
     B.ret f None);
    (B.func b "swapper" ~params:[] @@ fun f ->
     B.label f "entry";
     B.alloc f "a" (B.int 1);
     B.store_idx f (B.reg "a") (B.int 0) (B.int 5);
     B.store f (Instr.Global "sptr") (B.reg "a");
     B.sleep f 14;
     B.store f (Instr.Global "sptr") (B.null);
     B.sleep f 30;
     B.store f (Instr.Global "sptr") (B.reg "a");
     B.store f (Instr.Global "restored") (B.int 1);
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "swapper"; "user" ]
  in
  { name = "RAR (Fig 2c)"; conair_recoverable = true; program }

(* Fig 2d: T1 does [cnt += d1; print cnt]; T2 does [cnt += d2] in between.
   T1's own accumulating write precedes the failing read: unrecoverable. *)
let war () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "cnt" (Value.Int 0);
    (B.func b "depositor1" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "c" (Instr.Global "cnt");
     B.add f "c" (B.reg "c") (B.int 10);
     B.store f (Instr.Global "cnt") (B.reg "c");
     B.sleep f 20;
     B.load f "bal" (Instr.Global "cnt");
     B.eq f "ok" (B.reg "bal") (B.int 10);
     B.assert_ f ~oracle:true (B.reg "ok") ~msg:"balance reflects deposit1 only";
     B.output f "Balance=%v" [ B.reg "bal" ];
     B.ret f None);
    (B.func b "depositor2" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 10;
     B.load f "c" (Instr.Global "cnt");
     B.add f "c" (B.reg "c") (B.int 7);
     B.store f (Instr.Global "cnt") (B.reg "c");
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "depositor1"; "depositor2" ]
  in
  { name = "WAR (Fig 2d)"; conair_recoverable = false; program }

let all () = [ waw (); raw (); rar (); war () ]
