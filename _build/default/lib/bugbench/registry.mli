(** The benchmark registry: the paper's Table 2, as data. *)

val all : Bench_spec.t list
(** The paper's Table 2 set. *)

val extended : Bench_spec.t list
(** Real-world bugs beyond the paper's set (PBZIP2, Apache). *)

val find : string -> Bench_spec.t option
(** Case-insensitive lookup by name, over both sets. *)

val names : string list
