(** The four atomicity-violation shapes of the paper's Fig 2, as minimal
    two-thread programs. WAW (2a) and RAR (2c) — where the failing thread
    only reads the racy state — are recoverable by idempotent
    reexecution; RAW (2b) and WAR (2d) would need the failing thread's own
    shared write reexecuted and sit beyond ConAir's design point (the
    whole-program-checkpoint baseline recovers them). *)

open Conair.Ir

type pattern = {
  name : string;
  conair_recoverable : bool;
  program : Program.t;
}

val waw : unit -> pattern
val raw : unit -> pattern
val rar : unit -> pattern
val war : unit -> pattern
val all : unit -> pattern list
