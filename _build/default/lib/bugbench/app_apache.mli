(** An extended-set benchmark (beyond the paper's Table 2); see the
    implementation header for the bug it reproduces. *)

val info : Bench_spec.info
val make : variant:Bench_spec.variant -> oracle:bool -> Bench_spec.instance
val spec : Bench_spec.t
