(** One of the ten benchmark applications of Table 2; see the
    implementation header for the bug it reproduces. *)

val info : Bench_spec.info
val make : variant:Bench_spec.variant -> oracle:bool -> Bench_spec.instance
val spec : Bench_spec.t
