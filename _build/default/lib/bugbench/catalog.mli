(** A catalog of concurrency-bug patterns reproducing the §2.1/§2.2
    taxonomy study: which failures single-threaded idempotent reexecution
    covers, and which hit the documented limitations (I/O in the region,
    non-idempotent local writes, single-thread rollback insufficient). *)

open Conair.Ir

type recovery_class =
  | Idempotent  (** recovered by single-threaded idempotent reexecution *)
  | Needs_io  (** the region would have to reexecute an output (§6.5) *)
  | Needs_nonidempotent_writes
      (** the region would have to reexecute a local memory write (§6.5) *)
  | Needs_multithread  (** single-threaded rollback cannot help (§2.1) *)

val class_name : recovery_class -> string

type entry = {
  name : string;
  category : string;  (** root cause, as in Table 2 *)
  recovery : recovery_class;
  program : Program.t;
}

val all : unit -> entry list

val taxonomy : unit -> entry list * (recovery_class * int) list
(** The catalog plus the Fig 2 micro patterns, with per-class counts —
    the §2.2-style breakdown printed by the bench. *)
