(** The shape of one benchmark application: Table 2 metadata plus a
    program factory. [Buggy] instances inject the sleeps that force the
    failure-inducing interleaving (§5); [Clean] instances order the
    threads so the bug does not fire — those serve the overhead
    measurements, where "no sleep is inserted and software never fails". *)

open Conair.Ir

type variant = Buggy | Clean

type info = {
  name : string;
  app_type : string;  (** Table 2 "App. Type" *)
  loc_paper : string;  (** Table 2 "LOC" of the original application *)
  failure : string;
  cause : string;
  needs_oracle : bool;
      (** wrong-output bugs recover only given a developer
          output-correctness assert (Table 3's "conditionally recovered") *)
  needs_interproc : bool;  (** MozillaXP and Transmission in the paper *)
}

type instance = {
  program : Program.t;
  fix_site_iids : int list;
      (** the failing instruction(s) a user would report in fix mode *)
  accept : string list -> bool;
      (** is this output list a correct run? *)
}

type t = {
  info : info;
  make : variant:variant -> oracle:bool -> instance;
      (** [oracle] includes the developer output-correctness asserts *)
}

val instance :
  ?fix_site_iids:int list ->
  ?accept:(string list -> bool) ->
  Program.t ->
  instance
