(* A catalog of concurrency-bug patterns beyond the ten headline
   benchmarks, reproducing the taxonomy study of §2.1/§2.2: the paper
   examined 26 bugs from six prior papers and found 20 recoverable by
   single-threaded reexecution, of which 16 had idempotent reexecution
   regions, 2 needed I/O inside the region and 2 needed non-idempotent
   memory writes.

   Every entry states whether ConAir's design point covers it
   ([Idempotent]) or which documented limitation (§6.5) it exercises; the
   tests assert that the implementation matches the taxonomy, and the
   bench prints the §2.2-style breakdown. *)

open Conair.Ir
module B = Builder

type recovery_class =
  | Idempotent  (** recovered by single-threaded idempotent reexecution *)
  | Needs_io  (** the region would have to reexecute an output (§6.5) *)
  | Needs_nonidempotent_writes
      (** the region would have to reexecute a local memory write (§6.5) *)
  | Needs_multithread  (** single-threaded rollback cannot help (§2.1) *)

let class_name = function
  | Idempotent -> "idempotent region"
  | Needs_io -> "I/O in region"
  | Needs_nonidempotent_writes -> "non-idempotent writes"
  | Needs_multithread -> "multi-thread rollback"

type entry = {
  name : string;
  category : string;  (** root cause, as in Table 2 *)
  recovery : recovery_class;
  program : Program.t;
}

let two_threads = Mirlib.two_thread_main

(* 1. Order violation: read before initialization — the canonical
   recoverable pattern (the ZSNES/HTTrack shape, minimal). *)
let uninit_read () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "ready" (Value.Int 0);
    (B.func b "consumer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "r" (Instr.Global "ready");
     B.assert_ f (B.reg "r") ~msg:"initialized";
     B.output f "consumed %v" [ B.reg "r" ];
     B.ret f None);
    (B.func b "producer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 40;
     B.store f (Instr.Global "ready") (B.int 1);
     B.ret f None);
    two_threads b ~threads:[ "consumer"; "producer" ]
  in
  { name = "uninit-read"; category = "order violation"; recovery = Idempotent;
    program }

(* 2. Order violation: a pointer is published before its fields are
   initialized; the reader sees a half-built object. *)
let partial_publish () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "obj" Value.Null;
    (B.func b "reader" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 6;
     B.load f "p" (Instr.Global "obj");
     B.unop f "nil" Instr.Is_null (B.reg "p");
     B.branch f (B.reg "nil") "out" "use";
     B.label f "use";
     B.load_idx f "field" (B.reg "p") (B.int 0);
     B.assert_ f (B.reg "field") ~msg:"field initialized before use";
     B.output f "field=%v" [ B.reg "field" ];
     B.jump f "out";
     B.label f "out";
     B.ret f None);
    (B.func b "writer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.alloc f "p" (B.int 2);
     (* the bug: publish before initializing *)
     B.store f (Instr.Global "obj") (B.reg "p");
     B.sleep f 40;
     B.store_idx f (B.reg "p") (B.int 0) (B.int 7);
     B.ret f None);
    two_threads b ~threads:[ "writer"; "reader" ]
  in
  { name = "partial-publish"; category = "order violation";
    recovery = Idempotent; program }

(* 3. RAR atomicity on a container: length read twice must agree. *)
let toctou_length () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "len" (Value.Int 4);
    (B.func b "scanner" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "l1" (Instr.Global "len");
     B.sleep f 8;
     B.load f "l2" (Instr.Global "len");
     B.eq f "same" (B.reg "l1") (B.reg "l2");
     B.assert_ f (B.reg "same") ~msg:"stable length across scan";
     B.ret f None);
    (B.func b "shrinker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 4;
     B.store f (Instr.Global "len") (B.int 3);
     B.ret f None);
    two_threads b ~threads:[ "scanner"; "shrinker" ]
  in
  { name = "toctou-length"; category = "atomicity violation (RAR)";
    recovery = Idempotent; program }

(* 4. Check-then-use against a concurrent free: the reader's guard and
   dereference are both reads of shared state — reexecution takes the
   not-freed branch once the flag is visible. *)
let racy_free () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "buf" Value.Null;
    B.global b "freed" (Value.Int 0);
    (B.func b "user" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 6;
     B.load f "fr" (Instr.Global "freed");
     B.unop f "ok" Instr.Not (B.reg "fr");
     B.branch f (B.reg "ok") "use" "out";
     B.label f "use";
     B.sleep f 8;
     B.load f "p" (Instr.Global "buf");
     B.load_idx f "x" (B.reg "p") (B.int 0);
     B.output f "x=%v" [ B.reg "x" ];
     B.jump f "out";
     B.label f "out";
     B.ret f None);
    (B.func b "reclaimer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.alloc f "p" (B.int 1);
     B.store_idx f (B.reg "p") (B.int 0) (B.int 3);
     B.store f (Instr.Global "buf") (B.reg "p");
     B.sleep f 10;
     B.free f (B.reg "p");
     B.store f (Instr.Global "freed") (B.int 1);
     B.ret f None);
    two_threads b ~threads:[ "reclaimer"; "user" ]
  in
  { name = "racy-free"; category = "atomicity violation";
    recovery = Idempotent; program }

(* 5. Self-deadlock: re-acquiring a held, non-reentrant lock. There is no
   other lock to release, so ConAir prunes the site (§4.2) and the hang
   stands — single-threaded rollback cannot help a one-thread cycle. *)
let self_deadlock () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "m");
     B.store f (Instr.Stack "tmp") (B.int 1);
     B.lock f (B.mutex_ref "m");
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    two_threads b ~threads:[ "worker" ]
  in
  { name = "self-deadlock"; category = "deadlock";
    recovery = Needs_multithread; program }

(* 6. A three-way deadlock cycle: A->B, B->C, C->A. Releasing any one
   thread's outer lock breaks the cycle. *)
let three_way_deadlock () =
  let worker b name first second =
    B.func b name ~params:[] @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref first);
    B.sleep f 15;
    B.lock f (B.mutex_ref second);
    B.unlock f (B.mutex_ref second);
    B.unlock f (B.mutex_ref first);
    B.ret f None
  in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "A";
    B.mutex b "B";
    B.mutex b "C";
    worker b "w1" "A" "B";
    worker b "w2" "B" "C";
    worker b "w3" "C" "A";
    two_threads b ~threads:[ "w1"; "w2"; "w3" ]
  in
  { name = "three-way-deadlock"; category = "deadlock";
    recovery = Idempotent; program }

(* 7. §6.5 limitation: an output between the racy read and the failure
   site ends the idempotent region, leaving no shared read to retry —
   recovery would need I/O reexecution. *)
let io_in_region () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "status" (Value.Int 0);
    (B.func b "logger" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "st" (Instr.Global "status");
     B.output f "status read: %v" [ B.reg "st" ];
     B.assert_ f (B.reg "st") ~msg:"status was set before logging";
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 30;
     B.store f (Instr.Global "status") (B.int 1);
     B.ret f None);
    two_threads b ~threads:[ "logger"; "setter" ]
  in
  { name = "io-in-region"; category = "order violation"; recovery = Needs_io;
    program }

(* 8. §6.5 limitation: the racy read parks its value in a stack slot; the
   slot write ends the region and slicing stops at the slot read (Fig 8) —
   recovery would need non-idempotent local writes reexecuted. *)
let stack_write_in_region () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "conf" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "c" (Instr.Global "conf");
     B.store f (Instr.Stack "saved") (B.reg "c");
     B.load f "s" (Instr.Stack "saved");
     B.assert_ f (B.reg "s") ~msg:"configuration present";
     B.ret f None);
    (B.func b "configurer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 30;
     B.store f (Instr.Global "conf") (B.int 2);
     B.ret f None);
    two_threads b ~threads:[ "worker"; "configurer" ]
  in
  { name = "stack-write-in-region"; category = "order violation";
    recovery = Needs_nonidempotent_writes; program }

(* 9. Multiple producers: the consumer's assert needs both increments;
   reexecution simply waits for both. *)
let multi_producer () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.global b "count" (Value.Int 0);
    (B.func b "producer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "m");
     B.load f "c" (Instr.Global "count");
     B.add f "c" (B.reg "c") (B.int 1);
     B.store f (Instr.Global "count") (B.reg "c");
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    (B.func b "consumer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "c" (Instr.Global "count");
     B.binop f "done_" Instr.Ge (B.reg "c") (B.int 2);
     B.assert_ f (B.reg "done_") ~msg:"both producers finished";
     B.output f "count=%v" [ B.reg "c" ];
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t0" "consumer" [];
    B.spawn f "t1" "producer" [];
    B.spawn f "t2" "producer" [];
    B.join f (B.reg "t0");
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  { name = "multi-producer"; category = "order violation";
    recovery = Idempotent; program }

(* 10. Barrier miss: the worker asserts on a phase flag that the
   coordinator flips only after its own long phase. *)
let barrier_miss () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "phase" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"w" "compute_kernel" [ B.int 30 ];
     B.load f "ph" (Instr.Global "phase");
     B.eq f "ok" (B.reg "ph") (B.int 1);
     B.assert_ f (B.reg "ok") ~msg:"phase 1 reached";
     B.output f "phase=%v" [ B.reg "ph" ];
     B.ret f None);
    (B.func b "coordinator" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"w" "compute_kernel" [ B.int 120 ];
     B.store f (Instr.Global "phase") (B.int 1);
     B.ret f None);
    Mirlib.add_compute_kernel b;
    two_threads b ~threads:[ "worker"; "coordinator" ]
  in
  { name = "barrier-miss"; category = "order violation";
    recovery = Idempotent; program }

(* 11. Lost wakeup: the producer notifies before the consumer waits; the
   pulse is lost and the consumer hangs. The hardened timed wait times
   out, rolls back across the predicate read, sees ready=1 and skips the
   wait — the condition-variable analogue of the deadlock recovery. *)
let lost_wakeup () =
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "ready" (Value.Int 0);
    (B.func b "consumer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "r" (Instr.Global "ready");
     B.branch f (B.reg "r") "go" "park";
     B.label f "park";
     (* the race window: the producer's notify lands here, before the
        wait starts, and is lost *)
     B.sleep f 10;
     B.wait f "data_ready";
     B.jump f "go";
     B.label f "go";
     B.load f "r2" (Instr.Global "ready");
     B.output f "consumed ready=%v" [ B.reg "r2" ];
     B.ret f None);
    (B.func b "producer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 5;
     B.store f (Instr.Global "ready") (B.int 1);
     B.notify f "data_ready";
     B.ret f None);
    two_threads b ~threads:[ "producer"; "consumer" ]
  in
  { name = "lost-wakeup"; category = "order violation";
    recovery = Idempotent; program }

let all () =
  [
    uninit_read ();
    partial_publish ();
    toctou_length ();
    racy_free ();
    self_deadlock ();
    three_way_deadlock ();
    io_in_region ();
    stack_write_in_region ();
    multi_producer ();
    barrier_miss ();
    lost_wakeup ();
  ]

(** The §2.2-style breakdown: patterns per recovery class, over this
    catalog plus the four Fig 2 micro patterns. *)
let taxonomy () =
  let entries =
    all ()
    @ List.map
        (fun (m : Micro_patterns.pattern) ->
          {
            name = m.name;
            category = "atomicity violation";
            recovery =
              (if m.conair_recoverable then Idempotent
               else Needs_nonidempotent_writes);
            program = m.program;
          })
        (Micro_patterns.all ())
  in
  let count cls =
    List.length (List.filter (fun e -> e.recovery = cls) entries)
  in
  ( entries,
    [
      (Idempotent, count Idempotent);
      (Needs_io, count Needs_io);
      (Needs_nonidempotent_writes, count Needs_nonidempotent_writes);
      (Needs_multithread, count Needs_multithread);
    ] )
