lib/bugbench/app_pbzip2.ml: Bench_spec Builder Conair Instr List Mirlib String Value
