lib/bugbench/app_zsnes.ml: Bench_spec Builder Conair Instr List Mirlib String Value
