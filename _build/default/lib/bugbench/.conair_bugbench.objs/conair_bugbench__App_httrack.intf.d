lib/bugbench/app_httrack.mli: Bench_spec
