lib/bugbench/app_mozilla_xp.mli: Bench_spec
