lib/bugbench/app_transmission.mli: Bench_spec
