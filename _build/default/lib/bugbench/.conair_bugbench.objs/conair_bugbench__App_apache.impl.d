lib/bugbench/app_apache.ml: Bench_spec Builder Conair Instr List Mirlib String Value
