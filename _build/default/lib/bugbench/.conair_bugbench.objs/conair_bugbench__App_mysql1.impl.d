lib/bugbench/app_mysql1.ml: Bench_spec Builder Conair Instr List Mirlib Value
