lib/bugbench/bench_spec.ml: Conair Program
