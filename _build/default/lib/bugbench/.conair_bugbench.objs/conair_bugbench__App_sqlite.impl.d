lib/bugbench/app_sqlite.ml: Bench_spec Builder Conair Instr Mirlib Value
