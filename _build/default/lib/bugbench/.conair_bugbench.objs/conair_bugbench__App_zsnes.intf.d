lib/bugbench/app_zsnes.mli: Bench_spec
