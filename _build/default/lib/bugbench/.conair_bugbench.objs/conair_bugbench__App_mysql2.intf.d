lib/bugbench/app_mysql2.mli: Bench_spec
