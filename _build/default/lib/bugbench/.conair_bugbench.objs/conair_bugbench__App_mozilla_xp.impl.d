lib/bugbench/app_mozilla_xp.ml: Bench_spec Builder Conair Instr List Mirlib String Value
