lib/bugbench/app_fft.mli: Bench_spec
