lib/bugbench/micro_patterns.mli: Conair Program
