lib/bugbench/mirlib.ml: Builder Conair Instr List Printf
