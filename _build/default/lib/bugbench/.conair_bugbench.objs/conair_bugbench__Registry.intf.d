lib/bugbench/registry.mli: Bench_spec
