lib/bugbench/catalog.mli: Conair Program
