lib/bugbench/micro_patterns.ml: Builder Conair Instr Mirlib Program Value
