lib/bugbench/bench_spec.mli: Conair Program
