lib/bugbench/catalog.ml: Builder Conair Instr List Micro_patterns Mirlib Program Value
