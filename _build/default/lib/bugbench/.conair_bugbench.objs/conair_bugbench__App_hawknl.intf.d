lib/bugbench/app_hawknl.mli: Bench_spec
