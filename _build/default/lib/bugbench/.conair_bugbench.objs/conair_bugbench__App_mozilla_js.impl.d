lib/bugbench/app_mozilla_js.ml: Bench_spec Builder Conair Instr Mirlib Value
