lib/bugbench/app_mysql2.ml: Bench_spec Builder Conair Instr List Mirlib Value
