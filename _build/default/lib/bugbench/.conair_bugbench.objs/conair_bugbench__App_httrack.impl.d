lib/bugbench/app_httrack.ml: Bench_spec Builder Conair Instr List Mirlib String Value
