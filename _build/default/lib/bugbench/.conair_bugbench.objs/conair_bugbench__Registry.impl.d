lib/bugbench/registry.ml: App_apache App_fft App_hawknl App_httrack App_mozilla_js App_mozilla_xp App_mysql1 App_mysql2 App_pbzip2 App_sqlite App_transmission App_zsnes Bench_spec List String
