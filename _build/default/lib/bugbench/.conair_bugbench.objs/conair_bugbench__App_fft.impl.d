lib/bugbench/app_fft.ml: Bench_spec Builder Conair Instr List Mirlib Value
