lib/bugbench/app_mozilla_js.mli: Bench_spec
