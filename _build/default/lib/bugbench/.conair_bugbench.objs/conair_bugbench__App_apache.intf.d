lib/bugbench/app_apache.mli: Bench_spec
