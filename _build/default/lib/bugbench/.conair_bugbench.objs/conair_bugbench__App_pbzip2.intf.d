lib/bugbench/app_pbzip2.mli: Bench_spec
