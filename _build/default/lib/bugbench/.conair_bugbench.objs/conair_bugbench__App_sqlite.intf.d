lib/bugbench/app_sqlite.mli: Bench_spec
