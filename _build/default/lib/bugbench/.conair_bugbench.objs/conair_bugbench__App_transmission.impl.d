lib/bugbench/app_transmission.ml: Bench_spec Builder Conair Instr List Mirlib Value
