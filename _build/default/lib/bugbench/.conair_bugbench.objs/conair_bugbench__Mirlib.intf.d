lib/bugbench/mirlib.mli: Builder Conair Instr
