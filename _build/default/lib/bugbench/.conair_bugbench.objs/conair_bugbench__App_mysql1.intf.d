lib/bugbench/app_mysql1.mli: Bench_spec
