lib/bugbench/app_hawknl.ml: Bench_spec Builder Conair Instr List Mirlib String Value
