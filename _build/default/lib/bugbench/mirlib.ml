(* A small "standard library" of application code written in Mir.

   The paper's benchmarks are full applications (MySQL, Mozilla, HTTrack,
   ...): the interesting bug is a handful of lines, but the *population* of
   potential failure sites — pointer dereferences, asserts, outputs, locks —
   comes from the surrounding application code. These helpers provide that
   surrounding code for our benchmark programs: vectors, hash tables,
   checksums, a compute kernel and a staged worker pipeline, all genuinely
   executed by the benchmark workloads.

   Every function here is ordinary Mir built with [Builder]; the analysis
   treats it exactly like the hand-written bug cores. *)

open Conair.Ir
module B = Builder

let g name = Instr.Global name
let s name = Instr.Stack name

(* ------------------------------------------------------------------ *)
(* Pure compute                                                        *)
(* ------------------------------------------------------------------ *)

(* compute_kernel(n): sum of i*i mod 9973 for i < n — a register-only hot
   loop, the "scientific computing" filler that keeps dereference density
   realistic. *)
let add_compute_kernel b =
  B.func b "compute_kernel" ~params:[ "n" ] @@ fun f ->
  B.label f "entry";
  B.move f "acc" (B.int 0);
  B.move f "i" (B.int 0);
  B.label f "loop";
  B.lt f "c" (B.reg "i") (B.reg "n");
  B.branch f (B.reg "c") "body" "done_";
  B.label f "body";
  B.mul f "sq" (B.reg "i") (B.reg "i");
  B.binop f "sq" Instr.Mod (B.reg "sq") (B.int 9973);
  B.add f "acc" (B.reg "acc") (B.reg "sq");
  B.add f "i" (B.reg "i") (B.int 1);
  B.jump f "loop";
  B.label f "done_";
  B.ret f (Some (B.reg "acc"))

(* ------------------------------------------------------------------ *)
(* Vectors: [len; e0; e1; ...] on the heap                             *)
(* ------------------------------------------------------------------ *)

let add_vector_funcs b =
  (B.func b "vec_new" ~params:[ "cap" ] @@ fun f ->
   B.label f "entry";
   B.add f "sz" (B.reg "cap") (B.int 1);
   B.alloc f "v" (B.reg "sz");
   B.store_idx f (B.reg "v") (B.int 0) (B.int 0);
   B.ret f (Some (B.reg "v")));
  (B.func b "vec_len" ~params:[ "v" ] @@ fun f ->
   B.label f "entry";
   B.load_idx f "len" (B.reg "v") (B.int 0);
   B.ret f (Some (B.reg "len")));
  (B.func b "vec_push" ~params:[ "v"; "x" ] @@ fun f ->
   B.label f "entry";
   B.load_idx f "len" (B.reg "v") (B.int 0);
   B.add f "slot" (B.reg "len") (B.int 1);
   B.store_idx f (B.reg "v") (B.reg "slot") (B.reg "x");
   B.add f "len2" (B.reg "len") (B.int 1);
   B.store_idx f (B.reg "v") (B.int 0) (B.reg "len2");
   B.ret f (Some (B.reg "len2")));
  (B.func b "vec_get" ~params:[ "v"; "i" ] @@ fun f ->
   B.label f "entry";
   B.load_idx f "len" (B.reg "v") (B.int 0);
   B.lt f "ok" (B.reg "i") (B.reg "len");
   B.assert_ f (B.reg "ok") ~msg:"vec_get: index within bounds";
   B.add f "slot" (B.reg "i") (B.int 1);
   B.load_idx f "x" (B.reg "v") (B.reg "slot");
   B.ret f (Some (B.reg "x")));
  B.func b "vec_sum" ~params:[ "v" ] @@ fun f ->
  B.label f "entry";
  B.load_idx f "len" (B.reg "v") (B.int 0);
  B.move f "acc" (B.int 0);
  B.move f "i" (B.int 0);
  B.label f "loop";
  B.lt f "c" (B.reg "i") (B.reg "len");
  B.branch f (B.reg "c") "body" "done_";
  B.label f "body";
  B.add f "slot" (B.reg "i") (B.int 1);
  B.load_idx f "x" (B.reg "v") (B.reg "slot");
  B.add f "acc" (B.reg "acc") (B.reg "x");
  B.add f "i" (B.reg "i") (B.int 1);
  B.jump f "loop";
  B.label f "done_";
  B.ret f (Some (B.reg "acc"))

(* ------------------------------------------------------------------ *)
(* A direct-mapped table: heap array indexed by key mod size           *)
(* ------------------------------------------------------------------ *)

let add_table_funcs b =
  (B.func b "table_new" ~params:[ "n" ] @@ fun f ->
   B.label f "entry";
   B.alloc f "t" (B.reg "n");
   B.ret f (Some (B.reg "t")));
  (B.func b "table_put" ~params:[ "t"; "n"; "k"; "x" ] @@ fun f ->
   B.label f "entry";
   B.binop f "i" Instr.Mod (B.reg "k") (B.reg "n");
   B.store_idx f (B.reg "t") (B.reg "i") (B.reg "x");
   B.ret f None);
  B.func b "table_get" ~params:[ "t"; "n"; "k" ] @@ fun f ->
  B.label f "entry";
  B.binop f "i" Instr.Mod (B.reg "k") (B.reg "n");
  B.load_idx f "x" (B.reg "t") (B.reg "i");
  B.ret f (Some (B.reg "x"))

(* ------------------------------------------------------------------ *)
(* Checksum + logging                                                  *)
(* ------------------------------------------------------------------ *)

let add_checksum_funcs b =
  B.func b "checksum" ~params:[ "v" ] @@ fun f ->
  B.label f "entry";
  B.load_idx f "len" (B.reg "v") (B.int 0);
  B.move f "acc" (B.int 7);
  B.move f "i" (B.int 0);
  B.label f "loop";
  B.lt f "c" (B.reg "i") (B.reg "len");
  B.branch f (B.reg "c") "body" "done_";
  B.label f "body";
  B.add f "slot" (B.reg "i") (B.int 1);
  B.load_idx f "x" (B.reg "v") (B.reg "slot");
  B.mul f "acc" (B.reg "acc") (B.int 31);
  B.add f "acc" (B.reg "acc") (B.reg "x");
  B.binop f "acc" Instr.Mod (B.reg "acc") (B.int 1000003);
  B.add f "i" (B.reg "i") (B.int 1);
  B.jump f "loop";
  B.label f "done_";
  B.ret f (Some (B.reg "acc"))

let add_log_funcs b =
  B.func b "log_value" ~params:[ "x" ] @@ fun f ->
  B.label f "entry";
  B.output f "log %v" [ B.reg "x" ];
  B.ret f None

(* ------------------------------------------------------------------ *)
(* A staged worker pipeline                                            *)
(* ------------------------------------------------------------------ *)

(* [add_pipeline b ~stages] adds [stage_1 .. stage_k], each reading a
   vector, transforming it with a stage-specific multiplier, validating an
   invariant and returning a checksum; plus [run_pipeline v] that chains
   them. This is the bulk "application logic" whose size varies per
   benchmark, like the very different LOC of the paper's applications. *)
let add_pipeline b ~stages =
  for k = 1 to stages do
    B.func b (Printf.sprintf "stage_%d" k) ~params:[ "v" ] @@ fun f ->
    B.label f "entry";
    B.load_idx f "len" (B.reg "v") (B.int 0);
    B.binop f "nonempty" Instr.Ge (B.reg "len") (B.int 0);
    B.assert_ f (B.reg "nonempty") ~msg:(Printf.sprintf "stage %d: sane length" k);
    B.move f "i" (B.int 0);
    B.label f "loop";
    B.lt f "c" (B.reg "i") (B.reg "len");
    B.branch f (B.reg "c") "body" "done_";
    B.label f "body";
    B.add f "slot" (B.reg "i") (B.int 1);
    B.load_idx f "x" (B.reg "v") (B.reg "slot");
    B.mul f "x" (B.reg "x") (B.int (k + 1));
    B.binop f "x" Instr.Mod (B.reg "x") (B.int 65537);
    B.store_idx f (B.reg "v") (B.reg "slot") (B.reg "x");
    B.add f "i" (B.reg "i") (B.int 1);
    B.jump f "loop";
    B.label f "done_";
    B.call f ~into:"ck" "checksum" [ B.reg "v" ];
    B.ret f (Some (B.reg "ck"))
  done;
  B.func b "run_pipeline" ~params:[ "v" ] @@ fun f ->
  B.label f "entry";
  B.move f "ck" (B.int 0);
  for k = 1 to stages do
    B.call f ~into:"ck" (Printf.sprintf "stage_%d" k) [ B.reg "v" ]
  done;
  B.ret f (Some (B.reg "ck"))

(* ------------------------------------------------------------------ *)
(* Reporting / diagnostics functions                                    *)
(* ------------------------------------------------------------------ *)

(* [add_reporting b ~reports] adds [report_1 .. report_k]: each validates
   its argument against a report-specific bound (an assertion site) and
   emits a formatted line (a wrong-output site). Real applications carry
   large populations of such diagnostics — HTTrack's developers left
   hundreds of assertions in the code, which dominates its Table 4 row in
   the paper. [run_reports v] drives a few of them. *)
let add_reporting b ~reports =
  for k = 1 to reports do
    B.func b (Printf.sprintf "report_%d" k) ~params:[ "v" ] @@ fun f ->
    B.label f "entry";
    B.binop f "sane" Instr.Ge (B.reg "v") (B.int (-1000000));
    B.assert_ f (B.reg "sane")
      ~msg:(Printf.sprintf "report %d: value in range" k);
    B.output f (Printf.sprintf "report %d: %%v" k) [ B.reg "v" ];
    B.ret f None
  done;
  B.func b "run_reports" ~params:[ "v" ] @@ fun f ->
  B.label f "entry";
  for k = 1 to min reports 2 do
    B.call f (Printf.sprintf "report_%d" k) [ B.reg "v" ]
  done;
  B.ret f None

(** Everything at once; [stages] scales the amount of pointer-heavy
    application code, [reports] the amount of diagnostic code. *)
let add_stdlib ?(stages = 3) ?(reports = 0) b =
  add_compute_kernel b;
  add_vector_funcs b;
  add_table_funcs b;
  add_checksum_funcs b;
  add_log_funcs b;
  add_pipeline b ~stages;
  if reports > 0 then add_reporting b ~reports

(* ------------------------------------------------------------------ *)
(* Common main shapes                                                  *)
(* ------------------------------------------------------------------ *)

(** A main that spawns the given thread functions (no arguments), joins
    them all, then exits. *)
let two_thread_main b ~threads =
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  List.iteri
    (fun i name -> B.spawn f (Printf.sprintf "t%d" i) name [])
    threads;
  List.iteri
    (fun i _ -> B.join f (B.reg (Printf.sprintf "t%d" i)))
    threads;
  B.exit_ f
