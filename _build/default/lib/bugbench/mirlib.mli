(** A small "standard library" of application code written in Mir: the
    bulk of the potential failure sites in the benchmark programs, as in
    the paper's real applications where the interesting bug is a handful
    of lines inside hundreds of thousands. All helpers are ordinary Mir
    built with {!Conair.Ir.Builder} and genuinely executed by the
    benchmark workloads. *)

open Conair.Ir

val g : string -> Instr.mem
(** A global location. *)

val s : string -> Instr.mem
(** A stack-slot location. *)

val add_compute_kernel : Builder.t -> unit
(** [compute_kernel(n)]: a register-only arithmetic hot loop — the
    compute that keeps dereference density realistic. *)

val add_vector_funcs : Builder.t -> unit
(** [vec_new/vec_len/vec_push/vec_get/vec_sum] over heap blocks laid out
    as [len; e0; e1; ...]. *)

val add_table_funcs : Builder.t -> unit
(** [table_new/table_put/table_get]: a direct-mapped table. *)

val add_checksum_funcs : Builder.t -> unit
val add_log_funcs : Builder.t -> unit

val add_pipeline : Builder.t -> stages:int -> unit
(** [stage_1 .. stage_k] plus [run_pipeline]: the scalable "application
    logic" whose size varies per benchmark. Requires
    {!add_checksum_funcs}. *)

val add_reporting : Builder.t -> reports:int -> unit
(** [report_1 .. report_k] (an assertion + a formatted output each) plus
    [run_reports]: the scalable diagnostics population, like the hundreds
    of assertions HTTrack's developers left in the code. *)

val add_stdlib : ?stages:int -> ?reports:int -> Builder.t -> unit
(** Everything at once; [stages] scales the pointer-heavy application
    code, [reports] the diagnostics. *)

val two_thread_main : Builder.t -> threads:string list -> unit
(** A main that spawns the given thread functions, joins them all, then
    exits. *)
