(* Random-program generators for the property-based tests.

   Programs are derived deterministically from small integer "spec" values,
   which keeps QCheck shrinking and printing trivial and failures
   reproducible. *)

open Conair.Ir
module B = Builder

(* ------------------------------------------------------------------ *)
(* Random straight-line arithmetic with a reference evaluator           *)
(* ------------------------------------------------------------------ *)

type arith_op = { code : int; a : int; b : int }
(* [code mod 5] selects the operator; [a]/[b] select either a previous
   register (by index) or a constant. *)

let arith_spec_gen =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (map3
         (fun code a b -> { code; a; b })
         (int_range 0 4) (int_range 0 1000) (int_range 0 1000)))

let arith_spec_print ops =
  String.concat ";"
    (List.map (fun o -> Printf.sprintf "(%d,%d,%d)" o.code o.a o.b) ops)

(* Build the Mir program and compute the expected result with plain OCaml
   arithmetic at the same time. *)
let arith_program (ops : arith_op list) : Program.t * int =
  let expected = ref [] in
  (* values of r0, r1, ... *)
  let operand sel =
    let prior = List.length !expected in
    if prior > 0 && sel mod 2 = 0 then begin
      let i = sel / 2 mod prior in
      (B.reg (Printf.sprintf "r%d" i), List.nth (List.rev !expected) i)
    end
    else
      let c = (sel mod 19) + 1 in
      (B.int c, c)
  in
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    List.iteri
      (fun i (o : arith_op) ->
        let dst = Printf.sprintf "r%d" i in
        let oa, va = operand o.a and ob, vb = operand o.b in
        let v =
          match o.code mod 5 with
          | 0 ->
              B.add f dst oa ob;
              va + vb
          | 1 ->
              B.sub f dst oa ob;
              va - vb
          | 2 ->
              B.mul f dst oa ob;
              va * vb
          | 3 ->
              (* divisor is a constant >= 1 by construction of [operand]
                 when we force the constant branch *)
              let c = (o.b mod 19) + 1 in
              B.binop f dst Instr.Div oa (B.int c);
              va / c
          | _ ->
              let c = (o.b mod 19) + 1 in
              B.binop f dst Instr.Mod oa (B.int c);
              (* the interpreter uses OCaml's [mod], so the reference is
                 literally the same operator *)
              va mod c
        in
        expected := v :: !expected)
      ops;
    let last = Printf.sprintf "r%d" (List.length ops - 1) in
    B.output f "%v" [ B.reg last ];
    B.exit_ f
  in
  (p, List.hd !expected)

(* ------------------------------------------------------------------ *)
(* Random CFGs for the region-walk safety property                      *)
(* ------------------------------------------------------------------ *)

type cfg_spec = {
  nblocks : int;  (** 1..5 *)
  block_ops : int list list;  (** op codes per block, 0..5 each *)
  terms : (int * int) list;  (** per block: branch targets *)
}

let cfg_spec_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun nblocks ->
    list_repeat nblocks (list_size (int_range 0 4) (int_range 0 9))
    >>= fun block_ops ->
    list_repeat nblocks (pair (int_range 0 9) (int_range 0 9))
    >>= fun terms -> return { nblocks; block_ops; terms })

let cfg_spec_print s =
  Printf.sprintf "{n=%d; ops=[%s]; terms=[%s]}" s.nblocks
    (String.concat " | "
       (List.map
          (fun ops -> String.concat "," (List.map string_of_int ops))
          s.block_ops))
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) s.terms))

(* Op codes: 0-3 safe, 4-6 destroying, 7 compensable, 8-9 safe reads.
   Every op writes a fresh register, so the program is trivially
   well-formed for the *static* analyses (these programs are never run). *)
let emit_op f fresh code =
  let dst = Printf.sprintf "t%d" fresh in
  match code with
  | 0 | 1 -> B.move f dst (B.int code)
  | 2 -> B.add f dst (B.int 1) (B.int 2)
  | 3 -> B.unop f dst Instr.Not (B.bool false)
  | 4 -> B.store f (Instr.Global "g") (B.int 1)
  | 5 -> B.store f (Instr.Stack "s") (B.int 2)
  | 6 -> B.output f "x" []
  | 7 -> B.alloc f dst (B.int 1)
  | 8 -> B.load f dst (Instr.Global "g")
  | _ -> B.load f dst (Instr.Stack "s")

(* The site lives at the end of the last block: [load g; assert]. *)
let cfg_program (s : cfg_spec) : Program.t =
  let fresh = ref 0 in
  let next () =
    incr fresh;
    !fresh
  in
  let bname i = Printf.sprintf "b%d" i in
  B.build ~main:"main" @@ fun b ->
  B.global b "g" (Value.Int 1);
  B.func b "main" ~params:[] @@ fun f ->
  List.iteri
    (fun i ops ->
      B.label f (bname i);
      List.iter (fun code -> emit_op f (next ()) code) ops;
      if i = s.nblocks - 1 then begin
        B.load f "site_v" (Instr.Global "g");
        B.assert_ f (B.reg "site_v") ~msg:"the site";
        B.exit_ f
      end
      else begin
        let t1, t2 = List.nth s.terms i in
        let target k = bname (k mod s.nblocks) in
        if (t1 + t2) mod 3 = 0 then B.jump f (target t1)
        else begin
          let c = Printf.sprintf "c%d" (next ()) in
          B.move f c (B.bool true);
          B.branch f (B.reg c) (target t1) (target t2)
        end
      end)
    s.block_ops

(* Enumerate instruction paths from the entry to [site_iid], visiting each
   block at most twice, capped. Returns the list of paths, each a list of
   instructions in execution order (site excluded). *)
let paths_to_site (func : Func.t) ~site_iid ~cap =
  let cfg = Cfg.of_func func in
  let results = ref [] in
  let count = ref 0 in
  let rec go label visits acc_rev =
    if !count >= cap then ()
    else
      let seen = try List.assoc label visits with Not_found -> 0 in
      if seen >= 2 then ()
      else
        let visits = (label, seen + 1) :: List.remove_assoc label visits in
        let block = Cfg.block cfg label in
        (* walk instructions until the site or the end of the block *)
        let n = Array.length block.instrs in
        let rec scan i acc_rev =
          if i >= n then `Fallthrough acc_rev
          else
            let instr = block.instrs.(i) in
            if instr.Instr.iid = site_iid then `Hit acc_rev
            else scan (i + 1) (instr :: acc_rev)
        in
        match scan 0 acc_rev with
        | `Hit acc_rev ->
            incr count;
            results := List.rev acc_rev :: !results
        | `Fallthrough acc_rev ->
            List.iter
              (fun succ -> go succ visits acc_rev)
              (Block.successors block)
  in
  go func.entry [] [];
  !results

(* ------------------------------------------------------------------ *)
(* Random racy reader/writer programs                                   *)
(* ------------------------------------------------------------------ *)

type racy_spec = {
  pre_ops : int list;  (** safe ops the reader runs before the racy read *)
  writer_delay : int;  (** 1..60 *)
  expected : int;  (** the value the writer publishes *)
}

let racy_spec_gen =
  QCheck.Gen.(
    map3
      (fun pre_ops writer_delay expected ->
        { pre_ops; writer_delay; expected = 1 + expected })
      (list_size (int_range 0 6) (int_range 0 3))
      (int_range 1 60) (int_range 0 99))

let racy_spec_print s =
  Printf.sprintf "{pre=[%s]; delay=%d; expected=%d}"
    (String.concat "," (List.map string_of_int s.pre_ops))
    s.writer_delay s.expected

let racy_program (s : racy_spec) : Program.t =
  B.build ~main:"main" @@ fun b ->
  B.global b "shared" (Value.Int 0);
  (B.func b "reader" ~params:[] @@ fun f ->
   B.label f "entry";
   List.iteri
     (fun i code ->
       let dst = Printf.sprintf "p%d" i in
       match code with
       | 0 -> B.move f dst (B.int i)
       | 1 -> B.add f dst (B.int i) (B.int 1)
       | 2 -> B.load f dst (Instr.Global "shared")
       | _ -> B.unop f dst Instr.Neg (B.int i))
     s.pre_ops;
   B.load f "v" (Instr.Global "shared");
   B.assert_ f ~oracle:true (B.reg "v") ~msg:"shared published";
   B.output f "%v" [ B.reg "v" ];
   B.ret f None);
  (B.func b "writer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.sleep f s.writer_delay;
   B.store f (Instr.Global "shared") (B.int s.expected);
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "reader" [];
  B.spawn f "t2" "writer" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f

(* ------------------------------------------------------------------ *)
(* Ring deadlocks and lost wakeups                                      *)
(* ------------------------------------------------------------------ *)

type ring_spec = { threads : int; hold_delay : int }

let ring_spec_gen =
  QCheck.Gen.(
    map2
      (fun threads hold_delay -> { threads; hold_delay })
      (int_range 2 5) (int_range 5 40))

let ring_spec_print s =
  Printf.sprintf "{threads=%d; hold=%d}" s.threads s.hold_delay

(* k threads, k locks; thread i takes lock i then lock (i+1) mod k. Hangs
   unhardened; every inner acquisition is ConAir-recoverable. *)
let ring_program (s : ring_spec) : Program.t =
  let k = s.threads in
  let lock_name i = Printf.sprintf "L%d" (i mod k) in
  B.build ~main:"main" @@ fun b ->
  for i = 0 to k - 1 do
    B.mutex b (lock_name i)
  done;
  for i = 0 to k - 1 do
    B.func b (Printf.sprintf "w%d" i) ~params:[] @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref (lock_name i));
    B.sleep f s.hold_delay;
    B.lock f (B.mutex_ref (lock_name (i + 1)));
    B.unlock f (B.mutex_ref (lock_name (i + 1)));
    B.unlock f (B.mutex_ref (lock_name i));
    B.ret f None
  done;
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  for i = 0 to k - 1 do
    B.spawn f (Printf.sprintf "t%d" i) (Printf.sprintf "w%d" i) []
  done;
  for i = 0 to k - 1 do
    B.join f (B.reg (Printf.sprintf "t%d" i))
  done;
  B.exit_ f

type wakeup_spec = { check_gap : int; notify_at : int; payload : int }

let wakeup_spec_gen =
  QCheck.Gen.(
    map3
      (fun check_gap notify_at payload ->
        { check_gap; notify_at; payload = 1 + payload })
      (int_range 8 60) (int_range 2 6) (int_range 0 99))

let wakeup_spec_print s =
  Printf.sprintf "{gap=%d; notify_at=%d; payload=%d}" s.check_gap s.notify_at
    s.payload

(* Lost wakeup: the producer notifies inside the consumer's check-to-wait
   gap; unhardened the consumer hangs, hardened the timed wait recovers. *)
let wakeup_program (s : wakeup_spec) : Program.t =
  B.build ~main:"main" @@ fun b ->
  B.global b "ready" (Value.Int 0);
  (B.func b "consumer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "r" (Instr.Global "ready");
   B.branch f (B.reg "r") "go" "park";
   B.label f "park";
   B.sleep f s.check_gap;
   B.wait f "data";
   B.jump f "go";
   B.label f "go";
   B.load f "r2" (Instr.Global "ready");
   B.output f "%v" [ B.reg "r2" ];
   B.ret f None);
  (B.func b "producer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.sleep f s.notify_at;
   B.store f (Instr.Global "ready") (B.int s.payload);
   B.notify f "data";
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "consumer" [];
  B.spawn f "t2" "producer" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f

(* ------------------------------------------------------------------ *)
(* Random heap-operation sequences with a reference model               *)
(* ------------------------------------------------------------------ *)

type heap_op = H_alloc of int | H_free of int | H_store of int * int * int
             | H_load of int * int

let heap_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (frequency
         [
           (3, map (fun n -> H_alloc (1 + (n mod 5))) (int_range 0 100));
           (1, map (fun i -> H_free i) (int_range 0 10));
           (3, map3 (fun i o v -> H_store (i, o, v)) (int_range 0 10)
                (int_range 0 6) (int_range 0 99));
           (3, map (fun (i, o) -> H_load (i, o))
                (pair (int_range 0 10) (int_range 0 6)));
         ]))

let heap_ops_print ops =
  String.concat ";"
    (List.map
       (function
         | H_alloc n -> Printf.sprintf "alloc %d" n
         | H_free i -> Printf.sprintf "free #%d" i
         | H_store (i, o, v) -> Printf.sprintf "#%d[%d]:=%d" i o v
         | H_load (i, o) -> Printf.sprintf "#%d[%d]" i o)
       ops)
