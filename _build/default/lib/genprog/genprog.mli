(** Random-program generators: the substrate of the property-based tests
    and of the {e conair_fuzz} tool. Programs derive deterministically
    from small integer "spec" values, so QCheck shrinking, printing and
    failure reproduction are trivial. *)

open Conair.Ir

(** {1 Straight-line arithmetic with a reference evaluator} *)

type arith_op = { code : int; a : int; b : int }

val arith_spec_gen : arith_op list QCheck.Gen.t
val arith_spec_print : arith_op list -> string

val arith_program : arith_op list -> Program.t * int
(** The program and its expected final output value. *)

(** {1 Random CFGs for the region-walk safety property} *)

type cfg_spec = {
  nblocks : int;
  block_ops : int list list;
  terms : (int * int) list;
}

val cfg_spec_gen : cfg_spec QCheck.Gen.t
val cfg_spec_print : cfg_spec -> string

val cfg_program : cfg_spec -> Program.t
(** A (statically analyzable, never executed) function whose last block
    ends in a failure site with message ["the site"]. *)

val paths_to_site :
  Func.t -> site_iid:int -> cap:int -> Instr.t list list
(** Instruction paths from the entry to the site (each block visited at
    most twice, at most [cap] paths) — the reference enumeration the
    safety property checks the region walk against. *)

(** {1 Racy reader/writer programs} *)

type racy_spec = { pre_ops : int list; writer_delay : int; expected : int }

val racy_spec_gen : racy_spec QCheck.Gen.t
val racy_spec_print : racy_spec -> string

val racy_program : racy_spec -> Program.t
(** Two threads: a reader with an oracle assert on a shared value the
    writer publishes after [writer_delay] steps; output is the value. *)

(** {1 Ring deadlocks and lost wakeups} *)

type ring_spec = { threads : int; hold_delay : int }

val ring_spec_gen : ring_spec QCheck.Gen.t
val ring_spec_print : ring_spec -> string

val ring_program : ring_spec -> Program.t
(** [k] threads in a lock-order cycle: hangs unhardened; every inner
    acquisition is recoverable. *)

type wakeup_spec = { check_gap : int; notify_at : int; payload : int }

val wakeup_spec_gen : wakeup_spec QCheck.Gen.t
val wakeup_spec_print : wakeup_spec -> string

val wakeup_program : wakeup_spec -> Program.t
(** A lost-wakeup hang (the notify lands inside the consumer's
    check-to-wait gap); the hardened timed wait recovers and outputs the
    payload. *)

(** {1 Heap-operation sequences with a reference model} *)

type heap_op =
  | H_alloc of int
  | H_free of int
  | H_store of int * int * int
  | H_load of int * int

val heap_ops_gen : heap_op list QCheck.Gen.t
val heap_ops_print : heap_op list -> string
