lib/genprog/genprog.ml: Array Block Builder Cfg Conair Func Instr List Printf Program QCheck String Value
