lib/genprog/genprog.mli: Conair Func Instr Program QCheck
