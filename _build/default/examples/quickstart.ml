(* Quickstart: build a small multi-threaded program with a hidden order
   violation, watch it crash, then harden it with ConAir and watch it
   recover.

   Run with:  dune exec examples/quickstart.exe *)

open Conair.Ir
module B = Builder
module Outcome = Conair.Runtime.Outcome

(* A config-reader thread races with the config-writer thread: under an
   unlucky schedule the reader dereferences the shared pointer before the
   writer has published it. *)
let program =
  B.build ~main:"main" @@ fun b ->
  B.global b "config" Value.Null;
  (B.func b "reader" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "cfg" (Instr.Global "config");
   B.load_idx f "port" (B.reg "cfg") (B.int 0);
   B.output f "listening on port %v" [ B.reg "port" ];
   B.ret f None);
  (B.func b "writer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.sleep f 25;
   (* the writer is slow to publish *)
   B.alloc f "cfg" (B.int 1);
   B.store_idx f (B.reg "cfg") (B.int 0) (B.int 8080);
   B.store f (Instr.Global "config") (B.reg "cfg");
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "reader" [];
  B.spawn f "t2" "writer" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f

let () =
  print_endline "=== The original program, under the buggy schedule ===";
  let r = Conair.execute program in
  Format.printf "outcome: %a@." Outcome.pp r.outcome;

  print_endline "\n=== ConAir hardens it (survival mode, no bug knowledge) ===";
  let h = Conair.harden_exn program Conair.Survival in
  Format.printf "%a@." Conair.Transform.Report.pp h.report;

  print_endline "\n=== The hardened program, same schedule ===";
  let r = Conair.execute_hardened h in
  Format.printf "outcome: %a@." Outcome.pp r.outcome;
  List.iter (fun o -> Format.printf "output: %s@." o) r.outputs;
  Format.printf "rollbacks performed: %d@." r.stats.rollbacks;
  Format.printf "recovery took %d virtual steps@."
    (Conair.Runtime.Stats.max_recovery_time r.stats)
