(* Survival-mode audit: run the full ConAir static pipeline over every
   benchmark application and print what a deployment would get — the site
   census (Table 4), how many sites the §4.2 optimization pruned, which
   sites need inter-procedural recovery (§4.3), and the number of
   checkpoints the transformation inserted (Table 5).

   Run with:  dune exec examples/survival_audit.exe *)

module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

let () =
  Format.printf "%-13s %7s %7s %7s %7s | %6s %7s %9s %7s@." "App." "assert"
    "output" "segflt" "dlock" "recov" "pruned" "interproc" "ckpts";
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let h = Conair.harden_exn inst.program Conair.Survival in
      let c = h.report.census in
      Format.printf "%-13s %7d %7d %7d %7d | %6d %7d %9d %7d@." s.info.name
        c.assertion c.wrong_output c.seg_fault c.deadlock
        h.report.recoverable_sites h.report.unrecoverable_sites
        h.report.interproc_sites h.report.static_points)
    Registry.all;
  Format.printf
    "@.Every pointer dereference is a potential segfault site, so that \
     column dominates, exactly as in the paper's Table 4.@."
