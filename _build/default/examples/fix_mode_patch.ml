(* The fix-mode workflow (§3.1.2): a user reports a non-deterministic
   crash; the developer does not yet understand the root cause, but the
   crash report names the failing instruction — that is all ConAir needs
   to generate a safe temporary patch.

   1. run the program, watch it crash;
   2. read the failing instruction id out of the crash report;
   3. harden exactly that site (fix mode) and ship the patched program;
   4. verify over many seeds with a recovery trial, as in §5.

   Run with:  dune exec examples/fix_mode_patch.exe *)

module Registry = Conair_bugbench.Registry
module Spec = Conair_bugbench.Bench_spec
module Outcome = Conair.Runtime.Outcome

let () =
  let spec = Option.get (Registry.find "HTTrack") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:false in

  print_endline "=== 1. The user's crash ===";
  let crash = Conair.execute inst.program in
  Format.printf "outcome: %a@." Outcome.pp crash.outcome;

  let failing_iid =
    match crash.outcome with
    | Outcome.Failed { iid = Some iid; _ } -> iid
    | _ -> failwith "expected a crash with a failing instruction"
  in
  Format.printf "@.=== 2. The crash report names instruction %d ===@."
    failing_iid;

  print_endline "\n=== 3. Fix mode hardens exactly that site ===";
  let patched = Conair.harden_exn inst.program (Conair.Fix [ failing_iid ]) in
  Format.printf "sites hardened: %d, checkpoints inserted: %d@."
    (List.length patched.plan.site_plans)
    patched.report.static_points;
  let r = Conair.execute_hardened patched in
  Format.printf "patched run: %a@." Outcome.pp r.outcome;
  List.iter (Format.printf "output: %s@.") r.outputs;

  print_endline "\n=== 4. Verify across seeds (the paper's 1000-run check) ===";
  let trial =
    Conair.recovery_trial
      ~config:
        {
          Conair.Runtime.Machine.default_config with
          policy = Conair.Runtime.Sched.Random 1;
          fuel = 8_000_000;
        }
      ~runs:25 ~accept:inst.accept patched
  in
  Format.printf "recovered %d/%d runs (%d rollbacks total)@." trial.recovered
    trial.runs trial.total_rollbacks
