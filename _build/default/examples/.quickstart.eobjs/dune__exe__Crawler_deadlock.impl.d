examples/crawler_deadlock.ml: Conair Conair_bugbench Format List Option
