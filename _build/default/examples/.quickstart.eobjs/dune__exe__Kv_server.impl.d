examples/kv_server.ml: Builder Conair Conair_bugbench Format Instr List Value
