examples/quickstart.mli:
