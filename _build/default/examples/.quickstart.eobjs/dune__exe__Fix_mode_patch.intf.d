examples/fix_mode_patch.mli:
