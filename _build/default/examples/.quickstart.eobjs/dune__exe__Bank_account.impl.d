examples/bank_account.ml: Conair Conair_baselines Conair_bugbench Format List
