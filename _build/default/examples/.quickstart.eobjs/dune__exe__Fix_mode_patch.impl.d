examples/fix_mode_patch.ml: Conair Conair_bugbench Format List Option
