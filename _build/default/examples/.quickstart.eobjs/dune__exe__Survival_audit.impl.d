examples/survival_audit.ml: Conair Conair_bugbench Format List
