examples/survival_audit.mli:
