examples/quickstart.ml: Builder Conair Format Instr List Value
