examples/crawler_deadlock.mli:
