(* Deadlock recovery walkthrough on the HawkNL benchmark (the paper's
   Fig 11): two threads take two locks in opposite orders; ConAir turns the
   recoverable inner acquisition into a timed lock, and on timeout releases
   the outer lock (compensation, §4.1) and reexecutes a large chunk of the
   function.

   Run with:  dune exec examples/crawler_deadlock.exe *)

module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Outcome = Conair.Runtime.Outcome
module Plan = Conair.Analysis.Plan
module Optimize = Conair.Analysis.Optimize

let () =
  let spec = Option.get (Registry.find "HawkNL") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:false in

  print_endline "=== Unhardened: the classic lock-order hang ===";
  let r = Conair.execute inst.program in
  Format.printf "outcome: %a@." Outcome.pp r.outcome;

  print_endline "\n=== What the analysis decides about each lock site ===";
  let h = Conair.harden_exn inst.program Conair.Survival in
  List.iter
    (fun (sp : Plan.site_plan) ->
      if sp.site.kind = Conair.Ir.Instr.Deadlock then
        Format.printf "  %a@." Plan.pp_site_plan sp)
    h.plan.site_plans;

  print_endline "\n=== Hardened: timeout, release, reexecute ===";
  let r = Conair.execute_hardened h in
  Format.printf "outcome: %a@." Outcome.pp r.outcome;
  List.iter (fun o -> Format.printf "output: %s@." o) r.outputs;
  Format.printf
    "rollbacks: %d, locks released by compensation: %d, recovery steps: %d@."
    r.stats.rollbacks r.stats.compensated_locks
    (Conair.Runtime.Stats.max_recovery_time r.stats)
