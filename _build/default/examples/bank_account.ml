(* Bank-account example: the WAR atomicity violation of the paper's Fig 2d
   and its WAW/RAR cousins, shown through ConAir and through the
   whole-program-checkpoint baseline.

   This demonstrates the Fig 4 design spectrum on a concrete workload:
   ConAir's idempotent regions recover the patterns whose failing thread
   only *read* the racy state, while patterns that would need the failing
   thread's own shared write reexecuted need the heavier baseline.

   Run with:  dune exec examples/bank_account.exe *)

module Micro = Conair_bugbench.Micro_patterns
module Outcome = Conair.Runtime.Outcome
module Machine = Conair.Runtime.Machine
module Full_checkpoint = Conair_baselines.Full_checkpoint

let () =
  Format.printf
    "Pattern          expected        ConAir          full-checkpoint@.";
  List.iter
    (fun (p : Micro.pattern) ->
      let h = Conair.harden_exn p.program Conair.Survival in
      let config = { Machine.default_config with max_retries = 300 } in
      let r = Conair.execute_hardened ~config h in
      let fc = Full_checkpoint.run p.program in
      let verdict ok = if ok then "recovers" else "cannot recover" in
      Format.printf "%-16s %-15s %-15s %s@." p.name
        (if p.conair_recoverable then "recoverable" else "beyond ConAir")
        (verdict (Outcome.is_success r.outcome))
        (verdict (Outcome.is_success fc.outcome)))
    (Micro.all ());
  Format.printf
    "@.ConAir recovers WAW and RAR with zero checkpointing cost; RAW and \
     WAR sit beyond the idempotent-region design point (Fig 4) and need \
     whole-program checkpointing, which costs continuous snapshot \
     overhead.@."
