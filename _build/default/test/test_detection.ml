(* Tests for the pluggable deadlock-detection mechanisms (§3.1.1): the
   timeout-based detector (the paper's prototype) and the wait-graph
   cycle detector, which starts recovery the moment the cycle closes. *)

open Test_util
module Machine = Conair.Runtime.Machine
module Stats = Conair.Runtime.Stats
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Catalog = Conair_bugbench.Catalog

let run_with detection ?(fuel = 2_000_000) h =
  let config =
    { Machine.default_config with fuel; deadlock_detection = detection }
  in
  Conair.execute_hardened ~config h

let first_rollback_step (r : Conair.run) =
  List.fold_left
    (fun acc (e : Stats.episode) -> min acc e.ep_start)
    max_int r.stats.episodes

let wait_graph_recovers_hawknl () =
  let s = Option.get (Registry.find "HawkNL") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let r = run_with Machine.Wait_graph h in
  expect_success r;
  Alcotest.(check bool) "outputs accepted" true (inst.accept r.outputs)

let wait_graph_detects_earlier () =
  let s = Option.get (Registry.find "HawkNL") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let slow = run_with Machine.Timeout_based h in
  let fast = run_with Machine.Wait_graph h in
  expect_success slow;
  expect_success fast;
  Alcotest.(check bool)
    "cycle detection fires well before the timeout" true
    (first_rollback_step fast + 100 < first_rollback_step slow)

let wait_graph_recovers_three_way () =
  let entry =
    List.find
      (fun (e : Catalog.entry) -> e.name = "three-way-deadlock")
      (Catalog.all ())
  in
  let h = Conair.harden_exn entry.program Conair.Survival in
  let r = run_with Machine.Wait_graph h in
  expect_success r

let wait_graph_no_false_positive_on_contention () =
  (* Plain contention (no cycle): the timed lock must wait for the owner
     rather than time out immediately. *)
  let open Conair.Ir in
  let module B = Builder in
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.global b "turns" (Value.Int 0);
    (B.func b "holder" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "m");
     B.sleep f 30;
     B.store f (Instr.Global "turns") (B.int 1);
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    (B.func b "waiter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 5;
     B.emit f (Instr.Timed_lock (Ident.Reg.v "ok", B.mutex_ref "m", 200));
     B.assert_ f (B.reg "ok") ~msg:"acquired after the holder finished";
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    Conair_bugbench.Mirlib.two_thread_main b ~threads:[ "holder"; "waiter" ]
  in
  let config =
    { Machine.default_config with deadlock_detection = Machine.Wait_graph }
  in
  expect_success (Conair.execute ~config p)

let detection_equivalent_outcomes () =
  (* Both detectors must recover all three deadlock benchmarks. *)
  List.iter
    (fun name ->
      let s = Option.get (Registry.find name) in
      let inst = s.make ~variant:Spec.Buggy ~oracle:false in
      let h = Conair.harden_exn inst.program Conair.Survival in
      expect_success (run_with Machine.Timeout_based h);
      expect_success (run_with Machine.Wait_graph h))
    [ "HawkNL"; "MozillaJS"; "SQLite" ]

let suites =
  [
    ( "deadlock-detection",
      [
        case "wait graph recovers HawkNL" wait_graph_recovers_hawknl;
        case "wait graph detects earlier than the timeout"
          wait_graph_detects_earlier;
        case "wait graph recovers a three-way cycle"
          wait_graph_recovers_three_way;
        case "no false positive on plain contention"
          wait_graph_no_false_positive_on_contention;
        case "both detectors recover the deadlock benchmarks"
          detection_equivalent_outcomes;
      ] );
  ]
