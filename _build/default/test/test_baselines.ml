(* Tests for the comparison baselines (whole-program restart and
   whole-program checkpoint/rollback) and for the Fig 2 micro patterns that
   delimit ConAir's design point. *)

open Test_util
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Micro = Conair_bugbench.Micro_patterns
module Restart = Conair_baselines.Restart
module Full_checkpoint = Conair_baselines.Full_checkpoint
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome

let config = { Machine.default_config with fuel = 8_000_000 }

let restart_recovers_every_benchmark () =
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let r = Restart.run ~config ~accept:inst.accept inst.program in
      Alcotest.(check bool)
        (s.info.name ^ ": restart eventually succeeds")
        true
        (Outcome.is_success r.outcome);
      Alcotest.(check bool)
        (s.info.name ^ ": more than one attempt was needed")
        true (r.attempts > 1);
      Alcotest.(check bool)
        (s.info.name ^ ": wasted work recorded")
        true (r.wasted_steps > 0))
    Registry.all

let restart_single_attempt_when_no_bug () =
  let s = Option.get (Registry.find "ZSNES") in
  let inst = s.make ~variant:Spec.Clean ~oracle:false in
  let r = Restart.run ~config ~accept:inst.accept inst.program in
  Alcotest.(check int) "one attempt" 1 r.attempts;
  Alcotest.(check int) "nothing wasted" 0 r.wasted_steps

let restart_cost_dominated_by_workload () =
  (* FFT's restart must redo the whole transform: its restart cost is the
     largest in the suite (the paper's Table 7 shape). *)
  let cost name =
    let s = Option.get (Registry.find name) in
    let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
    (Restart.run ~config ~accept:inst.accept inst.program).total_steps
  in
  Alcotest.(check bool) "FFT restart > HawkNL restart" true
    (cost "FFT" > cost "HawkNL")

let full_checkpoint_recovers_benchmarks () =
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let fc_config = { Full_checkpoint.default_config with machine = config } in
      let r = Full_checkpoint.run ~config:fc_config inst.program in
      Alcotest.(check bool)
        (s.info.name ^ ": full checkpoint recovers")
        true
        (Outcome.is_success r.outcome);
      Alcotest.(check bool)
        (s.info.name ^ ": restores happened")
        true (r.restores > 0))
    Registry.all

let full_checkpoint_pays_overhead () =
  (* On a clean run the checkpointing cost is nonzero and grows with the
     snapshot frequency. *)
  let s = Option.get (Registry.find "MySQL2") in
  let inst = s.make ~variant:Spec.Clean ~oracle:false in
  let at interval =
    let cfg =
      { Full_checkpoint.default_config with machine = config; interval }
    in
    let r = Full_checkpoint.run ~config:cfg inst.program in
    Alcotest.(check bool) "clean run succeeds" true
      (Outcome.is_success r.outcome);
    r.checkpoint_overhead_steps
  in
  let coarse = at 1000 and fine = at 100 in
  Alcotest.(check bool) "overhead > 0" true (coarse > 0);
  Alcotest.(check bool) "finer snapshots cost more" true (fine > coarse)

let full_checkpoint_no_restores_on_clean_run () =
  let s = Option.get (Registry.find "HawkNL") in
  let inst = s.make ~variant:Spec.Clean ~oracle:false in
  let fc_config = { Full_checkpoint.default_config with machine = config } in
  let r = Full_checkpoint.run ~config:fc_config inst.program in
  Alcotest.(check int) "no restores" 0 r.restores;
  Alcotest.(check int) "no recovery" 0 r.recovery_steps

(* --- Fig 2 micro patterns ----------------------------------------------- *)

let micro_expectations () =
  List.iter
    (fun (p : Micro.pattern) ->
      (* the bug manifests without protection *)
      let plain = Conair.execute ~config p.program in
      Alcotest.(check bool)
        (p.name ^ ": bug manifests")
        false
        (Outcome.is_success plain.outcome);
      (* ConAir recovers exactly the patterns the paper says it can *)
      let h = Conair.harden_exn p.program Conair.Survival in
      let r =
        Conair.execute_hardened ~config:{ config with max_retries = 300 } h
      in
      Alcotest.(check bool)
        (p.name ^ ": ConAir verdict matches the paper")
        p.conair_recoverable
        (Outcome.is_success r.outcome);
      (* the full-checkpoint baseline recovers all four *)
      let fc =
        Full_checkpoint.run
          ~config:{ Full_checkpoint.default_config with machine = config }
          p.program
      in
      Alcotest.(check bool)
        (p.name ^ ": full checkpoint recovers")
        true
        (Outcome.is_success fc.outcome))
    (Micro.all ())

let rar_recovery_is_fast () =
  (* The read-after-read pattern needs very few retries (the paper's 8µs /
     1 retry story for MySQL2). *)
  let p = (Micro.rar ()).program in
  let h = Conair.harden_exn p Conair.Survival in
  let r = Conair.execute_hardened ~config h in
  expect_success r;
  Alcotest.(check bool) "at most a handful of rollbacks" true
    (r.stats.rollbacks <= 5)

let suites =
  [
    ( "baselines",
      [
        slow_case "restart recovers every benchmark"
          restart_recovers_every_benchmark;
        case "restart: single attempt without the bug"
          restart_single_attempt_when_no_bug;
        case "restart cost dominated by workload"
          restart_cost_dominated_by_workload;
        slow_case "full checkpoint recovers benchmarks"
          full_checkpoint_recovers_benchmarks;
        case "full checkpoint pays overhead" full_checkpoint_pays_overhead;
        case "full checkpoint: clean run has no restores"
          full_checkpoint_no_restores_on_clean_run;
      ] );
    ( "micro-patterns",
      [
        case "Fig 2 expectations" micro_expectations;
        case "RAR recovery is fast" rar_recovery_is_fast;
      ] );
  ]
