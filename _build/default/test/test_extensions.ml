(* Tests for the §3.4 extensions: safe-site pruning and automatic
   null-check annotation. *)

open Conair.Ir
open Conair.Analysis
open Test_util
module B = Builder
module Annotate = Conair.Transform.Annotate

(* --- Prune ------------------------------------------------------------- *)

let census p opts =
  match Plan.analyze ~options:opts p Plan.Survival with
  | Ok plan ->
      Find_sites.census
        (List.map (fun (sp : Plan.site_plan) -> sp.site) plan.site_plans)
  | Error e -> Alcotest.fail e

let prune_safe_local_deref () =
  (* A constant-indexed deref of a fresh constant-size allocation can
     never fault: pruned. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 4);
    B.store_idx f (B.reg "p") (B.int 0) (B.int 1);
    B.load_idx f "v" (B.reg "p") (B.int 3);
    B.exit_ f
  in
  let on = { Plan.default_options with prune_safe = true } in
  Alcotest.(check int) "all derefs pruned" 0 (census p on).seg_fault;
  Alcotest.(check int) "without pruning they remain" 2
    (census p Plan.default_options).seg_fault

let prune_keeps_unsafe_derefs () =
  let site_counts body =
    let p =
      B.build ~main:"main" @@ fun b ->
      B.global b "g" Value.Null;
      B.func b "main" ~params:[] body
    in
    (census p { Plan.default_options with prune_safe = true }).seg_fault
  in
  (* out-of-bounds constant index: kept *)
  Alcotest.(check int) "oob kept" 1
    (site_counts (fun f ->
         B.label f "entry";
         B.alloc f "p" (B.int 2);
         B.load_idx f "v" (B.reg "p") (B.int 2);
         B.exit_ f));
  (* non-constant index: kept *)
  Alcotest.(check int) "dynamic index kept" 1
    (site_counts (fun f ->
         B.label f "entry";
         B.alloc f "p" (B.int 2);
         B.move f "i" (B.int 0);
         B.load_idx f "v" (B.reg "p") (B.reg "i");
         B.exit_ f));
  (* pointer from a global: kept *)
  Alcotest.(check int) "global pointer kept" 1
    (site_counts (fun f ->
         B.label f "entry";
         B.load f "p" (Instr.Global "g");
         B.load_idx f "v" (B.reg "p") (B.int 0);
         B.exit_ f));
  (* escaped pointer: kept (another thread could free it) *)
  Alcotest.(check int) "escaped pointer kept" 1
    (site_counts (fun f ->
         B.label f "entry";
         B.alloc f "p" (B.int 2);
         B.store f (Instr.Global "g") (B.reg "p");
         B.load_idx f "v" (B.reg "p") (B.int 0);
         B.exit_ f));
  (* an intervening free: kept *)
  Alcotest.(check int) "free in between kept" 1
    (site_counts (fun f ->
         B.label f "entry";
         B.alloc f "p" (B.int 2);
         B.alloc f "q" (B.int 2);
         B.free f (B.reg "q");
         B.load_idx f "v" (B.reg "p") (B.int 0);
         B.exit_ f))

let prune_constant_asserts () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.assert_ f (B.bool true) ~msg:"always fine";
    B.assert_ f (B.int 0) ~msg:"always fails";
    B.exit_ f
  in
  let c = census p { Plan.default_options with prune_safe = true } in
  (* assert(true) pruned; assert(0) kept — it can (and will) fail *)
  Alcotest.(check int) "one assert site left" 1 c.assertion

let prune_reduces_checkpoints_in_benchmarks () =
  (* On the real benchmarks pruning may or may not find safe sites, but it
     must never *increase* the footprint, and the programs must still
     recover. *)
  List.iter
    (fun (s : Conair_bugbench.Bench_spec.t) ->
      let inst =
        s.make ~variant:Conair_bugbench.Bench_spec.Buggy
          ~oracle:s.info.needs_oracle
      in
      let h0 = Conair.harden_exn inst.program Conair.Survival in
      let h1 =
        Conair.harden_exn
          ~analysis:{ Plan.default_options with prune_safe = true }
          inst.program Conair.Survival
      in
      Alcotest.(check bool)
        (s.info.name ^ ": pruning never grows the footprint")
        true
        (h1.report.static_points <= h0.report.static_points);
      let r = run_hardened ~fuel:2_000_000 h1 in
      expect_success r;
      Alcotest.(check bool)
        (s.info.name ^ ": still recovers with pruning")
        true (inst.accept r.outputs))
    Conair_bugbench.Registry.all

(* --- Annotate ----------------------------------------------------------- *)

(* The MozillaXP shape: callee derefs its parameter immediately. *)
let deref_callee_program () =
  B.build ~main:"main" @@ fun b ->
  B.global b "obj" Value.Null;
  (B.func b "get_state" ~params:[ "thd" ] @@ fun f ->
   B.label f "entry";
   B.load_idx f "v" (B.reg "thd") (B.int 0);
   B.ret f (Some (B.reg "v")));
  (B.func b "getter" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "p" (Instr.Global "obj");
   B.call f ~into:"st" "get_state" [ B.reg "p" ];
   B.output f "st=%v" [ B.reg "st" ];
   B.ret f None);
  (B.func b "initer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.sleep f 50;
   B.alloc f "o" (B.int 1);
   B.store_idx f (B.reg "o") (B.int 0) (B.int 9);
   B.store f (Instr.Global "obj") (B.reg "o");
   B.ret f None);
  Conair_bugbench.Mirlib.two_thread_main b ~threads:[ "getter"; "initer" ]

let annotate_adds_checks () =
  let p = deref_callee_program () in
  let p', n = Annotate.add_null_checks p in
  check_valid p';
  Alcotest.(check int) "one check added" 1 n;
  (* the annotated program has one more assert site *)
  let sites p = (Find_sites.census (Find_sites.survival p)).assertion in
  Alcotest.(check int) "one more assert site" (sites p + 1) (sites p')

let annotate_turns_interproc_into_intraproc () =
  let p = deref_callee_program () in
  let p', _ = Annotate.add_null_checks p in
  let h = Conair.harden_exn p' Conair.Survival in
  (* the auto assert sits in the caller right after the shared read, so it
     is recoverable intra-procedurally *)
  let auto_site =
    List.find
      (fun (sp : Plan.site_plan) ->
        String.length sp.site.msg >= 4 && String.sub sp.site.msg 0 4 = "auto")
      h.plan.site_plans
  in
  Alcotest.(check bool) "auto site recoverable" true
    (auto_site.verdict = Optimize.Recoverable);
  Alcotest.(check bool) "intra-procedural" false auto_site.interprocedural;
  (* and the program recovers: the null is caught before entering the
     callee *)
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "st=9" ] r.outputs

let annotate_skips_conditional_derefs () =
  (* A callee that checks before dereferencing must not be annotated. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "obj" Value.Null;
    (B.func b "careful" ~params:[ "q" ] @@ fun f ->
     B.label f "entry";
     B.unop f "nil" Instr.Is_null (B.reg "q");
     B.branch f (B.reg "nil") "out" "use";
     B.label f "use";
     B.load_idx f "v" (B.reg "q") (B.int 0);
     B.jump f "out";
     B.label f "out";
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.load f "p" (Instr.Global "obj");
    B.call f "careful" [ B.reg "p" ];
    B.exit_ f
  in
  let _, n = Annotate.add_null_checks p in
  Alcotest.(check int) "no checks added" 0 n

let annotate_skips_constant_args () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "deref" ~params:[ "q" ] @@ fun f ->
     B.label f "entry";
     B.load_idx f "v" (B.reg "q") (B.int 0);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f "deref" [ B.null ];
    B.exit_ f
  in
  let _, n = Annotate.add_null_checks p in
  Alcotest.(check int) "constant args are not annotated" 0 n

let annotate_idempotent_on_clean_programs () =
  (* Annotation must not change the behaviour of non-failing runs. *)
  let p = Test_util.straightline_program () in
  let p', n = Annotate.add_null_checks p in
  Alcotest.(check int) "nothing to annotate" 0 n;
  let r0 = run p and r1 = run p' in
  Alcotest.(check (list string)) "same outputs" r0.outputs r1.outputs

let suites =
  [
    ( "prune",
      [
        case "safe local deref pruned" prune_safe_local_deref;
        case "unsafe derefs kept" prune_keeps_unsafe_derefs;
        case "constant asserts" prune_constant_asserts;
        slow_case "benchmarks still recover with pruning"
          prune_reduces_checkpoints_in_benchmarks;
      ] );
    ( "annotate",
      [
        case "adds null checks" annotate_adds_checks;
        case "turns interproc into intraproc recovery"
          annotate_turns_interproc_into_intraproc;
        case "skips conditional derefs" annotate_skips_conditional_derefs;
        case "skips constant arguments" annotate_skips_constant_args;
        case "no effect on clean programs" annotate_idempotent_on_clean_programs;
      ] );
  ]
