(* Table 3 behaviour, as tests: every benchmark fails (or hangs) under the
   buggy interleaving without ConAir, and recovers with it — in survival
   mode and in fix mode; clean schedules are unaffected. *)

open Test_util
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Outcome = Conair.Runtime.Outcome

let fuel = 2_000_000

let run' p = run ~fuel p
let run_hardened' h = run_hardened ~fuel h

let expect_fails (s : Spec.t) (inst : Spec.instance) (r : Conair.run) =
  match r.outcome with
  | Outcome.Failed _ when s.info.failure <> "hang" -> ()
  | Outcome.Hang _ when s.info.failure = "hang" -> ()
  | Outcome.Success when s.info.needs_oracle && not (inst.accept r.outputs) ->
      (* Wrong-output bugs without an oracle run to "completion" with a
         wrong result — that still counts as the failure manifesting. *)
      ()
  | o ->
      Alcotest.failf "%s: expected the bug to manifest, got %a" s.info.name
        Outcome.pp o

let buggy_manifests (s : Spec.t) () =
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  check_valid inst.program;
  expect_fails s inst (run' inst.program)

let survival_recovers (s : Spec.t) () =
  let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
  let h = Conair.harden_exn inst.program Conair.Survival in
  check_valid h.hardened.program;
  let r = run_hardened' h in
  expect_success r;
  Alcotest.(check bool)
    (s.info.name ^ ": outputs acceptable")
    true (inst.accept r.outputs);
  Alcotest.(check bool)
    (s.info.name ^ ": recovery actually happened")
    true (r.stats.rollbacks > 0);
  Alcotest.(check int) (s.info.name ^ ": rollback safety") 0
    r.stats.tracecheck_violations

let fix_mode_recovers (s : Spec.t) () =
  let inst = s.make ~variant:Spec.Buggy ~oracle:true in
  Alcotest.(check bool)
    (s.info.name ^ ": has a fix-mode site")
    true
    (inst.fix_site_iids <> []);
  let h = Conair.harden_exn inst.program (Conair.Fix inst.fix_site_iids) in
  let r = run_hardened' h in
  expect_success r;
  Alcotest.(check bool)
    (s.info.name ^ ": outputs acceptable")
    true (inst.accept r.outputs)

let clean_schedule_ok (s : Spec.t) () =
  let inst = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
  let r0 = run' inst.program in
  expect_success r0;
  Alcotest.(check bool)
    (s.info.name ^ ": clean outputs acceptable")
    true (inst.accept r0.outputs);
  let h = Conair.harden_exn inst.program Conair.Survival in
  let r1 = run_hardened' h in
  expect_success r1;
  Alcotest.(check (list string))
    (s.info.name ^ ": hardening preserves clean-run outputs")
    r0.outputs r1.outputs;
  Alcotest.(check int) (s.info.name ^ ": no rollbacks on a clean run") 0
    r1.stats.rollbacks

let interproc_used (s : Spec.t) () =
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  Alcotest.(check bool)
    (s.info.name ^ ": inter-procedural recovery expected")
    true
    (h.report.interproc_sites > 0)

let census_shape () =
  (* Table 4's qualitative shape: segfault sites dominate in every
     benchmark that uses the heap-heavy library code. *)
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:false in
      let h = Conair.harden_exn inst.program Conair.Survival in
      let c = h.report.census in
      Alcotest.(check bool)
        (s.info.name ^ ": has failure sites")
        true
        (Conair.Analysis.Find_sites.total c > 0);
      Alcotest.(check bool)
        (s.info.name ^ ": segfault sites dominate")
        true
        (c.seg_fault >= c.assertion && c.seg_fault >= c.deadlock))
    Registry.all

let random_schedule_trials (s : Spec.t) () =
  (* The paper's many-runs verification (§5), scaled down: several seeded
     random schedules; every run must end successfully with accepted
     outputs (whether or not the bug fired under that schedule). *)
  let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let trial =
    Conair.recovery_trial
      ~config:
        {
          Conair.Runtime.Machine.default_config with
          policy = Conair.Runtime.Sched.Random 11;
          fuel = 8_000_000;
        }
      ~runs:6 ~accept:inst.accept h
  in
  Alcotest.(check int) (s.info.name ^ ": all seeds recovered") trial.runs
    trial.recovered

let suite_of_spec (s : Spec.t) =
  let n = s.info.name in
  [
    case (n ^ ": bug manifests unhardened") (buggy_manifests s);
    case (n ^ ": survival mode recovers") (survival_recovers s);
    case (n ^ ": fix mode recovers") (fix_mode_recovers s);
    case (n ^ ": clean schedule unaffected") (clean_schedule_ok s);
    slow_case (n ^ ": random-schedule trials") (random_schedule_trials s);
  ]
  @
  if s.info.needs_interproc then
    [ case (n ^ ": uses inter-procedural recovery") (interproc_used s) ]
  else []

let extended_manifests_and_recovers (s : Spec.t) () =
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  check_valid inst.program;
  (match (run' inst.program).outcome with
  | Outcome.Success -> Alcotest.failf "%s: bug did not manifest" s.info.name
  | _ -> ());
  let h = Conair.harden_exn inst.program Conair.Survival in
  let r = run_hardened' h in
  expect_success r;
  Alcotest.(check bool)
    (s.info.name ^ ": outputs acceptable")
    true (inst.accept r.outputs);
  Alcotest.(check bool)
    (s.info.name ^ ": recovered")
    true (r.stats.rollbacks > 0);
  Alcotest.(check int) (s.info.name ^ ": rollback safety") 0
    r.stats.tracecheck_violations;
  (* the clean (fixed) variant is untouched *)
  let clean = s.make ~variant:Spec.Clean ~oracle:false in
  let r0 = run' clean.program in
  expect_success r0;
  let hc = Conair.harden_exn clean.program Conair.Survival in
  let r1 = run_hardened' hc in
  Alcotest.(check (list string))
    (s.info.name ^ ": clean outputs preserved")
    r0.outputs r1.outputs

let suites =
  [
    ("bugbench", List.concat_map suite_of_spec Registry.all);
    ("bugbench-census", [ case "census shape" census_shape ]);
    ( "bugbench-extended",
      List.map
        (fun (s : Spec.t) ->
          case
            (s.info.name ^ ": manifests and recovers")
            (extended_manifests_and_recovers s))
        Registry.extended );
  ]
