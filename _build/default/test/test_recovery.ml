(* End-to-end recovery tests: the original program fails under the buggy
   interleaving, the hardened program recovers. These mirror the paper's
   Figs 9-11 case studies. *)

open Conair.Ir
open Test_util
module Outcome = Conair.Runtime.Outcome

let order_violation_fails_unhardened () =
  let p = order_violation_program ~buggy:true () in
  check_valid p;
  expect_failure_kind Instr.Wrong_output (run p)

let order_violation_recovers () =
  let p = order_violation_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  check_valid h.hardened.program;
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "end=99" ] r.outputs;
  Alcotest.(check bool) "rolled back at least once" true
    (r.stats.rollbacks > 0)

let order_violation_clean_schedule_untouched () =
  (* Without the failure-inducing sleep the hardened program behaves
     identically to the original. *)
  let p = order_violation_program ~buggy:false () in
  let h = Conair.harden_exn p Conair.Survival in
  let r0 = run p and r1 = run_hardened h in
  expect_success r1;
  Alcotest.(check (list string)) "same outputs" r0.outputs r1.outputs

let interproc_fails_unhardened () =
  let p = interproc_segfault_program ~buggy:true () in
  check_valid p;
  expect_failure_kind Instr.Seg_fault (run p)

let interproc_recovers () =
  let p = interproc_segfault_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  check_valid h.hardened.program;
  Alcotest.(check bool) "uses inter-procedural recovery" true
    (h.report.interproc_sites > 0);
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "state=7" ] r.outputs

let interproc_needs_interproc_analysis () =
  (* With inter-procedural analysis disabled the site is unrecoverable and
     the program still segfaults. *)
  let p = interproc_segfault_program ~buggy:true () in
  let options = { Conair.Analysis.Plan.default_options with interproc = false } in
  let h = Conair.harden_exn ~analysis:options p Conair.Survival in
  expect_failure_kind Instr.Seg_fault (run_hardened h)

let deadlock_hangs_unhardened () =
  let p = deadlock_program ~buggy:true () in
  check_valid p;
  expect_hang (run p)

let deadlock_recovers () =
  let p = deadlock_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  check_valid h.hardened.program;
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check bool) "rolled back" true (r.stats.rollbacks > 0);
  Alcotest.(check bool) "compensated a lock" true
    (r.stats.compensated_locks > 0)

let deadlock_clean_schedule_untouched () =
  let p = deadlock_program ~buggy:false () in
  let h = Conair.harden_exn p Conair.Survival in
  expect_success (run p);
  expect_success (run_hardened h)

let no_rollback_crosses_destroying_op () =
  (* The Tracecheck invariant: on every rollback, no destroying instruction
     of the failing thread executed since the checkpoint. *)
  List.iter
    (fun p ->
      let h = Conair.harden_exn p Conair.Survival in
      let r = run_hardened h in
      Alcotest.(check int) "tracecheck violations" 0
        r.stats.tracecheck_violations)
    [
      order_violation_program ~buggy:true ();
      interproc_segfault_program ~buggy:true ();
      deadlock_program ~buggy:true ();
    ]

let fix_mode_recovers_designated_site () =
  (* Fix mode hardens only the failing assert; sites elsewhere stay
     untouched. *)
  let p = order_violation_program ~buggy:true () in
  (* Find the oracle assert's iid. *)
  let site_iid = ref (-1) in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ i ->
          match i.op with
          | Instr.Assert { oracle = true; _ } -> site_iid := i.iid
          | _ -> ()));
  Alcotest.(check bool) "found oracle assert" true (!site_iid >= 0);
  let h = Conair.harden_exn p (Conair.Fix [ !site_iid ]) in
  Alcotest.(check int) "one site" 1 (List.length h.plan.site_plans);
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "end=99" ] r.outputs

let retry_budget_respected () =
  (* With the timer thread never writing, retries exhaust and the failure
     surfaces with the site id attached. *)
  let p =
    Builder.build ~main:"main" @@ fun b ->
    Builder.global b "flag" (Value.Int 0);
    (Builder.func b "reader" ~params:[] @@ fun f ->
     Builder.label f "entry";
     Builder.load f "v" (Instr.Global "flag");
     Builder.assert_ f (Builder.reg "v") ~msg:"flag never set";
     Builder.ret f None);
    Builder.func b "main" ~params:[] @@ fun f ->
    Builder.label f "entry";
    Builder.spawn f "t" "reader" [];
    Builder.join f (Builder.reg "t");
    Builder.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened ~max_retries:25 h in
  (match r.outcome with
  | Outcome.Failed { kind = Instr.Assert_fail; site_id = Some _; _ } -> ()
  | o -> Alcotest.failf "expected assert fail-stop, got %a" Outcome.pp o);
  Alcotest.(check int) "exactly max_retries rollbacks" 25 r.stats.rollbacks

let suites =
  [
    ( "recovery",
      [
        case "order violation fails unhardened" order_violation_fails_unhardened;
        case "order violation recovers" order_violation_recovers;
        case "order violation clean schedule untouched"
          order_violation_clean_schedule_untouched;
        case "interproc segfault fails unhardened" interproc_fails_unhardened;
        case "interproc segfault recovers" interproc_recovers;
        case "interproc analysis is load-bearing"
          interproc_needs_interproc_analysis;
        case "deadlock hangs unhardened" deadlock_hangs_unhardened;
        case "deadlock recovers" deadlock_recovers;
        case "deadlock clean schedule untouched"
          deadlock_clean_schedule_untouched;
        case "no rollback crosses a destroying op"
          no_rollback_crosses_destroying_op;
        case "fix mode recovers designated site"
          fix_mode_recovers_designated_site;
        case "retry budget respected" retry_budget_respected;
      ] );
  ]
