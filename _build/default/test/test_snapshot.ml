(* Tests for whole-machine snapshots (the baselines' substrate) and the
   scheduler unit behaviour. *)

open Conair.Ir
open Test_util
module B = Builder
module Machine = Conair.Runtime.Machine
module Sched = Conair.Runtime.Sched
module Outcome = Conair.Runtime.Outcome

let counting_program () =
  B.build ~main:"main" @@ fun b ->
  B.global b "n" (Value.Int 0);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.move f "i" (B.int 0);
  B.label f "loop";
  B.load f "v" (Instr.Global "n");
  B.add f "v" (B.reg "v") (B.int 1);
  B.store f (Instr.Global "n") (B.reg "v");
  B.add f "i" (B.reg "i") (B.int 1);
  B.lt f "c" (B.reg "i") (B.int 10);
  B.branch f (B.reg "c") "loop" "done_";
  B.label f "done_";
  B.load f "v" (Instr.Global "n");
  B.output f "%v" [ B.reg "v" ];
  B.exit_ f

let snapshot_restores_globals_and_position () =
  let m = Machine.create (counting_program ()) in
  (* run a few steps, snapshot, run to completion, restore, complete again *)
  for _ = 1 to 12 do
    ignore (Machine.step m)
  done;
  let snap = Machine.snapshot m in
  let outcome1 = Machine.run m in
  Alcotest.(check bool) "first completion" true (Outcome.is_success outcome1);
  let out1 = Machine.outputs m in
  Machine.restore m snap;
  Alcotest.(check bool) "outcome cleared" true (m.Machine.outcome = None);
  let outcome2 = Machine.run m in
  Alcotest.(check bool) "second completion" true (Outcome.is_success outcome2);
  Alcotest.(check (list string)) "same result after restore" out1
    (Machine.outputs m)

let snapshot_is_isolated_from_later_mutation () =
  let m = Machine.create (counting_program ()) in
  for _ = 1 to 12 do
    ignore (Machine.step m)
  done;
  let snap = Machine.snapshot m in
  let n_at_snap = Hashtbl.find m.Machine.globals "n" in
  ignore (Machine.run m);
  (* the machine's global moved on; restoring brings the old value back *)
  Alcotest.(check bool) "global advanced" false
    (Value.equal n_at_snap (Hashtbl.find m.Machine.globals "n"));
  Machine.restore m snap;
  Alcotest.(check value) "restored value" n_at_snap
    (Hashtbl.find m.Machine.globals "n")

let snapshot_restorable_many_times () =
  let m = Machine.create (counting_program ()) in
  for _ = 1 to 12 do
    ignore (Machine.step m)
  done;
  let snap = Machine.snapshot m in
  let finish () =
    ignore (Machine.run m);
    Machine.outputs m
  in
  let a = finish () in
  Machine.restore m snap;
  let b = finish () in
  Machine.restore m snap;
  let c = finish () in
  Alcotest.(check bool) "all three runs equal" true (a = b && b = c)

let restore_keeps_time_monotonic () =
  let m = Machine.create (counting_program ()) in
  for _ = 1 to 12 do
    ignore (Machine.step m)
  done;
  let snap = Machine.snapshot m in
  ignore (Machine.run m);
  let t_end = m.Machine.step in
  Machine.restore m snap;
  Alcotest.(check bool) "virtual time does not rewind" true
    (m.Machine.step >= t_end)

(* --- Sched unit behaviour --------------------------------------------- *)

let round_robin_rotates () =
  let s = Sched.create Sched.Round_robin in
  let picks = List.init 6 (fun _ -> Sched.choose s [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "strict rotation" [ 1; 2; 3; 1; 2; 3 ] picks

let round_robin_skips_missing () =
  let s = Sched.create Sched.Round_robin in
  ignore (Sched.choose s [ 1; 2; 3 ]);
  (* thread 2 became ineligible *)
  Alcotest.(check int) "skips to 3" 3 (Sched.choose s [ 1; 3 ])

let random_is_seed_deterministic () =
  let picks seed =
    let s = Sched.create (Sched.Random seed) in
    List.init 20 (fun _ -> Sched.choose s [ 0; 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "same seed, same picks" (picks 5) (picks 5);
  Alcotest.(check bool) "different seeds diverge" true (picks 5 <> picks 6)

let singleton_needs_no_policy () =
  let s = Sched.create (Sched.Random 1) in
  Alcotest.(check int) "singleton" 9 (Sched.choose s [ 9 ])

let suites =
  [
    ( "snapshot",
      [
        case "restores globals and position" snapshot_restores_globals_and_position;
        case "isolated from later mutation" snapshot_is_isolated_from_later_mutation;
        case "restorable many times" snapshot_restorable_many_times;
        case "time stays monotonic" restore_keeps_time_monotonic;
      ] );
    ( "sched-unit",
      [
        case "round robin rotates" round_robin_rotates;
        case "round robin skips missing" round_robin_skips_missing;
        case "random is seed-deterministic" random_is_seed_deterministic;
        case "singleton choice" singleton_needs_no_policy;
      ] );
  ]
