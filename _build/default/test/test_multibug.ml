(* Stress tests: several independent concurrency bugs in one program, all
   recovered in a single run — the survival-mode deployment story, where
   ConAir has no idea how many hidden bugs exist. *)

open Conair.Ir
open Test_util
module B = Builder
module Stats = Conair.Runtime.Stats

(* Three simultaneous bugs: an order-violation assert, an order-violation
   segfault, and a lock-order deadlock — in five threads. *)
let three_bugs_program () =
  B.build ~main:"main" @@ fun b ->
  B.mutex b "la";
  B.mutex b "lb";
  B.global b "flag" (Value.Int 0);
  B.global b "obj" Value.Null;
  (* bug 1: reads flag too early *)
  (B.func b "flag_reader" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "v" (Instr.Global "flag");
   B.assert_ f (B.reg "v") ~msg:"flag set";
   B.ret f None);
  (B.func b "flag_writer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.sleep f 80;
   B.store f (Instr.Global "flag") (B.int 1);
   B.ret f None);
  (* bug 2: dereferences obj too early; the writer publishes late *)
  (B.func b "obj_reader" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "p" (Instr.Global "obj");
   B.load_idx f "x" (B.reg "p") (B.int 0);
   B.output f "x=%v" [ B.reg "x" ];
   B.ret f None);
  (B.func b "obj_writer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.sleep f 120;
   B.alloc f "p" (B.int 1);
   B.store_idx f (B.reg "p") (B.int 0) (B.int 5);
   B.store f (Instr.Global "obj") (B.reg "p");
   B.ret f None);
  (* bug 3: lock-order deadlock between the two writers' cleanup phases *)
  (B.func b "locker_ab" ~params:[] @@ fun f ->
   B.label f "entry";
   B.lock f (B.mutex_ref "la");
   B.sleep f 20;
   B.lock f (B.mutex_ref "lb");
   B.unlock f (B.mutex_ref "lb");
   B.unlock f (B.mutex_ref "la");
   B.ret f None);
  (B.func b "locker_ba" ~params:[] @@ fun f ->
   B.label f "entry";
   B.lock f (B.mutex_ref "lb");
   B.sleep f 20;
   B.lock f (B.mutex_ref "la");
   B.unlock f (B.mutex_ref "la");
   B.unlock f (B.mutex_ref "lb");
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "flag_reader" [];
  B.spawn f "t2" "flag_writer" [];
  B.spawn f "t3" "obj_reader" [];
  B.spawn f "t4" "obj_writer" [];
  B.spawn f "t5" "locker_ab" [];
  B.spawn f "t6" "locker_ba" [];
  List.iter (fun t -> B.join f (B.reg t)) [ "t1"; "t2"; "t3"; "t4"; "t5"; "t6" ];
  B.exit_ f

let all_three_bugs_recover () =
  let p = three_bugs_program () in
  check_valid p;
  (* unprotected, at least one bug takes the program down *)
  (match (run p).outcome with
  | Conair.Runtime.Outcome.Success -> Alcotest.fail "expected a failure"
  | _ -> ());
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened ~fuel:2_000_000 h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "x=5" ] r.outputs;
  (* three distinct recovery episodes: assert, segfault, deadlock *)
  let sites =
    List.sort_uniq compare
      (List.map (fun (e : Stats.episode) -> e.ep_site_id) r.stats.episodes)
  in
  Alcotest.(check int) "three distinct sites recovered" 3 (List.length sites);
  Alcotest.(check int) "rollback safety" 0 r.stats.tracecheck_violations

let repeated_failures_same_site () =
  (* The same site fails on four consecutive loop iterations (the gate
     opens one step at a time): each episode recovers. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "gate" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.move f "i" (B.int 1);
     B.label f "loop";
     B.binop f "c" Instr.Le (B.reg "i") (B.int 4);
     B.branch f (B.reg "c") "body" "done_";
     B.label f "body";
     B.load f "gv" (Instr.Global "gate");
     B.binop f "ok" Instr.Ge (B.reg "gv") (B.reg "i");
     B.assert_ f (B.reg "ok") ~msg:"gate is open far enough";
     B.store f (Instr.Stack "seen") (B.reg "gv");
     B.add f "i" (B.reg "i") (B.int 1);
     B.jump f "loop";
     B.label f "done_";
     B.output f "final=%v" [ B.reg "i" ];
     B.ret f None);
    (B.func b "gatekeeper" ~params:[] @@ fun f ->
     B.label f "entry";
     B.move f "g" (B.int 0);
     B.label f "open_";
     B.lt f "c" (B.reg "g") (B.int 4);
     B.branch f (B.reg "c") "step" "done_";
     B.label f "step";
     B.sleep f 30;
     B.add f "g" (B.reg "g") (B.int 1);
     B.store f (Instr.Global "gate") (B.reg "g");
     B.jump f "open_";
     B.label f "done_";
     B.ret f None);
    Conair_bugbench.Mirlib.two_thread_main b
      ~threads:[ "worker"; "gatekeeper" ]
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "final=5" ] r.outputs;
  Alcotest.(check bool) "several episodes at the same site" true
    (List.length r.stats.episodes >= 3)

let suites =
  [
    ( "multi-bug",
      [
        case "three simultaneous bugs recover" all_three_bugs_recover;
        case "repeated failures at one site" repeated_failures_same_site;
      ] );
  ]
