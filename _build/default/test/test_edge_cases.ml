(* Edge cases of the analyses and the transformation: empty blocks,
   sites at the very first instruction, unreachable sites, self-loops,
   and parameterized ring deadlocks. *)

open Conair.Ir
open Conair.Analysis
open Test_util
module B = Builder

let fname = Ident.Fname.v

(* --- region-walk shapes -------------------------------------------- *)

let site_as_first_instruction () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g" (Value.Int 1);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.assert_ f (B.int 1) ~msg:"first";
    B.exit_ f
  in
  let site = List.hd (Find_sites.survival p) in
  let f = Program.func_exn p (fname "main") in
  let region = Region.of_site (Cfg.of_func f) site in
  Alcotest.(check int) "one point" 1 (List.length region.points);
  Alcotest.(check bool) "entry point" true
    (List.exists
       (Region.point_equal (Region.Entry (fname "main")))
       region.points);
  Alcotest.(check int) "empty region" 0
    (Region.Iid_set.cardinal region.region_iids)

let walk_through_empty_blocks () =
  (* Empty pass-through blocks between a store and the site: the walk must
     cross them and still find the point after the store. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g" (Value.Int 1);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.store f (Instr.Global "g") (B.int 1);
    B.jump f "hop1";
    B.label f "hop1";
    B.jump f "hop2";
    B.label f "hop2";
    B.jump f "final";
    B.label f "final";
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site";
    B.exit_ f
  in
  let site =
    List.find
      (fun (s : Site.t) -> s.kind = Instr.Assert_fail)
      (Find_sites.survival p)
  in
  let f = Program.func_exn p (fname "main") in
  let region = Region.of_site (Cfg.of_func f) site in
  Alcotest.(check bool) "point after the store" true
    (List.exists (Region.point_equal (Region.After 0)) region.points)

let self_loop_terminates () =
  (* A block branching to itself on the way to the site: the visited set
     must terminate the walk. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g" (Value.Int 1);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.move f "i" (B.int 0);
    B.label f "spin";
    B.add f "i" (B.reg "i") (B.int 1);
    B.lt f "c" (B.reg "i") (B.int 3);
    B.branch f (B.reg "c") "spin" "after";
    B.label f "after";
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site";
    B.exit_ f
  in
  let site =
    List.find
      (fun (s : Site.t) -> s.kind = Instr.Assert_fail)
      (Find_sites.survival p)
  in
  let f = Program.func_exn p (fname "main") in
  let region = Region.of_site (Cfg.of_func f) site in
  (* everything is safe: clean to entry despite the loop *)
  Alcotest.(check bool) "clean" true region.reaches_entry_clean

(* --- recovery with no executed checkpoint --------------------------- *)

let site_before_any_checkpoint_fail_stops () =
  (* An always-false assert whose only point is the entry of a function
     that the transformation instruments — but the failure happens on the
     very first retryable pass; the retry loop must exhaust and fail-stop
     without crashing. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g" (Value.Int 0);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"never true";
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened ~max_retries:10 h in
  expect_failure_kind Instr.Assert_fail r;
  Alcotest.(check int) "ten retries then stop" 10 r.stats.rollbacks

(* --- ring deadlocks of arbitrary width ------------------------------- *)

let ring_deadlock_recovers k () =
  (* k threads, k locks, thread i takes lock i then lock (i+1) mod k. *)
  let lock_name i = Printf.sprintf "L%d" (i mod k) in
  let p =
    B.build ~main:"main" @@ fun b ->
    for i = 0 to k - 1 do
      B.mutex b (lock_name i)
    done;
    for i = 0 to k - 1 do
      B.func b (Printf.sprintf "w%d" i) ~params:[] @@ fun f ->
      B.label f "entry";
      B.lock f (B.mutex_ref (lock_name i));
      B.sleep f 15;
      B.lock f (B.mutex_ref (lock_name (i + 1)));
      B.unlock f (B.mutex_ref (lock_name (i + 1)));
      B.unlock f (B.mutex_ref (lock_name i));
      B.ret f None
    done;
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    for i = 0 to k - 1 do
      B.spawn f (Printf.sprintf "t%d" i) (Printf.sprintf "w%d" i) []
    done;
    for i = 0 to k - 1 do
      B.join f (B.reg (Printf.sprintf "t%d" i))
    done;
    B.exit_ f
  in
  check_valid p;
  expect_hang (run p);
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened ~fuel:2_000_000 h in
  expect_success r;
  Alcotest.(check int) "rollback safety" 0 r.stats.tracecheck_violations

let suites =
  [
    ( "edge-cases",
      [
        case "site as the first instruction" site_as_first_instruction;
        case "walk through empty blocks" walk_through_empty_blocks;
        case "self loop terminates" self_loop_terminates;
        case "retry exhaustion at an always-false site"
          site_before_any_checkpoint_fail_stops;
        case "ring deadlock k=2" (ring_deadlock_recovers 2);
        case "ring deadlock k=3" (ring_deadlock_recovers 3);
        case "ring deadlock k=4" (ring_deadlock_recovers 4);
        case "ring deadlock k=6" (ring_deadlock_recovers 6);
      ] );
  ]
