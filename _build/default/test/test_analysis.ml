(* Unit tests for the static analyses: failure-site identification (§3.1),
   the idempotent-region walk (§3.2.2), slicing (§4.2/Fig 8), the
   unnecessary-rollback optimization (§4.2) and inter-procedural recovery
   (§4.3). *)

open Conair.Ir
open Conair.Analysis
open Test_util
module B = Builder

let fname = Ident.Fname.v
let label = Ident.Label.v

(* Build a single-function program and return (program, func, cfg). *)
let single_func body =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] body
  in
  let f = Program.func_exn p (fname "main") in
  (p, f, Cfg.of_func f)

(* Find the first site of a given kind. *)
let site_of_kind p kind =
  List.find (fun (s : Site.t) -> s.kind = kind) (Find_sites.survival p)

let points_testable =
  Alcotest.testable Region.pp_point Region.point_equal

let check_points name expected actual =
  let sort = List.sort compare in
  Alcotest.(check (list points_testable)) name (sort expected) (sort actual)

(* --- Find_sites ----------------------------------------------------- *)

let survival_finds_all_kinds () =
  let p, _, _ =
    single_func @@ fun f ->
    B.label f "entry";
    B.move f "c" (B.bool true);
    B.assert_ f (B.reg "c") ~msg:"plain";
    B.assert_ f ~oracle:true (B.reg "c") ~msg:"oracle";
    B.output f "x" [];
    B.alloc f "p" (B.int 1);
    B.load_idx f "v" (B.reg "p") (B.int 0);
    B.store_idx f (B.reg "p") (B.int 0) (B.int 1);
    B.lock f (B.mutex_ref "m");
    B.unlock f (B.mutex_ref "m");
    B.exit_ f
  in
  let c = Find_sites.census (Find_sites.survival p) in
  Alcotest.(check int) "assert sites" 1 c.assertion;
  (* oracle assert + output *)
  Alcotest.(check int) "wrong-output sites" 2 c.wrong_output;
  (* load_idx + store_idx *)
  Alcotest.(check int) "segfault sites" 2 c.seg_fault;
  Alcotest.(check int) "deadlock sites" 1 c.deadlock;
  Alcotest.(check int) "total" 6 (Find_sites.total c)

let survival_site_ids_are_sequential () =
  let p = straightline_program () in
  let sites = Find_sites.survival p in
  List.iteri
    (fun i (s : Site.t) -> Alcotest.(check int) "sequential id" i s.site_id)
    sites

let fix_mode_selects_designated () =
  let p, f, _ =
    single_func @@ fun f ->
    B.label f "entry";
    B.move f "c" (B.bool true);
    B.assert_ f (B.reg "c") ~msg:"a1";
    B.assert_ f (B.reg "c") ~msg:"a2";
    B.exit_ f
  in
  ignore f;
  let all = Find_sites.survival p in
  let second = List.nth all 1 in
  match Find_sites.fix p ~iids:[ second.iid ] with
  | Ok [ s ] ->
      Alcotest.(check int) "right instruction" second.iid s.iid;
      Alcotest.(check string) "right message" "a2" s.msg
  | Ok _ -> Alcotest.fail "expected exactly one site"
  | Error e -> Alcotest.fail e

let fix_mode_rejects_bad_iids () =
  let p = straightline_program () in
  (match Find_sites.fix p ~iids:[ 424242 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown iid accepted");
  (* a Move is not a failure site *)
  let move_iid =
    let found = ref (-1) in
    Program.iter_funcs p (fun f ->
        Func.iter_instrs f (fun _ i ->
            match i.op with
            | Instr.Move _ when !found < 0 -> found := i.iid
            | _ -> ()));
    !found
  in
  match Find_sites.fix p ~iids:[ move_iid ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-site iid accepted"

(* --- Region: straight-line ----------------------------------------- *)

let region_stops_at_store () =
  (* store; load; assert  =>  point right after the store *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.store f (Instr.Global "g") (B.int 1);
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  check_points "after the store" [ Region.After 0 ] region.points;
  Alcotest.(check bool) "not clean to entry" false
    region.reaches_entry_clean;
  Alcotest.(check int) "one region instr (the load)" 1
    (Region.Iid_set.cardinal region.region_iids)

let region_reaches_entry () =
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.load f "v" (Instr.Global "g");
    B.binop f "ok" Instr.Gt (B.reg "v") (B.int 0);
    B.assert_ f (B.reg "ok") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  check_points "entry point" [ Region.Entry (fname "main") ] region.points;
  Alcotest.(check bool) "clean to entry" true region.reaches_entry_clean

let region_continues_through_compensable () =
  (* lock and alloc are allowed inside regions (§4.1) *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref "m");
    B.alloc f "p" (B.int 2);
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site";
    B.unlock f (B.mutex_ref "m");
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  check_points "entry point through lock+alloc"
    [ Region.Entry (fname "main") ]
    region.points;
  Alcotest.(check bool) "lock acquisition inside region" true
    (Region.contains_lock_acquisition cfg region)

(* --- Region: branches ----------------------------------------------- *)

let region_diamond_two_points () =
  (* Two paths to the site; one passes a store, the other is clean to
     entry: both points must be emitted. *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.load f "c" (Instr.Global "cond");
    B.branch f (B.reg "c") "dirty" "clean";
    B.label f "dirty";
    B.store f (Instr.Global "g") (B.int 1);
    B.jump f "merge";
    B.label f "clean";
    B.nop f;
    B.jump f "merge";
    B.label f "merge";
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let store_iid =
    let found = ref (-1) in
    Program.iter_funcs p (fun f ->
        Func.iter_instrs f (fun _ i ->
            match i.op with Instr.Store _ -> found := i.iid | _ -> ()));
    !found
  in
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  check_points "both points"
    [ Region.After store_iid; Region.Entry (fname "main") ]
    region.points;
  Alcotest.(check bool) "dirty path breaks cleanliness" false
    region.reaches_entry_clean;
  (* the branch condition is recorded for control-dependence slicing *)
  Alcotest.(check bool) "branch cond collected" true
    (List.exists (Ident.Reg.equal (Ident.Reg.v "c")) region.branch_conds)

let region_loop_with_destroying_body () =
  (* A destroying op inside a loop on the way to the site gets its own
     point inside the loop; the walk terminates. *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.move f "i" (B.int 0);
    B.label f "loop";
    B.store f (Instr.Global "g") (B.reg "i");
    B.add f "i" (B.reg "i") (B.int 1);
    B.lt f "c" (B.reg "i") (B.int 10);
    B.branch f (B.reg "c") "loop" "after";
    B.label f "after";
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  (* the only point is after the store inside the loop *)
  (match region.points with
  | [ Region.After iid ] -> (
      match Program.find_instr p iid with
      | Some (_, b, i) -> (
          match b.Block.instrs.(i).op with
          | Instr.Store _ -> ()
          | op ->
              Alcotest.failf "point after wrong op: %a" Instr.pp_op op)
      | None -> Alcotest.fail "point refers to missing instr")
  | pts ->
      Alcotest.failf "expected one point, got %d" (List.length pts));
  Alcotest.(check bool) "not clean" false region.reaches_entry_clean

let region_clean_loop_reaches_entry () =
  (* A read-only loop does not break the region: the entry point is found
     and the walk terminates. *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.move f "i" (B.int 0);
    B.label f "loop";
    B.load f "v" (Instr.Global "g");
    B.add f "i" (B.reg "i") (B.reg "v");
    B.lt f "c" (B.reg "i") (B.int 10);
    B.branch f (B.reg "c") "loop" "after";
    B.label f "after";
    B.assert_ f (B.reg "i") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  check_points "entry only" [ Region.Entry (fname "main") ] region.points;
  Alcotest.(check bool) "clean" true region.reaches_entry_clean

let region_points_not_shortened_by_other_sites () =
  (* Two sites sharing a prefix: each gets its own walk; the shared
     reexecution point is identical (After the same store), so it is
     emitted once by the plan. *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.store f (Instr.Global "g") (B.int 1);
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"site1";
    B.load f "w" (Instr.Global "g");
    B.assert_ f (B.reg "w") ~msg:"site2";
    B.exit_ f
  in
  ignore f;
  let sites =
    List.filter
      (fun (s : Site.t) -> s.kind = Instr.Assert_fail)
      (Find_sites.survival p)
  in
  let regions = List.map (Region.of_site cfg) sites in
  List.iter
    (fun (r : Region.t) ->
      check_points "after store" [ Region.After 0 ] r.points)
    regions;
  (* The second site's region contains the first assert's chain: asserts
     are safe, so the region of site2 extends past site1. *)
  let r2 = List.nth regions 1 in
  Alcotest.(check bool) "site2 region spans site1" true
    (Region.Iid_set.cardinal r2.region_iids
    > Region.Iid_set.cardinal (List.hd regions).region_iids)

(* --- Slice ----------------------------------------------------------- *)

let slice_through_registers () =
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.load f "a" (Instr.Global "g");
    B.add f "b" (B.reg "a") (B.int 1);
    B.mul f "c" (B.reg "b") (B.int 2);
    B.assert_ f (B.reg "c") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  let slice = Slice.of_site cfg region in
  Alcotest.(check bool) "shared read found" true
    (Slice.reaches_shared_read slice);
  Alcotest.(check int) "exactly one shared read" 1
    (Region.Iid_set.cardinal slice.shared_read_iids)

let slice_stops_at_stack_read () =
  (* x comes from a stack slot: the chain stops (Fig 8) and no shared read
     is found even though an unrelated global read sits in the region. *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.load f "unrelated" (Instr.Global "g");
    B.load f "x" (Instr.Stack "s");
    B.add f "y" (B.reg "x") (B.int 1);
    B.assert_ f (B.reg "y") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  let slice = Slice.of_site cfg region in
  Alcotest.(check bool) "no shared read on the slice" false
    (Slice.reaches_shared_read slice)

let slice_follows_control_dependence () =
  (* The assert's operand is a constant path-dependent value; the branch
     condition comes from a global read, so control dependence finds it. *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.load f "c" (Instr.Global "g");
    B.branch f (B.reg "c") "yes" "no";
    B.label f "yes";
    B.move f "v" (B.int 1);
    B.jump f "merge";
    B.label f "no";
    B.move f "v" (B.int 0);
    B.jump f "merge";
    B.label f "merge";
    B.assert_ f (B.reg "v") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  let slice = Slice.of_site cfg region in
  Alcotest.(check bool) "control dependence reaches the global read" true
    (Slice.reaches_shared_read slice)

let slice_critical_params () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "callee" ~params:[ "x"; "y" ] @@ fun f ->
     B.label f "entry";
     B.add f "z" (B.reg "x") (B.int 1);
     B.assert_ f (B.reg "z") ~msg:"site";
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f "callee" [ B.int 1; B.int 2 ];
    B.exit_ f
  in
  let f = Program.func_exn p (fname "callee") in
  let cfg = Cfg.of_func f in
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  let slice = Slice.of_site cfg region in
  let critical = Slice.critical_params cfg slice in
  Alcotest.(check (list string)) "x is critical, y is not" [ "x" ]
    (List.map Ident.Reg.name critical)

(* --- Optimize (the four Fig 7 shapes) -------------------------------- *)

let optimize_deadlock_no_lock_in_region () =
  (* Fig 7a: a lone lock acquisition — nothing to release, unrecoverable *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref "L");
    B.unlock f (B.mutex_ref "L");
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Deadlock in
  let region = Region.of_site cfg site in
  Alcotest.(check bool) "unrecoverable" true
    (Optimize.judge cfg region = Optimize.Unrecoverable)

let optimize_deadlock_with_lock_in_region () =
  (* Fig 7b: lock L0; lock L — releasing L0 can break the cycle *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref "L0");
    B.lock f (B.mutex_ref "L");
    B.unlock f (B.mutex_ref "L");
    B.unlock f (B.mutex_ref "L0");
    B.exit_ f
  in
  ignore f;
  let sites =
    List.filter
      (fun (s : Site.t) -> s.kind = Instr.Deadlock)
      (Find_sites.survival p)
  in
  let second = List.nth sites 1 in
  let region = Region.of_site cfg second in
  Alcotest.(check bool) "recoverable" true
    (Optimize.judge cfg region = Optimize.Recoverable)

let optimize_nondeadlock_no_shared_read () =
  (* Fig 7c: tmp = tmp+1; assert tmp — reexecution is deterministic *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.move f "tmp" (B.int 0);
    B.add f "tmp" (B.reg "tmp") (B.int 1);
    B.assert_ f (B.reg "tmp") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  Alcotest.(check bool) "unrecoverable" true
    (Optimize.judge cfg region = Optimize.Unrecoverable)

let optimize_nondeadlock_with_shared_read () =
  (* Fig 7d: tmp = global_x; assert tmp — another thread can fix it *)
  let p, f, cfg =
    single_func @@ fun f ->
    B.label f "entry";
    B.load f "tmp" (Instr.Global "global_x");
    B.assert_ f (B.reg "tmp") ~msg:"site";
    B.exit_ f
  in
  ignore f;
  let site = site_of_kind p Instr.Assert_fail in
  let region = Region.of_site cfg site in
  Alcotest.(check bool) "recoverable" true
    (Optimize.judge cfg region = Optimize.Recoverable)

(* --- Callgraph -------------------------------------------------------- *)

let callgraph_edges_and_roots () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "leaf" ~params:[ "x" ] @@ fun f ->
     B.label f "entry";
     B.ret f None);
    (B.func b "mid" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f "leaf" [ B.int 1 ];
     B.call f "leaf" [ B.int 2 ];
     B.ret f None);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f "mid" [];
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "worker" [];
    B.join f (B.reg "t");
    B.exit_ f
  in
  let g = Callgraph.of_program p in
  Alcotest.(check int) "leaf has two call edges" 2
    (List.length (Callgraph.callers_of g (fname "leaf")));
  Alcotest.(check int) "mid has one caller" 1
    (List.length (Callgraph.callers_of g (fname "mid")));
  Alcotest.(check bool) "worker is a thread root" true
    (Callgraph.is_thread_root g (fname "worker"));
  Alcotest.(check bool) "main is a thread root" true
    (Callgraph.is_thread_root g (fname "main"));
  Alcotest.(check bool) "mid is not a thread root" false
    (Callgraph.is_thread_root g (fname "mid"))

(* --- Interproc -------------------------------------------------------- *)

(* The MozillaXP shape, parameterized by call-chain depth:
   root -> c1 -> ... -> c_depth -> sink(p) { deref p }. Only the root
   reads the shared global. *)
let chain_program ~depth =
  B.build ~main:"main" @@ fun b ->
  B.global b "obj" Value.Null;
  (B.func b "sink" ~params:[ "p" ] @@ fun f ->
   B.label f "entry";
   B.load_idx f "v" (B.reg "p") (B.int 0);
   B.ret f (Some (B.reg "v")));
  let rec chain k =
    if k = 0 then ()
    else begin
      let callee = if k = depth then "sink" else Printf.sprintf "c%d" (k + 1) in
      (B.func b (Printf.sprintf "c%d" k) ~params:[ "p" ] @@ fun f ->
       B.label f "entry";
       B.call f ~into:"v" callee [ B.reg "p" ];
       B.ret f (Some (B.reg "v")));
      chain (k - 1)
    end
  in
  chain depth;
  (B.func b "root" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "p" (Instr.Global "obj");
   B.call f ~into:"v" (if depth = 0 then "sink" else "c1") [ B.reg "p" ];
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t" "root" [];
  B.join f (B.reg "t");
  B.exit_ f

let interproc_of ?(max_depth = 3) p =
  let plan =
    match
      Plan.analyze
        ~options:{ Plan.default_options with max_depth }
        p Plan.Survival
    with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  List.find
    (fun (sp : Plan.site_plan) ->
      Ident.Fname.equal sp.site.func (fname "sink"))
    plan.site_plans

let interproc_one_level () =
  let sp = interproc_of (chain_program ~depth:0) in
  Alcotest.(check bool) "interprocedural" true sp.interprocedural;
  Alcotest.(check bool) "recoverable" true
    (sp.verdict = Optimize.Recoverable);
  check_points "point in root" [ Region.Entry (fname "root") ] sp.points

let interproc_three_levels () =
  let sp = interproc_of (chain_program ~depth:2) in
  Alcotest.(check bool) "interprocedural at depth 3" true sp.interprocedural;
  check_points "point in root" [ Region.Entry (fname "root") ] sp.points

let interproc_depth_limit () =
  (* depth 3 would need 4 levels; the analysis gives up and the site is
     pruned. *)
  let sp = interproc_of (chain_program ~depth:3) in
  Alcotest.(check bool) "not interprocedural beyond the budget" false
    sp.interprocedural;
  Alcotest.(check bool) "pruned" true (sp.verdict = Optimize.Unrecoverable)

let interproc_deeper_budget () =
  let sp = interproc_of ~max_depth:5 (chain_program ~depth:3) in
  Alcotest.(check bool) "recovered with a bigger budget" true
    sp.interprocedural

let interproc_not_selected_when_dirty_path () =
  (* A destroying op between the callee entry and the site breaks
     condition (1). *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "obj" Value.Null;
    (B.func b "sink" ~params:[ "p" ] @@ fun f ->
     B.label f "entry";
     B.store f (Instr.Stack "t") (B.int 1);
     B.load_idx f "v" (B.reg "p") (B.int 0);
     B.ret f (Some (B.reg "v")));
    (B.func b "root" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "p" (Instr.Global "obj");
     B.call f ~into:"v" "sink" [ B.reg "p" ];
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "root" [];
    B.join f (B.reg "t");
    B.exit_ f
  in
  let sp = interproc_of p in
  Alcotest.(check bool) "not interprocedural" false sp.interprocedural

let interproc_stops_at_thread_root () =
  (* The callee is spawned directly: no caller to roll back into. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "obj" Value.Null;
    (B.func b "sink" ~params:[ "p" ] @@ fun f ->
     B.label f "entry";
     B.load_idx f "v" (B.reg "p") (B.int 0);
     B.ret f (Some (B.reg "v")));
    (B.func b "root" ~params:[] @@ fun f ->
     B.label f "entry";
     B.move f "p" B.null;
     B.call f ~into:"v" "sink" [ B.reg "p" ];
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "root" [];
    B.join f (B.reg "t");
    B.exit_ f
  in
  (* root never reads a shared value into p, so no level helps *)
  let sp = interproc_of p in
  Alcotest.(check bool) "not recoverable anywhere" false
    (sp.verdict = Optimize.Recoverable)

(* --- Plan ------------------------------------------------------------- *)

let plan_points_deduplicated () =
  let p, _, _ =
    single_func @@ fun f ->
    B.label f "entry";
    B.store f (Instr.Global "g") (B.int 1);
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"s1";
    B.load f "w" (Instr.Global "g");
    B.assert_ f (B.reg "w") ~msg:"s2";
    B.exit_ f
  in
  match Plan.analyze p Plan.Survival with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      (* both asserts share After(store): one checkpoint *)
      Alcotest.(check int) "one shared point" 1 (Plan.static_points plan)

let plan_unoptimized_keeps_everything () =
  let p = Test_util.deadlock_program ~buggy:true () in
  let opts = { Plan.default_options with optimize = false; interproc = false } in
  match (Plan.analyze ~options:opts p Plan.Survival, Plan.analyze p Plan.Survival)
  with
  | Ok raw, Ok opt ->
      Alcotest.(check bool) "optimization removes points" true
        (Plan.static_points raw > Plan.static_points opt);
      Alcotest.(check bool) "all raw sites recoverable" true
        (List.for_all
           (fun (sp : Plan.site_plan) -> sp.verdict = Optimize.Recoverable)
           raw.site_plans)
  | Error e, _ | _, Error e -> Alcotest.fail e

let suites =
  [
    ( "find-sites",
      [
        case "survival finds all kinds" survival_finds_all_kinds;
        case "site ids sequential" survival_site_ids_are_sequential;
        case "fix mode selects designated" fix_mode_selects_designated;
        case "fix mode rejects bad iids" fix_mode_rejects_bad_iids;
      ] );
    ( "region",
      [
        case "stops at a store" region_stops_at_store;
        case "reaches entry" region_reaches_entry;
        case "continues through compensable ops"
          region_continues_through_compensable;
        case "diamond yields two points" region_diamond_two_points;
        case "loop with destroying body" region_loop_with_destroying_body;
        case "clean loop reaches entry" region_clean_loop_reaches_entry;
        case "points are not shortened by other sites"
          region_points_not_shortened_by_other_sites;
      ] );
    ( "slice",
      [
        case "chases register chains" slice_through_registers;
        case "stops at stack reads" slice_stops_at_stack_read;
        case "follows control dependence" slice_follows_control_dependence;
        case "finds critical parameters" slice_critical_params;
      ] );
    ( "optimize",
      [
        case "deadlock without lock in region (Fig 7a)"
          optimize_deadlock_no_lock_in_region;
        case "deadlock with lock in region (Fig 7b)"
          optimize_deadlock_with_lock_in_region;
        case "non-deadlock without shared read (Fig 7c)"
          optimize_nondeadlock_no_shared_read;
        case "non-deadlock with shared read (Fig 7d)"
          optimize_nondeadlock_with_shared_read;
      ] );
    ( "interproc",
      [
        case "callgraph edges and thread roots" callgraph_edges_and_roots;
        case "one level" interproc_one_level;
        case "three levels" interproc_three_levels;
        case "depth limit respected" interproc_depth_limit;
        case "deeper budget helps" interproc_deeper_budget;
        case "dirty callee path not selected"
          interproc_not_selected_when_dirty_path;
        case "thread root stops the chain" interproc_stops_at_thread_root;
      ] );
    ( "plan",
      [
        case "points deduplicated across sites" plan_points_deduplicated;
        case "optimization removes points" plan_unoptimized_keeps_everything;
      ] );
  ]
