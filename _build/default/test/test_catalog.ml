(* Tests for the bug-pattern catalog: every entry's behaviour must match
   its declared recovery class — recoverable patterns recover under
   ConAir, the documented limitations do not, and the taxonomy matches the
   paper's §2.2 study shape (idempotent regions dominate). *)

open Test_util
module Catalog = Conair_bugbench.Catalog
module Outcome = Conair.Runtime.Outcome
module Machine = Conair.Runtime.Machine

let config = { Machine.default_config with fuel = 500_000; max_retries = 400 }

let bug_manifests (e : Catalog.entry) () =
  check_valid e.program;
  let r = Conair.execute ~config e.program in
  Alcotest.(check bool)
    (e.name ^ ": the bug manifests unprotected")
    false
    (Outcome.is_success r.outcome)

let verdict_matches (e : Catalog.entry) () =
  let h = Conair.harden_exn e.program Conair.Survival in
  check_valid h.hardened.program;
  let r = Conair.execute_hardened ~config h in
  let expected = e.recovery = Catalog.Idempotent in
  Alcotest.(check bool)
    (e.name ^ ": ConAir recovery matches the taxonomy class")
    expected
    (Outcome.is_success r.outcome);
  Alcotest.(check int)
    (e.name ^ ": rollback safety")
    0 r.stats.tracecheck_violations

let taxonomy_shape () =
  let _, breakdown = Catalog.taxonomy () in
  let count cls = List.assoc cls breakdown in
  (* the paper's §2.2: idempotent regions dominate (16 of 20), with small
     I/O and non-idempotent-write tails (2 + 2) *)
  Alcotest.(check bool) "idempotent dominates" true
    (count Catalog.Idempotent
    > count Catalog.Needs_io
      + count Catalog.Needs_nonidempotent_writes
      + count Catalog.Needs_multithread);
  Alcotest.(check bool) "I/O tail present" true (count Catalog.Needs_io >= 1);
  Alcotest.(check bool) "non-idempotent-write tail present" true
    (count Catalog.Needs_nonidempotent_writes >= 1)

let suites =
  [
    ( "catalog",
      List.concat_map
        (fun (e : Catalog.entry) ->
          [
            case (e.name ^ ": manifests") (bug_manifests e);
            case (e.name ^ ": verdict") (verdict_matches e);
          ])
        (Catalog.all ())
      @ [ case "taxonomy shape (paper 2.2)" taxonomy_shape ] );
  ]
