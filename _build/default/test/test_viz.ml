(* Tests for the DOT export: well-formedness and that the annotations
   track the region analysis. *)

open Conair.Ir
open Conair.Analysis
open Test_util

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let first_site_of p =
  List.find
    (fun (s : Site.t) -> s.kind = Instr.Wrong_output || s.kind = Instr.Assert_fail)
    (Find_sites.survival p)

let dot_is_well_formed () =
  let p = order_violation_program ~buggy:true () in
  let dot = Viz.site_to_dot p (first_site_of p) in
  Alcotest.(check bool) "digraph header" true
    (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "closes" true (String.length dot > 0 && contains ~needle:"}" dot);
  (* balanced quotes *)
  let quotes = String.fold_left (fun n c -> if c = '"' then n + 1 else n) 0 dot in
  Alcotest.(check int) "balanced quotes" 0 (quotes mod 2)

let dot_marks_site_and_region () =
  let p = order_violation_program ~buggy:true () in
  let dot = Viz.site_to_dot p (first_site_of p) in
  Alcotest.(check bool) "site marker present" true (contains ~needle:"(X)" dot);
  Alcotest.(check bool) "region markers present" true
    (contains ~needle:"[*]" dot);
  Alcotest.(check bool) "site block is red" true
    (contains ~needle:"color=red" dot)

let dot_every_benchmark_renders () =
  List.iter
    (fun (s : Conair_bugbench.Bench_spec.t) ->
      let inst =
        s.make ~variant:Conair_bugbench.Bench_spec.Buggy ~oracle:true
      in
      List.iter
        (fun (site : Site.t) ->
          let dot = Viz.site_to_dot inst.program site in
          Alcotest.(check bool)
            (s.info.name ^ ": renders")
            true
            (contains ~needle:"digraph" dot))
        (match Find_sites.survival inst.program with
        | a :: b :: _ -> [ a; b ]
        | l -> l))
    Conair_bugbench.Registry.all

let dot_escapes_strings () =
  let module B = Builder in
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.move f "c" (B.bool true);
    B.assert_ f (B.reg "c") ~msg:{|tricky "quoted" message|};
    B.exit_ f
  in
  let dot = Viz.site_to_dot p (first_site_of p) in
  (* the message is escaped twice — once by the instruction printer,
     once by the DOT escaper — so a source quote arrives as
     backslash-backslash-backslash-quote *)
  Alcotest.(check bool) "escaped quotes" true
    (contains ~needle:{|\\\"quoted\\\"|} dot)

let suites =
  [
    ( "viz",
      [
        case "dot is well-formed" dot_is_well_formed;
        case "dot marks site and region" dot_marks_site_and_region;
        case "every benchmark renders" dot_every_benchmark_renders;
        case "strings are escaped" dot_escapes_strings;
      ] );
  ]
