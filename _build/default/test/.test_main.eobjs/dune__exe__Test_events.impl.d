test/test_events.ml: Alcotest Builder Conair Conair_bugbench Emit Func Ident Instr List Optimize Parse Plan Program Test_util Value
