test/test_facade.ml: Alcotest Conair Conair_bugbench List Option Test_util
