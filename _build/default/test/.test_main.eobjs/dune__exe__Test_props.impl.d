test/test_props.ml: Array Block Cfg Conair Find_sites Gen Hashtbl Ident Instr List Printf Program QCheck QCheck_alcotest Region Result Site Value
