test/test_semantics_matrix.ml: Alcotest Builder Conair Instr Test_util Value
