test/test_catalog.ml: Alcotest Conair Conair_bugbench List Test_util
