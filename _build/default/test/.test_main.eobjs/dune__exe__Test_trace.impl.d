test/test_trace.ml: Alcotest Conair Format List String Test_util
