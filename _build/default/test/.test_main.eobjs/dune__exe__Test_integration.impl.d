test/test_integration.ml: Alcotest Builder Conair Conair_bugbench Instr List Printf Test_util Value
