test/test_recovery.ml: Alcotest Builder Conair Func Instr List Program Test_util Value
