test/test_detection.ml: Alcotest Builder Conair Conair_bugbench Ident Instr List Option Test_util Value
