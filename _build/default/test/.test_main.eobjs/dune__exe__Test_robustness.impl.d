test/test_robustness.ml: Alcotest Builder Conair Conair_bugbench Instr Test_util Value
