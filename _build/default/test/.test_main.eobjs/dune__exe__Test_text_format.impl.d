test/test_text_format.ml: Alcotest Conair Conair_bugbench Emit List Parse Printf Test_util Value
