test/test_analysis.ml: Alcotest Array Block Builder Callgraph Cfg Conair Find_sites Func Ident Instr List Optimize Plan Printf Program Region Site Slice Test_util Value
