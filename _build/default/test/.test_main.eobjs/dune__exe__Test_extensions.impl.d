test/test_extensions.ml: Alcotest Builder Conair Conair_bugbench Find_sites Instr List Optimize Plan String Test_util Value
