test/gen.ml: Conair_genprog
