test/test_ir.ml: Alcotest Block Builder Cfg Conair Conair_bugbench Fun Func Ident Instr List Program Test_util Validate Value
