test/test_runtime.ml: Alcotest Builder Conair Format Hashtbl Heap Ident Instr List Locks Machine Outcome Result Sched Stats Test_util Value
