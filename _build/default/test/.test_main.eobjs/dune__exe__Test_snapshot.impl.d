test/test_snapshot.ml: Alcotest Builder Conair Hashtbl Instr List Test_util Value
