test/test_bugbench.ml: Alcotest Conair Conair_bugbench List Test_util
