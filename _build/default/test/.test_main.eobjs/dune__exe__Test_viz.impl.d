test/test_viz.ml: Alcotest Builder Conair Conair_bugbench Find_sites Instr List Site String Test_util Viz
