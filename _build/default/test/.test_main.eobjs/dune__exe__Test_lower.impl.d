test/test_lower.ml: Alcotest Builder Conair Conair_bugbench Func Ident Instr List Option Printf Program Test_util Value
