test/test_baselines.ml: Alcotest Conair Conair_baselines Conair_bugbench List Option Test_util
