test/test_fixflow.ml: Alcotest Conair Conair_bugbench List Option Test_util
