test/test_profile.ml: Alcotest Conair Conair_bugbench Hashtbl List Option Test_util
