test/test_transform.ml: Alcotest Array Block Builder Conair Conair_bugbench Format Func Ident Instr List Program Rewrite Test_util Value
