test/test_edge_cases.ml: Alcotest Builder Cfg Conair Find_sites Ident Instr List Printf Program Region Site Test_util Value
