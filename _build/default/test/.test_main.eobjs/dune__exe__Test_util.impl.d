test/test_util.ml: Alcotest Builder Conair Format Instr Validate Value
