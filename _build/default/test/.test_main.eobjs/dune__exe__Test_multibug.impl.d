test/test_multibug.ml: Alcotest Builder Conair Conair_bugbench Instr List Test_util Value
