(* Unit tests for the code transformation: CFG surgery primitives, the
   Fig 5/Fig 6 guard shapes, checkpoint placement and sharing, and
   structural well-formedness of every hardened program. *)

open Conair.Ir
open Conair.Transform
open Test_util
module B = Builder

let fname = Ident.Fname.v

let find_ops (p : Program.t) pred =
  let acc = ref [] in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ i -> if pred i.Instr.op then acc := i :: !acc));
  List.rev !acc

let count_ops p pred = List.length (find_ops p pred)

(* --- Rewrite primitives --------------------------------------------- *)

let simple_program () =
  B.build ~main:"main" @@ fun b ->
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.move f "a" (B.int 1);
  B.move f "b" (B.int 2);
  B.exit_ f

let rewrite_insert_after () =
  let p = simple_program () in
  let edits = Rewrite.create () in
  Rewrite.insert_after edits 0 [ Instr.Checkpoint 7 ];
  let p', _ = Rewrite.apply edits p in
  check_valid p';
  let main = Program.func_exn p' (fname "main") in
  let entry = Func.block_exn main main.entry in
  (match entry.instrs.(1).op with
  | Instr.Checkpoint 7 -> ()
  | op -> Alcotest.failf "expected checkpoint, got %a" Instr.pp_op op);
  Alcotest.(check int) "one instruction added" 3 (Block.length entry);
  (* original iids preserved, fresh id above the old maximum *)
  Alcotest.(check int) "first keeps iid" 0 entry.instrs.(0).iid;
  Alcotest.(check bool) "fresh id is new" true
    (entry.instrs.(1).iid > Program.max_iid p)

let rewrite_insert_before () =
  let p = simple_program () in
  let edits = Rewrite.create () in
  Rewrite.insert_before edits 1 [ Instr.Nop ];
  let p', _ = Rewrite.apply edits p in
  let main = Program.func_exn p' (fname "main") in
  let entry = Func.block_exn main main.entry in
  match (entry.instrs.(1).op, entry.instrs.(2).iid) with
  | Instr.Nop, 1 -> ()
  | _ -> Alcotest.fail "nop must precede the original instruction"

let rewrite_prepend_entry () =
  let p = simple_program () in
  let edits = Rewrite.create () in
  Rewrite.prepend_entry edits (fname "main") [ Instr.Checkpoint 0 ];
  let p', _ = Rewrite.apply edits p in
  let main = Program.func_exn p' (fname "main") in
  let entry = Func.block_exn main main.entry in
  match entry.instrs.(0).op with
  | Instr.Checkpoint 0 -> ()
  | op -> Alcotest.failf "expected entry checkpoint, got %a" Instr.pp_op op

let rewrite_guard_assert_shape () =
  (* Fig 6: the assert becomes a branch; the failing arm holds
     Try_recover then Fail_stop. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.move f "c" (B.bool true);
    B.assert_ f (B.reg "c") ~msg:"m";
    B.move f "d" (B.int 3);
    B.exit_ f
  in
  let edits = Rewrite.create () in
  Rewrite.set_guard edits 1
    (Rewrite.Guard_assert
       { site_id = 5; kind = Instr.Assert_fail; msg = "m" });
  let p', fail_blocks = Rewrite.apply edits p in
  check_valid p';
  Alcotest.(check int) "one fail block" 1 (List.length fail_blocks);
  Alcotest.(check int) "fail block site id" 5 (snd (List.hd fail_blocks));
  Alcotest.(check int) "assert is gone" 0
    (count_ops p' (function Instr.Assert _ -> true | _ -> false));
  Alcotest.(check int) "one try_recover" 1
    (count_ops p' (function Instr.Try_recover _ -> true | _ -> false));
  Alcotest.(check int) "one fail_stop" 1
    (count_ops p' (function Instr.Fail_stop _ -> true | _ -> false));
  (* and the happy path still runs: d is assigned *)
  let r = run p' in
  expect_success r

let rewrite_guard_deref_keeps_instruction () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 1);
    B.load_idx f "v" (B.reg "p") (B.int 0);
    B.exit_ f
  in
  let edits = Rewrite.create () in
  Rewrite.set_guard edits 1 (Rewrite.Guard_deref { site_id = 0 });
  let p', _ = Rewrite.apply edits p in
  check_valid p';
  Alcotest.(check int) "deref survives with its id" 1
    (List.length
       (List.filter
          (fun (i : Instr.t) -> i.iid = 1)
          (find_ops p' (function Instr.Load_idx _ -> true | _ -> false))));
  Alcotest.(check int) "guard inserted" 1
    (count_ops p' (function Instr.Ptr_guard _ -> true | _ -> false));
  expect_success (run p')

let rewrite_guard_lock_becomes_timed () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref "m");
    B.unlock f (B.mutex_ref "m");
    B.exit_ f
  in
  let edits = Rewrite.create () in
  Rewrite.set_guard edits 0 (Rewrite.Guard_lock { site_id = 3; timeout = 99 });
  let p', _ = Rewrite.apply edits p in
  check_valid p';
  Alcotest.(check int) "no plain lock left" 0
    (count_ops p' (function Instr.Lock _ -> true | _ -> false));
  (match
     find_ops p' (function Instr.Timed_lock _ -> true | _ -> false)
   with
  | [ { iid = 0; op = Instr.Timed_lock (_, _, 99) } ] -> ()
  | _ -> Alcotest.fail "expected one timed lock with iid 0 and timeout 99");
  expect_success (run p')

let rewrite_double_guard_rejected () =
  let edits = Rewrite.create () in
  Rewrite.set_guard edits 0
    (Rewrite.Guard_assert { site_id = 0; kind = Instr.Assert_fail; msg = "" });
  match
    Rewrite.set_guard edits 0 (Rewrite.Guard_deref { site_id = 1 })
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "second guard on one instruction must be rejected"

(* --- Harden ----------------------------------------------------------- *)

let harden p = Conair.harden_exn p Conair.Survival

let harden_checkpoints_shared () =
  (* Two sites sharing one reexecution point get a single checkpoint. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g" (Value.Int 1);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.store f (Instr.Global "g") (B.int 1);
    B.load f "v" (Instr.Global "g");
    B.assert_ f (B.reg "v") ~msg:"s1";
    B.load f "w" (Instr.Global "g");
    B.assert_ f (B.reg "w") ~msg:"s2";
    B.exit_ f
  in
  let h = harden p in
  Alcotest.(check int) "one checkpoint instruction" 1
    (count_ops h.hardened.program (function
      | Instr.Checkpoint _ -> true
      | _ -> false));
  Alcotest.(check int) "two guards" 2
    (count_ops h.hardened.program (function
      | Instr.Try_recover _ -> true
      | _ -> false))

let harden_unrecoverable_lock_reverted () =
  (* A lock with nothing to release stays a plain lock (§4.2). *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref "m");
    B.unlock f (B.mutex_ref "m");
    B.exit_ f
  in
  let h = harden p in
  Alcotest.(check int) "plain lock kept" 1
    (count_ops h.hardened.program (function
      | Instr.Lock _ -> true
      | _ -> false));
  Alcotest.(check int) "no timed lock" 0
    (count_ops h.hardened.program (function
      | Instr.Timed_lock _ -> true
      | _ -> false))

let harden_undetectable_output_no_guard () =
  (* Output sites without an oracle get checkpoints but no guard. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g" (Value.Int 7);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.load f "v" (Instr.Global "g");
    B.output f "v=%v" [ B.reg "v" ];
    B.exit_ f
  in
  let h = harden p in
  Alcotest.(check int) "no recovery guard" 0
    (count_ops h.hardened.program (function
      | Instr.Try_recover _ -> true
      | _ -> false));
  Alcotest.(check bool) "but a checkpoint exists" true
    (count_ops h.hardened.program (function
       | Instr.Checkpoint _ -> true
       | _ -> false)
    > 0)

let harden_all_benchmarks_validate () =
  List.iter
    (fun (s : Conair_bugbench.Bench_spec.t) ->
      let inst =
        s.make ~variant:Conair_bugbench.Bench_spec.Buggy ~oracle:true
      in
      let h = harden inst.program in
      check_valid h.hardened.program;
      (* fix mode too *)
      let hf = Conair.harden_exn inst.program (Conair.Fix inst.fix_site_iids) in
      check_valid hf.hardened.program)
    Conair_bugbench.Registry.all

let harden_original_untouched () =
  (* Hardening builds a new program; the input is not mutated. *)
  let p = Test_util.order_violation_program ~buggy:true () in
  let before = Format.asprintf "%a" Program.pp p in
  let _ = harden p in
  let after = Format.asprintf "%a" Program.pp p in
  Alcotest.(check string) "program unchanged" before after

let harden_checkpoint_ids_match_instructions () =
  let p = Test_util.interproc_segfault_program ~buggy:true () in
  let h = harden p in
  let ids_in_program =
    find_ops h.hardened.program (function
      | Instr.Checkpoint _ -> true
      | _ -> false)
    |> List.map (fun (i : Instr.t) ->
           match i.op with Instr.Checkpoint k -> k | _ -> assert false)
    |> List.sort compare
  in
  let ids_in_table =
    List.map snd h.hardened.checkpoints |> List.sort compare
  in
  Alcotest.(check (list int)) "checkpoint tables agree" ids_in_table
    ids_in_program

let report_consistency () =
  List.iter
    (fun (s : Conair_bugbench.Bench_spec.t) ->
      let inst =
        s.make ~variant:Conair_bugbench.Bench_spec.Buggy ~oracle:true
      in
      let h = harden inst.program in
      let r = h.report in
      Alcotest.(check int)
        (s.info.name ^ ": sites partition")
        (Conair.Analysis.Find_sites.total r.census)
        (r.recoverable_sites + r.unrecoverable_sites);
      Alcotest.(check int)
        (s.info.name ^ ": static points match checkpoints")
        (List.length h.hardened.checkpoints)
        r.static_points)
    Conair_bugbench.Registry.all

let suites =
  [
    ( "rewrite",
      [
        case "insert after" rewrite_insert_after;
        case "insert before" rewrite_insert_before;
        case "prepend at entry" rewrite_prepend_entry;
        case "assert guard shape (Fig 6)" rewrite_guard_assert_shape;
        case "deref guard keeps the dereference" rewrite_guard_deref_keeps_instruction;
        case "lock guard becomes timed lock" rewrite_guard_lock_becomes_timed;
        case "double guard rejected" rewrite_double_guard_rejected;
      ] );
    ( "harden",
      [
        case "checkpoints shared between sites" harden_checkpoints_shared;
        case "unrecoverable lock reverted to plain lock"
          harden_unrecoverable_lock_reverted;
        case "undetectable output gets no guard"
          harden_undetectable_output_no_guard;
        case "all hardened benchmarks validate" harden_all_benchmarks_validate;
        case "original program untouched" harden_original_untouched;
        case "checkpoint ids consistent" harden_checkpoint_ids_match_instructions;
        case "report numbers consistent" report_consistency;
      ] );
  ]
