(* Shared fixtures and helpers for the test suites. *)

open Conair.Ir
module B = Builder

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* --- Alcotest testables ------------------------------------------- *)

let value = Alcotest.testable Value.pp Value.equal

let outcome =
  Alcotest.testable Conair.Runtime.Outcome.pp (fun a b -> a = b)

let check_valid p =
  match Validate.check p with
  | [] -> ()
  | problems ->
      Alcotest.failf "invalid program:@ %a"
        (Format.pp_print_list Validate.pp_problem)
        problems

(* --- Execution helpers -------------------------------------------- *)

let run ?(policy = Conair.Runtime.Sched.Round_robin) ?(fuel = 500_000) p =
  let config = { Conair.Runtime.Machine.default_config with policy; fuel } in
  Conair.execute ~config p

let run_hardened ?(policy = Conair.Runtime.Sched.Round_robin)
    ?(fuel = 500_000) ?(max_retries = 1_000_000) h =
  let config =
    { Conair.Runtime.Machine.default_config with policy; fuel; max_retries }
  in
  Conair.execute_hardened ~config h

let expect_success (r : Conair.run) =
  match r.outcome with
  | Conair.Runtime.Outcome.Success -> ()
  | o -> Alcotest.failf "expected success, got %a" Conair.Runtime.Outcome.pp o

let expect_failure_kind kind (r : Conair.run) =
  match r.outcome with
  | Conair.Runtime.Outcome.Failed f when f.kind = kind -> ()
  | o ->
      Alcotest.failf "expected %a failure, got %a" Instr.pp_failure_kind kind
        Conair.Runtime.Outcome.pp o

let expect_hang (r : Conair.run) =
  match r.outcome with
  | Conair.Runtime.Outcome.Hang _ -> ()
  | o -> Alcotest.failf "expected hang, got %a" Conair.Runtime.Outcome.pp o

(* --- Fixture programs --------------------------------------------- *)

(* A single-threaded program exercising arithmetic, the heap, stack slots
   and calls — no concurrency, no bug. *)
let straightline_program () =
  B.build ~main:"main" @@ fun b ->
  B.global b "sum" (Value.Int 0);
  (B.func b "add_twice" ~params:[ "x" ] @@ fun f ->
   B.label f "entry";
   B.add f "y" (B.reg "x") (B.reg "x");
   B.ret f (Some (B.reg "y")));
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.move f "a" (B.int 21);
  B.call f ~into:"d" "add_twice" [ B.reg "a" ];
  B.store f (Instr.Global "sum") (B.reg "d");
  B.load f "s" (Instr.Global "sum");
  B.assert_ f (B.reg "s") ~msg:"sum is non-zero";
  B.output f "sum=%v" [ B.reg "s" ];
  B.exit_ f

(* Fig 9 (FFT) shape: thread 1 reads a shared timestamp too early; the
   oracle assert turns the wrong output into a detectable failure. *)
let order_violation_program ~buggy () =
  B.build ~main:"main" @@ fun b ->
  B.global b "end_time" (Value.Int 0);
  (B.func b "reporter" ~params:[] @@ fun f ->
   B.label f "entry";
   if not buggy then B.sleep f 40;
   B.load f "tmp" (Instr.Global "end_time");
   B.binop f "ok" Instr.Gt (B.reg "tmp") (B.int 0);
   B.assert_ f ~oracle:true (B.reg "ok") ~msg:"end_time must be positive";
   B.output f "end=%v" [ B.reg "tmp" ];
   B.ret f None);
  (B.func b "timer" ~params:[] @@ fun f ->
   B.label f "entry";
   if buggy then B.sleep f 40;
   B.store f (Instr.Global "end_time") (B.int 99);
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "reporter" [];
  B.spawn f "t2" "timer" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f

(* Fig 10 (Mozilla XPCOM) shape: the dereference happens in a callee whose
   region is locally unrecoverable; recovery must be inter-procedural. *)
let interproc_segfault_program ~buggy () =
  B.build ~main:"main" @@ fun b ->
  B.global b "mThd" Value.Null;
  (B.func b "get_state" ~params:[ "thd" ] @@ fun f ->
   B.label f "entry";
   B.load_idx f "st" (B.reg "thd") (B.int 0);
   B.ret f (Some (B.reg "st")));
  (B.func b "getter" ~params:[] @@ fun f ->
   B.label f "entry";
   if not buggy then B.sleep f 80;
   B.load f "p" (Instr.Global "mThd");
   B.call f ~into:"tmp" "get_state" [ B.reg "p" ];
   B.output f "state=%v" [ B.reg "tmp" ];
   B.ret f None);
  (B.func b "initer" ~params:[] @@ fun f ->
   B.label f "entry";
   if buggy then B.sleep f 60;
   B.alloc f "obj" (B.int 2);
   B.store_idx f (B.reg "obj") (B.int 0) (B.int 7);
   B.store f (Instr.Global "mThd") (B.reg "obj");
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "getter" [];
  B.spawn f "t2" "initer" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f

(* Fig 11 (HawkNL) shape: two threads acquire two locks in opposite orders.
   Thread 2's outer region contains the first acquisition, so ConAir can
   time out on the inner lock, release the outer one and retry. *)
let deadlock_program ~buggy () =
  B.build ~main:"main" @@ fun b ->
  B.mutex b "nlock";
  B.mutex b "slock";
  B.global b "n_sockets" (Value.Int 3);
  (B.func b "closer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.lock f (B.mutex_ref "nlock");
   if buggy then B.sleep f 30;
   (* driver->Close(): a destroying operation between the two locks *)
   B.store f (Instr.Global "n_sockets") (B.int 2);
   B.lock f (B.mutex_ref "slock");
   B.unlock f (B.mutex_ref "slock");
   B.unlock f (B.mutex_ref "nlock");
   B.ret f None);
  (B.func b "shutdown" ~params:[] @@ fun f ->
   B.label f "entry";
   if not buggy then B.sleep f 80;
   B.lock f (B.mutex_ref "slock");
   B.load f "n" (Instr.Global "n_sockets");
   B.binop f "has" Instr.Gt (B.reg "n") (B.int 0);
   B.branch f (B.reg "has") "do_lock" "out";
   B.label f "do_lock";
   B.lock f (B.mutex_ref "nlock");
   B.unlock f (B.mutex_ref "nlock");
   B.jump f "out";
   B.label f "out";
   B.unlock f (B.mutex_ref "slock");
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "closer" [];
  B.spawn f "t2" "shutdown" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f
