(* Robustness tests: hand-written (not transformation-produced) recovery
   pseudo-instructions and other hostile shapes must degrade gracefully,
   never crash the interpreter. *)

open Conair.Ir
open Test_util
module B = Builder
module Outcome = Conair.Runtime.Outcome

let stale_callee_checkpoint_fails_gracefully () =
  (* A checkpoint taken inside a callee, then a Try_recover in the caller
     after the frame is gone: the checkpoint is inapplicable and the site
     must fail-stop instead of crashing. ConAir's own placement can never
     produce this shape (a caller-side checkpoint always executes after
     the call returns); this is the defensive path. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "callee" ~params:[] @@ fun f ->
     B.label f "entry";
     B.emit f (Instr.Checkpoint 0);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f "callee" [];
    B.emit f
      (Instr.Try_recover { site_id = 9; kind = Instr.Assert_fail });
    B.emit f
      (Instr.Fail_stop
         { site_id = 9; kind = Instr.Assert_fail; msg = "stale checkpoint" });
    B.exit_ f
  in
  check_valid p;
  match (run p).outcome with
  | Outcome.Failed { site_id = Some 9; _ } -> ()
  | o ->
      Alcotest.failf "expected a graceful fail-stop, got %a" Outcome.pp o

let try_recover_without_checkpoint_falls_through () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.emit f (Instr.Try_recover { site_id = 1; kind = Instr.Seg_fault });
    B.emit f
      (Instr.Fail_stop
         { site_id = 1; kind = Instr.Seg_fault; msg = "no checkpoint" });
    B.exit_ f
  in
  match (run p).outcome with
  | Outcome.Failed { site_id = Some 1; kind = Instr.Seg_fault; _ } -> ()
  | o -> Alcotest.failf "expected fail-stop, got %a" Outcome.pp o

let checkpoint_into_branchy_callee () =
  (* A checkpoint whose block label exists in the caller too: depth check
     alone would pass; block lookup must land in the right frame's
     function. Here the shapes are legitimate, so recovery works. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "flag" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "v" (Instr.Global "flag");
     B.assert_ f (B.reg "v") ~msg:"flag set";
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 30;
     B.store f (Instr.Global "flag") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "worker" [];
    B.spawn f "t2" "setter" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  expect_success (run_hardened h)

let deep_recursion_with_recovery () =
  (* Recovery at the bottom of a deep call stack: the rollback unwinds
     only to its own frame's depth. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "flag" (Value.Int 0);
    (B.func b "descend" ~params:[ "n" ] @@ fun f ->
     B.label f "entry";
     B.gt f "more" (B.reg "n") (B.int 0);
     B.branch f (B.reg "more") "rec" "check";
     B.label f "rec";
     B.sub f "m" (B.reg "n") (B.int 1);
     B.call f ~into:"r" "descend" [ B.reg "m" ];
     B.ret f (Some (B.reg "r"));
     B.label f "check";
     B.load f "v" (Instr.Global "flag");
     B.assert_ f (B.reg "v") ~msg:"flag set at the bottom";
     B.ret f (Some (B.reg "v")));
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"r" "descend" [ B.int 30 ];
     B.output f "r=%v" [ B.reg "r" ];
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 200;
     B.store f (Instr.Global "flag") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "worker" [];
    B.spawn f "t2" "setter" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "r=1" ] r.outputs;
  Alcotest.(check int) "rollback safety" 0 r.stats.tracecheck_violations

let huge_retry_storm_is_bounded () =
  (* A never-satisfied site with a tiny region: a million retries would
     take too long, the budget cuts it off deterministically. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "never" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "v" (Instr.Global "never");
     B.assert_ f (B.reg "v") ~msg:"never satisfied";
     B.ret f None);
    Conair_bugbench.Mirlib.two_thread_main b ~threads:[ "worker" ]
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened ~max_retries:1000 ~fuel:100_000 h in
  (match r.outcome with
  | Outcome.Failed { kind = Instr.Assert_fail; _ } -> ()
  | o -> Alcotest.failf "expected assert fail-stop, got %a" Outcome.pp o);
  Alcotest.(check int) "exactly the budget" 1000 r.stats.rollbacks

let suites =
  [
    ( "robustness",
      [
        case "stale callee checkpoint fails gracefully"
          stale_callee_checkpoint_fails_gracefully;
        case "try_recover without a checkpoint falls through"
          try_recover_without_checkpoint_falls_through;
        case "checkpoint into branchy callee" checkpoint_into_branchy_callee;
        case "deep recursion with recovery" deep_recursion_with_recovery;
        case "retry storms are bounded" huge_retry_storm_is_bounded;
      ] );
  ]
