(* Tests for ConSeq-style profile-based pruning (§3.4): the profile counts
   executions correctly, exclusion shrinks the hardened footprint — and
   the technique's real trade-off shows: a hidden bug at a well-tested
   site loses its recovery. *)

open Test_util
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Plan = Conair.Analysis.Plan
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome

let config = { Machine.default_config with fuel = 2_000_000 }

let profile_counts_executions () =
  (* A clean ZSNES run executes its render-loop sites several times. *)
  let s = Option.get (Registry.find "ZSNES") in
  let inst = s.make ~variant:Spec.Clean ~oracle:false in
  let profiles = Conair.profile_sites ~config ~runs:2 inst.program in
  Alcotest.(check bool) "profiles cover all sites" true
    (List.length profiles > 0);
  (* the assert inside the 4-frame loop executed 4 times per run *)
  let loop_assert =
    List.find
      (fun (p : Conair.site_profile) ->
        p.site.msg = "video depth configured")
      profiles
  in
  Alcotest.(check int) "loop assert executed 4x per run" 8
    loop_assert.executions;
  (* sites in never-executed library functions have zero counts *)
  Alcotest.(check bool) "some sites never executed" true
    (List.exists (fun (p : Conair.site_profile) -> p.executions = 0) profiles)

let exclusion_shrinks_footprint () =
  let s = Option.get (Registry.find "ZSNES") in
  let inst = s.make ~variant:Spec.Clean ~oracle:false in
  let profiles = Conair.profile_sites ~config ~runs:2 inst.program in
  let excluded = Conair.well_tested ~threshold:1 profiles in
  Alcotest.(check bool) "something is well-tested" true (excluded <> []);
  let h0 = Conair.harden_exn inst.program Conair.Survival in
  let h1 =
    Conair.harden_exn
      ~analysis:{ Plan.default_options with exclude_iids = excluded }
      inst.program Conair.Survival
  in
  Alcotest.(check bool) "fewer sites" true
    (List.length h1.plan.site_plans < List.length h0.plan.site_plans);
  Alcotest.(check bool) "no more checkpoints than before" true
    (h1.report.static_points <= h0.report.static_points)

let tradeoff_well_tested_bug_loses_recovery () =
  (* The ZSNES bug site *is* well tested on clean runs: excluding
     well-tested sites removes exactly the recovery the hidden bug needs —
     the documented danger of aggressive profile pruning. *)
  let s = Option.get (Registry.find "ZSNES") in
  let clean = s.make ~variant:Spec.Clean ~oracle:false in
  let profiles = Conair.profile_sites ~config ~runs:2 clean.program in
  let excluded = Conair.well_tested ~threshold:1 profiles in
  (* iids are stable across clean/buggy variants only for the prefix
     before any variant-dependent sleep, so re-derive the exclusion from
     the buggy program's own clean-run profile shape: use message
     matching. *)
  let buggy = s.make ~variant:Spec.Buggy ~oracle:false in
  let buggy_sites = Conair.Analysis.Find_sites.survival buggy.program in
  let excluded_msgs =
    List.filter_map
      (fun (p : Conair.site_profile) ->
        if List.mem p.site.iid excluded then Some p.site.msg else None)
      profiles
  in
  let excluded_buggy =
    List.filter_map
      (fun (st : Conair.Analysis.Site.t) ->
        if List.mem st.msg excluded_msgs then Some st.iid else None)
      buggy_sites
  in
  let h =
    Conair.harden_exn
      ~analysis:{ Plan.default_options with exclude_iids = excluded_buggy }
      buggy.program Conair.Survival
  in
  let r = Conair.execute_hardened ~config h in
  Alcotest.(check bool) "the hidden bug is no longer recovered" false
    (Outcome.is_success r.outcome)

let profiling_off_by_default () =
  let s = Option.get (Registry.find "ZSNES") in
  let inst = s.make ~variant:Spec.Clean ~oracle:false in
  let r = Conair.execute ~config inst.program in
  Alcotest.(check int) "no iid hits recorded" 0
    (Hashtbl.length r.stats.iid_hits)

let suites =
  [
    ( "profile-prune",
      [
        case "profile counts executions" profile_counts_executions;
        case "exclusion shrinks the footprint" exclusion_shrinks_footprint;
        case "trade-off: well-tested bug loses recovery"
          tradeoff_well_tested_bug_loses_recovery;
        case "profiling is off by default" profiling_off_by_default;
      ] );
  ]
