(* An integration scenario beyond the paper's benchmark set: a bounded
   job queue with two producers and two workers, entirely in Mir, with two
   hidden concurrency bugs:

   - the workers read the results-table pointer that main publishes late
     (order violation -> segfault);
   - a worker snapshots the queue count twice around its pop and asserts
     consistency (RAR atomicity violation under producer pressure).

   The hardened service must deliver exactly the clean run's results. *)

open Conair.Ir
open Test_util
module B = Builder
module Mirlib = Conair_bugbench.Mirlib

(* queue layout on the heap: [0]=head [1]=tail [2]=count [3..3+cap-1]=jobs *)
let cap = 8

let queue_service ~buggy =
  B.build ~main:"main" @@ fun b ->
  B.mutex b "qlock";
  B.global b "queue" Value.Null;
  B.global b "results" Value.Null;
  B.global b "produced" (Value.Int 0);
  Mirlib.add_compute_kernel b;
  (* enqueue(job): under qlock, append and bump tail/count *)
  (B.func b "enqueue" ~params:[ "job" ] @@ fun f ->
   B.label f "entry";
   B.lock f (B.mutex_ref "qlock");
   B.load f "q" (Instr.Global "queue");
   B.load_idx f "tail" (B.reg "q") (B.int 1);
   B.add f "slot" (B.reg "tail") (B.int 3);
   B.store_idx f (B.reg "q") (B.reg "slot") (B.reg "job");
   B.add f "tail2" (B.reg "tail") (B.int 1);
   B.binop f "tail2" Instr.Mod (B.reg "tail2") (B.int cap);
   B.store_idx f (B.reg "q") (B.int 1) (B.reg "tail2");
   B.load_idx f "cnt" (B.reg "q") (B.int 2);
   B.add f "cnt" (B.reg "cnt") (B.int 1);
   B.store_idx f (B.reg "q") (B.int 2) (B.reg "cnt");
   B.unlock f (B.mutex_ref "qlock");
   B.ret f None);
  (* try_dequeue() -> job or -1 *)
  (B.func b "try_dequeue" ~params:[] @@ fun f ->
   B.label f "entry";
   B.lock f (B.mutex_ref "qlock");
   B.load f "q" (Instr.Global "queue");
   B.load_idx f "cnt" (B.reg "q") (B.int 2);
   B.gt f "has" (B.reg "cnt") (B.int 0);
   B.branch f (B.reg "has") "pop" "empty";
   B.label f "pop";
   B.load_idx f "head" (B.reg "q") (B.int 0);
   B.add f "slot" (B.reg "head") (B.int 3);
   B.load_idx f "job" (B.reg "q") (B.reg "slot");
   B.add f "head2" (B.reg "head") (B.int 1);
   B.binop f "head2" Instr.Mod (B.reg "head2") (B.int cap);
   B.store_idx f (B.reg "q") (B.int 0) (B.reg "head2");
   B.sub f "cnt2" (B.reg "cnt") (B.int 1);
   B.store_idx f (B.reg "q") (B.int 2) (B.reg "cnt2");
   B.unlock f (B.mutex_ref "qlock");
   B.ret f (Some (B.reg "job"));
   B.label f "empty";
   B.unlock f (B.mutex_ref "qlock");
   B.ret f (Some (B.int (-1))));
  (* producer(base): enqueue 4 jobs *)
  (B.func b "producer" ~params:[ "base" ] @@ fun f ->
   B.label f "entry";
   B.move f "i" (B.int 0);
   B.label f "loop";
   B.lt f "c" (B.reg "i") (B.int 4);
   B.branch f (B.reg "c") "body" "done_";
   B.label f "body";
   B.add f "job" (B.reg "base") (B.reg "i");
   B.call f "enqueue" [ B.reg "job" ];
   B.call f ~into:"w" "compute_kernel" [ B.int 12 ];
   B.add f "i" (B.reg "i") (B.int 1);
   B.jump f "loop";
   B.label f "done_";
   B.load f "p" (Instr.Global "produced");
   B.add f "p" (B.reg "p") (B.int 4);
   B.store f (Instr.Global "produced") (B.reg "p");
   B.ret f None);
  (* worker(idx): drain 4 jobs, record job*job into results[idx*4 + k].
     Bug 1: reads $results, which main publishes late when buggy.
     Bug 2 (RAR flavour): double-reads the produced counter around a
     barrier check. *)
  (B.func b "worker" ~params:[ "idx" ] @@ fun f ->
   B.label f "entry";
   B.move f "k" (B.int 0);
   B.label f "drain";
   B.lt f "more" (B.reg "k") (B.int 4);
   B.branch f (B.reg "more") "take" "done_";
   B.label f "take";
   B.call f ~into:"job" "try_dequeue" [];
   B.binop f "got" Instr.Ge (B.reg "job") (B.int 0);
   B.branch f (B.reg "got") "work" "take";
   B.label f "work";
   (* the racy read: results may still be null *)
   B.load f "res" (Instr.Global "results");
   B.mul f "out" (B.reg "job") (B.reg "job");
   B.mul f "base" (B.reg "idx") (B.int 4);
   B.add f "slot" (B.reg "base") (B.reg "k");
   B.store_idx f (B.reg "res") (B.reg "slot") (B.reg "out");
   B.add f "k" (B.reg "k") (B.int 1);
   B.jump f "drain";
   B.label f "done_";
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.alloc f "q" (B.int (3 + cap));
  B.store f (Instr.Global "queue") (B.reg "q");
  B.spawn f "p1" "producer" [ B.int 10 ];
  B.spawn f "p2" "producer" [ B.int 20 ];
  B.spawn f "w1" "worker" [ B.int 0 ];
  B.spawn f "w2" "worker" [ B.int 1 ];
  (if buggy then B.sleep f 220 else B.nop f);
  B.alloc f "res" (B.int 8);
  B.store f (Instr.Global "results") (B.reg "res");
  B.join f (B.reg "p1");
  B.join f (B.reg "p2");
  B.join f (B.reg "w1");
  B.join f (B.reg "w2");
  (* aggregate: the multiset of results is schedule-dependent, but the sum
     of squares of all 8 jobs is an invariant *)
  B.move f "sum" (B.int 0);
  B.move f "i" (B.int 0);
  B.label f "agg";
  B.lt f "c" (B.reg "i") (B.int 8);
  B.branch f (B.reg "c") "acc" "report";
  B.label f "acc";
  B.load_idx f "x" (B.reg "res") (B.reg "i");
  B.add f "sum" (B.reg "sum") (B.reg "x");
  B.add f "i" (B.reg "i") (B.int 1);
  B.jump f "agg";
  B.label f "report";
  B.output f "sum of squares = %v" [ B.reg "sum" ];
  B.exit_ f

(* jobs are 10..13 and 20..23: the invariant sum *)
let expected_sum =
  List.fold_left (fun a j -> a + (j * j)) 0 [ 10; 11; 12; 13; 20; 21; 22; 23 ]

let expected_output = Printf.sprintf "sum of squares = %d" expected_sum

let clean_service_is_correct () =
  let p = queue_service ~buggy:false in
  check_valid p;
  let r = run ~fuel:2_000_000 p in
  expect_success r;
  Alcotest.(check (list string)) "invariant sum" [ expected_output ] r.outputs

let buggy_service_crashes () =
  let p = queue_service ~buggy:true in
  expect_failure_kind Instr.Seg_fault (run ~fuel:2_000_000 p)

let hardened_service_recovers () =
  let p = queue_service ~buggy:true in
  let h = Conair.harden_exn p Conair.Survival in
  check_valid h.hardened.program;
  let r = run_hardened ~fuel:4_000_000 h in
  expect_success r;
  Alcotest.(check (list string)) "recovered with the right sum"
    [ expected_output ] r.outputs;
  Alcotest.(check bool) "recovery happened" true (r.stats.rollbacks > 0);
  Alcotest.(check int) "rollback safety" 0 r.stats.tracecheck_violations

let hardened_service_under_random_schedules () =
  let p = queue_service ~buggy:true in
  let h = Conair.harden_exn p Conair.Survival in
  let trial =
    Conair.recovery_trial
      ~config:
        {
          Conair.Runtime.Machine.default_config with
          policy = Conair.Runtime.Sched.Random 3;
          fuel = 8_000_000;
        }
      ~runs:8
      ~accept:(fun outs -> outs = [ expected_output ])
      h
  in
  Alcotest.(check int) "all seeds correct" trial.runs trial.recovered

let suites =
  [
    ( "integration",
      [
        case "clean job-queue service is correct" clean_service_is_correct;
        case "buggy service crashes" buggy_service_crashes;
        case "hardened service recovers with correct results"
          hardened_service_recovers;
        slow_case "service under random schedules"
          hardened_service_under_random_schedules;
      ] );
  ]
