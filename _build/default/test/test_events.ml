(* Tests for the condition-variable-style events (the lost-wakeup
   extension): pulse semantics, broadcast wake, timed waits, text-format
   round-trip, and the analysis/transform path for wait sites. *)

open Conair.Ir
open Conair.Analysis
open Test_util
module B = Builder
module Outcome = Conair.Runtime.Outcome

let notify_wakes_all_waiters () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.global b "woken" (Value.Int 0);
    (B.func b "waiter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.wait f "go";
     B.lock f (B.mutex_ref "m");
     B.load f "w" (Instr.Global "woken");
     B.add f "w" (B.reg "w") (B.int 1);
     B.store f (Instr.Global "woken") (B.reg "w");
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    (B.func b "waker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 40;
     B.notify f "go";
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "waiter" [];
    B.spawn f "t2" "waiter" [];
    B.spawn f "t3" "waiter" [];
    B.spawn f "tw" "waker" [];
    List.iter (fun t -> B.join f (B.reg t)) [ "t1"; "t2"; "t3"; "tw" ];
    B.load f "w" (Instr.Global "woken");
    B.output f "%v" [ B.reg "w" ];
    B.exit_ f
  in
  check_valid p;
  let r = run p in
  expect_success r;
  Alcotest.(check (list string)) "broadcast wake" [ "3" ] r.outputs

let lost_notify_hangs () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "waiter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 20;
     B.wait f "go";
     B.ret f None);
    (B.func b "waker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.notify f "go";
     (* fires while the waiter is still asleep: lost *)
     B.ret f None);
    Conair_bugbench.Mirlib.two_thread_main b ~threads:[ "waker"; "waiter" ]
  in
  expect_hang (run p)

let timed_wait_times_out () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.emit f (Instr.Timed_wait (Ident.Reg.v "ok", "never", 30));
    B.output f "%v" [ B.reg "ok" ];
    B.exit_ f
  in
  let r = run p in
  expect_success r;
  Alcotest.(check (list string)) "timeout result" [ "false" ] r.outputs

let timed_wait_notified () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "waiter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.emit f (Instr.Timed_wait (Ident.Reg.v "ok", "go", 500));
     B.output f "%v" [ B.reg "ok" ];
     B.ret f None);
    (B.func b "waker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 20;
     B.notify f "go";
     B.ret f None);
    Conair_bugbench.Mirlib.two_thread_main b ~threads:[ "waiter"; "waker" ]
  in
  let r = run p in
  expect_success r;
  Alcotest.(check (list string)) "notified result" [ "true" ] r.outputs

let wait_is_a_hang_site_with_slice_rule () =
  (* A wait preceded by a shared predicate read is recoverable; a wait
     with no shared read in its region is pruned. *)
  let recoverable =
    B.build ~main:"main" @@ fun b ->
    B.global b "ready" (Value.Int 0);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.load f "r" (Instr.Global "ready");
    B.branch f (B.reg "r") "go" "park";
    B.label f "park";
    B.wait f "ev";
    B.jump f "go";
    B.label f "go";
    B.exit_ f
  in
  let bare =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.move f "x" (B.int 1);
    B.wait f "ev";
    B.exit_ f
  in
  let verdict p =
    let plan =
      match Plan.analyze p Plan.Survival with
      | Ok plan -> plan
      | Error e -> Alcotest.fail e
    in
    let sp =
      List.find
        (fun (sp : Plan.site_plan) -> sp.site.kind = Instr.Deadlock)
        plan.site_plans
    in
    sp.verdict
  in
  Alcotest.(check bool) "predicate wait recoverable" true
    (verdict recoverable = Optimize.Recoverable);
  Alcotest.(check bool) "bare wait pruned" true
    (verdict bare = Optimize.Unrecoverable)

let lost_wakeup_recovery_trace () =
  (* End-to-end on the catalog entry, with the guard shape verified: the
     hardened program holds a Timed_wait, recovers, and outputs ready=1. *)
  let entry =
    List.find
      (fun (e : Conair_bugbench.Catalog.entry) -> e.name = "lost-wakeup")
      (Conair_bugbench.Catalog.all ())
  in
  let h = Conair.harden_exn entry.program Conair.Survival in
  let timed_waits = ref 0 in
  Program.iter_funcs h.hardened.program (fun f ->
      Func.iter_instrs f (fun _ i ->
          match i.op with
          | Instr.Timed_wait _ -> incr timed_waits
          | Instr.Wait _ -> Alcotest.fail "plain wait left at a recoverable site"
          | _ -> ()));
  Alcotest.(check int) "one timed wait" 1 !timed_waits;
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "consumed ready=1" ] r.outputs;
  Alcotest.(check bool) "recovered via rollback" true (r.stats.rollbacks > 0)

let events_roundtrip_text_format () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "w" ~params:[] @@ fun f ->
     B.label f "entry";
     B.wait f "ev";
     B.emit f (Instr.Timed_wait (Ident.Reg.v "ok", "ev", 77));
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.notify f "ev";
    B.spawn f "t" "w" [];
    B.join f (B.reg "t");
    B.exit_ f
  in
  let text1 = Emit.program p in
  match Parse.program text1 with
  | Error e -> Alcotest.failf "parse error: %a" Parse.pp_error e
  | Ok p2 ->
      Alcotest.(check string) "round trip" text1 (Emit.program p2)

let suites =
  [
    ( "events",
      [
        case "notify wakes all waiters" notify_wakes_all_waiters;
        case "lost notify hangs" lost_notify_hangs;
        case "timed wait times out" timed_wait_times_out;
        case "timed wait sees the notify" timed_wait_notified;
        case "wait sites use the slice rule"
          wait_is_a_hang_site_with_slice_rule;
        case "lost wakeup recovers end to end" lost_wakeup_recovery_trace;
        case "events round-trip the text format" events_roundtrip_text_format;
      ] );
  ]
