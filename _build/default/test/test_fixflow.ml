(* The end-to-end fix-mode workflow (§3.1.2): the crash report names the
   failing instruction; feeding it back as a fix-mode site yields a
   working patch. *)

open Test_util
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Outcome = Conair.Runtime.Outcome

let crash_iid (r : Conair.run) =
  match r.outcome with
  | Outcome.Failed { iid = Some iid; _ } -> iid
  | o ->
      Alcotest.failf "expected a crash with an instruction id, got %a"
        Outcome.pp o

let crash_report_feeds_fix_mode () =
  List.iter
    (fun name ->
      let spec = Option.get (Registry.find name) in
      let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
      let iid = crash_iid (run ~fuel:2_000_000 inst.program) in
      (* the crash points at the benchmark's designated failing site *)
      Alcotest.(check bool)
        (name ^ ": crash report matches the known site")
        true
        (List.mem iid inst.fix_site_iids);
      let patched = Conair.harden_exn inst.program (Conair.Fix [ iid ]) in
      let r = run_hardened ~fuel:2_000_000 patched in
      expect_success r;
      Alcotest.(check bool)
        (name ^ ": patched outputs accepted")
        true (inst.accept r.outputs))
    [ "HTTrack"; "MozillaXP"; "ZSNES"; "Transmission"; "MySQL2" ]

let recovery_trial_many_seeds () =
  (* The §5 methodology, scaled down: many seeded runs, all recovered. *)
  let spec = Option.get (Registry.find "MozillaXP") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let trial =
    Conair.recovery_trial
      ~config:
        {
          Conair.Runtime.Machine.default_config with
          policy = Conair.Runtime.Sched.Random 7;
          fuel = 8_000_000;
        }
      ~runs:40 ~accept:inst.accept h
  in
  Alcotest.(check int) "40/40 recovered" 40 trial.recovered

let suites =
  [
    ( "fix-workflow",
      [
        case "crash reports feed fix mode" crash_report_feeds_fix_mode;
        slow_case "recovery trial over many seeds" recovery_trial_many_seeds;
      ] );
  ]
