(* Tests for the Mir concrete syntax: emit/parse round-trips on every
   benchmark (original and hardened), parse-error reporting, and the
   parsed program behaving identically to the built one. *)

open Conair.Ir
open Test_util
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

let parse_exn src =
  match Parse.program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parse.pp_error e

(* Round-trip: parse(emit p) must serialize back to the same text, and the
   parsed program must validate. *)
let roundtrip_program name p =
  let text1 = Emit.program p in
  let p2 = parse_exn text1 in
  check_valid p2;
  let text2 = Emit.program p2 in
  Alcotest.(check string) (name ^ ": emit/parse round-trip") text1 text2

let roundtrip_benchmarks () =
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:true in
      roundtrip_program s.info.name inst.program)
    Registry.all

let roundtrip_hardened () =
  (* Hardened programs contain every pseudo-instruction (checkpoints,
     guards, timed locks); they must round-trip too. *)
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:true in
      let h = Conair.harden_exn inst.program Conair.Survival in
      roundtrip_program (s.info.name ^ " hardened") h.hardened.program)
    Registry.all

let parsed_program_runs_identically () =
  let p = order_violation_program ~buggy:true () in
  let p2 = parse_exn (Emit.program p) in
  let h1 = Conair.harden_exn p Conair.Survival in
  let h2 = Conair.harden_exn p2 Conair.Survival in
  let r1 = run_hardened h1 and r2 = run_hardened h2 in
  Alcotest.(check (list string)) "same outputs" r1.outputs r2.outputs;
  Alcotest.(check int) "same steps" r1.stats.steps r2.stats.steps;
  Alcotest.(check int) "same rollbacks" r1.stats.rollbacks r2.stats.rollbacks

let handwritten_source_parses () =
  let src =
    {|
# a tiny demo: reader spawns, waits, reads
global flag = 0
mutex m
main @main

func @reader() {
entry:
  %v = load $flag
  assert %v, "flag must be set"
  output "flag=%v", %v
  return
}

func @main() {
entry:
  lock &m
  store $flag, 1
  unlock &m
  %t = spawn @reader()
  join %t
  exit
}
|}
  in
  let p = parse_exn src in
  check_valid p;
  let r = run p in
  expect_success r;
  Alcotest.(check (list string)) "output" [ "flag=1" ] r.outputs

let parse_errors_have_lines () =
  let cases =
    [
      ("main @main\nfunc @main() {\nentry:\n  %x = frobnicate 1\n}", 4);
      ("main @main\nfunc @main() {\nentry:\n  store $g\n}", 4);
      ("global g = \nmain @main", 1);
      ("main @main\nfunc @main() {\n}", 3);
    ]
  in
  List.iter
    (fun (src, expected_line) ->
      match Parse.program src with
      | Ok _ -> Alcotest.failf "expected a parse error for %S" src
      | Error e ->
          Alcotest.(check int)
            (Printf.sprintf "error line for %S" src)
            expected_line e.line)
    cases;
  (* missing main declaration *)
  match Parse.program "global g = 1" with
  | Ok _ -> Alcotest.fail "missing main accepted"
  | Error _ -> ()

let negative_ints_and_escapes () =
  let src =
    "global g = -42\nmain @main\nfunc @main() {\nentry:\n  output \
     \"a\\\"b\\n\", -7\n  exit\n}"
  in
  let p = parse_exn src in
  (match List.assoc "g" p.globals with
  | Value.Int (-42) -> ()
  | v -> Alcotest.failf "bad global value %a" Value.pp v);
  roundtrip_program "negatives and escapes" p

let suites =
  [
    ( "text-format",
      [
        case "benchmarks round-trip" roundtrip_benchmarks;
        case "hardened programs round-trip" roundtrip_hardened;
        case "parsed program runs identically" parsed_program_runs_identically;
        case "hand-written source parses and runs" handwritten_source_parses;
        case "parse errors carry line numbers" parse_errors_have_lines;
        case "negative ints and string escapes" negative_ints_and_escapes;
      ] );
  ]
