(* Tests for the spill-lowering pass and the §3.2.1
   [-no-stack-slot-sharing] story: own-slot spilling preserves behaviour
   AND recovery; live-range slot sharing is sequentially correct but
   silently corrupts rollback reexecution. *)

open Conair.Ir
open Test_util
module B = Builder
module Lower = Conair.Transform.Lower
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome

(* Run without the rollback verifier: lowered programs legitimately write
   (their own private) stack slots inside regions. *)
let run_lowered ?(fuel = 500_000) p =
  let config =
    { Machine.default_config with fuel; verify_rollbacks = false }
  in
  Conair.execute ~config p

let lowering_preserves_behaviour () =
  (* Every clean benchmark run behaves identically after own-slot
     spilling of all registers. *)
  List.iter
    (fun name ->
      let s = Option.get (Conair_bugbench.Registry.find name) in
      let inst =
        s.make ~variant:Conair_bugbench.Bench_spec.Clean ~oracle:false
      in
      let lowered = Lower.spill inst.program in
      check_valid lowered;
      let r0 = run ~fuel:2_000_000 inst.program in
      let r1 = run_lowered ~fuel:2_000_000 lowered in
      Alcotest.(check bool)
        (name ^ ": lowered run succeeds")
        true
        (Outcome.is_success r1.outcome);
      Alcotest.(check (list string)) (name ^ ": same outputs") r0.outputs
        r1.outputs)
    [ "ZSNES"; "HawkNL"; "MySQL2" ]

(* The §3.2.1 shape: an input value defined before the region, consumed
   inside it; a second value defined afterwards. Their live ranges are
   sequentially disjoint, so a live-range allocator may share their slot —
   which breaks reexecution. *)
let slot_demo_program () =
  let fix = ref (-1) in
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "flag" (Value.Int 0);
    B.global b "scratch" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.move f "r0" (B.int 10);
     (* a destroying op: the reexecution point lands after it *)
     B.store f (Instr.Global "scratch") (B.int 1);
     B.load f "v" (Instr.Global "flag");
     B.mul f "sum" (B.reg "r0") (B.int 3);
     B.add f "sum" (B.reg "sum") (B.reg "v");
     B.assert_ f (B.reg "v") ~msg:"flag published";
     fix := B.last_iid f;
     B.output f "sum=%v" [ B.reg "sum" ];
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 60;
     B.store f (Instr.Global "flag") (B.int 5);
     B.ret f None);
    Conair_bugbench.Mirlib.two_thread_main b ~threads:[ "worker"; "setter" ]
  in
  (p, !fix)

(* Spill r0 and sum; [shared] coalesces them into one slot. *)
let lower_demo ~shared hardened_prog =
  let sharing =
    if shared then Lower.Groups [ ("S", [ "r0"; "sum" ]) ] else Lower.Own_slots
  in
  Lower.spill ~sharing
    ~spill:(fun r -> List.mem (Ident.Reg.name r) [ "r0"; "sum" ])
    hardened_prog

let own_slots_recover_correctly () =
  let p, fix = slot_demo_program () in
  let h = Conair.harden_exn p (Conair.Fix [ fix ]) in
  let lowered = lower_demo ~shared:false h.hardened.program in
  check_valid lowered;
  let config =
    { Machine.default_config with fuel = 500_000; verify_rollbacks = false }
  in
  let meta = Machine.meta_of_harden h.hardened in
  let m, outcome = Machine.run_program ~config ~meta lowered in
  Alcotest.(check bool) "recovers" true (Outcome.is_success outcome);
  Alcotest.(check (list string)) "correct result (10*3+5)" [ "sum=35" ]
    (Machine.outputs m);
  Alcotest.(check bool) "rollbacks happened" true
    ((Machine.stats m).rollbacks > 0)

let shared_slots_corrupt_reexecution () =
  (* Identical pipeline, but r0 and sum share a slot: sequentially legal
     (their live ranges are disjoint), yet each retry re-reads the slot
     after it was clobbered by the previous retry's [sum] — the result
     silently compounds. This is exactly what -no-stack-slot-sharing
     prevents. *)
  let p, fix = slot_demo_program () in
  let h = Conair.harden_exn p (Conair.Fix [ fix ]) in
  let lowered = lower_demo ~shared:true h.hardened.program in
  check_valid lowered;
  (* sanity: without any failure, the shared-slot program is correct *)
  let clean =
    (* setter publishes immediately: flip the sleep off by running with
       perturbed-timing seed... simpler: drop the failure by setting the
       flag global's initial value *)
    { lowered with Program.globals = [ ("flag", Value.Int 5); ("scratch", Value.Int 0) ] }
  in
  let r_clean = run_lowered clean in
  Alcotest.(check (list string)) "sequentially correct" [ "sum=35" ]
    r_clean.outputs;
  (* but under recovery the output is corrupted *)
  let config =
    { Machine.default_config with fuel = 500_000; verify_rollbacks = false }
  in
  let meta = Machine.meta_of_harden h.hardened in
  let m, outcome = Machine.run_program ~config ~meta lowered in
  Alcotest.(check bool) "run completes" true (Outcome.is_success outcome);
  Alcotest.(check bool) "result is corrupted" true
    (Machine.outputs m <> [ "sum=35" ])

let lowering_preserves_iids () =
  let p, _ = slot_demo_program () in
  let lowered = Lower.spill p in
  (* every original iid still exists *)
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ i ->
          Alcotest.(check bool)
            (Printf.sprintf "iid %d survives" i.iid)
            true
            (Program.find_instr lowered i.iid <> None)))

let params_stay_in_registers () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "id" ~params:[ "x" ] @@ fun f ->
     B.label f "entry";
     B.ret f (Some (B.reg "x")));
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f ~into:"r" "id" [ B.int 7 ];
    B.output f "%v" [ B.reg "r" ];
    B.exit_ f
  in
  let lowered = Lower.spill p in
  check_valid lowered;
  let r = run_lowered lowered in
  Alcotest.(check (list string)) "works" [ "7" ] r.outputs;
  (* no load of a spill slot for the parameter *)
  let id = Program.func_exn lowered (Ident.Fname.v "id") in
  Func.iter_instrs id (fun _ i ->
      match i.op with
      | Instr.Load (_, Instr.Stack s) ->
          Alcotest.(check bool) "no param spill" false
            (s = "__spill_x")
      | _ -> ())

let suites =
  [
    ( "lower",
      [
        case "own-slot lowering preserves behaviour"
          lowering_preserves_behaviour;
        case "own slots: recovery stays correct (the paper's flag)"
          own_slots_recover_correctly;
        case "shared slots: reexecution silently corrupts"
          shared_slots_corrupt_reexecution;
        case "original instruction ids survive" lowering_preserves_iids;
        case "parameters stay in registers" params_stay_in_registers;
      ] );
  ]
