(* Property-based tests (QCheck, registered as alcotest cases).

   The headline properties:

   - P1  semantic transparency: hardening never changes the behaviour of a
         program that does not fail (same outputs, same result);
   - P2  region-walk safety: on every entry-to-site path, a reexecution
         point follows the last idempotency-destroying instruction — the
         invariant that makes rollback correct;
   - P3  recovery: randomly generated racy readers always recover under
         ConAir, with zero rollback-safety violations and the right output;
   - P4  the interpreter's arithmetic agrees with a reference evaluator;
   - P5  the heap model agrees with a reference map model;
   - P6  scheduling determinism: a fixed seed reproduces a run exactly. *)

open Conair.Ir
open Conair.Analysis
module Outcome = Conair.Runtime.Outcome
module Machine = Conair.Runtime.Machine
module Sched = Conair.Runtime.Sched
module Heap = Conair.Runtime.Heap

let qtest ?(count = 100) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name (QCheck.make ~print gen) prop)

let config = { Machine.default_config with fuel = 200_000 }

(* --- P4: arithmetic agrees with the reference ----------------------- *)

let arith_reference =
  qtest "interpreter arithmetic matches reference" Gen.arith_spec_gen
    Gen.arith_spec_print (fun ops ->
      QCheck.assume (ops <> []);
      let p, expected = Gen.arith_program ops in
      let r = Conair.execute ~config p in
      Outcome.is_success r.outcome
      && r.outputs = [ string_of_int expected ])

(* --- P1: semantic transparency -------------------------------------- *)

let transparency_straightline =
  qtest "hardening preserves non-failing straight-line programs"
    Gen.arith_spec_gen Gen.arith_spec_print (fun ops ->
      QCheck.assume (ops <> []);
      let p, _ = Gen.arith_program ops in
      let original = Conair.execute ~config p in
      let h = Conair.harden_exn p Conair.Survival in
      let hardened = Conair.execute_hardened ~config h in
      original.outputs = hardened.outputs
      && Outcome.is_success hardened.outcome
      && hardened.stats.rollbacks = 0)

let transparency_racy_clean =
  (* With the writer made instant, the racy programs do not fail; the
     hardened run must match the original exactly. *)
  qtest "hardening preserves clean racy programs" Gen.racy_spec_gen
    Gen.racy_spec_print (fun s ->
      let s = { s with Gen.writer_delay = 0 } in
      let p = Gen.racy_program s in
      let original = Conair.execute ~config p in
      (* transparency is only claimed for runs where the original does not
         fail; when it does fail, recovery legitimately changes the result *)
      QCheck.assume (Outcome.is_success original.outcome);
      let h = Conair.harden_exn p Conair.Survival in
      let hardened = Conair.execute_hardened ~config h in
      original.outputs = hardened.outputs)

(* --- P2: region-walk safety ------------------------------------------ *)

let find_assert_site p =
  List.find
    (fun (s : Site.t) -> s.kind = Instr.Wrong_output || s.kind = Instr.Assert_fail)
    (List.filter
       (fun (s : Site.t) -> s.msg = "the site")
       (Find_sites.survival p))

let region_safety =
  qtest ~count:300 "a point follows the last destroying op on every path"
    Gen.cfg_spec_gen Gen.cfg_spec_print (fun spec ->
      let p = Gen.cfg_program spec in
      let f = Program.func_exn p (Ident.Fname.v "main") in
      let site = find_assert_site p in
      let cfg = Cfg.of_func f in
      let region = Region.of_site cfg site in
      let paths = Gen.paths_to_site f ~site_iid:site.iid ~cap:400 in
      List.for_all
        (fun path ->
          let last_destroying =
            List.fold_left
              (fun acc (i : Instr.t) ->
                if Instr.is_destroying i then Some i.iid else acc)
              None path
          in
          match last_destroying with
          | Some d ->
              List.exists
                (Region.point_equal (Region.After d))
                region.points
          | None ->
              List.exists
                (Region.point_equal (Region.Entry (Ident.Fname.v "main")))
                region.points)
        paths)

let region_points_follow_destroying =
  qtest ~count:300 "After-points only follow destroying instructions"
    Gen.cfg_spec_gen Gen.cfg_spec_print (fun spec ->
      let p = Gen.cfg_program spec in
      let f = Program.func_exn p (Ident.Fname.v "main") in
      let site = find_assert_site p in
      let region = Region.of_site (Cfg.of_func f) site in
      List.for_all
        (function
          | Region.Entry _ -> true
          | Region.After iid -> (
              match Program.find_instr p iid with
              | Some (_, b, i) -> Instr.is_destroying b.Block.instrs.(i)
              | None -> false))
        region.points)

let region_contains_no_destroying =
  qtest ~count:300 "region instructions are never destroying"
    Gen.cfg_spec_gen Gen.cfg_spec_print (fun spec ->
      let p = Gen.cfg_program spec in
      let f = Program.func_exn p (Ident.Fname.v "main") in
      let site = find_assert_site p in
      let region = Region.of_site (Cfg.of_func f) site in
      Region.Iid_set.for_all
        (fun iid ->
          match Program.find_instr p iid with
          | Some (_, b, i) -> not (Instr.is_destroying b.Block.instrs.(i))
          | None -> false)
        region.region_iids)

let region_deterministic =
  qtest ~count:150 "the region walk is deterministic" Gen.cfg_spec_gen
    Gen.cfg_spec_print (fun spec ->
      let p = Gen.cfg_program spec in
      let f = Program.func_exn p (Ident.Fname.v "main") in
      let site = find_assert_site p in
      let r1 = Region.of_site (Cfg.of_func f) site in
      let r2 = Region.of_site (Cfg.of_func f) site in
      List.length r1.points = List.length r2.points
      && List.for_all2 Region.point_equal r1.points r2.points
      && Region.Iid_set.equal r1.region_iids r2.region_iids)

(* --- P3: racy programs always recover --------------------------------- *)

let racy_recovers =
  qtest ~count:150 "racy readers recover under ConAir" Gen.racy_spec_gen
    Gen.racy_spec_print (fun s ->
      let p = Gen.racy_program s in
      let h = Conair.harden_exn p Conair.Survival in
      let r = Conair.execute_hardened ~config h in
      Outcome.is_success r.outcome
      && r.outputs = [ string_of_int s.expected ]
      && r.stats.tracecheck_violations = 0)

let racy_recovers_random_schedules =
  qtest ~count:100 "racy readers recover under random schedules"
    QCheck.Gen.(pair Gen.racy_spec_gen (int_range 0 1000))
    (fun (s, seed) ->
      Printf.sprintf "%s seed=%d" (Gen.racy_spec_print s) seed)
    (fun (s, seed) ->
      let p = Gen.racy_program s in
      let h = Conair.harden_exn p Conair.Survival in
      let config = { config with policy = Sched.Random seed } in
      let r = Conair.execute_hardened ~config h in
      Outcome.is_success r.outcome
      && r.outputs = [ string_of_int s.expected ]
      && r.stats.tracecheck_violations = 0)

(* --- P5: heap model vs reference --------------------------------------- *)

let heap_reference =
  qtest ~count:200 "heap agrees with a reference model" Gen.heap_ops_gen
    Gen.heap_ops_print (fun ops ->
      let h = Heap.create () in
      (* reference: block index -> (live, cells) *)
      let reference : (int, bool ref * int array) Hashtbl.t =
        Hashtbl.create 16
      in
      let ptrs = ref [] in
      (* allocation order, oldest first *)
      let nth i =
        let l = List.rev !ptrs in
        if l = [] then None else Some (List.nth l (i mod List.length l))
      in
      List.for_all
        (fun op ->
          match op with
          | Gen.H_alloc n ->
              let p = Heap.alloc h n in
              ptrs := p :: !ptrs;
              Hashtbl.replace reference p.Value.block
                (ref true, Array.make n 0);
              true
          | Gen.H_free i -> (
              match nth i with
              | None -> true
              | Some p ->
                  let live, _ = Hashtbl.find reference p.Value.block in
                  let expect_ok = !live in
                  let got = Heap.free h (Value.Ptr p) in
                  if expect_ok then begin
                    live := false;
                    got = Ok ()
                  end
                  else Result.is_error got)
          | Gen.H_store (i, o, v) -> (
              match nth i with
              | None -> true
              | Some p ->
                  let live, cells = Hashtbl.find reference p.Value.block in
                  let ok = !live && o < Array.length cells in
                  let got = Heap.store h (Value.Ptr p) o (Value.Int v) in
                  if ok then begin
                    cells.(o) <- v;
                    got = Ok ()
                  end
                  else Result.is_error got)
          | Gen.H_load (i, o) -> (
              match nth i with
              | None -> true
              | Some p ->
                  let live, cells = Hashtbl.find reference p.Value.block in
                  let ok = !live && o < Array.length cells in
                  let got = Heap.load h (Value.Ptr p) o in
                  if ok then got = Ok (Value.Int cells.(o))
                  else Result.is_error got))
        ops)

(* --- P6: determinism ---------------------------------------------------- *)

let determinism =
  qtest ~count:60 "a seed reproduces a run exactly"
    QCheck.Gen.(pair Gen.racy_spec_gen (int_range 0 500))
    (fun (s, seed) ->
      Printf.sprintf "%s seed=%d" (Gen.racy_spec_print s) seed)
    (fun (s, seed) ->
      let p = Gen.racy_program s in
      let h = Conair.harden_exn p Conair.Survival in
      let config = { config with policy = Sched.Random seed } in
      let once () =
        let r = Conair.execute_hardened ~config h in
        ( Outcome.to_string r.outcome,
          r.outputs,
          r.stats.steps,
          r.stats.rollbacks,
          r.stats.checkpoints )
      in
      once () = once ())

(* --- Value-level properties --------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> Value.Int n) (int_range (-1000) 1000));
        (2, map (fun b -> Value.Bool b) bool);
        (2, map2 (fun b o -> Value.Ptr { block = b; offset = o })
             (int_range 0 50) (int_range 0 10));
        (1, return Value.Null);
        (1, map (fun n -> Value.Str (string_of_int n)) (int_range 0 99));
      ])

let value_equal_reflexive =
  qtest ~count:200 "value equality is reflexive" value_gen Value.to_string
    (fun v -> Value.equal v v)

let value_equal_symmetric =
  qtest ~count:200 "value equality is symmetric"
    (QCheck.Gen.pair value_gen value_gen)
    (fun (a, b) -> Value.to_string a ^ " / " ^ Value.to_string b)
    (fun (a, b) -> Value.equal a b = Value.equal b a)

(* --- text-format round-trips on random programs ------------------------- *)

let emit_parse_roundtrip =
  qtest ~count:150 "emit/parse round-trips random programs"
    QCheck.Gen.(pair Gen.arith_spec_gen Gen.racy_spec_gen)
    (fun (a, r) ->
      Printf.sprintf "%s / %s" (Gen.arith_spec_print a)
        (Gen.racy_spec_print r))
    (fun (a, r) ->
      QCheck.assume (a <> []);
      let check p =
        let text1 = Conair.Ir.Emit.program p in
        match Conair.Ir.Parse.program text1 with
        | Error _ -> false
        | Ok p2 -> Conair.Ir.Emit.program p2 = text1
      in
      check (fst (Gen.arith_program a)) && check (Gen.racy_program r))

let hardened_roundtrip_behaves =
  qtest ~count:60 "hardened round-tripped programs behave identically"
    Gen.racy_spec_gen Gen.racy_spec_print (fun s ->
      let p = Gen.racy_program s in
      let h = Conair.harden_exn p Conair.Survival in
      match Conair.Ir.Parse.program (Conair.Ir.Emit.program h.hardened.program) with
      | Error _ -> false
      | Ok p2 ->
          let meta = Conair.Runtime.Machine.meta_of_harden h.hardened in
          let m1, o1 =
            Conair.Runtime.Machine.run_program ~config ~meta
              h.hardened.program
          in
          let m2, o2 =
            Conair.Runtime.Machine.run_program ~config ~meta p2
          in
          o1 = o2
          && Conair.Runtime.Machine.outputs m1
             = Conair.Runtime.Machine.outputs m2)

(* --- extension properties ------------------------------------------------ *)

let annotate_transparent =
  qtest ~count:80 "null-check annotation preserves non-failing runs"
    Gen.racy_spec_gen Gen.racy_spec_print (fun s ->
      let p = Gen.racy_program s in
      let p', _ = Conair.Transform.Annotate.add_null_checks p in
      let r0 = Conair.execute ~config p in
      let r1 = Conair.execute ~config p' in
      (* the annotation may catch a failure *earlier* (as an assert rather
         than a segfault), but never changes a successful run *)
      (not (Outcome.is_success r0.outcome))
      || (Outcome.is_success r1.outcome && r0.outputs = r1.outputs))

let prune_safe_transparent =
  qtest ~count:80 "safe-site pruning preserves hardened behaviour"
    Gen.racy_spec_gen Gen.racy_spec_print (fun s ->
      let p = Gen.racy_program s in
      let h0 = Conair.harden_exn p Conair.Survival in
      let h1 =
        Conair.harden_exn
          ~analysis:
            { Conair.Analysis.Plan.default_options with prune_safe = true }
          p Conair.Survival
      in
      let r0 = Conair.execute_hardened ~config h0 in
      let r1 = Conair.execute_hardened ~config h1 in
      Outcome.is_success r0.outcome = Outcome.is_success r1.outcome
      && r0.outputs = r1.outputs)

let wait_graph_equivalent_without_deadlocks =
  qtest ~count:80 "wait-graph detection is inert without lock cycles"
    Gen.racy_spec_gen Gen.racy_spec_print (fun s ->
      let p = Gen.racy_program s in
      let h = Conair.harden_exn p Conair.Survival in
      let run detection =
        let config =
          { config with Machine.deadlock_detection = detection }
        in
        let r = Conair.execute_hardened ~config h in
        (Outcome.is_success r.outcome, r.outputs, r.stats.steps)
      in
      run Machine.Timeout_based = run Machine.Wait_graph)

let lowering_transparent =
  qtest ~count:80 "own-slot spill lowering preserves program results"
    Gen.arith_spec_gen Gen.arith_spec_print (fun ops ->
      QCheck.assume (ops <> []);
      let p, expected = Gen.arith_program ops in
      let lowered = Conair.Transform.Lower.spill p in
      let config = { config with Machine.verify_rollbacks = false } in
      let r = Conair.execute ~config lowered in
      Outcome.is_success r.outcome && r.outputs = [ string_of_int expected ])

let lowered_hardened_still_recovers =
  qtest ~count:60 "hardened-then-lowered racy programs still recover"
    Gen.racy_spec_gen Gen.racy_spec_print (fun s ->
      let p = Gen.racy_program s in
      let h = Conair.harden_exn p Conair.Survival in
      let lowered = Conair.Transform.Lower.spill h.hardened.program in
      let config = { config with Machine.verify_rollbacks = false } in
      let meta = Machine.meta_of_harden h.Conair.hardened in
      let m, outcome = Machine.run_program ~config ~meta lowered in
      Outcome.is_success outcome
      && Machine.outputs m = [ string_of_int s.expected ])

let suites =
  [
    ( "properties",
      [
        arith_reference;
        emit_parse_roundtrip;
        hardened_roundtrip_behaves;
        annotate_transparent;
        prune_safe_transparent;
        wait_graph_equivalent_without_deadlocks;
        lowering_transparent;
        lowered_hardened_still_recovers;
        transparency_straightline;
        transparency_racy_clean;
        region_safety;
        region_points_follow_destroying;
        region_contains_no_destroying;
        region_deterministic;
        racy_recovers;
        racy_recovers_random_schedules;
        heap_reference;
        determinism;
        value_equal_reflexive;
        value_equal_symmetric;
      ] );
  ]
