(* Corner-case semantics: value coercions, mixed-type comparisons,
   mutex/string values flowing through programs, and join/exit edges. *)

open Conair.Ir
open Test_util
module B = Builder
module Outcome = Conair.Runtime.Outcome

let run1 body =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.global b "g" (Value.Int 0);
    B.func b "main" ~params:[] body
  in
  check_valid p;
  run p

let expect_out expected r =
  expect_success r;
  Alcotest.(check (list string)) "outputs" expected r.outputs

let bools_coerce_in_arithmetic () =
  (* true counts as 1, false as 0, as in C *)
  let r =
    run1 @@ fun f ->
    B.label f "entry";
    B.lt f "t" (B.int 1) (B.int 2);
    B.gt f "z" (B.int 1) (B.int 2);
    B.add f "a" (B.reg "t") (B.reg "z");
    B.add f "b" (B.reg "t") (B.int 41);
    B.output f "%v %v" [ B.reg "a"; B.reg "b" ];
    B.exit_ f
  in
  expect_out [ "1 42" ] r

let equality_across_types_is_false () =
  let r =
    run1 @@ fun f ->
    B.label f "entry";
    B.eq f "a" (B.int 1) (B.bool true);
    B.eq f "b" B.null (B.int 0);
    B.eq f "c" (B.str "x") (B.str "x");
    B.ne f "d" (B.mutex_ref "m") (B.mutex_ref "m");
    B.output f "%v %v %v %v" [ B.reg "a"; B.reg "b"; B.reg "c"; B.reg "d" ];
    B.exit_ f
  in
  expect_out [ "false false true false" ] r

let strings_flow_through_calls () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "greet" ~params:[ "who" ] @@ fun f ->
     B.label f "entry";
     B.output f "hello %v" [ B.reg "who" ];
     B.ret f (Some (B.reg "who")));
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f ~into:"r" "greet" [ B.str "world" ];
    B.output f "again %v" [ B.reg "r" ];
    B.exit_ f
  in
  let r = run p in
  expect_out [ {|hello "world"|}; {|again "world"|} ] r

let ordering_on_non_ints_faults () =
  let r =
    run1 @@ fun f ->
    B.label f "entry";
    B.lt f "a" (B.str "x") (B.int 1);
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

let pointers_survive_global_storage () =
  let r =
    run1 @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 1);
    B.store_idx f (B.reg "p") (B.int 0) (B.int 77);
    B.store f (Instr.Global "g") (B.reg "p");
    B.load f "q" (Instr.Global "g");
    B.load_idx f "v" (B.reg "q") (B.int 0);
    B.output f "%v" [ B.reg "v" ];
    B.exit_ f
  in
  expect_out [ "77" ] r

let join_on_failed_thread_unblocks () =
  (* A thread failure takes the program down; the outcome is the failure,
     not a hang of the joining main. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "crasher" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load_idx f "v" B.null (B.int 0);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "crasher" [];
    B.join f (B.reg "t");
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault (run p)

let exit_during_recovery_wins () =
  (* Another thread's exit ends the program even while a thread is mid
     retry loop. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "never" (Value.Int 0);
    (B.func b "retrier" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "v" (Instr.Global "never");
     B.assert_ f (B.reg "v") ~msg:"never";
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "retrier" [];
    B.sleep f 100;
    B.output f "leaving" [];
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check (list string)) "main's output" [ "leaving" ] r.outputs;
  Alcotest.(check bool) "the retrier kept trying until exit" true
    (r.stats.rollbacks > 10)

let spawn_passes_heap_values () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "reader" ~params:[ "buf" ] @@ fun f ->
     B.label f "entry";
     B.load_idx f "v" (B.reg "buf") (B.int 0);
     B.output f "%v" [ B.reg "v" ];
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 1);
    B.store_idx f (B.reg "p") (B.int 0) (B.int 9);
    B.spawn f "t" "reader" [ B.reg "p" ];
    B.join f (B.reg "t");
    B.exit_ f
  in
  let r = run p in
  expect_out [ "9" ] r

let negative_indices_fault () =
  let r =
    run1 @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 2);
    B.load_idx f "v" (B.reg "p") (B.int (-1));
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

let output_consumes_left_to_right () =
  let r =
    run1 @@ fun f ->
    B.label f "entry";
    B.output f "%v-%v-%v" [ B.int 1; B.int 2; B.int 3 ];
    B.output f "no placeholders" [ B.int 9 ];
    B.exit_ f
  in
  expect_out [ "1-2-3"; "no placeholders" ] r

let suites =
  [
    ( "semantics-matrix",
      [
        case "bools coerce in arithmetic" bools_coerce_in_arithmetic;
        case "equality across types" equality_across_types_is_false;
        case "strings flow through calls" strings_flow_through_calls;
        case "ordering on non-ints faults" ordering_on_non_ints_faults;
        case "pointers survive global storage" pointers_survive_global_storage;
        case "join on failed thread" join_on_failed_thread_unblocks;
        case "exit during recovery wins" exit_during_recovery_wins;
        case "spawn passes heap values" spawn_passes_heap_values;
        case "negative indices fault" negative_indices_fault;
        case "output argument order" output_consumes_left_to_right;
      ] );
  ]
