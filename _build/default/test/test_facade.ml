(* Tests for the top-level [Conair] facade: hardening error paths, the
   recovery-trial helper (the §5 "1000 runs" methodology, scaled down),
   and the configuration knobs exposed to users. *)

open Test_util
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Machine = Conair.Runtime.Machine
module Sched = Conair.Runtime.Sched
module Outcome = Conair.Runtime.Outcome

let harden_reports_bad_fix_sites () =
  let p = straightline_program () in
  (match Conair.harden p (Conair.Fix [ 987654 ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus fix site accepted");
  match Conair.harden_exn p (Conair.Fix [ 987654 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "harden_exn must raise on bogus fix sites"

let recovery_trial_counts_successes () =
  let s = Option.get (Registry.find "MySQL2") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let config = { Machine.default_config with fuel = 2_000_000 } in
  let trial =
    Conair.recovery_trial ~config ~runs:10 ~accept:inst.accept h
  in
  Alcotest.(check int) "all runs recovered" trial.runs trial.recovered;
  Alcotest.(check bool) "rollbacks counted" true (trial.total_rollbacks > 0);
  Alcotest.(check bool) "recovery time measured" true
    (trial.max_recovery_steps > 0)

let recovery_trial_varies_seeds () =
  (* With a random base policy, each run uses a distinct seed; the trial
     still recovers everything. *)
  let s = Option.get (Registry.find "ZSNES") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let config =
    { Machine.default_config with fuel = 2_000_000; policy = Sched.Random 1 }
  in
  let trial = Conair.recovery_trial ~config ~runs:8 ~accept:inst.accept h in
  Alcotest.(check int) "all seeds recovered" trial.runs trial.recovered

let recovery_trial_detects_wrong_output () =
  (* Without the oracle, the FFT wrong-output bug "succeeds" with a wrong
     result: the acceptance check must catch it. *)
  let s = Option.get (Registry.find "FFT") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let config = { Machine.default_config with fuel = 8_000_000 } in
  let trial = Conair.recovery_trial ~config ~runs:3 ~accept:inst.accept h in
  Alcotest.(check int) "wrong outputs rejected" 0 trial.recovered

let execute_respects_fuel () =
  let p = straightline_program () in
  let r = Conair.execute ~config:{ Machine.default_config with fuel = 2 } p in
  match r.outcome with
  | Outcome.Fuel_exhausted 2 -> ()
  | o -> Alcotest.failf "expected fuel exhaustion, got %a" Outcome.pp o

let modes_share_the_pipeline () =
  (* Fix mode with all survival sites equals survival mode's footprint. *)
  let p = order_violation_program ~buggy:true () in
  let survival = Conair.harden_exn p Conair.Survival in
  let all_iids =
    List.map
      (fun (sp : Conair.Analysis.Plan.site_plan) -> sp.site.iid)
      survival.plan.site_plans
  in
  let fix = Conair.harden_exn p (Conair.Fix all_iids) in
  Alcotest.(check int) "same number of sites"
    (List.length survival.plan.site_plans)
    (List.length fix.plan.site_plans);
  Alcotest.(check int) "same checkpoints" survival.report.static_points
    fix.report.static_points

let suites =
  [
    ( "facade",
      [
        case "harden reports bad fix sites" harden_reports_bad_fix_sites;
        case "recovery trial counts successes" recovery_trial_counts_successes;
        case "recovery trial varies seeds" recovery_trial_varies_seeds;
        case "recovery trial detects wrong output"
          recovery_trial_detects_wrong_output;
        case "execute respects fuel" execute_respects_fuel;
        case "fix mode with all sites equals survival mode"
          modes_share_the_pipeline;
      ] );
  ]
