(* Unit tests for the Mir standard library — the application code the
   benchmarks embed their bugs in. Each helper is exercised through the
   interpreter and checked against an OCaml reference computation. *)

open Conair.Ir
open Test_util
module B = Builder
module Mirlib = Conair_bugbench.Mirlib

(* Build a single-threaded program around the stdlib and run it. *)
let run_stdlib ?(stages = 3) body =
  let p =
    B.build ~main:"main" @@ fun b ->
    Mirlib.add_stdlib ~stages ~reports:3 b;
    B.func b "main" ~params:[] body
  in
  check_valid p;
  let r = run ~fuel:500_000 p in
  expect_success r;
  r

let compute_kernel_matches_reference () =
  let reference n =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + (i * i mod 9973)
    done;
    !acc
  in
  List.iter
    (fun n ->
      let r =
        run_stdlib @@ fun f ->
        B.label f "entry";
        B.call f ~into:"s" "compute_kernel" [ B.int n ];
        B.output f "%v" [ B.reg "s" ];
        B.exit_ f
      in
      Alcotest.(check (list string))
        (Printf.sprintf "kernel %d" n)
        [ string_of_int (reference n) ]
        r.outputs)
    [ 0; 1; 7; 100 ]

let vectors_push_get_sum () =
  let r =
    run_stdlib @@ fun f ->
    B.label f "entry";
    B.call f ~into:"v" "vec_new" [ B.int 8 ];
    B.call f "vec_push" [ B.reg "v"; B.int 5 ];
    B.call f "vec_push" [ B.reg "v"; B.int 7 ];
    B.call f "vec_push" [ B.reg "v"; B.int 11 ];
    B.call f ~into:"len" "vec_len" [ B.reg "v" ];
    B.call f ~into:"x1" "vec_get" [ B.reg "v"; B.int 1 ];
    B.call f ~into:"s" "vec_sum" [ B.reg "v" ];
    B.output f "%v %v %v" [ B.reg "len"; B.reg "x1"; B.reg "s" ];
    B.exit_ f
  in
  Alcotest.(check (list string)) "vector ops" [ "3 7 23" ] r.outputs

let vec_get_bounds_asserts () =
  let p =
    B.build ~main:"main" @@ fun b ->
    Mirlib.add_stdlib b;
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f ~into:"v" "vec_new" [ B.int 4 ];
    B.call f "vec_push" [ B.reg "v"; B.int 1 ];
    B.call f ~into:"x" "vec_get" [ B.reg "v"; B.int 3 ];
    B.exit_ f
  in
  expect_failure_kind Instr.Assert_fail (run p)

let table_put_get () =
  let r =
    run_stdlib @@ fun f ->
    B.label f "entry";
    B.call f ~into:"t" "table_new" [ B.int 8 ];
    B.call f "table_put" [ B.reg "t"; B.int 8; B.int 3; B.int 42 ];
    B.call f "table_put" [ B.reg "t"; B.int 8; B.int 11; B.int 9 ];
    (* key 11 mod 8 = 3: direct-mapped, overwrites *)
    B.call f ~into:"a" "table_get" [ B.reg "t"; B.int 8; B.int 3 ];
    B.call f ~into:"b" "table_get" [ B.reg "t"; B.int 8; B.int 5 ];
    B.output f "%v %v" [ B.reg "a"; B.reg "b" ];
    B.exit_ f
  in
  Alcotest.(check (list string)) "direct-mapped semantics" [ "9 0" ] r.outputs

let checksum_matches_reference () =
  let reference xs =
    List.fold_left (fun acc x -> ((acc * 31) + x) mod 1000003) 7 xs
  in
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let r =
    run_stdlib @@ fun f ->
    B.label f "entry";
    B.call f ~into:"v" "vec_new" [ B.int 16 ];
    List.iter (fun x -> B.call f "vec_push" [ B.reg "v"; B.int x ]) xs;
    B.call f ~into:"c" "checksum" [ B.reg "v" ];
    B.output f "%v" [ B.reg "c" ];
    B.exit_ f
  in
  Alcotest.(check (list string)) "checksum" [ string_of_int (reference xs) ]
    r.outputs

let pipeline_matches_reference () =
  (* stage k multiplies each element by (k+1) mod 65537 and returns the
     checksum after its pass; run_pipeline returns the last stage's. *)
  let stages = 3 in
  let reference xs =
    let xs = ref xs in
    let ck = ref 0 in
    for k = 1 to stages do
      xs := List.map (fun x -> x * (k + 1) mod 65537) !xs;
      ck := List.fold_left (fun acc x -> ((acc * 31) + x) mod 1000003) 7 !xs
    done;
    !ck
  in
  let xs = [ 10; 20; 30 ] in
  let r =
    run_stdlib ~stages @@ fun f ->
    B.label f "entry";
    B.call f ~into:"v" "vec_new" [ B.int 8 ];
    List.iter (fun x -> B.call f "vec_push" [ B.reg "v"; B.int x ]) xs;
    B.call f ~into:"c" "run_pipeline" [ B.reg "v" ];
    B.output f "%v" [ B.reg "c" ];
    B.exit_ f
  in
  Alcotest.(check (list string)) "pipeline checksum"
    [ string_of_int (reference xs) ]
    r.outputs

let reports_emit_and_validate () =
  let r =
    run_stdlib @@ fun f ->
    B.label f "entry";
    B.move f "x" (B.int 12);
    B.call f "run_reports" [ B.reg "x" ];
    B.exit_ f
  in
  Alcotest.(check (list string)) "two reports"
    [ "report 1: 12"; "report 2: 12" ]
    r.outputs

let checksum_is_checkable_under_recovery () =
  (* The library code itself runs inside a recovering thread: the pipeline
     result after a recovery equals the clean-run result. *)
  let make ~delayed =
    B.build ~main:"main" @@ fun b ->
    Mirlib.add_stdlib b;
    B.global b "go" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     if not delayed then B.sleep f 10;
     B.load f "g" (Instr.Global "go");
     B.assert_ f (B.reg "g") ~msg:"go signal";
     B.call f ~into:"v" "vec_new" [ B.int 8 ];
     B.call f "vec_push" [ B.reg "v"; B.int 10 ];
     B.call f "vec_push" [ B.reg "v"; B.int 20 ];
     B.call f ~into:"c" "run_pipeline" [ B.reg "v" ];
     B.output f "%v" [ B.reg "c" ];
     B.ret f None);
    (B.func b "signaler" ~params:[] @@ fun f ->
     B.label f "entry";
     if delayed then B.sleep f 50;
     B.store f (Instr.Global "go") (B.int 1);
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "worker"; "signaler" ]
  in
  let clean = run (make ~delayed:false) in
  expect_success clean;
  let h = Conair.harden_exn (make ~delayed:true) Conair.Survival in
  let recovered = run_hardened h in
  expect_success recovered;
  Alcotest.(check bool) "actually recovered" true
    (recovered.stats.rollbacks > 0);
  Alcotest.(check (list string)) "same result as the clean run"
    clean.outputs recovered.outputs

let suites =
  [
    ( "mirlib",
      [
        case "compute kernel matches reference" compute_kernel_matches_reference;
        case "vector push/get/sum" vectors_push_get_sum;
        case "vec_get bounds assert" vec_get_bounds_asserts;
        case "table put/get" table_put_get;
        case "checksum matches reference" checksum_matches_reference;
        case "pipeline matches reference" pipeline_matches_reference;
        case "reports emit and validate" reports_emit_and_validate;
        case "library results stable under recovery"
          checksum_is_checkable_under_recovery;
      ] );
  ]
