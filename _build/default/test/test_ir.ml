(* Unit tests for the Mir IR: values, instruction classification, the
   builder, CFG utilities and the validator. *)

open Conair.Ir
open Test_util
module B = Builder

(* --- Value --------------------------------------------------------- *)

let value_equality () =
  let open Value in
  Alcotest.(check bool) "int eq" true (equal (Int 3) (Int 3));
  Alcotest.(check bool) "int ne" false (equal (Int 3) (Int 4));
  Alcotest.(check bool) "bool/int distinct" false (equal (Bool true) (Int 1));
  Alcotest.(check bool) "ptr eq" true
    (equal (Ptr { block = 1; offset = 2 }) (Ptr { block = 1; offset = 2 }));
  Alcotest.(check bool) "ptr ne offset" false
    (equal (Ptr { block = 1; offset = 2 }) (Ptr { block = 1; offset = 3 }));
  Alcotest.(check bool) "null eq" true (equal Null Null);
  Alcotest.(check bool) "mutex eq" true (equal (Mutex "a") (Mutex "a"));
  Alcotest.(check bool) "tid ne" false (equal (Tid 1) (Tid 2));
  Alcotest.(check bool) "str eq" true (equal (Str "x") (Str "x"))

let value_truthiness () =
  let open Value in
  Alcotest.(check bool) "zero false" false (is_true (Int 0));
  Alcotest.(check bool) "nonzero true" true (is_true (Int (-7)));
  Alcotest.(check bool) "null false" false (is_true Null);
  Alcotest.(check bool) "false false" false (is_true (Bool false));
  Alcotest.(check bool) "ptr true" true
    (is_true (Ptr { block = 0; offset = 0 }));
  Alcotest.(check bool) "str true" true (is_true (Str ""));
  Alcotest.(check bool) "mutex true" true (is_true (Mutex "m"))

let value_printing () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "null" "null" (Value.to_string Value.Null);
  Alcotest.(check string) "ptr" "&3+1"
    (Value.to_string (Value.Ptr { block = 3; offset = 1 }))

(* --- Instruction classification ------------------------------------ *)

let r = Ident.Reg.v
let op_reg name = Instr.Reg (r name)

let classification () =
  let open Instr in
  let check_class op expected name =
    Alcotest.(check bool) name true (classify op = expected)
  in
  check_class (Move (r "a", Const (Value.Int 1))) Safe "move safe";
  check_class (Load (r "a", Global "g")) Safe "global read safe";
  check_class (Load (r "a", Stack "s")) Safe "stack read safe";
  check_class (Load_idx (r "a", op_reg "p", Const (Value.Int 0))) Safe
    "heap read safe";
  check_class (Assert { cond = op_reg "c"; msg = ""; oracle = false }) Safe
    "assert safe";
  check_class (Sleep 5) Safe "sleep safe";
  check_class (Alloc (r "a", Const (Value.Int 1))) Compensable "alloc comp";
  check_class (Lock (Const (Value.Mutex "m"))) Compensable "lock comp";
  check_class (Timed_lock (r "a", Const (Value.Mutex "m"), 10)) Compensable
    "timedlock comp";
  check_class (Store (Global "g", Const Value.zero)) Destroying "store dest";
  check_class (Store (Stack "s", Const Value.zero)) Destroying
    "stack write dest";
  check_class (Store_idx (op_reg "p", Const Value.zero, Const Value.zero))
    Destroying "heap write dest";
  check_class (Free (op_reg "p")) Destroying "free dest";
  check_class (Unlock (Const (Value.Mutex "m"))) Destroying "unlock dest";
  check_class (Output { fmt = ""; args = [] }) Destroying "output dest";
  check_class (Call (None, Ident.Fname.v "f", [])) Destroying "call dest";
  check_class (Spawn (r "t", Ident.Fname.v "f", [])) Destroying "spawn dest";
  check_class (Join (op_reg "t")) Destroying "join dest";
  check_class (Checkpoint 0) Safe "checkpoint safe";
  check_class (Ptr_guard (r "ok", op_reg "p", Const Value.zero)) Safe
    "ptr_guard safe"

let dynamic_destruction () =
  let open Instr in
  Alcotest.(check bool) "store" true
    (dynamically_destroying (Store (Global "g", Const Value.zero)));
  Alcotest.(check bool) "output" true
    (dynamically_destroying (Output { fmt = ""; args = [] }));
  Alcotest.(check bool) "spawn" true
    (dynamically_destroying (Spawn (r "t", Ident.Fname.v "f", [])));
  Alcotest.(check bool) "call is not dynamic" false
    (dynamically_destroying (Call (None, Ident.Fname.v "f", [])));
  Alcotest.(check bool) "join is not dynamic" false
    (dynamically_destroying (Join (op_reg "t")));
  Alcotest.(check bool) "alloc is not dynamic" false
    (dynamically_destroying (Alloc (r "a", Const (Value.Int 1))))

let def_use () =
  let open Instr in
  let reg_list = Alcotest.(list (testable Ident.Reg.pp Ident.Reg.equal)) in
  Alcotest.(check (option (testable Ident.Reg.pp Ident.Reg.equal)))
    "binop def" (Some (r "x"))
    (def (Binop (r "x", Add, op_reg "a", op_reg "b")));
  Alcotest.check reg_list "binop uses" [ r "a"; r "b" ]
    (uses (Binop (r "x", Add, op_reg "a", op_reg "b")));
  Alcotest.(check (option (testable Ident.Reg.pp Ident.Reg.equal)))
    "store def" None
    (def (Store (Global "g", op_reg "v")));
  Alcotest.check reg_list "store uses" [ r "v" ]
    (uses (Store (Global "g", op_reg "v")));
  Alcotest.check reg_list "store_idx uses" [ r "p"; r "i"; r "v" ]
    (uses (Store_idx (op_reg "p", op_reg "i", op_reg "v")));
  Alcotest.check reg_list "const operands contribute no uses" []
    (uses (Move (r "x", Const (Value.Int 1))));
  Alcotest.(check bool) "global load reads shared" true
    (reads_shared (Load (r "a", Global "g")));
  Alcotest.(check bool) "stack load does not read shared" false
    (reads_shared (Load (r "a", Stack "s")));
  Alcotest.(check bool) "heap load reads shared" true
    (reads_shared (Load_idx (r "a", op_reg "p", Const Value.zero)));
  Alcotest.(check bool) "lock acquires" true
    (acquires_lock (Lock (Const (Value.Mutex "m"))));
  Alcotest.(check bool) "unlock does not acquire" false
    (acquires_lock (Unlock (Const (Value.Mutex "m"))))

(* --- Builder ------------------------------------------------------- *)

let builder_basics () =
  let p = straightline_program () in
  check_valid p;
  Alcotest.(check int) "two functions" 2 (List.length p.funcs);
  let main = Program.func_exn p (Ident.Fname.v "main") in
  Alcotest.(check int) "instruction count" 6 (Func.instr_count main);
  (* iids are unique and dense from 0 *)
  let ids =
    List.concat_map (fun f -> List.map (fun i -> i.Instr.iid) (Func.instrs f))
      p.funcs
    |> List.sort compare
  in
  Alcotest.(check int) "max iid" (List.length ids - 1) (Program.max_iid p);
  Alcotest.(check (list int)) "dense ids" (List.init (List.length ids) Fun.id)
    ids

let builder_fallthrough () =
  (* An unterminated block falls through to the next label. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "a";
    B.nop f;
    B.label f "b";
    (* implicit jump a->b *)
    B.exit_ f
  in
  check_valid p;
  let main = Program.func_exn p (Ident.Fname.v "main") in
  let a = Func.block_exn main (Ident.Label.v "a") in
  match a.term with
  | Instr.Jump l ->
      Alcotest.(check string) "fallthrough target" "b" (Ident.Label.name l)
  | _ -> Alcotest.fail "expected a jump terminator"

let builder_rejects_empty_function () =
  match
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] (fun _ -> ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty function should be rejected"

let builder_rejects_unterminated () =
  match
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.nop f
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unterminated function should be rejected"

(* --- Cfg ----------------------------------------------------------- *)

let diamond_func () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.move f "c" (B.bool true);
    B.branch f (B.reg "c") "left" "right";
    B.label f "left";
    B.nop f;
    B.jump f "merge";
    B.label f "right";
    B.nop f;
    B.jump f "merge";
    B.label f "merge";
    B.exit_ f
  in
  Program.func_exn p (Ident.Fname.v "main")

let cfg_edges () =
  let g = Cfg.of_func (diamond_func ()) in
  let l = Ident.Label.v in
  let labels = Alcotest.(list string) in
  let names ls = List.map Ident.Label.name ls |> List.sort compare in
  Alcotest.check labels "entry succs" [ "left"; "right" ]
    (names (Cfg.succs g (l "entry")));
  Alcotest.check labels "merge preds" [ "left"; "right" ]
    (names (Cfg.preds g (l "merge")));
  Alcotest.check labels "entry preds" [] (names (Cfg.preds g (l "entry")));
  Alcotest.(check bool) "entry is entry" true (Cfg.is_entry g (l "entry"));
  Alcotest.(check int) "all reachable" 4
    (Ident.Label.Set.cardinal (Cfg.reachable g))

let cfg_self_loop () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.move f "c" (B.bool false);
    B.branch f (B.reg "c") "entry" "out";
    B.label f "out";
    B.exit_ f
  in
  let f = Program.func_exn p (Ident.Fname.v "main") in
  let g = Cfg.of_func f in
  let l = Ident.Label.v in
  Alcotest.(check bool) "entry has a back-edge pred" true
    (List.exists (Ident.Label.equal (l "entry")) (Cfg.preds g (l "entry")))

let block_successors_dedup () =
  let b =
    Block.v ~label:(Ident.Label.v "x") ~instrs:[]
      ~term:(Instr.Branch (B.bool true, Ident.Label.v "y", Ident.Label.v "y"))
  in
  Alcotest.(check int) "branch to same label dedups" 1
    (List.length (Block.successors b))

(* --- Validate ------------------------------------------------------ *)

let validate_catches_problems () =
  let expect_problem name p =
    match Validate.check p with
    | [] -> Alcotest.failf "%s: expected a validation problem" name
    | _ -> ()
  in
  (* missing main *)
  expect_problem "missing main"
    (Program.v
       ~funcs:
         [
           Func.v ~name:(Ident.Fname.v "f") ~params:[]
             ~entry:(Ident.Label.v "e")
             ~blocks:
               [ Block.v ~label:(Ident.Label.v "e") ~instrs:[] ~term:Instr.Exit ];
         ]
       ~main:(Ident.Fname.v "main") ());
  (* jump to unknown label *)
  expect_problem "unknown label"
    (Program.v
       ~funcs:
         [
           Func.v ~name:(Ident.Fname.v "main") ~params:[]
             ~entry:(Ident.Label.v "e")
             ~blocks:
               [
                 Block.v ~label:(Ident.Label.v "e") ~instrs:[]
                   ~term:(Instr.Jump (Ident.Label.v "nowhere"));
               ];
         ]
       ~main:(Ident.Fname.v "main") ());
  (* call to unknown function *)
  expect_problem "unknown callee"
    (B.build ~main:"main" @@ fun b ->
     B.func b "main" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f "nonexistent" [];
     B.exit_ f);
  (* arity mismatch *)
  expect_problem "arity mismatch"
    (B.build ~main:"main" @@ fun b ->
     (B.func b "g" ~params:[ "x" ] @@ fun f ->
      B.label f "entry";
      B.ret f None);
     B.func b "main" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f "g" [];
     B.exit_ f);
  (* main with parameters *)
  expect_problem "main with params"
    (B.build ~main:"main" @@ fun b ->
     B.func b "main" ~params:[ "x" ] @@ fun f ->
     B.label f "entry";
     B.exit_ f);
  (* unreachable block *)
  expect_problem "unreachable block"
    (B.build ~main:"main" @@ fun b ->
     B.func b "main" ~params:[] @@ fun f ->
     B.label f "entry";
     B.exit_ f;
     B.label f "island";
     B.exit_ f)

let validate_accepts_benchmarks () =
  List.iter
    (fun (s : Conair_bugbench.Bench_spec.t) ->
      List.iter
        (fun (variant, oracle) ->
          let inst = s.make ~variant ~oracle in
          check_valid inst.program)
        [
          (Conair_bugbench.Bench_spec.Buggy, true);
          (Conair_bugbench.Bench_spec.Buggy, false);
          (Conair_bugbench.Bench_spec.Clean, true);
          (Conair_bugbench.Bench_spec.Clean, false);
        ])
    Conair_bugbench.Registry.all

(* --- Program utilities ---------------------------------------------- *)

let program_find_instr () =
  let p = straightline_program () in
  match Program.find_instr p 0 with
  | Some (f, _, _) ->
      Alcotest.(check bool) "found in some function" true
        (List.exists
           (fun (g : Func.t) -> Ident.Fname.equal g.name f.Func.name)
           p.funcs)
  | None -> Alcotest.fail "iid 0 must exist"

let program_missing_instr () =
  let p = straightline_program () in
  Alcotest.(check bool) "missing iid" true (Program.find_instr p 9999 = None)

let suites =
  [
    ( "ir",
      [
        case "value equality" value_equality;
        case "value truthiness" value_truthiness;
        case "value printing" value_printing;
        case "idempotency classification" classification;
        case "dynamic destruction" dynamic_destruction;
        case "def/use sets" def_use;
        case "builder basics" builder_basics;
        case "builder fallthrough" builder_fallthrough;
        case "builder rejects empty function" builder_rejects_empty_function;
        case "builder rejects unterminated block" builder_rejects_unterminated;
        case "cfg edges" cfg_edges;
        case "cfg self loop" cfg_self_loop;
        case "block successor dedup" block_successors_dedup;
        case "validate catches problems" validate_catches_problems;
        case "validate accepts all benchmark variants"
          validate_accepts_benchmarks;
        case "program find_instr" program_find_instr;
        case "program find_instr missing" program_missing_instr;
      ] );
  ]
