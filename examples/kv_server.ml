(* A mini key-value server written in Mir, hardened with ConAir — the
   adoption scenario the paper targets: you ship the hardened binary, a
   hidden order violation fires in production, and the server silently
   recovers instead of crashing.

   The server has a writer thread applying a batch of PUTs and a reader
   thread serving GETs; the reader may consult the shared index pointer
   before the writer has published it (an order violation -> segfault).
   The run prints the recovery trace so you can watch the rollback.

   Run with:  dune exec examples/kv_server.exe *)

open Conair.Ir
module B = Builder
module Machine = Conair.Runtime.Machine
module Trace = Conair.Runtime.Trace
module Outcome = Conair.Runtime.Outcome

let program =
  B.build ~main:"main" @@ fun b ->
  B.global b "index" Value.Null;
  B.global b "requests_served" (Value.Int 0);
  Conair_bugbench.Mirlib.add_table_funcs b;
  Conair_bugbench.Mirlib.add_compute_kernel b;
  (* The writer: build the index, apply the PUT batch, publish. *)
  (B.func b "writer" ~params:[] @@ fun f ->
   B.label f "entry";
   B.call f ~into:"idx" "table_new" [ B.int 32 ];
   B.move f "k" (B.int 0);
   B.label f "puts";
   B.lt f "more" (B.reg "k") (B.int 10);
   B.branch f (B.reg "more") "put" "publish";
   B.label f "put";
   B.mul f "v" (B.reg "k") (B.reg "k");
   B.call f "table_put" [ B.reg "idx"; B.int 32; B.reg "k"; B.reg "v" ];
   B.call f ~into:"w" "compute_kernel" [ B.int 40 ];
   B.add f "k" (B.reg "k") (B.int 1);
   B.jump f "puts";
   B.label f "publish";
   B.store f (Instr.Global "index") (B.reg "idx");
   B.ret f None);
  (* The reader: serve GET 7 — possibly before the index exists. *)
  (B.func b "reader" ~params:[] @@ fun f ->
   B.label f "entry";
   B.load f "idx" (Instr.Global "index");
   B.load_idx f "v" (B.reg "idx") (B.int 7);
   B.store f (Instr.Global "requests_served") (B.int 1);
   B.output f "GET 7 -> %v" [ B.reg "v" ];
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "reader" [];
  B.spawn f "t2" "writer" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  B.exit_ f

let () =
  print_endline "=== Unhardened server, unlucky schedule ===";
  let r = Conair.execute program in
  Format.printf "outcome: %a@." Outcome.pp r.outcome;

  print_endline "\n=== Hardened server, same schedule (with recovery trace) ===";
  let h = Conair.harden_exn program Conair.Survival in
  let meta = Machine.meta_of_harden h.hardened in
  let sink = Trace.create () in
  let m =
    Machine.create ~meta
      ~hooks:(Conair.Runtime.Hooks.bundle ~trace:sink ())
      h.hardened.program
  in
  let outcome = Machine.run m in
  Format.printf "outcome: %a@." Outcome.pp outcome;
  List.iter (Format.printf "served:  %s@.") (Machine.outputs m);
  Format.printf "@[<v 2>recovery trace:@ %a@]@." Trace.pp_recovery_summary
    sink
