(* conair_serve — the recovery-as-a-service daemon and its stress
   driver.

     conair_serve serve  --socket /tmp/conair.sock
     conair_serve stress --tenants 10 --jobs 12 --out-dir .

   [serve] runs the daemon until a client sends a shutdown request.
   [stress] spawns its own daemon child, fires a mixed concurrent job
   load from many tenants over pipelined connections, and asserts the
   service guarantees: every job completes, each tenant's results
   arrive in submission order, and every report is byte-identical to
   the same job executed in-process (hence to the CLI, which shares
   the code path). It also scrapes the Prometheus endpoint, the status
   document and a spans export into --out-dir for validation. *)

open Cmdliner
module Json = Conair_server.Protocol.Json
module Protocol = Conair_server.Protocol
module Server = Conair_server.Server
module Client = Conair_server.Client
module Job = Conair_server.Job
module Spec = Conair_bugbench.Bench_spec

(* --- serve --------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket at $(docv).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on 127.0.0.1:$(docv) instead of a Unix socket.")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker pool size.")

let max_pending_arg =
  Arg.(
    value & opt int 256
    & info [ "max-pending" ]
        ~doc:"Queued-or-running job bound (backpressure past it).")

let max_program_bytes_arg =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "max-program-bytes" ]
        ~doc:"Inline payload (program text, schedule log) size limit.")

let address_of socket port =
  match (socket, port) with
  | Some path, None -> Ok (Server.Unix_path path)
  | None, Some p -> Ok (Server.Tcp ("127.0.0.1", p))
  | None, None -> Ok (Server.Unix_path "conair_serve.sock")
  | Some _, Some _ -> Error "give at most one of --socket and --port"

let serve_cmd =
  let run socket port workers max_pending max_program_bytes =
    match address_of socket port with
    | Error e -> prerr_endline e; 1
    | Ok address ->
        let cfg =
          {
            (Server.default_config address) with
            Server.workers;
            max_pending;
            max_program_bytes;
          }
        in
        let t = Server.create cfg in
        (match address with
        | Server.Unix_path p -> Printf.printf "listening on %s\n%!" p
        | Server.Tcp (h, p) -> Printf.printf "listening on %s:%d\n%!" h p);
        Server.serve t;
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the recovery-as-a-service daemon until a client sends a \
          shutdown request.")
    Term.(
      const run $ socket_arg $ port_arg $ workers_arg $ max_pending_arg
      $ max_program_bytes_arg)

(* --- stress -------------------------------------------------------- *)

(* The mixed job menu. Every tenant cycles through it, seeds varied by
   (tenant, index) so runs differ while staying deterministic. *)
let job_menu ~minimize_log ~tenant_ix ~job_ix =
  let seed = (tenant_ix * 100) + job_ix in
  let with_seed seed = { Protocol.default_exec with Protocol.seed } in
  match job_ix mod 7 with
  | 0 ->
      Protocol.Run
        {
          target = Bench { app = "HawkNL"; variant = "buggy"; oracle = false };
          mode = "survival";
          exec = with_seed (Some seed);
        }
  | 1 ->
      Protocol.Run
        {
          target = Bench { app = "MySQL1"; variant = "buggy"; oracle = false };
          mode = "survival";
          exec = Protocol.default_exec;
        }
  | 2 ->
      Protocol.Detect
        {
          target = Bench { app = "FFT"; variant = "buggy"; oracle = false };
          original = false;
          exec = Protocol.default_exec;
        }
  | 3 ->
      Protocol.Harden
        {
          target = Bench { app = "SQLite"; variant = "buggy"; oracle = false };
          mode = "survival";
        }
  | 4 ->
      Protocol.Fuzz
        {
          target = Bench { app = "HawkNL"; variant = "buggy"; oracle = false };
          runs = 3;
          base_seed = seed;
          exec = Protocol.default_exec;
        }
  | 5 ->
      Protocol.Fix
        {
          target = Bench { app = "HawkNL"; variant = "buggy"; oracle = false };
          max_candidates = 4;
          sweep_seeds = 8;
          search_seeds = 4;
          exec = Protocol.default_exec;
        }
  | _ ->
      Protocol.Minimize { log = minimize_log; max_tests = 400; detect = false }

(* A failing recorded schedule for the minimize jobs: HawkNL's
   unhardened deadlock under round-robin, recorded in-process. *)
let minimize_log_lines () =
  match Conair_bugbench.Registry.find "HawkNL" with
  | None -> failwith "HawkNL missing from the registry"
  | Some spec ->
      let inst = spec.Spec.make ~variant:Spec.Buggy ~oracle:false in
      let config =
        { Conair_runtime.Machine.default_config with fuel = 200_000 }
      in
      let _, log =
        Conair.record_run ~config
          ~ident:(Conair.Replay.Log.ident ~variant:"buggy" "HawkNL")
          inst.Spec.program
      in
      Conair.Replay.Log.to_lines log

let member_string k j =
  match Json.member k j with Some (Json.String s) -> s | _ -> ""

let member_int k j =
  match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

let write_file file contents =
  Out_channel.with_open_text file (fun oc -> output_string oc contents)

(* One tenant's worth of load, fully pipelined: send every submit
   first, then read frames back until every result arrived (or EOF).
   Returns the submitted (id, spec) list, the (id, frame) results in
   arrival order, and any errors. *)
let drive_tenant ~address ~tenant ~tenant_ix ~jobs ~minimize_log =
  let c = Client.connect address in
  let specs =
    List.init jobs (fun j ->
        ( Printf.sprintf "%s-job%03d" tenant j,
          job_menu ~minimize_log ~tenant_ix ~job_ix:j ))
  in
  List.iter
    (fun (id, spec) ->
      Client.send c (Protocol.Submit { tenant; id; job = spec }))
    specs;
  let errors = ref [] in
  let results = ref [] in
  let telemetry = ref 0 in
  let expected = List.length specs in
  let rec read () =
    if List.length !results < expected then begin
      match Client.recv c with
      | None ->
          errors :=
            Printf.sprintf "%s: eof with %d/%d results" tenant
              (List.length !results) expected
            :: !errors
      | Some frame ->
          (match Client.frame_type frame with
          | "result" ->
              results := (member_string "id" frame, frame) :: !results
          | "telemetry" -> incr telemetry
          | "error" ->
              errors :=
                Printf.sprintf "%s: server error: %s" tenant
                  (member_string "message" frame)
                :: !errors
          | _ -> ());
          read ()
    end
  in
  read ();
  Client.close c;
  (specs, List.rev !results, !telemetry, List.rev !errors)

type tenant_outcome = {
  to_specs : (string * Protocol.spec) list;
  to_results : (string * Json.t) list;
  to_telemetry : int;
  to_errors : string list;
}

let stress_cmd =
  let tenants_arg =
    Arg.(value & opt int 10 & info [ "tenants" ] ~doc:"Concurrent tenants.")
  in
  let jobs_arg =
    Arg.(value & opt int 12 & info [ "jobs" ] ~doc:"Jobs per tenant.")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "Write metrics.prom, status.json, spans.json, \
             report_hawknl.json and hawknl.bundle.json here.")
  in
  let run tenants jobs out_dir workers =
    let sock =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "conair-stress-%d.sock" (Unix.getpid ()))
    in
    let address = Server.Unix_path sock in
    let child =
      Unix.create_process Sys.executable_name
        [|
          Sys.executable_name; "serve"; "--socket"; sock; "--workers";
          string_of_int workers;
        |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    let errors = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let minimize_log = minimize_log_lines () in

    (* the concurrent mixed load, one thread per tenant; each thread
       drops its outcome into its slot *)
    let slots = Array.make tenants None in
    let drivers =
      List.init tenants (fun i ->
          let tenant = Printf.sprintf "t%02d" i in
          Thread.create
            (fun () ->
              try
                let specs, results, telemetry, errs =
                  drive_tenant ~address ~tenant ~tenant_ix:i ~jobs
                    ~minimize_log
                in
                slots.(i) <-
                  Some
                    {
                      to_specs = specs;
                      to_results = results;
                      to_telemetry = telemetry;
                      to_errors = errs;
                    }
              with e ->
                slots.(i) <-
                  Some
                    {
                      to_specs = [];
                      to_results = [];
                      to_telemetry = 0;
                      to_errors =
                        [
                          Printf.sprintf "%s: driver raised: %s" tenant
                            (Printexc.to_string e);
                        ];
                    })
            ())
    in
    List.iter Thread.join drivers;

    (* assertions: completion, per-tenant ordering, byte-identity *)
    let total_results = ref 0 in
    let total_telemetry = ref 0 in
    Array.iteri
      (fun i slot ->
        let tenant = Printf.sprintf "t%02d" i in
        match slot with
        | None -> fail "%s: driver thread died" tenant
        | Some o ->
            List.iter (fun e -> errors := e :: !errors) o.to_errors;
            total_results := !total_results + List.length o.to_results;
            total_telemetry := !total_telemetry + o.to_telemetry;
            if List.length o.to_results <> List.length o.to_specs then
              fail "%s: %d/%d results" tenant
                (List.length o.to_results)
                (List.length o.to_specs);
            (* strict per-tenant FIFO: result ids in submission order *)
            if List.map fst o.to_results
               <> List.filteri
                    (fun j _ -> j < List.length o.to_results)
                    (List.map fst o.to_specs)
            then fail "%s: results out of submission order" tenant;
            (* byte-identity: each report equals the in-process run *)
            if List.length o.to_results = List.length o.to_specs then
              List.iter2
                (fun (id, spec) (_, frame) ->
                  match Json.member "report" frame with
                  | None -> fail "%s/%s: result carries no report" tenant id
                  | Some got ->
                      let expect = (Job.execute spec).Job.jr_report in
                      if Json.to_string got <> Json.to_string expect then
                        fail "%s/%s: report differs from in-process run"
                          tenant id)
                o.to_specs o.to_results)
      slots;
    if !total_telemetry = 0 then
      fail "no telemetry frames were streamed at all";

    (* the designated CLI-equivalence report + observability scrapes *)
    let c = Client.connect address in
    (match
       Client.submit c ~tenant:"cli-equiv" ~id:"hawknl-seed7"
         (Protocol.Run
            {
              target =
                Bench { app = "HawkNL"; variant = "buggy"; oracle = false };
              mode = "survival";
              exec = { Protocol.default_exec with Protocol.seed = Some 7 };
            })
     with
    | Error e -> fail "cli-equiv job: %s" e
    | Ok (frame, _telemetry) -> (
        match Json.member "report" frame with
        | None -> fail "cli-equiv job: no report"
        | Some report ->
            write_file
              (Filename.concat out_dir "report_hawknl.json")
              (Json.to_string_pretty report)));

    (* flight bundle: inject a failing run (HawkNL unhardened deadlocks
       under round-robin), fetch its retained post-mortem, and assert it
       is byte-identical to the in-process capture and still a working
       regeneration recipe (recovered log replays divergence-free). This
       runs before the scrapes below so the exported metrics and status
       artifacts show the bundle accounting. *)
    let failing_spec =
      Protocol.Run
        {
          target = Bench { app = "HawkNL"; variant = "buggy"; oracle = false };
          mode = "none";
          exec = Protocol.default_exec;
        }
    in
    (match
       Client.submit c ~tenant:"cli-equiv" ~id:"hawknl-deadlock" failing_spec
     with
    | Error e -> fail "bundle job: %s" e
    | Ok (frame, _telemetry) -> (
        match member_int "exit" frame with
        | Some 2 -> ()
        | _ -> fail "bundle job: expected the injected run to fail (exit 2)"));
    Client.send c
      (Protocol.Bundle { tenant = "cli-equiv"; id = "hawknl-deadlock" });
    (match Client.recv_until c (fun j -> Client.frame_type j = "bundle") with
    | None -> fail "no bundle frame"
    | Some frame -> (
        match Json.member "bundle" frame with
        | None -> fail "bundle frame carries no bundle document"
        | Some doc -> (
            write_file
              (Filename.concat out_dir "hawknl.bundle.json")
              (Json.to_string_pretty doc);
            (match (Job.execute failing_spec).Job.jr_bundle with
            | None -> fail "in-process run produced no flight bundle"
            | Some expect ->
                if Json.to_string doc <> Json.to_string expect then
                  fail "served bundle differs from the in-process capture");
            match Conair.Obs.Flight.of_json doc with
            | Error e -> fail "served bundle does not decode: %s" e
            | Ok b -> (
                match Conair.Replay.Bundle.recover_log b with
                | Error e -> fail "bundle regeneration failed: %s" e
                | Ok log -> (
                    match Conair.replay log with
                    | Error _ -> fail "regenerated log does not replay"
                    | Ok rb -> (
                        match Conair.Replay.Driver.check log rb with
                        | Error e -> fail "regenerated log mismatch: %s" e
                        | Ok () -> ()))))));
    Client.send c Protocol.Metrics;
    (match Client.recv_until c (fun j -> Client.frame_type j = "metrics") with
    | Some frame ->
        write_file
          (Filename.concat out_dir "metrics.prom")
          (member_string "body" frame)
    | None -> fail "no metrics frame");
    Client.send c Protocol.Status;
    (match
       Client.recv_until c (fun j -> Client.frame_type j = "serve_status")
     with
    | Some status ->
        write_file
          (Filename.concat out_dir "status.json")
          (Json.to_string_pretty status);
        (* cross-check the daemon's own accounting *)
        let completed =
          match Json.member "tenants" status with
          | Some (Json.List ts) ->
              List.fold_left
                (fun acc t ->
                  acc + Option.value ~default:0 (member_int "completed" t))
                0 ts
          | _ -> 0
        in
        if completed < (tenants * jobs) + 2 then
          fail "status reports %d completed jobs, expected at least %d"
            completed
            ((tenants * jobs) + 2)
    | None -> fail "no status frame");
    Client.send c (Protocol.Spans { tenant = "cli-equiv"; id = "hawknl-seed7" });
    (match Client.recv_until c (fun j -> Client.frame_type j = "spans") with
    | Some frame -> (
        match Json.member "chrome" frame with
        | Some doc ->
            write_file
              (Filename.concat out_dir "spans.json")
              (Json.to_string_pretty doc)
        | None -> fail "spans frame carries no chrome document")
    | None -> fail "no spans frame");
    Client.send c Protocol.Shutdown;
    ignore (Client.recv_until c (fun j -> Client.frame_type j = "bye"));
    Client.close c;
    let _, child_status = Unix.waitpid [] child in
    (match child_status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n -> fail "daemon exited with %d" n
    | Unix.WSIGNALED n -> fail "daemon killed by signal %d" n
    | Unix.WSTOPPED n -> fail "daemon stopped by signal %d" n);
    (try Unix.unlink sock with Unix.Unix_error _ -> ());
    Printf.printf
      "stress: %d tenants x %d jobs: %d results, %d telemetry frames\n"
      tenants jobs !total_results !total_telemetry;
    match List.rev !errors with
    | [] ->
        print_endline "all assertions passed";
        0
    | errs ->
        List.iter prerr_endline errs;
        Printf.eprintf "stress: %d assertion(s) failed\n" (List.length errs);
        1
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Spawn a daemon, drive a concurrent mixed job load against it, \
          assert ordering/completion/byte-identity, scrape the \
          observability endpoints, then shut it down.")
    Term.(const run $ tenants_arg $ jobs_arg $ out_dir_arg $ workers_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "conair_serve" ~version:"%%VERSION%%"
             ~doc:"ConAir recovery-as-a-service daemon.")
          [ serve_cmd; stress_cmd ]))
