(* The ConAir command-line interface.

   Subcommands:
   - [list]            benchmarks in the registry
   - [show APP]        print the benchmark's Mir program
   - [analyze APP]     run the static pipeline, print per-site plans
   - [harden APP]      print the transformed (hardened) program
   - [run APP]         execute (optionally hardened), print the outcome
   - [report APP]      execute observed, emit the structured run report
   - [restart APP]     the whole-program-restart baseline
   - [fullckpt APP]    the whole-program-checkpoint baseline
   - [replay --log F]  re-execute a recorded schedule, inspect any step
   - [minimize --log F] shrink a failing schedule to its essential switches

   Examples:
     conair_cli analyze HawkNL
     conair_cli run MozillaXP --hardened --variant buggy
     conair_cli run HawkNL --trace-json t.jsonl --metrics m.json --spans s.json
     conair_cli report HawkNL --prometheus
     conair_cli run FFT --variant clean --no-harden
     conair_cli run HawkNL --no-harden --record hawknl.sched.jsonl
     conair_cli replay --log hawknl.sched.jsonl --at 40
     conair_cli minimize --log hawknl.sched.jsonl --out minimal.sched.jsonl *)

open Cmdliner
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Machine = Conair.Runtime.Machine
module Engine = Conair.Runtime.Engine
module Hooks = Conair.Runtime.Hooks
module Outcome = Conair.Runtime.Outcome
module Sched = Conair.Runtime.Sched
module Stats = Conair.Runtime.Stats
module Trace = Conair.Runtime.Trace
module Plan = Conair.Analysis.Plan
module Obs = Conair.Obs
module Replay = Conair.Replay

(* --- shared arguments --------------------------------------------- *)

let app_arg =
  let doc = "Benchmark application name (see the list subcommand)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let variant_arg =
  let doc = "Program variant: buggy (failure-inducing sleeps) or clean." in
  let v = Arg.enum [ ("buggy", Spec.Buggy); ("clean", Spec.Clean) ] in
  Arg.(value & opt v Spec.Buggy & info [ "variant" ] ~doc)

let oracle_arg =
  let doc =
    "Include developer output-correctness oracles (needed to detect \
     wrong-output failures)."
  in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let fuel_arg =
  Arg.(
    value
    & opt int 8_000_000
    & info [ "fuel" ] ~doc:"Scheduler-step budget before giving up.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ]
        ~doc:"Use a random scheduler with this seed (default: round-robin).")

let max_retries_arg =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "max-retries" ] ~doc:"Per-site recovery retry budget.")

let no_optimize_arg =
  Arg.(
    value & flag
    & info [ "no-optimize" ]
        ~doc:"Disable the unnecessary-rollback optimization (section 4.2).")

let no_interproc_arg =
  Arg.(
    value & flag
    & info [ "no-interproc" ]
        ~doc:"Disable inter-procedural recovery (section 4.3).")

let prune_arg =
  Arg.(
    value & flag
    & info [ "prune-safe" ]
        ~doc:
          "Drop failure sites statically proven unable to fail (section \
           3.4 extension).")

let depth_arg =
  Arg.(
    value & opt int 3
    & info [ "depth" ]
        ~doc:"Inter-procedural recovery caller-chain depth budget.")

let engine_arg =
  let doc =
    "Execution engine: the reference interpreter (ref), the pre-resolved \
     interpreter (fast) or the block-compiled interpreter (block). All \
     three agree bit-for-bit on every observable; pick by speed."
  in
  let e = Arg.enum (List.map (fun e -> (Engine.name e, e)) Engine.all) in
  Arg.(value & opt e Engine.Fast & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* The one engine-dispatch point every subcommand shares: create the
   selected machine with the requested hooks attached for its lifetime,
   run it, and hand back both. *)
let run_with_engine ~config ?meta ?trace ?profile engine program =
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ?trace ?profile ())
      engine program
  in
  (m, Engine.run m)

let find_spec name =
  match Registry.find name with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "unknown application %S; try: %s" name
           (String.concat ", " Registry.names))

let instance spec variant oracle =
  let oracle = oracle || spec.Spec.info.needs_oracle in
  spec.Spec.make ~variant ~oracle

let analysis_options no_optimize no_interproc depth prune_safe =
  {
    Plan.optimize = not no_optimize;
    interproc = not no_interproc;
    max_depth = depth;
    prune_safe;
    exclude_iids = [];
  }

let machine_config fuel seed max_retries =
  {
    Machine.default_config with
    fuel;
    max_retries;
    policy =
      (match seed with None -> Sched.Round_robin | Some s -> Sched.Random s);
  }

(* --- subcommands --------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Spec.t) ->
        Printf.printf "%-13s %-34s %-8s %-12s %s\n" s.info.name
          s.info.app_type s.info.loc_paper s.info.failure s.info.cause)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark applications.")
    Term.(const run $ const ())

let show_cmd =
  let run app variant oracle =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        let inst = instance spec variant oracle in
        Format.printf "%a@." Conair.Ir.Program.pp inst.program;
        0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the benchmark's Mir program.")
    Term.(const run $ app_arg $ variant_arg $ oracle_arg)

let analyze_cmd =
  let run app variant oracle no_opt no_ip depth prune =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec -> (
        let inst = instance spec variant oracle in
        let options = analysis_options no_opt no_ip depth prune in
        match Conair.harden ~analysis:options inst.program Conair.Survival with
        | Error e -> prerr_endline e; 1
        | Ok h ->
            List.iter
              (fun sp -> Format.printf "%a@." Plan.pp_site_plan sp)
              h.plan.site_plans;
            Format.printf "@.%a@." Conair.Transform.Report.pp h.report;
            0)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the ConAir static analysis and print every site plan.")
    Term.(
      const run $ app_arg $ variant_arg $ oracle_arg $ no_optimize_arg
      $ no_interproc_arg $ depth_arg $ prune_arg)

let harden_cmd =
  let run app variant oracle no_opt no_ip depth prune =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec -> (
        let inst = instance spec variant oracle in
        let options = analysis_options no_opt no_ip depth prune in
        match Conair.harden ~analysis:options inst.program Conair.Survival with
        | Error e -> prerr_endline e; 1
        | Ok h ->
            Format.printf "%a@." Conair.Ir.Program.pp h.hardened.program;
            0)
  in
  Cmd.v
    (Cmd.info "harden" ~doc:"Print the transformed (hardened) Mir program.")
    Term.(
      const run $ app_arg $ variant_arg $ oracle_arg $ no_optimize_arg
      $ no_interproc_arg $ depth_arg $ prune_arg)

(* --- telemetry plumbing shared by run and report ------------------- *)

let variant_name = function Spec.Buggy -> "buggy" | Spec.Clean -> "clean"

let run_meta_of app variant seed =
  Obs.Jsonl.run_meta ~variant:(variant_name variant) ?seed app

let write_file file contents =
  Out_channel.with_open_text file (fun oc -> output_string oc contents)

(* Execute [inst] observed — both the hardened and the unhardened path
   go through the facade's [run_report_of], the same code path the serve
   daemon's run jobs use — and write whichever telemetry files were
   requested. *)
let observed_run ~config ~engine ~meta_info ~mode ~trace_json ~metrics_file
    ~spans_file (inst : Spec.instance) =
  let with_trace_writer k =
    match trace_json with
    | None -> k None
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            k (Some (Obs.Jsonl.channel_writer oc)))
  in
  let rr =
    with_trace_writer @@ fun trace_writer ->
    Conair.run_report_of ~config ~engine ~meta_info ?trace_writer ~mode
      inst.Spec.program
  in
  (match metrics_file with
  | Some file ->
      write_file file (Obs.Json.to_string_pretty (Obs.Metrics.to_json rr.Conair.metrics))
  | None -> ());
  (match spans_file with
  | Some file ->
      write_file file
        (Obs.Json.to_string_pretty
           (Obs.Span.to_chrome ~events:rr.Conair.events rr.Conair.spans))
  | None -> ());
  rr

let hardened_arg =
  Arg.(
    value & flag
    & info [ "hardened" ]
        ~doc:
          "Harden before running. This is already the default; the flag \
           exists so scripts can be explicit.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Stream the full trace-event log to $(docv) as JSON Lines (one \
           meta record, then one event object per line).")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the run's metric registry to $(docv) as JSON.")

let spans_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"FILE"
        ~doc:
          "Write recovery spans to $(docv) in Chrome trace-event format \
           (load in Perfetto or chrome://tracing).")

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Record the scheduler-decision stream of the run into $(docv) \
           as a self-contained schedule log (replayable with the replay \
           subcommand, shrinkable with minimize).")

let mode_name = function
  | None -> "none"
  | Some Conair.Survival -> "survival"
  | Some (Conair.Fix _) -> "fix"

(* Record the run (deterministic, so identical to the displayed one) and
   save the schedule log. *)
let record_schedule ~config ~engine ~app ~variant ~oracle ~mode file
    (inst : Spec.instance) =
  let ident =
    Replay.Log.ident
      ~variant:(variant_name variant)
      ~oracle ~mode:(mode_name mode) app
  in
  let _, log =
    match mode with
    | None -> Conair.record_run ~config ~engine ~ident inst.Spec.program
    | Some m ->
        Conair.run_recorded ~config ~engine ~ident
          (Conair.harden_exn inst.program m)
  in
  Replay.Log.save log file;
  Format.printf "recorded: %s (%d decisions, %d preemptions)@." file
    (Array.length log.Replay.Log.decisions)
    (Array.length log.Replay.Log.preemptions)

let flight_arg =
  Arg.(
    value & flag
    & info [ "flight" ]
        ~doc:
          "Attach the always-on flight recorder and dump a post-mortem \
           diagnostic bundle (FLIGHT_APP.bundle.json) after the run — the \
           decision tail, per-thread locksets, sync/recovery events, \
           episode spans and a regeneration recipe the bundle subcommand \
           replays and minimizes.")

let bundle_out_arg =
  Arg.(
    value & opt string "."
    & info [ "bundle-out" ] ~docv:"DIR"
        ~doc:"Directory for --flight diagnostic bundles (default: .).")

let bundle_file_of ~dir app =
  Filename.concat dir ("flight_" ^ String.lowercase_ascii app ^ ".bundle.json")

(* Capture the run with the flight hook (deterministic, so identical to
   the displayed one) and dump the diagnostic bundle. [reason] records
   why: the displayed run's failure, or an explicit request. *)
let flight_capture ~config ~engine ~app ~variant ~oracle ~mode ~dir ~reason
    (inst : Spec.instance) =
  let ident =
    Replay.Log.ident
      ~variant:(variant_name variant)
      ~oracle ~mode:(mode_name mode) app
  in
  let _, bundle =
    match mode with
    | None -> Conair.run_flight ~config ~engine ~reason ~ident inst.Spec.program
    | Some m ->
        let h = Conair.harden_exn inst.Spec.program m in
        Conair.run_flight ~config ~engine
          ~meta:(Machine.meta_of_harden h.hardened)
          ~reason ~ident h.hardened.program
  in
  let file = bundle_file_of ~dir app in
  Obs.Flight.save bundle file;
  Format.printf
    "flight bundle: %s (%d of %d decisions retained, %d preemptions, %d \
     events)@."
    file
    (Array.length bundle.Obs.Flight.fb_tail)
    bundle.Obs.Flight.fb_tail_total
    (Array.length bundle.Obs.Flight.fb_tail_preemptions)
    (List.length bundle.Obs.Flight.fb_events)

let run_cmd =
  let no_harden_arg =
    Arg.(
      value & flag
      & info [ "no-harden" ] ~doc:"Run the original, unhardened program.")
  in
  let fix_arg =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Use fix mode (harden only the benchmark's known failing site) \
             instead of survival mode.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the recovery-event summary of the run (detections, \
                rollbacks, compensations).")
  in
  let run app variant oracle engine hardened no_harden fix trace trace_json
      metrics_file spans_file record flight bundle_out fuel seed max_retries =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        if hardened && no_harden then begin
          prerr_endline "--hardened and --no-harden are mutually exclusive";
          1
        end
        else begin
          let inst = instance spec variant oracle in
          let config = machine_config fuel seed max_retries in
          let telemetry =
            trace || trace_json <> None || metrics_file <> None
            || spans_file <> None
          in
          let mode =
            if no_harden then None
            else if fix then Some (Conair.Fix inst.fix_site_iids)
            else Some Conair.Survival
          in
          let r, events =
            if telemetry then begin
              let meta_info = run_meta_of app variant seed in
              let rr =
                observed_run ~config ~engine ~meta_info ~mode ~trace_json
                  ~metrics_file ~spans_file inst
              in
              (rr.Conair.run, rr.Conair.events)
            end
            else begin
              (* telemetry is opt-in: no sink, no event stream, no cost *)
              let r =
                match mode with
                | None -> Conair.execute ~config ~engine inst.program
                | Some mode ->
                    Conair.execute_hardened ~config ~engine
                      (Conair.harden_exn inst.program mode)
              in
              (r, [])
            end
          in
          (match record with
          | Some file ->
              record_schedule ~config ~engine ~app ~variant
                ~oracle:(oracle || spec.Spec.info.needs_oracle)
                ~mode file inst
          | None -> ());
          if flight then
            flight_capture ~config ~engine ~app ~variant
              ~oracle:(oracle || spec.Spec.info.needs_oracle)
              ~mode ~dir:bundle_out
              ~reason:
                (if Outcome.is_success r.outcome then "requested"
                 else "failure")
              inst;
          Format.printf "outcome:  %a@." Outcome.pp r.outcome;
          List.iter (fun o -> Format.printf "output:   %s@." o) r.outputs;
          Format.printf "accepted: %b@." (inst.accept r.outputs);
          Format.printf "stats:    %a@." Stats.pp r.stats;
          if r.stats.rollbacks > 0 then begin
            Format.printf "recovery: %d virtual steps (longest episode)@."
              (Stats.max_recovery_time r.stats);
            Format.printf "@[<v 2>episodes:@ %a@]@." Stats.pp_episodes r.stats
          end;
          if trace then begin
            let sink = Trace.create () in
            List.iter (Trace.record sink) events;
            Format.printf "@[<v 2>recovery trace:@ %a@]@."
              Trace.pp_recovery_summary sink
          end;
          if Outcome.is_success r.outcome then 0 else 2
        end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a benchmark, hardened by default.")
    Term.(
      const run $ app_arg $ variant_arg $ oracle_arg $ engine_arg
      $ hardened_arg $ no_harden_arg $ fix_arg $ trace_arg $ trace_json_arg
      $ metrics_file_arg $ spans_file_arg $ record_arg $ flight_arg
      $ bundle_out_arg $ fuel_arg $ seed_arg $ max_retries_arg)

let report_cmd =
  let fix_arg =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:"Use fix mode instead of survival mode before running.")
  in
  let prometheus_arg =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Print the metric registry in Prometheus text exposition \
             format instead of the JSON run report.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let run app variant oracle engine fix prometheus out trace_json
      metrics_file spans_file fuel seed max_retries =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        let inst = instance spec variant oracle in
        let config = machine_config fuel seed max_retries in
        let meta_info = run_meta_of app variant seed in
        let mode =
          Some (if fix then Conair.Fix inst.fix_site_iids else Conair.Survival)
        in
        let rr =
          observed_run ~config ~engine ~meta_info ~mode ~trace_json
            ~metrics_file ~spans_file inst
        in
        let contents =
          if prometheus then Obs.Metrics.to_prometheus rr.Conair.metrics
          else Obs.Json.to_string_pretty rr.Conair.report
        in
        (match out with
        | None -> print_string contents
        | Some file -> write_file file contents);
        if Outcome.is_success rr.Conair.run.outcome then 0 else 2
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Execute a benchmark under full observation and emit the \
          structured run report (or --prometheus metrics).")
    Term.(
      const run $ app_arg $ variant_arg $ oracle_arg $ engine_arg $ fix_arg
      $ prometheus_arg $ out_arg $ trace_json_arg $ metrics_file_arg
      $ spans_file_arg $ fuel_arg $ seed_arg $ max_retries_arg)

let restart_cmd =
  let run app variant oracle fuel =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        let inst = instance spec variant oracle in
        let config = machine_config fuel None 1_000_000 in
        let r =
          Conair_baselines.Restart.run ~config ~accept:inst.accept
            inst.program
        in
        Format.printf
          "outcome: %a@.attempts: %d@.total steps: %d (wasted %d)@."
          Outcome.pp r.outcome r.attempts r.total_steps r.wasted_steps;
        if Outcome.is_success r.outcome then 0 else 2
  in
  Cmd.v
    (Cmd.info "restart" ~doc:"Run the whole-program-restart baseline.")
    Term.(const run $ app_arg $ variant_arg $ oracle_arg $ fuel_arg)

let fullckpt_cmd =
  let interval_arg =
    Arg.(
      value & opt int 250
      & info [ "interval" ] ~doc:"Steps between whole-program checkpoints.")
  in
  let run app variant oracle fuel interval =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        let inst = instance spec variant oracle in
        let config =
          {
            Conair_baselines.Full_checkpoint.default_config with
            machine = machine_config fuel None 1_000_000;
            interval;
          }
        in
        let r = Conair_baselines.Full_checkpoint.run ~config inst.program in
        Format.printf
          "outcome: %a@.snapshots: %d, restores: %d@.run steps: %d, \
           checkpoint overhead: %d, total: %d@.recovery: %d steps@."
          Outcome.pp r.outcome r.snapshots_taken r.restores r.run_steps
          r.checkpoint_overhead_steps r.total_steps r.recovery_steps;
        if Outcome.is_success r.outcome then 0 else 2
  in
  Cmd.v
    (Cmd.info "fullckpt"
       ~doc:"Run the whole-program-checkpoint/rollback baseline.")
    Term.(const run $ app_arg $ variant_arg $ oracle_arg $ fuel_arg
          $ interval_arg)

let file_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A Mir source file (.mir).")
  in
  let no_harden_arg =
    Arg.(
      value & flag
      & info [ "no-harden" ] ~doc:"Run the program as written, unhardened.")
  in
  let emit_arg =
    Arg.(
      value & flag
      & info [ "emit" ]
          ~doc:"Print the (possibly hardened) program instead of running it.")
  in
  let run file no_harden emit engine record flight bundle_out fuel seed
      max_retries =
    let src = In_channel.with_open_text file In_channel.input_all in
    match Conair.Ir.Parse.program src with
    | Error e ->
        Format.eprintf "%s: %a@." file Conair.Ir.Parse.pp_error e;
        1
    | Ok p -> (
        match Conair.Ir.Validate.check p with
        | _ :: _ as problems ->
            List.iter
              (fun pb ->
                Format.eprintf "%s: %a@." file Conair.Ir.Validate.pp_problem pb)
              problems;
            1
        | [] ->
            let config = machine_config fuel seed max_retries in
            let save_record mode run_recorded =
              match record with
              | None -> ()
              | Some out ->
                  let ident =
                    Replay.Log.ident ~mode:(mode_name mode)
                      (Filename.remove_extension (Filename.basename file))
                  in
                  let _, log = run_recorded ident in
                  Replay.Log.save log out;
                  Format.printf "recorded: %s (%d decisions, %d preemptions)@."
                    out
                    (Array.length log.Replay.Log.decisions)
                    (Array.length log.Replay.Log.preemptions)
            in
            let save_flight mode ?meta program outcome =
              if flight then begin
                let app = Filename.remove_extension (Filename.basename file) in
                let ident = Replay.Log.ident ~mode:(mode_name mode) app in
                let reason =
                  if Outcome.is_success outcome then "requested" else "failure"
                in
                let _, bundle =
                  Conair.run_flight ~config ~engine ?meta ~reason ~ident
                    program
                in
                let out = bundle_file_of ~dir:bundle_out app in
                Obs.Flight.save bundle out;
                Format.printf
                  "flight bundle: %s (%d of %d decisions retained)@." out
                  (Array.length bundle.Obs.Flight.fb_tail)
                  bundle.Obs.Flight.fb_tail_total
              end
            in
            if no_harden then begin
              if emit then begin
                print_string (Conair.Ir.Emit.program p);
                0
              end
              else begin
                let r = Conair.execute ~config ~engine p in
                save_record None (fun ident ->
                    Conair.record_run ~config ~engine ~ident p);
                save_flight None p r.outcome;
                Format.printf "outcome: %a@." Outcome.pp r.outcome;
                List.iter (Format.printf "output:  %s@.") r.outputs;
                if Outcome.is_success r.outcome then 0 else 2
              end
            end
            else
              let h = Conair.harden_exn p Conair.Survival in
              if emit then begin
                print_string (Conair.Ir.Emit.program h.hardened.program);
                0
              end
              else begin
                let r = Conair.execute_hardened ~config ~engine h in
                save_record (Some Conair.Survival) (fun ident ->
                    Conair.run_recorded ~config ~engine ~ident h);
                save_flight (Some Conair.Survival)
                  ~meta:(Machine.meta_of_harden h.hardened)
                  h.hardened.program r.outcome;
                Format.printf "outcome: %a@." Outcome.pp r.outcome;
                List.iter (Format.printf "output:  %s@.") r.outputs;
                Format.printf "stats:   %a@." Stats.pp r.stats;
                if Outcome.is_success r.outcome then 0 else 2
              end)
  in
  Cmd.v
    (Cmd.info "file"
       ~doc:
         "Parse a Mir source file, harden it (survival mode) and run it; \
          --emit prints the program instead.")
    Term.(
      const run $ file_arg $ no_harden_arg $ emit_arg $ engine_arg
      $ record_arg $ flight_arg $ bundle_out_arg $ fuel_arg $ seed_arg
      $ max_retries_arg)

let dot_cmd =
  let func_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "func" ]
          ~doc:
            "Render only this function (default: the function holding the \
             first recoverable site).")
  in
  let run app variant oracle func =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec -> (
        let inst = instance spec variant oracle in
        match Conair.harden inst.program Conair.Survival with
        | Error e -> prerr_endline e; 1
        | Ok h -> (
            let module A = Conair.Analysis in
            let pick =
              match func with
              | Some name ->
                  List.find_opt
                    (fun (sp : A.Plan.site_plan) ->
                      Conair.Ir.Ident.Fname.name sp.site.func = name
                      && sp.verdict = A.Optimize.Recoverable)
                    h.plan.site_plans
              | None ->
                  List.find_opt
                    (fun (sp : A.Plan.site_plan) ->
                      sp.verdict = A.Optimize.Recoverable)
                    h.plan.site_plans
            in
            match pick with
            | None ->
                prerr_endline "no recoverable site to render";
                1
            | Some sp ->
                print_string (A.Viz.site_to_dot inst.program sp.site);
                0))
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Print a Graphviz rendering of a failure site's function with its \
          idempotent region highlighted.")
    Term.(const run $ app_arg $ variant_arg $ oracle_arg $ func_arg)

let profile_cmd =
  let runs_arg =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~doc:"Profiling runs (with --sites only).")
  in
  let sites_arg =
    Arg.(
      value & flag
      & info [ "sites" ]
          ~doc:
            "ConSeq-style per-site execution counts over clean runs of the \
             original program instead of the cost profile.")
  in
  let fix_arg =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:"Use fix mode instead of survival mode before profiling.")
  in
  let collapsed_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "collapsed" ] ~docv:"FILE"
          ~doc:
            "Write the total cost profile as collapsed-stack flamegraph \
             lines to $(docv) (feed to flamegraph.pl or speedscope).")
  in
  let wasted_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "wasted" ] ~docv:"FILE"
          ~doc:
            "Write only the rolled-back (wasted) cost as collapsed-stack \
             lines to $(docv) — a flamegraph of recovery waste.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write recovery spans plus the stacked cost counter track to \
             $(docv) in Chrome trace-event format.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full profile (totals, per-context tables, \
                per-site costs, samples) to $(docv) as JSON.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~doc:"Context rows to print (0 for all).")
  in
  let run app variant oracle engine sites fix runs collapsed wasted chrome
      json top fuel seed max_retries =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        let inst = instance spec variant oracle in
        if sites then begin
          let config = machine_config fuel None 1_000_000 in
          let profiles = Conair.profile_sites ~config ~runs inst.program in
          Printf.printf "%-8s %-12s %10s  %s\n" "site" "kind" "executions"
            "message";
          List.iter
            (fun (p : Conair.site_profile) ->
              Printf.printf "%-8d %-12s %10d  %s\n" p.site.site_id
                (Format.asprintf "%a" Conair.Ir.Instr.pp_failure_kind
                   p.site.kind)
                p.executions p.site.msg)
            profiles;
          0
        end
        else begin
          let config = machine_config fuel seed max_retries in
          let mode =
            if fix then Conair.Fix inst.fix_site_iids else Conair.Survival
          in
          let h = Conair.harden_exn inst.program mode in
          let prof = Obs.Prof.create () in
          let sink = Trace.create () in
          let _, outcome =
            run_with_engine ~config
              ~meta:(Machine.meta_of_harden h.hardened)
              ~trace:sink ~profile:(Obs.Prof.probe prof) engine
              h.hardened.program
          in
          Obs.Prof.finalize prof;
          Format.printf "outcome:    %a@." Outcome.pp outcome;
          Printf.printf "useful:     %d steps\n"
            (Obs.Prof.useful_steps prof);
          Printf.printf "checkpoint: %d steps\n"
            (Obs.Prof.checkpoint_steps prof);
          Printf.printf "wasted:     %d steps (ratio %.4f)\n"
            (Obs.Prof.wasted_steps prof)
            (Obs.Prof.wasted_ratio prof);
          Printf.printf "idle:       %d steps\n" (Obs.Prof.idle_steps prof);
          (match Obs.Prof.site_costs prof with
          | [] -> ()
          | costs ->
              Printf.printf "%-8s %10s %10s\n" "site" "rollbacks" "wasted";
              List.iter
                (fun (c : Obs.Prof.site_cost) ->
                  Printf.printf "%-8d %10d %10d\n" c.sc_site c.sc_rollbacks
                    c.sc_wasted)
                costs);
          let rows = Obs.Prof.rows prof in
          let rows =
            if top <= 0 then rows
            else List.filteri (fun i _ -> i < top) rows
          in
          Printf.printf "%10s %10s %10s  %s\n" "useful" "ckpt" "wasted"
            "context";
          List.iter
            (fun (r : Obs.Prof.row) ->
              Printf.printf "%10d %10d %10d  %s\n" r.r_useful r.r_ckpt
                r.r_wasted r.r_ctx)
            rows;
          let write_collapsed file kind =
            write_file file
              (String.concat "\n" (Obs.Prof.to_collapsed prof kind) ^ "\n")
          in
          (match collapsed with
          | Some file -> write_collapsed file Obs.Prof.Total
          | None -> ());
          (match wasted with
          | Some file -> write_collapsed file Obs.Prof.Wasted
          | None -> ());
          (match chrome with
          | Some file ->
              let events = Trace.events sink in
              let spans = Obs.Span.of_events events in
              write_file file
                (Obs.Json.to_string_pretty
                   (Obs.Span.to_chrome ~events
                      ~counters:(Obs.Prof.counter_events prof)
                      spans))
          | None -> ());
          (match json with
          | Some file ->
              write_file file
                (Obs.Json.to_string_pretty (Obs.Prof.to_json prof))
          | None -> ());
          if Outcome.is_success outcome then 0 else 2
        end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the deterministic cost profiler: per-context \
          useful/checkpoint/wasted attribution, per-site rollback waste, \
          flamegraph and Chrome-trace exports (--sites for the ConSeq-style \
          execution-count profile).")
    Term.(
      const run $ app_arg $ variant_arg $ oracle_arg $ engine_arg
      $ sites_arg $ fix_arg $ runs_arg $ collapsed_arg $ wasted_arg
      $ chrome_arg $ json_arg $ top_arg $ fuel_arg $ seed_arg
      $ max_retries_arg)

let overhead_cmd =
  let apps_arg =
    Arg.(
      value & opt_all string []
      & info [ "app" ] ~docv:"APP"
          ~doc:
            "Measure only this application (repeatable; default: the whole \
             catalog).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_overhead.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON document.")
  in
  let runs_arg =
    Arg.(
      value & opt int 5
      & info [ "runs" ]
          ~doc:"Random-schedule runs per recovery verdict (on top of the \
                deterministic run).")
  in
  let case_of_spec (spec : Spec.t) : Obs.Overhead.case =
    let inst variant oracle =
      let i = spec.Spec.make ~variant ~oracle in
      {
        Obs.Overhead.program = i.Spec.program;
        fix_iids = i.Spec.fix_site_iids;
        accept = i.Spec.accept;
      }
    in
    let needs = spec.Spec.info.needs_oracle in
    {
      Obs.Overhead.name = spec.Spec.info.name;
      needs_oracle = needs;
      buggy_fix = inst Spec.Buggy true;
      buggy_survival = inst Spec.Buggy needs;
      clean_fix = inst Spec.Clean true;
      clean_survival = inst Spec.Clean needs;
    }
  in
  let run apps out runs fuel =
    let specs =
      match apps with
      | [] -> Ok Registry.all
      | names ->
          List.fold_right
            (fun name acc ->
              match (acc, find_spec name) with
              | Error e, _ -> Error e
              | _, Error e -> Error e
              | Ok specs, Ok s -> Ok (s :: specs))
            names (Ok [])
    in
    match specs with
    | Error e -> prerr_endline e; 1
    | Ok specs ->
        let config = machine_config fuel None 1_000_000 in
        (* which detector lenses flag the buggy program — closed over
           here because Overhead sits below the detector in the library
           order *)
        let detect (c : Obs.Overhead.case) =
          let h =
            Conair.harden_exn c.Obs.Overhead.buggy_survival.Obs.Overhead.program
              Conair.Survival
          in
          let _, rep = Conair.detect_hardened ~config h in
          (if rep.Conair.Race.Report.races <> [] then [ "hb" ] else [])
          @ (if rep.Conair.Race.Report.warnings <> [] then [ "lockset" ]
             else [])
          @
          if
            List.exists
              (fun cy -> cy.Conair.Race.Report.cy_actual)
              rep.Conair.Race.Report.cycles
          then [ "deadlock" ]
          else []
        in
        let rows =
          Obs.Overhead.measure_all ~config ~random_runs:runs ~detect
            (List.map case_of_spec specs)
        in
        write_file out (Obs.Json.to_string_pretty (Obs.Overhead.to_json rows));
        List.iter print_endline (Obs.Overhead.table_rows rows);
        let s = Obs.Overhead.summary rows in
        Printf.printf
          "recovery: fix %d/%d, survival %d/%d; max overhead: fix %.2f%%, \
           survival %.2f%%\n"
          s.s_fix_recovered s.s_cases s.s_surv_recovered s.s_cases
          s.s_max_fix_overhead_pct s.s_max_surv_overhead_pct;
        Printf.printf "wrote %s\n" out;
        if s.s_fix_recovered = s.s_cases && s.s_surv_recovered = s.s_cases
        then 0
        else 2
  in
  Cmd.v
    (Cmd.info "overhead"
       ~doc:
         "Run the paper-style overhead harness over the benchmark catalog \
          and regenerate the Table 3 numbers (BENCH_overhead.json).")
    Term.(const run $ apps_arg $ out_arg $ runs_arg $ fuel_arg)

let races_cmd =
  let app_opt_arg =
    let doc = "Benchmark application name (or use --file)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Detect on a Mir source file instead of a benchmark.")
  in
  let hb_arg =
    Arg.(
      value & flag
      & info [ "hb" ]
          ~doc:
            "Enable only the happens-before lens (combine with --lockset \
             and --deadlock; default when no lens flag is given: all \
             three).")
  in
  let lockset_arg =
    Arg.(
      value & flag
      & info [ "lockset" ] ~doc:"Enable only the Eraser lockset lens.")
  in
  let deadlock_arg =
    Arg.(
      value & flag
      & info [ "deadlock" ]
          ~doc:"Enable only the lock-order deadlock lens.")
  in
  let original_arg =
    Arg.(
      value & flag
      & info [ "original" ]
          ~doc:
            "Detect on the original program instead of the hardened one. \
             Fail-stop bugs kill the run before the conflicting access \
             executes, so hardened (the default) usually sees more.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full race report to $(docv) as JSON.")
  in
  let run app file variant oracle engine original hb lockset deadlock json
      fuel seed max_retries =
    let program =
      match (app, file) with
      | Some name, None -> (
          match find_spec name with
          | Error e -> Error e
          | Ok spec -> Ok (instance spec variant oracle).Spec.program)
      | None, Some f -> (
          let src = In_channel.with_open_text f In_channel.input_all in
          match Conair.Ir.Parse.program src with
          | Error e -> Error (Format.asprintf "%s: %a" f Conair.Ir.Parse.pp_error e)
          | Ok p -> Ok p)
      | _ -> Error "give exactly one of APP or --file"
    in
    match program with
    | Error e -> prerr_endline e; 1
    | Ok p ->
        let options =
          if hb || lockset || deadlock then
            { Conair.Race.Detect.hb; lockset; deadlock }
          else Conair.Race.Detect.all
        in
        let config = machine_config fuel seed max_retries in
        let r, report =
          if original then Conair.run_detected ~config ~engine ~options p
          else
            Conair.detect_hardened ~config ~engine ~options
              (Conair.harden_exn p Conair.Survival)
        in
        Format.printf "outcome: %a@." Outcome.pp r.outcome;
        Format.printf "%a" Conair.Race.Report.pp report;
        let actual, potential =
          List.partition
            (fun c -> c.Conair.Race.Report.cy_actual)
            report.Conair.Race.Report.cycles
        in
        Printf.printf
          "races: %d, lockset warnings: %d, deadlock cycles: %d actual, %d \
           potential\n"
          (List.length report.Conair.Race.Report.races)
          (List.length report.Conair.Race.Report.warnings)
          (List.length actual) (List.length potential);
        (match json with
        | Some out ->
            write_file out
              (Obs.Json.to_string_pretty (Conair.Race.Report.to_json report))
        | None -> ());
        if report.Conair.Race.Report.races <> [] || actual <> [] then 3
        else 0
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Run the dynamic race/deadlock detector (happens-before + \
          lockset + lock-order lenses) over a benchmark or Mir file and \
          report every finding. Exits 3 when races or actual deadlocks \
          were found.")
    Term.(
      const run $ app_opt_arg $ file_arg $ variant_arg $ oracle_arg
      $ engine_arg $ original_arg $ hb_arg $ lockset_arg $ deadlock_arg
      $ json_arg $ fuel_arg $ seed_arg $ max_retries_arg)

(* --- schedule record-and-replay ----------------------------------- *)

let log_file_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"A recorded schedule log (.sched.jsonl, from run --record, \
              fuzz --record or minimize --out).")

(* Rebuild the program from the registry when an APP name is given; the
   log's recorded variant/oracle pick the instance, and the replay layer
   verifies the rebuilt program against the recorded MD5. *)
let program_for_log (log : Replay.Log.t) = function
  | None -> Ok None
  | Some name -> (
      match find_spec name with
      | Error e -> Error e
      | Ok spec ->
          let variant =
            match log.Replay.Log.ident.Replay.Log.id_variant with
            | "clean" -> Spec.Clean
            | _ -> Spec.Buggy
          in
          let inst =
            spec.Spec.make ~variant
              ~oracle:log.Replay.Log.ident.Replay.Log.id_oracle
          in
          Ok (Some inst.Spec.program))

let pp_divergence (d : Replay.Driver.divergence) =
  Printf.eprintf
    "diverged at decision %d (step %d): %s\n  recorded: %s\n  eligible: [%s]\n"
    d.Replay.Driver.dv_decision d.Replay.Driver.dv_step
    d.Replay.Driver.dv_reason
    (match d.Replay.Driver.dv_expected with
    | Some tid -> "tid " ^ string_of_int tid
    | None -> "end of log")
    (String.concat "; " (List.map string_of_int d.Replay.Driver.dv_actual))

let parse_range s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad range %S (expected A:B)" s)
  | Some i -> (
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a <= b -> Ok (a, b)
      | _ -> Error (Printf.sprintf "bad range %S (expected A:B)" s))

let show_state t ~json step =
  match Replay.Inspect.state_at t step with
  | Error e ->
      Printf.printf "step %d: %s\n" step e;
      false
  | Ok s ->
      if json then print_endline (Obs.Json.to_string s)
      else print_string (Replay.Inspect.render s);
      true

let interactive_loop t ~json =
  let final = Replay.Inspect.final_step t in
  let cur = ref 0 in
  print_endline
    "time-travel inspector — commands: N (go to step N), n(ext), p(rev), \
     end, q(uit)";
  ignore (show_state t ~json !cur);
  try
    while true do
      Printf.printf "step %d/%d> %!" !cur final;
      (match String.trim (input_line stdin) with
      | "q" | "quit" | "exit" -> raise Exit
      | "" | "n" | "next" -> cur := min final (!cur + 1)
      | "p" | "prev" -> cur := max 0 (!cur - 1)
      | "end" -> cur := final
      | s -> (
          match int_of_string_opt s with
          | Some n when n >= 0 && n <= final -> cur := n
          | _ ->
              Printf.printf
                "commands: N (0..%d), n(ext), p(rev), end, q(uit)\n" final));
      ignore (show_state t ~json !cur)
    done;
    0
  with Exit | End_of_file -> 0

let replay_cmd =
  let app_opt_arg =
    let doc =
      "Rebuild the program from the registry (verified against the log's \
       recorded MD5) instead of parsing the log's embedded text."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"N"
          ~doc:"Print the machine state before virtual-time step N.")
  in
  let range_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "range" ] ~docv:"A:B"
          ~doc:"Print the machine state at every step from A to B.")
  in
  let interactive_arg =
    Arg.(
      value & flag
      & info [ "interactive"; "i" ]
          ~doc:"Step through the run interactively (reads commands from \
                stdin).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print inspected states as JSON instead of rendered text.")
  in
  let run logfile app engine at range interactive json =
    match Replay.Log.load logfile with
    | Error e ->
        Printf.eprintf "%s: %s\n" logfile e;
        1
    | Ok log -> (
        match program_for_log log app with
        | Error e -> prerr_endline e; 1
        | Ok program -> (
            let inspecting =
              at <> None || range <> None || interactive
            in
            (* validate the replay first, so divergence is reported the
               same way whether or not we go on to inspect *)
            match Conair.replay ~engine ?program log with
            | Error (Replay.Driver.Diverged d) -> pp_divergence d; 4
            | Error e ->
                prerr_endline (Replay.Driver.error_to_string e);
                1
            | Ok b -> (
                match Replay.Driver.check log b with
                | Error e ->
                    Printf.eprintf "replay mismatch: %s\n" e;
                    4
                | Ok () ->
                    if not inspecting then begin
                      Format.printf "outcome:  %a@." Outcome.pp
                        b.Replay.Driver.rb_outcome;
                      List.iter
                        (fun o -> Format.printf "output:   %s@." o)
                        b.Replay.Driver.rb_outputs;
                      Format.printf
                        "faithful replay: %d decisions, %d steps, %d \
                         rollbacks (%s engine)@."
                        (Array.length log.Replay.Log.decisions)
                        b.Replay.Driver.rb_steps
                        b.Replay.Driver.rb_stats.Stats.rollbacks
                        (Replay.Driver.engine_name engine);
                      0
                    end
                    else
                      (* the inspector replays on the fast engine; the
                         validation above already proved fidelity *)
                      match Replay.Inspect.create ?program log with
                      | Error e -> prerr_endline e; 1
                      | Ok t ->
                          if interactive then interactive_loop t ~json
                          else
                            let steps =
                              match (at, range) with
                              | Some n, None -> Ok [ n ]
                              | None, Some r -> (
                                  match parse_range r with
                                  | Error e -> Error e
                                  | Ok (a, b) ->
                                      Ok (List.init (b - a + 1) (fun i -> a + i)))
                              | Some n, Some _ ->
                                  prerr_endline
                                    "--at and --range are mutually \
                                     exclusive; using --at";
                                  Ok [ n ]
                              | None, None -> Ok []
                            in
                            (match steps with
                            | Error e -> prerr_endline e; 1
                            | Ok steps ->
                                if
                                  List.for_all
                                    (fun n -> show_state t ~json n)
                                    steps
                                then 0
                                else 1))))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded schedule log bit-for-bit, with time-travel \
          inspection of any step (--at, --range, --interactive). Exits 4 \
          when the execution diverges from the recording, 0 on a faithful \
          replay — even of a failing run.")
    Term.(
      const run $ log_file_arg $ app_opt_arg $ engine_arg $ at_arg
      $ range_arg $ interactive_arg $ json_arg)

let minimize_cmd =
  let app_opt_arg =
    let doc =
      "Rebuild the program from the registry (verified against the log's \
       recorded MD5) instead of parsing the log's embedded text."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the minimized schedule as a replayable log to $(docv).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the interleaving explanation (switch-by-switch, with \
                detector findings) to $(docv) as JSON.")
  in
  let max_tests_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-tests" ]
          ~doc:"Budget of candidate executions for the ddmin search.")
  in
  let no_detect_arg =
    Arg.(
      value & flag
      & info [ "no-detect" ]
          ~doc:"Skip the race/deadlock detector pass over the minimized \
                schedule.")
  in
  let run logfile app out json max_tests no_detect =
    match Replay.Log.load logfile with
    | Error e ->
        Printf.eprintf "%s: %s\n" logfile e;
        1
    | Ok log -> (
        match program_for_log log app with
        | Error e -> prerr_endline e; 1
        | Ok program -> (
            match
              Conair.minimize ~max_tests ~detect:(not no_detect) ?program log
            with
            | Error e -> prerr_endline e; 1
            | Ok m ->
                print_string (Replay.Minimize.render m);
                (match out with
                | Some file ->
                    Replay.Log.save m.Replay.Minimize.mn_log file;
                    Printf.printf "minimized log: %s\n" file
                | None -> ());
                (match json with
                | Some file ->
                    write_file file
                      (Obs.Json.to_string_pretty
                         (Replay.Minimize.to_json m));
                    Printf.printf "explanation: %s\n" file
                | None -> ());
                0))
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:
         "Shrink a failing recorded schedule to a locally minimal set of \
          preemptive context switches that still reproduces the failure \
          (delta debugging over preemption points), and explain each \
          surviving switch.")
    Term.(
      const run $ log_file_arg $ app_opt_arg $ out_arg $ json_arg
      $ max_tests_arg $ no_detect_arg)

(* --- flight diagnostic bundles ------------------------------------- *)

let bundle_pos_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:
          "A flight diagnostic bundle (.bundle.json, from run --flight, \
           conair_fuzz findings or conair_serve captures).")

let bundle_show_cmd =
  let run file =
    match Obs.Flight.load file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok b ->
        let open Obs.Flight in
        Printf.printf "app:      %s (variant %s, oracle %b, mode %s)\n"
          b.fb_app b.fb_variant b.fb_oracle b.fb_mode;
        Printf.printf "engine:   %s\n" b.fb_engine;
        Printf.printf "reason:   %s\n" b.fb_reason;
        Printf.printf "program:  md5 %s%s\n" b.fb_program_md5
          (match b.fb_program_text with
          | Some _ -> ""
          | None -> " (text not embedded)");
        Format.printf "outcome:  %a@." Outcome.pp b.fb_outcome;
        Printf.printf "trailer:  %d steps, %d instrs, %d rollbacks\n"
          b.fb_steps b.fb_instrs b.fb_rollbacks;
        Printf.printf
          "tail:     decisions %d..%d of %d (%d retained, %d preemptions)\n"
          b.fb_tail_first (b.fb_tail_total - 1) b.fb_tail_total
          (Array.length b.fb_tail)
          (Array.length b.fb_tail_preemptions);
        List.iter
          (fun (tid, status, locks) ->
            Printf.printf "thread %d: %s%s\n" tid status
              (match locks with
              | [] -> ""
              | ls -> " holding [" ^ String.concat "; " ls ^ "]"))
          b.fb_threads;
        (match b.fb_episodes with
        | [] -> ()
        | eps ->
            Printf.printf "episodes:\n";
            List.iter
              (fun ep ->
                Printf.printf
                  "  site %d tid %d: steps %d..%d (%d retries)\n" ep.be_site
                  ep.be_tid ep.be_start ep.be_end ep.be_retries)
              eps);
        (match b.fb_events with
        | [] -> ()
        | evs ->
            Printf.printf "events (%d retained):\n" (List.length evs);
            List.iter
              (fun e ->
                Printf.printf "  step %-8d tid %-3d %-10s%s%s\n" e.bv_step
                  e.bv_tid e.bv_kind
                  (if e.bv_detail = "" then "" else " " ^ e.bv_detail)
                  (if e.bv_arg < 0 then ""
                   else Printf.sprintf " (arg %d)" e.bv_arg))
              evs);
        0
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a human-readable summary of a diagnostic bundle.")
    Term.(const run $ bundle_pos_arg)

let bundle_replay_cmd =
  let run file =
    match Obs.Flight.load file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok b ->
        (* regenerate on every engine; the recover step itself verifies
           the re-run against the recorded tail, then a strict replay of
           the regenerated log closes the loop *)
        let verify engine =
          match Replay.Bundle.recover_log ~engine b with
          | Error e ->
              Printf.eprintf "%s engine: %s\n" (Engine.name engine) e;
              Error 4
          | Ok log -> (
              match Conair.replay ~engine log with
              | Error (Replay.Driver.Diverged d) ->
                  Printf.eprintf "%s engine: " (Engine.name engine);
                  pp_divergence d;
                  Error 4
              | Error e ->
                  prerr_endline (Replay.Driver.error_to_string e);
                  Error 1
              | Ok rb -> (
                  match Replay.Driver.check log rb with
                  | Error e ->
                      Printf.eprintf "%s engine: replay mismatch: %s\n"
                        (Engine.name engine) e;
                      Error 4
                  | Ok () -> Ok log))
        in
        let rec go logs = function
          | [] -> Ok (List.rev logs)
          | e :: rest -> (
              match verify e with
              | Error code -> Error code
              | Ok log -> go (log :: logs) rest)
        in
        (match go [] Engine.all with
        | Error code -> code
        | Ok logs ->
            (* the regenerated decision streams must agree bit-for-bit
               across engines — the cross-engine identity the bundle
               format promises *)
            let reference = List.hd logs in
            let agree =
              List.for_all
                (fun (l : Replay.Log.t) ->
                  l.Replay.Log.decisions
                  = reference.Replay.Log.decisions
                  && l.Replay.Log.preemptions
                     = reference.Replay.Log.preemptions)
                logs
            in
            if not agree then begin
              prerr_endline
                "engines regenerated different decision streams";
              4
            end
            else begin
              Printf.printf
                "faithful on all engines: %d decisions regenerated (tail \
                 %d..%d verified), %d preemptions\n"
                (Array.length reference.Replay.Log.decisions)
                b.Obs.Flight.fb_tail_first
                (b.Obs.Flight.fb_tail_total - 1)
                (Array.length reference.Replay.Log.preemptions);
              0
            end)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Regenerate a bundle's full schedule by deterministic re-run, \
          verify the re-run against the recorded tail and strict-replay \
          the regenerated log — on all three engines. Exits 4 on any \
          divergence.")
    Term.(const run $ bundle_pos_arg)

let bundle_minimize_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the minimized schedule as a replayable log to $(docv).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the interleaving explanation to $(docv) as JSON.")
  in
  let max_tests_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-tests" ]
          ~doc:"Budget of candidate executions for the ddmin search.")
  in
  let run file out json max_tests =
    match Obs.Flight.load file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok b -> (
        match Replay.Bundle.recover_log b with
        | Error e -> prerr_endline e; 1
        | Ok log -> (
            match Conair.minimize ~max_tests log with
            | Error e -> prerr_endline e; 1
            | Ok m ->
                print_string (Replay.Minimize.render m);
                (match out with
                | Some file ->
                    Replay.Log.save m.Replay.Minimize.mn_log file;
                    Printf.printf "minimized log: %s\n" file
                | None -> ());
                (match json with
                | Some file ->
                    write_file file
                      (Obs.Json.to_string_pretty (Replay.Minimize.to_json m));
                    Printf.printf "explanation: %s\n" file
                | None -> ());
                0))
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:
         "Regenerate a bundle's full schedule by deterministic re-run, \
          then shrink it to a locally minimal set of preemptive context \
          switches that still reproduces the failure — the same search \
          the minimize subcommand runs on a full recording.")
    Term.(const run $ bundle_pos_arg $ out_arg $ json_arg $ max_tests_arg)

let bundle_cmd =
  Cmd.group
    (Cmd.info "bundle"
       ~doc:
         "Inspect, replay and minimize flight-recorder diagnostic bundles \
          (.bundle.json).")
    [ bundle_show_cmd; bundle_replay_cmd; bundle_minimize_cmd ]

let aggregate_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"A JSONL run log (e.g. conair_fuzz --jsonl output).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the aggregate as JSON to $(docv).")
  in
  let run file json =
    let lines =
      In_channel.with_open_text file In_channel.input_lines
    in
    match Obs.Aggregate.of_lines lines with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok agg ->
        List.iter print_endline (Obs.Aggregate.render agg);
        (match json with
        | Some out ->
            write_file out
              (Obs.Json.to_string_pretty (Obs.Aggregate.to_json agg))
        | None -> ());
        0
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:
         "Fold a JSONL stream of per-run records into percentile summaries \
          of recovery cost (p50/p95/max steps and retries, per-site waste).")
    Term.(const run $ file_arg $ json_arg)

(* --- automated fix synthesis --------------------------------------- *)

let fix_cmd =
  let module Fix = Conair.Fix in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the ranked fix report to $(docv) as JSON.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write each surviving candidate's patched Mir program to \
             $(docv)/CANDIDATE.mir.")
  in
  let max_candidates_arg =
    Arg.(
      value & opt int 8
      & info [ "max-candidates" ] ~docv:"N"
          ~doc:"Cap on synthesized candidate patches.")
  in
  let sweep_seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "sweep-seeds" ] ~docv:"N"
          ~doc:
            "Random seeds per validation sweep (the regression and \
             deadlock-freedom gates each candidate must pass).")
  in
  let search_seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "search-seeds" ] ~docv:"N"
          ~doc:"Random seeds tried when hunting a failing schedule.")
  in
  let run app variant oracle engine json out max_candidates sweep_seeds
      search_seeds fuel seed max_retries =
    match find_spec app with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
        let inst = instance spec variant oracle in
        let base = machine_config fuel seed max_retries in
        let options =
          {
            Fix.Pipeline.default_options with
            Fix.Pipeline.engine;
            fuel = base.Machine.fuel;
            max_retries = base.Machine.max_retries;
            max_candidates;
            sweep_seeds;
            search_seeds;
          }
        in
        let report =
          Fix.Pipeline.run ~options ~accept:inst.Spec.accept ~app
            ~variant:(variant_name variant) inst.Spec.program
        in
        print_string (Fix.Pipeline.render report);
        (match json with
        | Some file ->
            write_file file
              (Obs.Json.to_string_pretty (Fix.Pipeline.to_json report))
        | None -> ());
        (match out with
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            List.iter
              (fun (c : Fix.Pipeline.candidate) ->
                if c.Fix.Pipeline.c_survived then begin
                  let id = c.Fix.Pipeline.c_patch.Fix.Patch.p_id in
                  let name =
                    String.map
                      (fun ch ->
                        match ch with
                        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' ->
                            ch
                        | _ -> '_')
                      id
                  in
                  let file = Filename.concat dir (name ^ ".mir") in
                  write_file file
                    (Conair.Ir.Emit.program
                       c.Fix.Pipeline.c_patch.Fix.Patch.p_program);
                  Printf.printf "patched program: %s\n" file
                end)
              report.Fix.Pipeline.fx_candidates
        | None -> ());
        if report.Fix.Pipeline.fx_survivors > 0 then 0 else 2
  in
  Cmd.v
    (Cmd.info "fix"
       ~doc:
         "Close the detect-explain-repair loop: detect races/deadlocks, \
          record and minimize a failing schedule, synthesize candidate \
          patches (lock insertion, order enforcement, lock fusion), \
          validate each against three gates (directed replay of the \
          failing schedule, a multi-seed regression sweep, \
          deadlock-freedom) and rank survivors by measured overhead. \
          Exits 0 when at least one candidate survives all gates, 2 \
          otherwise.")
    Term.(
      const run $ app_arg $ variant_arg $ oracle_arg $ engine_arg $ json_arg
      $ out_arg $ max_candidates_arg $ sweep_seeds_arg $ search_seeds_arg
      $ fuel_arg $ seed_arg $ max_retries_arg)

let main_cmd =
  let doc =
    "ConAir: featherweight concurrency-bug recovery via single-threaded \
     idempotent execution (ASPLOS 2013), on the Mir IR substrate."
  in
  Cmd.group (Cmd.info "conair" ~version:"1.0.0" ~doc)
    [ list_cmd; show_cmd; analyze_cmd; harden_cmd; run_cmd; report_cmd;
      restart_cmd; fullckpt_cmd; file_cmd; dot_cmd; profile_cmd;
      overhead_cmd; races_cmd; replay_cmd; minimize_cmd; bundle_cmd;
      aggregate_cmd; fix_cmd ]

let () = exit (Cmd.eval' main_cmd)
