(* json_check: validate telemetry files emitted by conair_cli.

   For each FILE argument:
   - *.jsonl     — every non-empty line must parse as a JSON object;
   - *.collapsed — collapsed-stack flamegraph lines: every non-empty
                   line is "frame;frame;... N" with non-empty frames
                   and a positive count, and there is at least one;
   - *.json      — the whole file must parse; if the value carries a
                   "traceEvents" member it must be a list (Chrome trace
                   format sanity, as loaded by Perfetto).

   Exit 0 when every file validates, 1 otherwise. Used by the @smoke and
   @perf aliases to assert the emitted telemetry is well-formed. *)

module Json = Conair.Obs.Json

let errors = ref 0

let fail file msg =
  incr errors;
  Printf.eprintf "json_check: %s: %s\n" file msg

let read_file file =
  In_channel.with_open_text file In_channel.input_all

let check_jsonl file =
  let lines = String.split_on_char '\n' (read_file file) in
  let n = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        incr n;
        match Json.of_string line with
        | Ok (Json.Obj _) -> ()
        | Ok _ -> fail file (Printf.sprintf "line %d: not a JSON object" (i + 1))
        | Error e -> fail file (Printf.sprintf "line %d: %s" (i + 1) e)
      end)
    lines;
  if !n = 0 then fail file "no JSON lines"
  else Printf.printf "json_check: %s: %d JSONL records ok\n" file !n

let check_collapsed file =
  let lines = String.split_on_char '\n' (read_file file) in
  let n = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        incr n;
        let bad msg = fail file (Printf.sprintf "line %d: %s" (i + 1) msg) in
        match String.rindex_opt line ' ' with
        | None -> bad "no sample count"
        | Some sp -> (
            let frames = String.sub line 0 sp in
            let count =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            match int_of_string_opt count with
            | None -> bad (Printf.sprintf "count %S is not an integer" count)
            | Some c when c <= 0 ->
                bad (Printf.sprintf "count %d is not positive" c)
            | Some _ ->
                if
                  List.exists
                    (fun f -> f = "")
                    (String.split_on_char ';' frames)
                then bad "empty stack frame")
      end)
    lines;
  if !n = 0 then fail file "no collapsed-stack lines"
  else Printf.printf "json_check: %s: %d collapsed-stack lines ok\n" file !n

let check_json file =
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Printf.printf "json_check: %s: chrome trace with %d events ok\n" file
            (List.length evs)
      | Some _ -> fail file "\"traceEvents\" is not a list"
      | None -> Printf.printf "json_check: %s: json ok\n" file)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: json_check FILE.jsonl FILE.json ...";
    exit 2
  end;
  List.iter
    (fun file ->
      if not (Sys.file_exists file) then fail file "no such file"
      else if Filename.check_suffix file ".jsonl" then check_jsonl file
      else if Filename.check_suffix file ".collapsed" then
        check_collapsed file
      else check_json file)
    files;
  exit (if !errors = 0 then 0 else 1)
