(* json_check: validate telemetry files emitted by conair_cli.

   For each FILE argument:
   - *.sched.jsonl — a schedule log: a sched_meta header first, then
                   sched_chunk lines whose "d" members are integer
                   lists, then exactly one sched_end trailer whose
                   "decisions" count matches the chunk total;
   - *.jsonl     — every non-empty line must parse as a JSON object;
   - *.collapsed — collapsed-stack flamegraph lines: every non-empty
                   line is "frame;frame;... N" with non-empty frames
                   and a positive count, and there is at least one;
   - BENCH_interp.json — the interpreter bench document: "micro" and
                   "sweep" sections with per-engine timing columns and
                   cross-engine ratios, all positive and mutually
                   consistent; additionally two performance gates — the
                   block engine's micro steps/s must be at least 3x the
                   committed fast-engine baseline, and the recorder-on
                   (flight) micro must be within 5% of recorder-off;
   - BENCH_fuzz.json — the campaign bench document written by
                   `conair_fuzz --bench`: per-engine runs/sec, signature
                   digests and growth curves, with the differential gate
                   that every engine's digest is identical;
   - *.prom      — Prometheus text exposition: every non-comment line
                   is "name{labels} value" with a parsable metric name
                   and a finite numeric value, and at least one sample
                   and one # HELP/# TYPE comment are present;
   - status.json — the serve daemon's status document: type
                   "serve_status", a non-negative uptime, pool stats
                   and a well-formed per-tenant table;
   - *_fix.json  — the fix synthesizer's report: type "fix_report",
                   detection summary, candidate table with the three
                   validation gates, and a summary whose survivor
                   count matches the table (every survivor passed all
                   gates and carries a cost);
   - *.bundle.json — a flight-recorder diagnostic bundle: type
                   "flight_bundle" version 1, run identity + config,
                   an embedded program hashing to program_md5, a
                   decision tail of sched_chunk records summing to
                   total - first with preemption ordinals inside the
                   window, trailer, per-thread locksets, events and
                   episode spans;
   - *.json      — the whole file must parse; if the value carries a
                   "traceEvents" member it must be a list (Chrome trace
                   format sanity, as loaded by Perfetto).

   The first form `json_check --same A B` instead asserts the two
   files are byte-identical — the @serve alias's CLI-equivalence gate.

   Exit 0 when every file validates, 1 otherwise. Used by the @smoke,
   @perf, @replay, @fuzz and @serve aliases to assert the emitted
   telemetry is well-formed. *)

module Json = Conair.Obs.Json

let errors = ref 0

let fail file msg =
  incr errors;
  Printf.eprintf "json_check: %s: %s\n" file msg

let read_file file =
  In_channel.with_open_text file In_channel.input_all

let check_jsonl file =
  let lines = String.split_on_char '\n' (read_file file) in
  let n = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        incr n;
        match Json.of_string line with
        | Ok (Json.Obj _) -> ()
        | Ok _ -> fail file (Printf.sprintf "line %d: not a JSON object" (i + 1))
        | Error e -> fail file (Printf.sprintf "line %d: %s" (i + 1) e)
      end)
    lines;
  if !n = 0 then fail file "no JSON lines"
  else Printf.printf "json_check: %s: %d JSONL records ok\n" file !n

let check_collapsed file =
  let lines = String.split_on_char '\n' (read_file file) in
  let n = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        incr n;
        let bad msg = fail file (Printf.sprintf "line %d: %s" (i + 1) msg) in
        match String.rindex_opt line ' ' with
        | None -> bad "no sample count"
        | Some sp -> (
            let frames = String.sub line 0 sp in
            let count =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            match int_of_string_opt count with
            | None -> bad (Printf.sprintf "count %S is not an integer" count)
            | Some c when c <= 0 ->
                bad (Printf.sprintf "count %d is not positive" c)
            | Some _ ->
                if
                  List.exists
                    (fun f -> f = "")
                    (String.split_on_char ';' frames)
                then bad "empty stack frame")
      end)
    lines;
  if !n = 0 then fail file "no collapsed-stack lines"
  else Printf.printf "json_check: %s: %d collapsed-stack lines ok\n" file !n

let check_sched file =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file file))
  in
  let before = !errors in
  let bad i msg = fail file (Printf.sprintf "record %d: %s" (i + 1) msg) in
  let decisions = ref 0 and ends = ref 0 and trailer_count = ref None in
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Error e -> bad i e
      | Ok j -> (
          let ty =
            match Json.member "type" j with
            | Some (Json.String s) -> s
            | _ -> ""
          in
          match ty with
          | "sched_meta" ->
              if i <> 0 then bad i "sched_meta is not the first record"
          | "sched_chunk" -> (
              if i = 0 then bad i "schedule log does not start with sched_meta";
              match Json.member "d" j with
              | Some (Json.List ds)
                when List.for_all
                       (function Json.Int _ -> true | _ -> false)
                       ds ->
                  decisions := !decisions + List.length ds
              | _ -> bad i "sched_chunk without an integer \"d\" list")
          | "sched_end" -> (
              incr ends;
              match Json.member "decisions" j with
              | Some (Json.Int n) -> trailer_count := Some n
              | _ -> bad i "sched_end without a \"decisions\" count")
          | other ->
              bad i (Printf.sprintf "unexpected record type %S" other)))
    lines;
  if lines = [] then fail file "empty schedule log"
  else if !ends <> 1 then
    fail file (Printf.sprintf "%d sched_end trailers (expected 1)" !ends)
  else begin
    (match !trailer_count with
    | Some n when n <> !decisions ->
        fail file
          (Printf.sprintf "trailer says %d decisions, chunks carry %d" n
             !decisions)
    | _ -> ());
    if !errors = before then
      Printf.printf "json_check: %s: schedule log with %d decisions ok\n"
        file !decisions
  end

(* The micro fast-engine throughput recorded in BENCH_interp.json when
   the block-compiled engine landed. The @perf gate measures the block
   engine against this committed figure rather than the same run's fast
   column so a uniformly slow or fast CI machine cannot mask a real
   block-engine regression behind a stable-looking ratio. *)
let fast_micro_baseline_steps_per_sec = 23_548_530.

let check_bench_interp file =
  let before = !errors in
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j ->
      let section name = Json.member name j in
      let number sec_name sec field =
        match Json.member field sec with
        | Some (Json.Float f) when f > 0. -> Some f
        | Some (Json.Int n) when n > 0 -> Some (float n)
        | Some _ ->
            fail file
              (Printf.sprintf "%s.%s is not a positive number" sec_name field);
            None
        | None ->
            fail file (Printf.sprintf "%s.%s is missing" sec_name field);
            None
      in
      let check_section name fields =
        match section name with
        | Some (Json.Obj _ as sec) ->
            List.iter (fun f -> ignore (number name sec f)) fields;
            Some sec
        | Some _ ->
            fail file (Printf.sprintf "%S is not an object" name);
            None
        | None ->
            fail file (Printf.sprintf "%S section is missing" name);
            None
      in
      let per_engine =
        [
          "ref_seconds";
          "fast_seconds";
          "block_seconds";
          "speedup";
          "fast_vs_ref";
          "block_vs_ref";
          "block_vs_fast";
        ]
      in
      let micro =
        check_section "micro"
          ([
             "steps";
             "ref_steps_per_sec";
             "fast_steps_per_sec";
             "block_steps_per_sec";
             "block_flight_seconds";
             "block_flight_steps_per_sec";
             "flight_vs_block";
           ]
          @ per_engine)
      in
      ignore (check_section "sweep" ("runs" :: per_engine));
      (match micro with
      | Some sec -> (
          (match
             ( number "micro" sec "fast_steps_per_sec",
               number "micro" sec "block_steps_per_sec",
               number "micro" sec "block_vs_fast" )
           with
          | Some fast, Some block, Some ratio
            when abs_float ((block /. fast /. ratio) -. 1.) > 1e-6 ->
              fail file
                (Printf.sprintf
                   "micro.block_vs_fast %.4f disagrees with \
                    block/fast steps/s %.4f"
                   ratio (block /. fast))
          | _ -> ());
          (match
             ( number "micro" sec "block_steps_per_sec",
               number "micro" sec "block_flight_steps_per_sec",
               number "micro" sec "flight_vs_block" )
           with
          | Some block, Some flight, Some ratio ->
              if abs_float ((flight /. block /. ratio) -. 1.) > 1e-6 then
                fail file
                  (Printf.sprintf
                     "micro.flight_vs_block %.4f disagrees with \
                      flight/block steps/s %.4f"
                     ratio (flight /. block));
              (* the tentpole's overhead gate: the always-on flight
                 recorder must cost the block engine at most 5% *)
              if flight < 0.95 *. block then
                fail file
                  (Printf.sprintf
                     "flight recorder overhead regressed: recorder-on micro \
                      %.0f steps/s is below 95%% of recorder-off (%.0f)"
                     flight (0.95 *. block))
          | _ -> ());
          match number "micro" sec "block_steps_per_sec" with
          | Some block when block < 3. *. fast_micro_baseline_steps_per_sec ->
              fail file
                (Printf.sprintf
                   "block engine regressed: micro %.0f steps/s is below 3x \
                    the committed fast-engine baseline (%.0f)"
                   block
                   (3. *. fast_micro_baseline_steps_per_sec))
          | _ -> ())
      | None -> ());
      if !errors = before then
        Printf.printf
          "json_check: %s: interp bench ok (block micro >= 3x committed fast \
           baseline; flight recorder within 5%% of recorder-off)\n"
          file

(* BENCH_fuzz.json: the campaign bench document written by
   `conair_fuzz --bench` — one sharded campaign per engine. Shape checks
   plus the differential gate: every engine's signature digest must be
   identical and "signature_agreement" must say so. *)
let check_bench_fuzz file =
  let before = !errors in
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j ->
      (match Json.member "type" j with
      | Some (Json.String "bench_fuzz") -> ()
      | _ -> fail file "\"type\" is not \"bench_fuzz\"");
      let pos_int name parent ctx =
        match Json.member name parent with
        | Some (Json.Int n) when n > 0 -> Some n
        | _ ->
            fail file (Printf.sprintf "%s%s is not a positive integer" ctx name);
            None
      in
      let nonneg_int name parent ctx =
        match Json.member name parent with
        | Some (Json.Int n) when n >= 0 -> Some n
        | _ ->
            fail file
              (Printf.sprintf "%s%s is not a non-negative integer" ctx name);
            None
      in
      ignore (pos_int "iterations" j "");
      ignore (pos_int "jobs" j "");
      let digests = ref [] in
      (match Json.member "engines" j with
      | Some (Json.Obj engines) ->
          List.iter
            (fun expected ->
              if not (List.mem_assoc expected engines) then
                fail file (Printf.sprintf "engines.%s is missing" expected))
            [ "ref"; "fast"; "block" ];
          List.iter
            (fun (name, e) ->
              let ctx = Printf.sprintf "engines.%s." name in
              ignore (pos_int "runs" e ctx);
              (match Json.member "runs_per_sec" e with
              | Some (Json.Float f) when f > 0. -> ()
              | Some (Json.Int n) when n > 0 -> ()
              | _ ->
                  fail file (ctx ^ "runs_per_sec is not a positive number"));
              let uniq = nonneg_int "unique_signatures" e ctx in
              let found = nonneg_int "findings" e ctx in
              (match (uniq, found) with
              | Some u, Some f when f < u ->
                  fail file
                    (Printf.sprintf "%sfindings %d < unique_signatures %d" ctx
                       f u)
              | _ -> ());
              (match Json.member "signatures_md5" e with
              | Some (Json.String d)
                when String.length d = 32
                     && String.for_all
                          (function
                            | '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                          d ->
                  digests := d :: !digests
              | _ -> fail file (ctx ^ "signatures_md5 is not an MD5 digest"));
              match Json.member "curve" e with
              | Some (Json.List pts) ->
                  let last = ref (-1, -1) in
                  List.iter
                    (fun pt ->
                      match pt with
                      | Json.List [ Json.Int x; Json.Int y ] ->
                          let px, py = !last in
                          if x < px || y < py then
                            fail file (ctx ^ "curve is not nondecreasing");
                          last := (x, y)
                      | _ -> fail file (ctx ^ "curve point is not [runs, uniques]"))
                    pts;
                  (match (uniq, !last) with
                  | Some u, (_, y) when y <> u ->
                      fail file
                        (Printf.sprintf
                           "%scurve ends at %d uniques, unique_signatures \
                            says %d"
                           ctx y u)
                  | _ -> ())
              | _ -> fail file (ctx ^ "curve is not a list"))
            engines
      | _ -> fail file "\"engines\" is not an object");
      (match List.sort_uniq compare !digests with
      | [] | [ _ ] -> ()
      | ds ->
          fail file
            (Printf.sprintf "engines disagree on signatures (%d digests)"
               (List.length ds)));
      (match Json.member "signature_agreement" j with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) ->
          fail file "signature_agreement is false: engines diverged"
      | _ -> fail file "\"signature_agreement\" is not a boolean");
      if !errors = before then
        Printf.printf
          "json_check: %s: fuzz bench ok (signatures agree across engines)\n"
          file

let check_json file =
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Printf.printf "json_check: %s: chrome trace with %d events ok\n" file
            (List.length evs)
      | Some _ -> fail file "\"traceEvents\" is not a list"
      | None -> Printf.printf "json_check: %s: json ok\n" file)

(* Prometheus text exposition format, as written by
   [Obs.Metrics.to_prometheus]: "# HELP"/"# TYPE" comments plus one
   sample per line — a metric name (optionally with {label="..."}
   pairs), whitespace, a finite number. *)
let check_prom file =
  let before = !errors in
  let lines = String.split_on_char '\n' (read_file file) in
  let samples = ref 0 and comments = ref 0 in
  let name_ok s =
    s <> ""
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         s
  in
  List.iteri
    (fun i line ->
      let bad msg = fail file (Printf.sprintf "line %d: %s" (i + 1) msg) in
      let line = String.trim line in
      if line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        incr comments;
        if
          not
            (String.starts_with ~prefix:"# HELP " line
            || String.starts_with ~prefix:"# TYPE " line)
        then bad "comment is neither # HELP nor # TYPE"
      end
      else begin
        incr samples;
        match String.rindex_opt line ' ' with
        | None -> bad "sample line has no value"
        | Some sp -> (
            let name_part = String.sub line 0 sp in
            let value =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            (match float_of_string_opt value with
            | Some v when Float.is_finite v -> ()
            | Some _ -> bad (Printf.sprintf "value %S is not finite" value)
            | None -> bad (Printf.sprintf "value %S is not a number" value));
            let name =
              match String.index_opt name_part '{' with
              | None -> name_part
              | Some b ->
                  if not (String.ends_with ~suffix:"}" name_part) then
                    bad "unterminated label set";
                  String.sub name_part 0 b
            in
            if not (name_ok (String.trim name)) then
              bad (Printf.sprintf "bad metric name %S" name))
      end)
    lines;
  if !samples = 0 then fail file "no samples"
  else if !comments = 0 then fail file "no # HELP/# TYPE comments"
  else if !errors = before then
    Printf.printf "json_check: %s: %d prometheus samples ok\n" file !samples

(* The serve daemon's status document. *)
let check_serve_status file =
  let before = !errors in
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j ->
      (match Json.member "type" j with
      | Some (Json.String "serve_status") -> ()
      | _ -> fail file "\"type\" is not \"serve_status\"");
      (match Json.member "uptime_sec" j with
      | Some (Json.Float f) when f >= 0. -> ()
      | Some (Json.Int n) when n >= 0 -> ()
      | _ -> fail file "\"uptime_sec\" is not a non-negative number");
      (match Json.member "pool" j with
      | Some (Json.Obj _ as pool) ->
          List.iter
            (fun k ->
              match Json.member k pool with
              | Some (Json.Int n) when n >= 0 -> ()
              | _ ->
                  fail file
                    (Printf.sprintf "pool.%s is not a non-negative integer" k))
            [ "workers"; "pending"; "inflight" ]
      | _ -> fail file "\"pool\" is not an object");
      (match Json.member "tenants" j with
      | Some (Json.List ts) ->
          List.iter
            (fun t ->
              let ctx =
                match Json.member "tenant" t with
                | Some (Json.String s) -> s
                | _ ->
                    fail file "tenant row without a \"tenant\" name";
                    "?"
              in
              List.iter
                (fun k ->
                  match Json.member k t with
                  | Some (Json.Int n) when n >= 0 -> ()
                  | _ ->
                      fail file
                        (Printf.sprintf
                           "tenant %s: %s is not a non-negative integer" ctx k))
                [ "submitted"; "completed"; "failed"; "queued" ];
              match Json.member "aggregate" t with
              | Some (Json.Obj _) -> ()
              | _ -> fail file (Printf.sprintf "tenant %s: no aggregate" ctx))
            ts
      | _ -> fail file "\"tenants\" is not a list");
      if !errors = before then
        Printf.printf "json_check: %s: serve status ok\n" file

(* The fix synthesizer's report (conair_cli fix --json, or a serve fix
   job): type "fix_report", a detection summary, the candidate table —
   each candidate carrying the three gates — and a consistent summary.
   Semantic gates: a survivor must have passed every gate and carry a
   cost; survivors must not outnumber candidates. *)
let check_fix_report file =
  let before = !errors in
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j ->
      (match Json.member "type" j with
      | Some (Json.String "fix_report") -> ()
      | _ -> fail file "\"type\" is not \"fix_report\"");
      List.iter
        (fun k ->
          match Json.member k j with
          | Some (Json.String s) when s <> "" -> ()
          | _ -> fail file (Printf.sprintf "%S is not a non-empty string" k))
        [ "app"; "variant" ];
      (match Json.member "detection" j with
      | Some (Json.Obj _ as d) ->
          List.iter
            (fun k ->
              match Json.member k d with
              | Some (Json.Int n) when n >= 0 -> ()
              | _ ->
                  fail file
                    (Printf.sprintf
                       "detection.%s is not a non-negative integer" k))
            [ "races"; "lockset_warnings"; "deadlock_cycles" ]
      | _ -> fail file "\"detection\" is not an object");
      let survivors_seen = ref 0 in
      (match Json.member "candidates" j with
      | Some (Json.List cs) ->
          List.iteri
            (fun i c ->
              let ctx = Printf.sprintf "candidates[%d]." i in
              (match Json.member "id" c with
              | Some (Json.String s) when s <> "" -> ()
              | _ -> fail file (ctx ^ "id is not a non-empty string"));
              let survived =
                match Json.member "survived" c with
                | Some (Json.Bool b) -> b
                | _ ->
                    fail file (ctx ^ "survived is not a boolean");
                    false
              in
              if survived then incr survivors_seen;
              let gates_passed = ref true in
              (match Json.member "gates" c with
              | Some (Json.List gs) when List.length gs = 3 ->
                  List.iter
                    (fun g ->
                      match (Json.member "gate" g, Json.member "passed" g) with
                      | Some (Json.String _), Some (Json.Bool p) ->
                          if not p then gates_passed := false
                      | _ -> fail file (ctx ^ "malformed gate entry"))
                    gs
              | _ -> fail file (ctx ^ "gates is not a 3-entry list"));
              if survived && not !gates_passed then
                fail file (ctx ^ "survived but a gate failed");
              if survived then
                match Json.member "cost" c with
                | Some (Json.Obj _) -> ()
                | _ -> fail file (ctx ^ "survivor without a cost object"))
            cs
      | _ -> fail file "\"candidates\" is not a list");
      (match Json.member "summary" j with
      | Some (Json.Obj _ as s) -> (
          match (Json.member "candidates" s, Json.member "survivors" s) with
          | Some (Json.Int c), Some (Json.Int sv) ->
              if sv > c then
                fail file
                  (Printf.sprintf "summary says %d survivors of %d candidates"
                     sv c);
              if sv <> !survivors_seen then
                fail file
                  (Printf.sprintf
                     "summary says %d survivors, candidate table carries %d"
                     sv !survivors_seen)
          | _ -> fail file "summary without candidates/survivors counts")
      | _ -> fail file "\"summary\" is not an object");
      if !errors = before then
        Printf.printf "json_check: %s: fix report ok (%d survivors)\n" file
          !survivors_seen

(* Flight-recorder diagnostic bundles — *.bundle.json — as written by
   `conair_cli run --flight` / `bundle` and the serve daemon: run
   identity + config, an MD5-verified embedded program, the decision
   tail as sched_chunk records summing to total - first, preemption
   ordinals inside the tail window, the trailer, per-thread locksets,
   the event ring and episode spans. *)
let check_flight_bundle file =
  let before = !errors in
  match Json.of_string (read_file file) with
  | Error e -> fail file e
  | Ok j ->
      (match Json.member "type" j with
      | Some (Json.String "flight_bundle") -> ()
      | _ -> fail file "\"type\" is not \"flight_bundle\"");
      (match Json.member "version" j with
      | Some (Json.Int 1) -> ()
      | _ -> fail file "\"version\" is not 1");
      List.iter
        (fun k ->
          match Json.member k j with
          | Some (Json.String s) when s <> "" -> ()
          | _ -> fail file (Printf.sprintf "%S is not a non-empty string" k))
        [ "app"; "variant"; "mode"; "engine"; "reason" ];
      (match Json.member "oracle" j with
      | Some (Json.Bool _) -> ()
      | _ -> fail file "\"oracle\" is not a boolean");
      (match Json.member "config" j with
      | Some (Json.Obj _ as c) -> (
          (match Json.member "policy" c with
          | Some (Json.String _) -> ()
          | _ -> fail file "config.policy is not a string");
          match Json.member "fuel" c with
          | Some (Json.Int n) when n > 0 -> ()
          | _ -> fail file "config.fuel is not a positive integer")
      | _ -> fail file "\"config\" is not an object");
      let md5 =
        match Json.member "program_md5" j with
        | Some (Json.String d)
          when String.length d = 32
               && String.for_all
                    (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                    d ->
            Some d
        | _ ->
            fail file "\"program_md5\" is not an MD5 digest";
            None
      in
      (match (Json.member "program" j, md5) with
      | Some (Json.String src), Some d ->
          if Digest.to_hex (Digest.string src) <> d then
            fail file "embedded program does not hash to program_md5"
      | Some (Json.String _), None | None, _ -> ()
      | Some _, _ -> fail file "\"program\" is not a string");
      let tail_first = ref 0 and tail_total = ref 0 in
      (match Json.member "tail" j with
      | Some (Json.Obj _ as t) -> (
          (match (Json.member "first" t, Json.member "total" t) with
          | Some (Json.Int f), Some (Json.Int n) when 0 <= f && f <= n ->
              tail_first := f;
              tail_total := n
          | _ -> fail file "tail.first/tail.total are not 0 <= first <= total");
          (match Json.member "chunks" t with
          | Some (Json.List chunks) ->
              let retained = ref 0 in
              List.iteri
                (fun i c ->
                  (match Json.member "type" c with
                  | Some (Json.String "sched_chunk") -> ()
                  | _ ->
                      fail file
                        (Printf.sprintf "tail.chunks[%d] is not a sched_chunk"
                           i));
                  match Json.member "d" c with
                  | Some (Json.List ds)
                    when List.for_all
                           (function Json.Int _ -> true | _ -> false)
                           ds ->
                      retained := !retained + List.length ds
                  | _ ->
                      fail file
                        (Printf.sprintf
                           "tail.chunks[%d] without an integer \"d\" list" i))
                chunks;
              if !retained <> !tail_total - !tail_first then
                fail file
                  (Printf.sprintf
                     "tail chunks carry %d decisions, total - first says %d"
                     !retained
                     (!tail_total - !tail_first))
          | _ -> fail file "tail.chunks is not a list");
          match Json.member "preemptions" t with
          | Some (Json.List ps) ->
              List.iter
                (fun p ->
                  match p with
                  | Json.Int ord ->
                      if ord < !tail_first || ord >= !tail_total then
                        fail file
                          (Printf.sprintf
                             "preemption ordinal %d outside the tail window \
                              [%d, %d)"
                             ord !tail_first !tail_total)
                  | _ -> fail file "tail.preemptions entry is not an integer")
                ps
          | _ -> fail file "tail.preemptions is not a list")
      | _ -> fail file "\"tail\" is not an object");
      (match Json.member "trailer" j with
      | Some (Json.Obj _ as tr) -> (
          List.iter
            (fun k ->
              match Json.member k tr with
              | Some (Json.Int n) when n >= 0 -> ()
              | _ ->
                  fail file
                    (Printf.sprintf
                       "trailer.%s is not a non-negative integer" k))
            [ "steps"; "instrs"; "rollbacks" ];
          (match Json.member "outcome" tr with
          | Some (Json.Obj _ as o) -> (
              match Json.member "result" o with
              | Some (Json.String _) -> ()
              | _ -> fail file "trailer.outcome.result is not a string")
          | _ -> fail file "trailer.outcome is not an object");
          match Json.member "outputs" tr with
          | Some (Json.List os)
            when List.for_all
                   (function Json.String _ -> true | _ -> false)
                   os ->
              ()
          | _ -> fail file "trailer.outputs is not a string list")
      | _ -> fail file "\"trailer\" is not an object");
      (match Json.member "threads" j with
      | Some (Json.List ts) ->
          List.iteri
            (fun i t ->
              let ctx = Printf.sprintf "threads[%d]." i in
              (match Json.member "tid" t with
              | Some (Json.Int n) when n >= 0 -> ()
              | _ -> fail file (ctx ^ "tid is not a non-negative integer"));
              (match Json.member "status" t with
              | Some (Json.String s) when s <> "" -> ()
              | _ -> fail file (ctx ^ "status is not a non-empty string"));
              match Json.member "locks" t with
              | Some (Json.List ls)
                when List.for_all
                       (function Json.String _ -> true | _ -> false)
                       ls ->
                  ()
              | _ -> fail file (ctx ^ "locks is not a string list"))
            ts
      | _ -> fail file "\"threads\" is not a list");
      (match Json.member "events" j with
      | Some (Json.List evs) ->
          List.iteri
            (fun i e ->
              let ctx = Printf.sprintf "events[%d]." i in
              (match Json.member "ev" e with
              | Some (Json.String s) when s <> "" -> ()
              | _ -> fail file (ctx ^ "ev is not a non-empty string"));
              List.iter
                (fun k ->
                  match Json.member k e with
                  | Some (Json.Int _) -> ()
                  | _ -> fail file (ctx ^ k ^ " is not an integer"))
                [ "step"; "tid"; "arg" ])
            evs
      | _ -> fail file "\"events\" is not a list");
      (match Json.member "episodes" j with
      | Some (Json.List eps) ->
          List.iteri
            (fun i e ->
              let ctx = Printf.sprintf "episodes[%d]." i in
              let get k =
                match Json.member k e with
                | Some (Json.Int n) -> Some n
                | _ ->
                    fail file (ctx ^ k ^ " is not an integer");
                    None
              in
              ignore (get "site");
              ignore (get "tid");
              ignore (get "retries");
              match (get "start", get "end") with
              | Some s, Some e when e < s ->
                  fail file (ctx ^ "ends before it starts")
              | _ -> ())
            eps
      | _ -> fail file "\"episodes\" is not a list");
      if !errors = before then
        Printf.printf
          "json_check: %s: flight bundle ok (%d of %d decisions retained)\n"
          file
          (!tail_total - !tail_first)
          !tail_total

(* --same A B: byte equality, reporting the first differing line. *)
let check_same a b =
  match (Sys.file_exists a, Sys.file_exists b) with
  | false, _ -> fail a "no such file"
  | _, false -> fail b "no such file"
  | true, true ->
      let ca = read_file a and cb = read_file b in
      if ca = cb then
        Printf.printf "json_check: %s and %s are byte-identical (%d bytes)\n"
          a b (String.length ca)
      else begin
        let la = String.split_on_char '\n' ca
        and lb = String.split_on_char '\n' cb in
        let rec first_diff i = function
          | x :: xs, y :: ys ->
              if x <> y then Some (i, x, y) else first_diff (i + 1) (xs, ys)
          | [], y :: _ -> Some (i, "<eof>", y)
          | x :: _, [] -> Some (i, x, "<eof>")
          | [], [] -> None
        in
        match first_diff 1 (la, lb) with
        | Some (i, x, y) ->
            fail a
              (Printf.sprintf "differs from %s at line %d:\n  %s: %s\n  %s: %s"
                 b i a x b y)
        | None -> fail a (Printf.sprintf "differs from %s (lengths)" b)
      end

let check_file file =
  if not (Sys.file_exists file) then fail file "no such file"
  else if Filename.basename file = "BENCH_interp.json" then
    check_bench_interp file
  else if Filename.basename file = "BENCH_fuzz.json" then
    check_bench_fuzz file
  else if Filename.basename file = "status.json" then
    check_serve_status file
  else if Filename.check_suffix file "_fix.json" then check_fix_report file
  else if Filename.check_suffix file ".bundle.json" then
    check_flight_bundle file
  else if Filename.check_suffix file ".sched.jsonl" then check_sched file
  else if Filename.check_suffix file ".jsonl" then check_jsonl file
  else if Filename.check_suffix file ".collapsed" then check_collapsed file
  else if Filename.check_suffix file ".prom" then check_prom file
  else check_json file

let () =
  (match List.tl (Array.to_list Sys.argv) with
  | [] ->
      prerr_endline
        "usage: json_check FILE.jsonl FILE.json ... | json_check --same A B";
      exit 2
  | [ "--same"; a; b ] -> check_same a b
  | "--same" :: _ ->
      prerr_endline "usage: json_check --same A B";
      exit 2
  | files -> List.iter check_file files);
  exit (if !errors = 0 then 0 else 1)
