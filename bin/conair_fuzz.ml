(* conair_fuzz: randomized end-to-end validation of the whole pipeline,
   and the campaign orchestrator built on top of it.

   Single-process mode generates random programs (straight-line
   arithmetic and racy reader/writer shapes), hardens them in survival
   mode, and runs them under several schedules, checking the system's
   core guarantees on every single one:

   - transparency: a non-failing program is unchanged by hardening;
   - recovery: racy programs end successfully with the right value;
   - safety: zero rollback-verifier violations;
   - determinism: a fixed seed reproduces a run exactly;
   - round-trip: emit/parse reproduces the hardened program.

   Usage:  conair_fuzz [OPTIONS] [ITERATIONS] [BASE_SEED]
                       (defaults 500 0; see [usage] below)

   With --engine (ref, fast or block; default fast), every execution —
   reference, hardened, recorded and detected — runs on the named
   engine. All engines agree bit-for-bit, so the checks and the summary
   are engine-independent; running the fuzzer under each engine is
   itself a differential test.

   With --jsonl, every hardened run appends one {"type":"run",...} record
   to FILE (the input format of [Conair.Obs.Aggregate] and the aggregate
   subcommand), preceded by a meta header and followed by the same
   fuzz_summary object that goes to stdout. A jsonl stream additionally
   turns on *observation*: every recorded run carries an
   [Obs.Coverage] collector, failing runs (including the unhardened
   probe runs of the racy/ring/wakeup cases) emit {"type":"finding"}
   records keyed by their interleaving signature, and the stream ends
   with the worker's {"type":"coverage"} dump — the [Obs.Campaign]
   vocabulary.

   With --detect, the racy cases additionally run the race detector on
   every schedule tried, tallying per address how many schedules observed
   a race on it — a detected_races table in the summary. A race observed
   on some schedules but not others is the detector's view of how narrow
   the buggy window is (cf. the schedule counts of §5).

   With --record DIR, every hardened run executes with the schedule
   recorder installed, and the runs that matter — the failing ones and
   the ones that recovered (rollbacks > 0) — are saved to DIR as
   self-contained schedule logs (<case>-<seed>[-pN].sched.jsonl),
   replayable with `conair_cli replay` and shrinkable with `conair_cli
   minimize`. The saved paths appear in the summary as recorded_failing
   and recorded_recovered.

   With --jobs N (or --campaign DIR), this process becomes a
   *coordinator*: it shards the seed range into N contiguous chunks,
   re-executes itself once per chunk (`--worker i` + the chunk's
   --seeds; process fan-out keeps the [Runtime.Hooks] slots
   single-owner), tails the worker JSONL streams into live Prometheus
   counters (DIR/metrics.prom), and at the end folds the streams through
   [Obs.Campaign] into one report (DIR/report.json): findings deduped by
   signature, the unique-failures-vs-runs curve, merged coverage, and
   the recovery percentiles of [Obs.Aggregate]. Each unique finding's
   recorded schedule is then shrunk with the minimizer into DIR/corpus/.

   With --bench FILE, the same sharded campaign runs once per engine and
   the per-engine runs/sec, signature digests and growth curves are
   written as the BENCH_fuzz.json document (validated by json_check);
   the digests agreeing across engines is the end-to-end form of the
   bit-for-bit differential guarantee. *)

module Gen = Conair_genprog.Genprog
module Machine = Conair.Runtime.Machine
module Engine = Conair.Runtime.Engine
module Sched = Conair.Runtime.Sched
module Outcome = Conair.Runtime.Outcome
module Stats = Conair.Runtime.Stats
module Json = Conair.Obs.Json
module Jsonl = Conair.Obs.Jsonl
module Coverage = Conair.Obs.Coverage
module Campaign = Conair.Obs.Campaign
module Metrics = Conair.Obs.Metrics
module Bs = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

let config = { Machine.default_config with fuel = 300_000 }

let usage_lines =
  [
    "Usage: conair_fuzz [OPTIONS] [ITERATIONS] [BASE_SEED]";
    "";
    "Fuzz the ConAir pipeline (defaults: 500 iterations from seed 0).";
    "";
    "Seed selection:";
    "  ITERATIONS BASE_SEED  run seeds BASE_SEED .. BASE_SEED+ITERATIONS-1";
    "  --seeds LO..HI        run seeds LO through HI inclusive (mutually";
    "                        exclusive with the positionals)";
    "";
    "Workload and execution:";
    "  --engine NAME    interpreter for every run: ref, fast or block";
    "                   (default fast)";
    "  --apps           fuzz the bugbench catalog (buggy variants, random";
    "                   schedules) instead of generated programs";
    "  --detect         also run the race detector on every racy schedule";
    "  --record DIR     save failing and recovered schedule logs to DIR";
    "  --jsonl FILE     stream run/finding/coverage/summary records to FILE";
    "";
    "Campaign orchestration:";
    "  --jobs N         shard the seed range across N worker processes and";
    "                   fold their streams into one campaign report";
    "  --campaign DIR   campaign working directory (workers/, logs/, corpus/,";
    "                   report.json, metrics.prom); implies --jobs 4";
    "  --bench FILE     run the campaign once per engine and write the";
    "                   BENCH_fuzz.json document to FILE";
    "  --worker ID      internal: run as campaign worker ID (requires --jsonl)";
    "";
    "  --help           show this help";
  ]

let usage_error msg =
  prerr_endline ("conair_fuzz: " ^ msg);
  prerr_endline "conair_fuzz: try --help for usage";
  exit 2

(* --engine: which interpreter runs everything (default: fast) *)
let engine = ref Engine.Fast

type failure_report = { case : string; detail : string }

let failures : failure_report list ref = ref []
let checked = ref 0

(* summary telemetry: every hardened run reports in here *)
let runs = ref 0
let recoveries = ref 0
let max_episode = ref 0

(* every execution, probe runs included: the finding run_index clock *)
let total_runs = ref 0

(* --jsonl: one record per hardened run, streamed as the fuzz goes *)
let jsonl : Jsonl.writer option ref = ref None

(* --detect: addr -> (schedules that raced it, schedules tried) *)
let detect = ref false
let detected : (string, int) Hashtbl.t = Hashtbl.create 16
let detect_schedules = ref 0

(* --record: save failing and recovered schedules here *)
let record_dir = ref None
let recorded_failing = ref [] (* newest first; reversed in the summary *)
let recorded_recovered = ref []

(* campaign roles *)
let worker_id : int option ref = ref None
let apps_mode = ref false

(* schedule coverage: grown by every observed run; novelty of the seed
   under fuzz steers extra schedules toward unexplored interleavings *)
let cover = Coverage.create ()
let findings_count = ref 0
let seed_novelty = ref 0.

(* Observation — coverage collectors, finding records, the coverage
   dump — is on whenever the run streams JSONL (campaign workers
   always do). *)
let observing () = !jsonl <> None

let outcome_tag (o : Outcome.t) =
  match o with
  | Outcome.Success -> "success"
  | Outcome.Failed _ -> "failed"
  | Outcome.Hang _ -> "hang"
  | Outcome.Fuel_exhausted _ -> "fuel-exhausted"

let write_jsonl j =
  match !jsonl with Some w -> Jsonl.write_json w j | None -> ()

(* A failing run becomes a finding record: deduped campaign-wide by its
   interleaving signature, curve-positioned by the worker-local run
   ordinal at discovery. *)
let emit_finding ~case ~seed ~outcome ~(ob : Coverage.observed) ~novelty ~path
    log =
  incr findings_count;
  let signature = Conair.interleaving_signature ~orders:ob.ob_orders log in
  ignore (Coverage.note_signature cover signature);
  write_jsonl
    (Json.Obj
       [
         ("type", Json.String "finding");
         ("signature", Json.String signature);
         ("case", Json.String case);
         ("seed", Json.Int seed);
         ("outcome", Json.String outcome);
         ("run_index", Json.Int !total_runs);
         ("novelty", Json.Float novelty);
         ("log", Json.String (Option.value ~default:"" path));
       ])

(* Fold one observed run into the worker's coverage map; the returned
   novelty steers the racy case toward extra schedules. *)
let observe_run ~case (coll : Coverage.collector) =
  let ob = Coverage.observed coll in
  let nov = Coverage.novelty cover ~app:case ob in
  seed_novelty := max !seed_novelty nov;
  Coverage.note cover ~app:case ob;
  (ob, nov)

(* [execute_hardened], with the schedule recorder (and, when observing,
   a coverage collector) installed. Recording only taps the scheduler's
   decisions, so the run itself is unchanged. [tag] disambiguates
   multiple schedules of the same (case, seed). *)
let execute_recorded ~case ~seed ?(tag = "") ~config (h : Conair.hardened) =
  incr total_runs;
  if (not (observing ())) && !record_dir = None then
    Conair.execute_hardened ~config ~engine:!engine h
  else begin
    let coll = if observing () then Some (Coverage.collector ()) else None in
    let ident =
      Conair.Replay.Log.ident ~variant:case ~mode:"survival" "conair_fuzz"
    in
    let r, log =
      Conair.run_recorded ~config ~engine:!engine ~ident
        ?race:(Option.map Coverage.probe coll)
        h
    in
    let failing = not (Outcome.is_success r.outcome) in
    let recovered = r.Conair.stats.rollbacks > 0 in
    let path =
      match !record_dir with
      | Some dir when failing || recovered ->
          let path =
            Filename.concat dir
              (Printf.sprintf "%s-%d%s.sched.jsonl" case seed tag)
          in
          Conair.Replay.Log.save log path;
          if failing then recorded_failing := path :: !recorded_failing
          else recorded_recovered := path :: !recorded_recovered;
          Some path
      | _ -> None
    in
    (match coll with
    | Some c ->
        let ob, nov = observe_run ~case c in
        if failing then
          emit_finding ~case ~seed ~outcome:(outcome_tag r.outcome) ~ob
            ~novelty:nov ~path log
    | None -> ());
    r
  end

(* An *unhardened* execution of the raw program — where the bugs
   actually fire. When observing, it runs recorded with a collector so
   a failure (assert, hang, fuel) becomes a finding with a replayable
   log; otherwise it is a plain [Conair.execute]. *)
let probe_unhardened ~case ~seed ?(tag = "") ?(config = config) p =
  incr total_runs;
  if not (observing ()) then Conair.execute ~config ~engine:!engine p
  else begin
    let coll = Coverage.collector () in
    let ident =
      Conair.Replay.Log.ident ~variant:case ~mode:"unhardened" "conair_fuzz"
    in
    let r, log =
      Conair.record_run ~config ~engine:!engine ~ident
        ~race:(Coverage.probe coll) p
    in
    let failing = not (Outcome.is_success r.outcome) in
    let path =
      match !record_dir with
      | Some dir when failing ->
          let path =
            Filename.concat dir
              (Printf.sprintf "%s-%d%s-unhardened.sched.jsonl" case seed tag)
          in
          Conair.Replay.Log.save log path;
          recorded_failing := path :: !recorded_failing;
          Some path
      | _ -> None
    in
    let ob, nov = observe_run ~case coll in
    if failing then
      emit_finding ~case ~seed ~outcome:(outcome_tag r.outcome) ~ob
        ~novelty:nov ~path log;
    r
  end

(* per-site episode/retry/steps rollup of one run's recovery episodes *)
let site_rollup (s : Stats.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Stats.episode) ->
      let eps, rts, stp =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl e.ep_site_id)
      in
      Hashtbl.replace tbl e.ep_site_id
        (eps + 1, rts + e.ep_retries, stp + Stats.episode_duration e))
    (Stats.episodes_chronological s);
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run_record ~case ~seed (r : Conair.run) =
  let episodes = Stats.episodes_chronological r.stats in
  Json.Obj
    [
      ("type", Json.String "run");
      ("case", Json.String case);
      ("seed", Json.Int seed);
      ("outcome", Json.String (outcome_tag r.outcome));
      ("steps", Json.Int r.stats.steps);
      ("instrs", Json.Int r.stats.instrs);
      ("rollbacks", Json.Int r.stats.rollbacks);
      ("episodes", Json.Int (List.length episodes));
      ("retries", Json.Int (Stats.total_retries r.stats));
      ("max_episode_steps", Json.Int (Stats.max_recovery_time r.stats));
      ( "sites",
        Json.List
          (List.map
             (fun (id, (eps, rts, stp)) ->
               Json.Obj
                 [
                   ("site", Json.Int id);
                   ("episodes", Json.Int eps);
                   ("retries", Json.Int rts);
                   ("steps", Json.Int stp);
                 ])
             (site_rollup r.stats)) );
    ]

let note_run ~case ~seed (r : Conair.run) =
  incr runs;
  if r.stats.rollbacks > 0 then incr recoveries;
  max_episode := max !max_episode (Stats.max_recovery_time r.stats);
  write_jsonl (run_record ~case ~seed r);
  r

let check case ~detail ok =
  incr checked;
  if not ok then failures := { case; detail } :: !failures

let gen_with seed g =
  let rand = Random.State.make [| 0x5eed; seed |] in
  g rand

let fuzz_arith seed =
  let ops = gen_with seed Gen.arith_spec_gen in
  if ops <> [] then begin
    let detail = Gen.arith_spec_print ops in
    let p, expected = Gen.arith_program ops in
    let r0 = Conair.execute ~config ~engine:!engine p in
    check "arith: reference" ~detail
      (Outcome.is_success r0.outcome
      && r0.outputs = [ string_of_int expected ]);
    let h = Conair.harden_exn p Conair.Survival in
    let r1 =
      note_run ~case:"arith" ~seed
        (execute_recorded ~case:"arith" ~seed ~config h)
    in
    check "arith: transparency" ~detail
      (r1.outputs = r0.outputs && r1.stats.rollbacks = 0);
    check "arith: round-trip" ~detail
      (match
         Conair.Ir.Parse.program (Conair.Ir.Emit.program h.hardened.program)
       with
      | Ok p2 ->
          Conair.Ir.Emit.program p2 = Conair.Ir.Emit.program h.hardened.program
      | Error _ -> false)
  end

let fuzz_racy seed =
  let spec = gen_with seed Gen.racy_spec_gen in
  let detail = Gen.racy_spec_print spec in
  let p = Gen.racy_program spec in
  let h = Conair.harden_exn p Conair.Survival in
  seed_novelty := 0.;
  let one_policy pi policy =
    let config = { config with policy } in
    (* the unhardened probe first: this is where the race actually
       fires (the oracle assert fail-stops it), producing findings *)
    if observing () then
      ignore
        (probe_unhardened ~case:"racy" ~seed
           ~tag:(Printf.sprintf "-p%d" pi)
           ~config p);
    let r =
      note_run ~case:"racy" ~seed
        (execute_recorded ~case:"racy" ~seed
           ~tag:(Printf.sprintf "-p%d" pi)
           ~config h)
    in
    check "racy: recovers" ~detail
      (Outcome.is_success r.outcome && r.outputs = [ string_of_int spec.expected ]);
    check "racy: rollback safety" ~detail (r.stats.tracecheck_violations = 0);
    if !detect then begin
      (* same schedule again, this time with the detector installed *)
      incr detect_schedules;
      let _, rep = Conair.detect_hardened ~config ~engine:!engine h in
      List.iter
        (fun rc ->
          let a = Conair.Race.Report.addr_string rc.Conair.Race.Report.rc_addr in
          Hashtbl.replace detected a
            (1 + Option.value ~default:0 (Hashtbl.find_opt detected a)))
        (List.sort_uniq
           (fun a b ->
             compare a.Conair.Race.Report.rc_addr b.Conair.Race.Report.rc_addr)
           rep.Conair.Race.Report.races)
    end
  in
  List.iteri one_policy
    [ Sched.Round_robin; Sched.Random seed; Sched.Random (seed + 7919) ];
  (* novelty steering: a seed whose interleavings broke new coverage
     ground gets extra random schedules to push further into the
     window (deterministic offsets keep runs reproducible) *)
  if observing () && !seed_novelty > 0.25 then
    List.iteri
      (fun k policy -> one_policy (3 + k) policy)
      [ Sched.Random (seed + 104_729); Sched.Random (seed + 224_737) ];
  (* determinism *)
  let once () =
    let r =
      Conair.execute_hardened
        ~config:{ config with policy = Sched.Random seed }
        ~engine:!engine h
    in
    (Outcome.to_string r.outcome, r.outputs, r.stats.steps)
  in
  check "racy: determinism" ~detail (once () = once ())

let fuzz_ring seed =
  let spec = gen_with seed Gen.ring_spec_gen in
  let detail = Gen.ring_spec_print spec in
  let p = Gen.ring_program spec in
  let r0 = probe_unhardened ~case:"ring" ~seed p in
  check "ring: hangs unhardened" ~detail
    (match r0.outcome with Outcome.Hang _ -> true | _ -> false);
  let h = Conair.harden_exn p Conair.Survival in
  let r =
    note_run ~case:"ring" ~seed
      (execute_recorded ~case:"ring" ~seed
         ~config:{ config with fuel = 2_000_000 }
         h)
  in
  check "ring: recovers" ~detail (Outcome.is_success r.outcome);
  check "ring: rollback safety" ~detail (r.stats.tracecheck_violations = 0)

let fuzz_wakeup seed =
  let spec = gen_with seed Gen.wakeup_spec_gen in
  (* only specs whose notify genuinely lands in the gap hang unhardened;
     check recovery unconditionally and the hang only when it applies *)
  let detail = Gen.wakeup_spec_print spec in
  let p = Gen.wakeup_program spec in
  let r0 = probe_unhardened ~case:"wakeup" ~seed p in
  let hung = match r0.outcome with Outcome.Hang _ -> true | _ -> false in
  let h = Conair.harden_exn p Conair.Survival in
  let r =
    note_run ~case:"wakeup" ~seed
      (execute_recorded ~case:"wakeup" ~seed ~config h)
  in
  check "wakeup: hardened always succeeds" ~detail
    (Outcome.is_success r.outcome);
  check "wakeup: correct payload" ~detail
    (r.outputs = [ string_of_int spec.payload ]);
  if hung then
    check "wakeup: recovery actually ran" ~detail (r.stats.rollbacks > 0)

(* --apps: fuzz the bugbench catalog. Each seed picks one app and one
   random schedule; the unhardened buggy variant is probed for findings
   (the §5 question: how many schedules hit the window?) and the
   hardened build is checked for rollback safety. Hardened failures
   still surface — as findings, not check failures, since not every
   app/schedule is recoverable without its oracle. *)
let app_specs = Registry.all @ Registry.extended
let app_hardened : (string, Conair.hardened) Hashtbl.t = Hashtbl.create 16

let fuzz_app seed =
  let spec = List.nth app_specs (seed mod List.length app_specs) in
  let info = spec.Bs.info in
  let name = info.Bs.name in
  let detail = Printf.sprintf "%s seed %d" name seed in
  let config = { config with policy = Sched.Random seed } in
  let buggy =
    spec.Bs.make ~variant:Bs.Buggy ~oracle:info.Bs.needs_oracle
  in
  ignore (probe_unhardened ~case:name ~seed ~config buggy.Bs.program);
  let h =
    match Hashtbl.find_opt app_hardened name with
    | Some h -> h
    | None ->
        let h = Conair.harden_exn buggy.Bs.program Conair.Survival in
        Hashtbl.add app_hardened name h;
        h
  in
  let r =
    note_run ~case:name ~seed (execute_recorded ~case:name ~seed ~config h)
  in
  check "app: rollback safety" ~detail (r.stats.tracecheck_violations = 0)

(* ------------------------------------------------------------------ *)
(* argument parsing                                                   *)

let seeds_range : (int * int) option ref = ref None
let jobs = ref 0 (* 0 = not given *)
let campaign_dir : string option ref = ref None
let bench_file : string option ref = ref None

(* positional args plus options; cmdliner would be overkill here *)
let parse_argv () =
  let jsonl_file = ref None in
  let positional = ref [] in
  let int_arg flag v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> usage_error (Printf.sprintf "%s expects an integer, got %S" flag v)
  in
  let rec scan = function
    | [] -> ()
    | "--help" :: _ ->
        List.iter print_endline usage_lines;
        exit 0
    | "--jsonl" :: file :: rest ->
        jsonl_file := Some file;
        scan rest
    | "--detect" :: rest ->
        detect := true;
        scan rest
    | "--record" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        record_dir := Some dir;
        scan rest
    | "--engine" :: name :: rest -> (
        match Engine.of_string name with
        | Ok e ->
            engine := e;
            scan rest
        | Error e -> usage_error e)
    | "--seeds" :: range :: rest -> (
        match Campaign.parse_seed_range range with
        | Ok r ->
            seeds_range := Some r;
            scan rest
        | Error e -> usage_error e)
    | "--jobs" :: n :: rest ->
        let n = int_arg "--jobs" n in
        if n < 1 then usage_error "--jobs expects N >= 1";
        jobs := n;
        scan rest
    | "--campaign" :: dir :: rest ->
        campaign_dir := Some dir;
        scan rest
    | "--bench" :: file :: rest ->
        bench_file := Some file;
        scan rest
    | "--apps" :: rest ->
        apps_mode := true;
        scan rest
    | "--worker" :: id :: rest ->
        worker_id := Some (int_arg "--worker" id);
        scan rest
    | [ flag ]
      when List.mem flag
             [
               "--jsonl"; "--record"; "--engine"; "--seeds"; "--jobs";
               "--campaign"; "--bench"; "--worker";
             ] ->
        usage_error (flag ^ " needs an argument")
    | arg :: rest ->
        if String.length arg > 1 && arg.[0] = '-' then
          usage_error ("unknown option " ^ arg)
        else begin
          positional := arg :: !positional;
          scan rest
        end
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!jsonl_file, List.rev !positional)

(* the fuzzed seed range, from --seeds or the legacy positionals *)
let resolve_seed_range positional =
  let int_pos name v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> usage_error (Printf.sprintf "%s expects an integer, got %S" name v)
  in
  match (!seeds_range, positional) with
  | Some _, _ :: _ ->
      usage_error
        "--seeds and the ITERATIONS/BASE_SEED positionals are mutually \
         exclusive"
  | Some (lo, hi), [] -> (lo, hi)
  | None, positional ->
      (match positional with
      | _ :: _ :: _ :: _ ->
          usage_error "too many positional arguments (expected at most 2)"
      | _ -> ());
      let iterations =
        match positional with n :: _ -> int_pos "ITERATIONS" n | [] -> 500
      in
      if iterations < 1 then usage_error "ITERATIONS must be >= 1";
      let base =
        match positional with _ :: b :: _ -> int_pos "BASE_SEED" b | _ -> 0
      in
      (base, base + iterations - 1)

(* ------------------------------------------------------------------ *)
(* single-process fuzz loop (also the campaign worker body)           *)

let run_fuzz ~t0 ~lo ~hi ~jsonl_file =
  (match (!worker_id, jsonl_file) with
  | Some _, None -> usage_error "--worker requires --jsonl"
  | _ -> ());
  let iterations = hi - lo + 1 in
  let jsonl_oc = Option.map open_out jsonl_file in
  (match jsonl_oc with
  | Some oc ->
      (* workers flush per line so the coordinator's live tail sees
         records as they happen *)
      let w =
        {
          Jsonl.write =
            (fun line ->
              output_string oc line;
              output_char oc '\n';
              flush oc);
        }
      in
      jsonl := Some w;
      Jsonl.write_json w
        (Jsonl.meta_json ~config
           (Jsonl.run_meta ~variant:"fuzz" ~seed:lo ~hardened:true
              "conair_fuzz"))
  | None -> ());
  for i = lo to hi do
    if !apps_mode then fuzz_app i
    else begin
      fuzz_arith i;
      fuzz_racy i;
      if (i - lo) mod 5 = 0 then fuzz_ring i;
      fuzz_wakeup i
    end
  done;
  if observing () then write_jsonl (Coverage.to_json cover);
  Printf.printf "conair_fuzz: %d checks over %d iterations (base seed %d)\n"
    !checked iterations lo;
  (* machine-readable one-line summary, for harnesses that scrape us *)
  let detect_fields =
    if not !detect then []
    else
      [
        ("detect_schedules", Json.Int !detect_schedules);
        ( "detected_races",
          Json.Obj
            (Hashtbl.fold (fun a n acc -> (a, Json.Int n) :: acc) detected []
            |> List.sort compare) );
      ]
  in
  let worker_fields =
    match !worker_id with
    | Some id -> [ ("worker", Json.Int id) ]
    | None -> []
  in
  let summary =
    Json.Obj
      ([
         ("type", Json.String "fuzz_summary");
         ("iterations", Json.Int iterations);
         ("base_seed", Json.Int lo);
         ("engine", Json.String (Engine.name !engine));
         ("elapsed_sec", Json.Float (Unix.gettimeofday () -. t0));
         ("checks", Json.Int !checked);
         ("hardened_runs", Json.Int !runs);
         ("total_runs", Json.Int !total_runs);
         ("findings", Json.Int !findings_count);
         ("failures", Json.Int (List.length !failures));
         ("recoveries", Json.Int !recoveries);
         ("max_episode_steps", Json.Int !max_episode);
       ]
      @ worker_fields @ detect_fields
      @
      match !record_dir with
      | None -> []
      | Some _ ->
          let paths l = Json.List (List.rev_map (fun p -> Json.String p) l) in
          [
            ("recorded_failing", paths !recorded_failing);
            ("recorded_recovered", paths !recorded_recovered);
          ])
  in
  print_endline (Json.to_string summary);
  (match (!jsonl, jsonl_oc) with
  | Some w, Some oc ->
      Jsonl.write_json w summary;
      close_out oc
  | _ -> ());
  match !failures with
  | [] ->
      print_endline "all checks passed";
      exit 0
  | fs ->
      Printf.printf "%d FAILURES:\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  [%s] %s\n" f.case f.detail) fs;
      exit 1

(* ------------------------------------------------------------------ *)
(* campaign coordinator                                               *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  end

let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* contiguous chunks: worker i gets [chunk_lo i .. chunk_hi i] *)
let chunk_range ~lo ~hi ~jobs i =
  let n = hi - lo + 1 in
  let base = n / jobs and rem = n mod jobs in
  let clo = lo + (i * base) + min i rem in
  let chi = clo + base - 1 + (if i < rem then 1 else 0) in
  (clo, chi)

type worker_proc = {
  p_id : int;
  p_pid : int;
  p_jsonl : string;
  mutable p_offset : int;
  mutable p_buf : string;
  mutable p_exit : int option;
}

let spawn_worker ~dir ~eng ~clo ~chi i =
  let jsonl_path =
    Filename.concat dir (Printf.sprintf "workers/worker-%d.jsonl" i)
  in
  let out_path =
    Filename.concat dir (Printf.sprintf "workers/worker-%d.out" i)
  in
  let logs_dir = Filename.concat dir (Printf.sprintf "logs/w%d" i) in
  mkdir_p logs_dir;
  let args =
    [
      Sys.executable_name;
      "--worker"; string_of_int i;
      "--seeds"; Printf.sprintf "%d..%d" clo chi;
      "--jsonl"; jsonl_path;
      "--engine"; Engine.name eng;
      "--record"; logs_dir;
    ]
    @ (if !detect then [ "--detect" ] else [])
    @ if !apps_mode then [ "--apps" ] else []
  in
  let out =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
      out out
  in
  Unix.close out;
  {
    p_id = i;
    p_pid = pid;
    p_jsonl = jsonl_path;
    p_offset = 0;
    p_buf = "";
    p_exit = None;
  }

(* incremental tail of one worker's JSONL stream: the complete lines
   appended since the last poll *)
let tail_lines p =
  if not (Sys.file_exists p.p_jsonl) then []
  else begin
    let len = (Unix.stat p.p_jsonl).Unix.st_size in
    if len <= p.p_offset then []
    else begin
      let ic = open_in_bin p.p_jsonl in
      seek_in ic p.p_offset;
      let chunk = really_input_string ic (len - p.p_offset) in
      close_in ic;
      p.p_offset <- len;
      let data = p.p_buf ^ chunk in
      let rec split acc s =
        match String.index_opt s '\n' with
        | None ->
            p.p_buf <- s;
            List.rev acc
        | Some k ->
            split
              (String.sub s 0 k :: acc)
              (String.sub s (k + 1) (String.length s - k - 1))
      in
      split [] data
    end
  end

let record_type line =
  match Json.of_string (String.trim line) with
  | Ok j -> (
      match Json.member "type" j with Some (Json.String t) -> t | _ -> "")
  | Error _ -> ""

(* Run one sharded campaign: spawn workers over the seed chunks, tail
   their streams into live Prometheus counters, fold the full streams
   through [Obs.Campaign], optionally minimize each unique finding into
   the corpus. Returns the folded campaign and whether every worker
   exited cleanly. *)
let run_campaign ~dir ~njobs ~lo ~hi ~eng ~minimize_corpus () =
  mkdir_p (Filename.concat dir "workers");
  mkdir_p (Filename.concat dir "logs");
  if minimize_corpus then mkdir_p (Filename.concat dir "corpus");
  let njobs = min njobs (hi - lo + 1) in
  let t_start = Unix.gettimeofday () in
  let procs =
    List.init njobs (fun i ->
        let clo, chi = chunk_range ~lo ~hi ~jobs:njobs i in
        spawn_worker ~dir ~eng ~clo ~chi i)
  in
  (* live metric instruments: same names [Campaign.metrics] uses, so the
     final fold lands in the same registry *)
  let live = Metrics.create () in
  let m_runs =
    Metrics.counter ~help:"runs executed" live "conair_campaign_runs_total"
  in
  let m_findings =
    Metrics.counter ~help:"failing runs found (duplicates included)" live
      "conair_campaign_findings_total"
  in
  Metrics.set
    (Metrics.gauge ~help:"worker streams folded" live
       "conair_campaign_workers")
    (float_of_int njobs);
  let metrics_path = Filename.concat dir "metrics.prom" in
  let expose () = write_file metrics_path (Metrics.to_prometheus live) in
  expose ();
  let poll () =
    let progressed = ref false in
    List.iter
      (fun p ->
        List.iter
          (fun line ->
            progressed := true;
            match record_type line with
            | "run" -> Metrics.inc m_runs
            | "finding" -> Metrics.inc m_findings
            | _ -> ())
          (tail_lines p))
      procs;
    !progressed
  in
  let rec wait_all () =
    let alive =
      List.filter
        (fun p ->
          match p.p_exit with
          | Some _ -> false
          | None -> (
              match Unix.waitpid [ Unix.WNOHANG ] p.p_pid with
              | 0, _ -> true
              | _, Unix.WEXITED c ->
                  p.p_exit <- Some c;
                  false
              | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
                  p.p_exit <- Some 126;
                  false))
        procs
    in
    if poll () then expose ();
    if alive <> [] then begin
      Unix.sleepf 0.05;
      wait_all ()
    end
  in
  wait_all ();
  ignore (poll ());
  expose ();
  let elapsed = Unix.gettimeofday () -. t_start in
  let workers_ok =
    List.for_all (fun p -> p.p_exit = Some 0) procs
  in
  List.iter
    (fun p ->
      match p.p_exit with
      | Some 0 | None -> ()
      | Some c ->
          Printf.eprintf "conair_fuzz: worker %d exited with %d (see %s)\n"
            p.p_id c
            (Filename.concat dir
               (Printf.sprintf "workers/worker-%d.out" p.p_id)))
    procs;
  let streams = List.map (fun p -> (p.p_id, read_lines p.p_jsonl)) procs in
  match Campaign.of_worker_lines ~elapsed streams with
  | Error e ->
      prerr_endline ("conair_fuzz: campaign fold failed: " ^ e);
      exit 2
  | Ok c ->
      let c =
        if not minimize_corpus then c
        else
          List.fold_left
            (fun c (f : Campaign.finding) ->
              match f.f_log with
              | None -> c
              | Some log_path -> (
                  let stem =
                    Printf.sprintf "%s-%s-%d"
                      (String.sub f.f_signature 0 12)
                      f.f_case f.f_seed
                  in
                  match Conair.Replay.Log.load log_path with
                  | Error e ->
                      Printf.eprintf
                        "conair_fuzz: corpus: cannot load %s: %s\n" log_path e;
                      c
                  | Ok log -> (
                      (* every unique finding also gets a post-mortem
                         diagnostic bundle in the corpus, regenerated
                         from the recorded log by deterministic re-run *)
                      (match Conair.flight_of_log log with
                      | Ok bundle ->
                          Conair.Obs.Flight.save bundle
                            (Filename.concat dir
                               (Printf.sprintf "corpus/%s.bundle.json" stem))
                      | Error e ->
                          Printf.eprintf
                            "conair_fuzz: corpus: bundle for %s: %s\n"
                            log_path e);
                      match Conair.minimize ~detect:false log with
                      | Ok m ->
                          let dest =
                            Filename.concat dir
                              (Printf.sprintf "corpus/%s.sched.jsonl" stem)
                          in
                          Conair.Replay.Log.save
                            m.Conair.Replay.Minimize.mn_log dest;
                          Campaign.set_minimized c ~signature:f.f_signature
                            ~path:dest
                      | Error _ ->
                          (* e.g. a random-policy recording the directed
                             feed cannot reproduce: keep the raw log as
                             the corpus entry *)
                          let dest =
                            Filename.concat dir
                              (Printf.sprintf "corpus/%s-raw.sched.jsonl" stem)
                          in
                          write_file dest
                            (String.concat "\n" (read_lines log_path) ^ "\n");
                          Campaign.set_minimized c ~signature:f.f_signature
                            ~path:dest)))
            c c.Campaign.c_findings
      in
      ignore (Campaign.metrics ~into:live c);
      expose ();
      write_file
        (Filename.concat dir "report.json")
        (Json.to_string_pretty (Campaign.to_json c) ^ "\n");
      (c, workers_ok)

let effective_jobs () = if !jobs > 0 then !jobs else 4

let run_campaign_main ~lo ~hi =
  let dir =
    match !campaign_dir with Some d -> d | None -> "fuzz-campaign"
  in
  let c, ok =
    run_campaign ~dir ~njobs:(effective_jobs ()) ~lo ~hi ~eng:!engine
      ~minimize_corpus:true ()
  in
  List.iter print_endline (Campaign.render c);
  Printf.printf "report: %s\n" (Filename.concat dir "report.json");
  Printf.printf "metrics: %s\n" (Filename.concat dir "metrics.prom");
  exit (if ok then 0 else 1)

(* --bench FILE: one campaign per engine; the BENCH_fuzz.json document
   compares runs/sec and checks the signature digests agree — the
   end-to-end differential test *)
let run_bench ~file ~lo ~hi =
  let base_dir =
    match !campaign_dir with Some d -> d | None -> "fuzz-campaign"
  in
  let njobs = effective_jobs () in
  let results, all_ok =
    List.fold_left
      (fun (acc, ok) eng ->
        let name = Engine.name eng in
        Printf.printf "bench: engine %s...\n%!" name;
        let dir = Filename.concat base_dir ("bench-" ^ name) in
        let c, this_ok =
          run_campaign ~dir ~njobs ~lo ~hi ~eng ~minimize_corpus:false ()
        in
        ((name, c) :: acc, ok && this_ok))
      ([], true) Engine.all
  in
  let results = List.rev results in
  let doc =
    Campaign.bench_json ~jobs:njobs ~iterations:(hi - lo + 1) results
  in
  write_file file (Json.to_string_pretty doc ^ "\n");
  let agreement =
    match Json.member "signature_agreement" doc with
    | Some (Json.Bool b) -> b
    | _ -> false
  in
  List.iter
    (fun (name, c) ->
      Printf.printf "  %-6s %7.1f runs/sec  %3d unique signatures  md5 %s\n"
        name c.Campaign.c_runs_per_sec
        (List.length c.Campaign.c_findings)
        (String.sub (Campaign.signatures_digest c) 0 12))
    results;
  Printf.printf "signature agreement across engines: %b\n" agreement;
  Printf.printf "wrote %s\n" file;
  exit (if all_ok && agreement then 0 else 1)

let () =
  let t0 = Unix.gettimeofday () in
  let jsonl_file, positional = parse_argv () in
  let lo, hi = resolve_seed_range positional in
  match !bench_file with
  | Some file -> run_bench ~file ~lo ~hi
  | None ->
      if !worker_id = None && (!jobs > 0 || !campaign_dir <> None) then
        run_campaign_main ~lo ~hi
      else run_fuzz ~t0 ~lo ~hi ~jsonl_file
