(* conair_fuzz: randomized end-to-end validation of the whole pipeline.

   Generates random programs (straight-line arithmetic and racy
   reader/writer shapes), hardens them in survival mode, and runs them
   under several schedules, checking the system's core guarantees on every
   single one:

   - transparency: a non-failing program is unchanged by hardening;
   - recovery: racy programs end successfully with the right value;
   - safety: zero rollback-verifier violations;
   - determinism: a fixed seed reproduces a run exactly;
   - round-trip: emit/parse reproduces the hardened program.

   Usage:  conair_fuzz [--jsonl FILE] [--detect] [--record DIR]
                       [--engine NAME] [ITERATIONS] [BASE_SEED]
                       (defaults 500 0)

   With --engine (ref, fast or block; default fast), every execution —
   reference, hardened, recorded and detected — runs on the named
   engine. All engines agree bit-for-bit, so the checks and the summary
   are engine-independent; running the fuzzer under each engine is
   itself a differential test.

   With --jsonl, every hardened run appends one {"type":"run",...} record
   to FILE (the input format of [Conair.Obs.Aggregate] and the aggregate
   subcommand), preceded by a meta header and followed by the same
   fuzz_summary object that goes to stdout.

   With --detect, the racy cases additionally run the race detector on
   every schedule tried, tallying per address how many schedules observed
   a race on it — a detected_races table in the summary. A race observed
   on some schedules but not others is the detector's view of how narrow
   the buggy window is (cf. the schedule counts of §5).

   With --record DIR, every hardened run executes with the schedule
   recorder installed, and the runs that matter — the failing ones and
   the ones that recovered (rollbacks > 0) — are saved to DIR as
   self-contained schedule logs (<case>-<seed>[-pN].sched.jsonl),
   replayable with `conair_cli replay` and shrinkable with `conair_cli
   minimize`. The saved paths appear in the summary as recorded_failing
   and recorded_recovered. *)

module Gen = Conair_genprog.Genprog
module Machine = Conair.Runtime.Machine
module Engine = Conair.Runtime.Engine
module Sched = Conair.Runtime.Sched
module Outcome = Conair.Runtime.Outcome
module Stats = Conair.Runtime.Stats
module Json = Conair.Obs.Json

let config = { Machine.default_config with fuel = 300_000 }

(* --engine: which interpreter runs everything (default: fast) *)
let engine = ref Engine.Fast

type failure_report = { case : string; detail : string }

let failures : failure_report list ref = ref []
let checked = ref 0

(* summary telemetry: every hardened run reports in here *)
let runs = ref 0
let recoveries = ref 0
let max_episode = ref 0

(* --jsonl: one record per hardened run, streamed as the fuzz goes *)
let jsonl : Conair.Obs.Jsonl.writer option ref = ref None

(* --detect: addr -> (schedules that raced it, schedules tried) *)
let detect = ref false
let detected : (string, int) Hashtbl.t = Hashtbl.create 16
let detect_schedules = ref 0

(* --record: save failing and recovered schedules here *)
let record_dir = ref None
let recorded_failing = ref [] (* newest first; reversed in the summary *)
let recorded_recovered = ref []

(* [execute_hardened], with the schedule recorder installed when
   --record is on. Recording only taps the scheduler's decisions, so the
   run itself is unchanged. [tag] disambiguates multiple schedules of
   the same (case, seed). *)
let execute_recorded ~case ~seed ?(tag = "") ~config (h : Conair.hardened) =
  match !record_dir with
  | None -> Conair.execute_hardened ~config ~engine:!engine h
  | Some dir ->
      let ident =
        Conair.Replay.Log.ident ~variant:case ~mode:"survival" "conair_fuzz"
      in
      let r, log = Conair.run_recorded ~config ~engine:!engine ~ident h in
      let failing = not (Outcome.is_success r.outcome) in
      let recovered = r.Conair.stats.rollbacks > 0 in
      if failing || recovered then begin
        let path =
          Filename.concat dir
            (Printf.sprintf "%s-%d%s.sched.jsonl" case seed tag)
        in
        Conair.Replay.Log.save log path;
        if failing then recorded_failing := path :: !recorded_failing
        else recorded_recovered := path :: !recorded_recovered
      end;
      r

let outcome_tag (o : Outcome.t) =
  match o with
  | Outcome.Success -> "success"
  | Outcome.Failed _ -> "failed"
  | Outcome.Hang _ -> "hang"
  | Outcome.Fuel_exhausted _ -> "fuel-exhausted"

(* per-site episode/retry/steps rollup of one run's recovery episodes *)
let site_rollup (s : Stats.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Stats.episode) ->
      let eps, rts, stp =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl e.ep_site_id)
      in
      Hashtbl.replace tbl e.ep_site_id
        (eps + 1, rts + e.ep_retries, stp + Stats.episode_duration e))
    (Stats.episodes_chronological s);
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run_record ~case ~seed (r : Conair.run) =
  let episodes = Stats.episodes_chronological r.stats in
  Json.Obj
    [
      ("type", Json.String "run");
      ("case", Json.String case);
      ("seed", Json.Int seed);
      ("outcome", Json.String (outcome_tag r.outcome));
      ("steps", Json.Int r.stats.steps);
      ("instrs", Json.Int r.stats.instrs);
      ("rollbacks", Json.Int r.stats.rollbacks);
      ("episodes", Json.Int (List.length episodes));
      ("retries", Json.Int (Stats.total_retries r.stats));
      ("max_episode_steps", Json.Int (Stats.max_recovery_time r.stats));
      ( "sites",
        Json.List
          (List.map
             (fun (id, (eps, rts, stp)) ->
               Json.Obj
                 [
                   ("site", Json.Int id);
                   ("episodes", Json.Int eps);
                   ("retries", Json.Int rts);
                   ("steps", Json.Int stp);
                 ])
             (site_rollup r.stats)) );
    ]

let note_run ~case ~seed (r : Conair.run) =
  incr runs;
  if r.stats.rollbacks > 0 then incr recoveries;
  max_episode := max !max_episode (Stats.max_recovery_time r.stats);
  (match !jsonl with
  | Some w -> Conair.Obs.Jsonl.write_json w (run_record ~case ~seed r)
  | None -> ());
  r

let check case ~detail ok =
  incr checked;
  if not ok then failures := { case; detail } :: !failures

let gen_with seed g =
  let rand = Random.State.make [| 0x5eed; seed |] in
  g rand

let fuzz_arith seed =
  let ops = gen_with seed Gen.arith_spec_gen in
  if ops <> [] then begin
    let detail = Gen.arith_spec_print ops in
    let p, expected = Gen.arith_program ops in
    let r0 = Conair.execute ~config ~engine:!engine p in
    check "arith: reference" ~detail
      (Outcome.is_success r0.outcome
      && r0.outputs = [ string_of_int expected ]);
    let h = Conair.harden_exn p Conair.Survival in
    let r1 =
      note_run ~case:"arith" ~seed
        (execute_recorded ~case:"arith" ~seed ~config h)
    in
    check "arith: transparency" ~detail
      (r1.outputs = r0.outputs && r1.stats.rollbacks = 0);
    check "arith: round-trip" ~detail
      (match Conair.Ir.Parse.program (Conair.Ir.Emit.program h.hardened.program) with
      | Ok p2 ->
          Conair.Ir.Emit.program p2 = Conair.Ir.Emit.program h.hardened.program
      | Error _ -> false)
  end

let fuzz_racy seed =
  let spec = gen_with seed Gen.racy_spec_gen in
  let detail = Gen.racy_spec_print spec in
  let p = Gen.racy_program spec in
  let h = Conair.harden_exn p Conair.Survival in
  List.iteri
    (fun pi policy ->
      let config = { config with policy } in
      let r =
        note_run ~case:"racy" ~seed
          (execute_recorded ~case:"racy" ~seed
             ~tag:(Printf.sprintf "-p%d" pi)
             ~config h)
      in
      check "racy: recovers" ~detail
        (Outcome.is_success r.outcome
        && r.outputs = [ string_of_int spec.expected ]);
      check "racy: rollback safety" ~detail
        (r.stats.tracecheck_violations = 0);
      if !detect then begin
        (* same schedule again, this time with the detector installed *)
        incr detect_schedules;
        let _, rep = Conair.detect_hardened ~config ~engine:!engine h in
        List.iter
          (fun rc ->
            let a = Conair.Race.Report.addr_string rc.Conair.Race.Report.rc_addr in
            Hashtbl.replace detected a
              (1 + Option.value ~default:0 (Hashtbl.find_opt detected a)))
          (List.sort_uniq
             (fun a b ->
               compare a.Conair.Race.Report.rc_addr b.Conair.Race.Report.rc_addr)
             rep.Conair.Race.Report.races)
      end)
    [ Sched.Round_robin; Sched.Random seed; Sched.Random (seed + 7919) ];
  (* determinism *)
  let once () =
    let r =
      Conair.execute_hardened
        ~config:{ config with policy = Sched.Random seed }
        ~engine:!engine h
    in
    (Outcome.to_string r.outcome, r.outputs, r.stats.steps)
  in
  check "racy: determinism" ~detail (once () = once ())

let fuzz_ring seed =
  let spec = gen_with seed Gen.ring_spec_gen in
  let detail = Gen.ring_spec_print spec in
  let p = Gen.ring_program spec in
  let r0 = Conair.execute ~config ~engine:!engine p in
  check "ring: hangs unhardened" ~detail
    (match r0.outcome with Outcome.Hang _ -> true | _ -> false);
  let h = Conair.harden_exn p Conair.Survival in
  let r =
    note_run ~case:"ring" ~seed
      (execute_recorded ~case:"ring" ~seed
         ~config:{ config with fuel = 2_000_000 }
         h)
  in
  check "ring: recovers" ~detail (Outcome.is_success r.outcome);
  check "ring: rollback safety" ~detail (r.stats.tracecheck_violations = 0)

let fuzz_wakeup seed =
  let spec = gen_with seed Gen.wakeup_spec_gen in
  (* only specs whose notify genuinely lands in the gap hang unhardened;
     check recovery unconditionally and the hang only when it applies *)
  let detail = Gen.wakeup_spec_print spec in
  let p = Gen.wakeup_program spec in
  let r0 = Conair.execute ~config ~engine:!engine p in
  let hung = match r0.outcome with Outcome.Hang _ -> true | _ -> false in
  let h = Conair.harden_exn p Conair.Survival in
  let r =
    note_run ~case:"wakeup" ~seed
      (execute_recorded ~case:"wakeup" ~seed ~config h)
  in
  check "wakeup: hardened always succeeds" ~detail
    (Outcome.is_success r.outcome);
  check "wakeup: correct payload" ~detail
    (r.outputs = [ string_of_int spec.payload ]);
  if hung then
    check "wakeup: recovery actually ran" ~detail (r.stats.rollbacks > 0)

(* positional args plus two options; cmdliner would be overkill here *)
let parse_argv () =
  let jsonl_file = ref None in
  let positional = ref [] in
  let rec scan = function
    | [] -> ()
    | "--jsonl" :: file :: rest ->
        jsonl_file := Some file;
        scan rest
    | "--jsonl" :: [] ->
        prerr_endline "conair_fuzz: --jsonl needs a FILE argument";
        exit 2
    | "--detect" :: rest ->
        detect := true;
        scan rest
    | "--record" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        record_dir := Some dir;
        scan rest
    | "--record" :: [] ->
        prerr_endline "conair_fuzz: --record needs a DIR argument";
        exit 2
    | "--engine" :: name :: rest -> (
        match Engine.of_string name with
        | Ok e ->
            engine := e;
            scan rest
        | Error e ->
            prerr_endline ("conair_fuzz: " ^ e);
            exit 2)
    | "--engine" :: [] ->
        prerr_endline "conair_fuzz: --engine needs a NAME argument";
        exit 2
    | arg :: rest ->
        positional := arg :: !positional;
        scan rest
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!jsonl_file, List.rev !positional)

let () =
  let jsonl_file, positional = parse_argv () in
  let iterations =
    match positional with n :: _ -> int_of_string n | [] -> 500
  in
  let base =
    match positional with _ :: b :: _ -> int_of_string b | _ -> 0
  in
  let jsonl_oc = Option.map open_out jsonl_file in
  (match jsonl_oc with
  | Some oc ->
      let w = Conair.Obs.Jsonl.channel_writer oc in
      jsonl := Some w;
      Conair.Obs.Jsonl.write_json w
        (Conair.Obs.Jsonl.meta_json ~config
           (Conair.Obs.Jsonl.run_meta ~variant:"fuzz" ~seed:base
              ~hardened:true "conair_fuzz"))
  | None -> ());
  for i = 0 to iterations - 1 do
    fuzz_arith (base + i);
    fuzz_racy (base + i);
    if i mod 5 = 0 then fuzz_ring (base + i);
    fuzz_wakeup (base + i)
  done;
  Printf.printf "conair_fuzz: %d checks over %d iterations (base seed %d)\n"
    !checked iterations base;
  (* machine-readable one-line summary, for harnesses that scrape us *)
  let detect_fields =
    if not !detect then []
    else
      [
        ("detect_schedules", Json.Int !detect_schedules);
        ( "detected_races",
          Json.Obj
            (Hashtbl.fold (fun a n acc -> (a, Json.Int n) :: acc) detected []
            |> List.sort compare) );
      ]
  in
  let summary =
    Json.Obj
      ([
         ("type", Json.String "fuzz_summary");
         ("iterations", Json.Int iterations);
         ("base_seed", Json.Int base);
         ("checks", Json.Int !checked);
         ("hardened_runs", Json.Int !runs);
         ("failures", Json.Int (List.length !failures));
         ("recoveries", Json.Int !recoveries);
         ("max_episode_steps", Json.Int !max_episode);
       ]
      @ detect_fields
      @
      match !record_dir with
      | None -> []
      | Some _ ->
          let paths l =
            Json.List (List.rev_map (fun p -> Json.String p) l)
          in
          [
            ("recorded_failing", paths !recorded_failing);
            ("recorded_recovered", paths !recorded_recovered);
          ])
  in
  print_endline (Json.to_string summary);
  (match (!jsonl, jsonl_oc) with
  | Some w, Some oc ->
      Conair.Obs.Jsonl.write_json w summary;
      close_out oc
  | _ -> ());
  match !failures with
  | [] ->
      print_endline "all checks passed";
      exit 0
  | fs ->
      Printf.printf "%d FAILURES:\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  [%s] %s\n" f.case f.detail) fs;
      exit 1
