(* conair_fuzz: randomized end-to-end validation of the whole pipeline.

   Generates random programs (straight-line arithmetic and racy
   reader/writer shapes), hardens them in survival mode, and runs them
   under several schedules, checking the system's core guarantees on every
   single one:

   - transparency: a non-failing program is unchanged by hardening;
   - recovery: racy programs end successfully with the right value;
   - safety: zero rollback-verifier violations;
   - determinism: a fixed seed reproduces a run exactly;
   - round-trip: emit/parse reproduces the hardened program.

   Usage:  conair_fuzz [ITERATIONS] [BASE_SEED]          (defaults 500 0) *)

module Gen = Conair_genprog.Genprog
module Machine = Conair.Runtime.Machine
module Sched = Conair.Runtime.Sched
module Outcome = Conair.Runtime.Outcome

let config = { Machine.default_config with fuel = 300_000 }

type failure_report = { case : string; detail : string }

let failures : failure_report list ref = ref []
let checked = ref 0

(* summary telemetry: every hardened run reports in here *)
let runs = ref 0
let recoveries = ref 0
let max_episode = ref 0

let note_run (r : Conair.run) =
  incr runs;
  if r.stats.rollbacks > 0 then incr recoveries;
  max_episode :=
    max !max_episode (Conair.Runtime.Stats.max_recovery_time r.stats);
  r

let check case ~detail ok =
  incr checked;
  if not ok then failures := { case; detail } :: !failures

let gen_with seed g =
  let rand = Random.State.make [| 0x5eed; seed |] in
  g rand

let fuzz_arith seed =
  let ops = gen_with seed Gen.arith_spec_gen in
  if ops <> [] then begin
    let detail = Gen.arith_spec_print ops in
    let p, expected = Gen.arith_program ops in
    let r0 = Conair.execute ~config p in
    check "arith: reference" ~detail
      (Outcome.is_success r0.outcome
      && r0.outputs = [ string_of_int expected ]);
    let h = Conair.harden_exn p Conair.Survival in
    let r1 = note_run (Conair.execute_hardened ~config h) in
    check "arith: transparency" ~detail
      (r1.outputs = r0.outputs && r1.stats.rollbacks = 0);
    check "arith: round-trip" ~detail
      (match Conair.Ir.Parse.program (Conair.Ir.Emit.program h.hardened.program) with
      | Ok p2 ->
          Conair.Ir.Emit.program p2 = Conair.Ir.Emit.program h.hardened.program
      | Error _ -> false)
  end

let fuzz_racy seed =
  let spec = gen_with seed Gen.racy_spec_gen in
  let detail = Gen.racy_spec_print spec in
  let p = Gen.racy_program spec in
  let h = Conair.harden_exn p Conair.Survival in
  List.iter
    (fun policy ->
      let config = { config with policy } in
      let r = note_run (Conair.execute_hardened ~config h) in
      check "racy: recovers" ~detail
        (Outcome.is_success r.outcome
        && r.outputs = [ string_of_int spec.expected ]);
      check "racy: rollback safety" ~detail
        (r.stats.tracecheck_violations = 0))
    [ Sched.Round_robin; Sched.Random seed; Sched.Random (seed + 7919) ];
  (* determinism *)
  let once () =
    let r =
      Conair.execute_hardened ~config:{ config with policy = Sched.Random seed } h
    in
    (Outcome.to_string r.outcome, r.outputs, r.stats.steps)
  in
  check "racy: determinism" ~detail (once () = once ())

let fuzz_ring seed =
  let spec = gen_with seed Gen.ring_spec_gen in
  let detail = Gen.ring_spec_print spec in
  let p = Gen.ring_program spec in
  let r0 = Conair.execute ~config p in
  check "ring: hangs unhardened" ~detail
    (match r0.outcome with Outcome.Hang _ -> true | _ -> false);
  let h = Conair.harden_exn p Conair.Survival in
  let r = note_run (Conair.execute_hardened ~config:{ config with fuel = 2_000_000 } h) in
  check "ring: recovers" ~detail (Outcome.is_success r.outcome);
  check "ring: rollback safety" ~detail (r.stats.tracecheck_violations = 0)

let fuzz_wakeup seed =
  let spec = gen_with seed Gen.wakeup_spec_gen in
  (* only specs whose notify genuinely lands in the gap hang unhardened;
     check recovery unconditionally and the hang only when it applies *)
  let detail = Gen.wakeup_spec_print spec in
  let p = Gen.wakeup_program spec in
  let r0 = Conair.execute ~config p in
  let hung = match r0.outcome with Outcome.Hang _ -> true | _ -> false in
  let h = Conair.harden_exn p Conair.Survival in
  let r = note_run (Conair.execute_hardened ~config h) in
  check "wakeup: hardened always succeeds" ~detail
    (Outcome.is_success r.outcome);
  check "wakeup: correct payload" ~detail
    (r.outputs = [ string_of_int spec.payload ]);
  if hung then
    check "wakeup: recovery actually ran" ~detail (r.stats.rollbacks > 0)

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let base = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 0 in
  for i = 0 to iterations - 1 do
    fuzz_arith (base + i);
    fuzz_racy (base + i);
    if i mod 5 = 0 then fuzz_ring (base + i);
    fuzz_wakeup (base + i)
  done;
  Printf.printf "conair_fuzz: %d checks over %d iterations (base seed %d)\n"
    !checked iterations base;
  (* machine-readable one-line summary, for harnesses that scrape us *)
  let summary =
    Conair.Obs.Json.(
      Obj
        [
          ("type", String "fuzz_summary");
          ("iterations", Int iterations);
          ("base_seed", Int base);
          ("checks", Int !checked);
          ("hardened_runs", Int !runs);
          ("failures", Int (List.length !failures));
          ("recoveries", Int !recoveries);
          ("max_episode_steps", Int !max_episode);
        ])
  in
  print_endline (Conair.Obs.Json.to_string summary);
  match !failures with
  | [] ->
      print_endline "all checks passed";
      exit 0
  | fs ->
      Printf.printf "%d FAILURES:\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  [%s] %s\n" f.case f.detail) fs;
      exit 1
