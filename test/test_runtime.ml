(* Unit tests for the runtime substrate: the heap and lock models, the
   interpreter's instruction semantics, scheduling, blocking, failure
   detection, and the recovery engine's moving parts. *)

open Conair.Ir
open Conair.Runtime
open Test_util
module B = Builder

(* Run a single-threaded body and return the final run. *)
let run_body ?policy body =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "g0" (Value.Int 0);
    B.global b "g1" (Value.Int 11);
    B.func b "main" ~params:[] body
  in
  check_valid p;
  run ?policy p

let expect_outputs expected (r : Conair.run) =
  expect_success r;
  Alcotest.(check (list string)) "outputs" expected r.outputs

(* --- Heap model ------------------------------------------------------ *)

let heap_alloc_load_store () =
  let h = Heap.create () in
  let p = Heap.alloc h 3 in
  Alcotest.(check bool) "fresh cells are zero" true
    (Heap.load h (Value.Ptr p) 2 = Ok (Value.Int 0));
  Alcotest.(check bool) "store then load" true
    (Heap.store h (Value.Ptr p) 1 (Value.Int 9) = Ok ()
    && Heap.load h (Value.Ptr p) 1 = Ok (Value.Int 9));
  Alcotest.(check bool) "oob load fails" true
    (Result.is_error (Heap.load h (Value.Ptr p) 3));
  Alcotest.(check bool) "negative offset fails" true
    (Result.is_error (Heap.load h (Value.Ptr p) (-1)));
  Alcotest.(check bool) "valid check agrees" true (Heap.valid h (Value.Ptr p) 2);
  Alcotest.(check bool) "valid rejects oob" false
    (Heap.valid h (Value.Ptr p) 3);
  Alcotest.(check bool) "null invalid" false (Heap.valid h Value.Null 0);
  Alcotest.(check bool) "int invalid" false (Heap.valid h (Value.Int 5) 0)

let heap_free_semantics () =
  let h = Heap.create () in
  let p = Heap.alloc h 2 in
  Alcotest.(check bool) "free ok" true (Heap.free h (Value.Ptr p) = Ok ());
  Alcotest.(check bool) "use after free fails" true
    (Result.is_error (Heap.load h (Value.Ptr p) 0));
  Alcotest.(check bool) "double free fails" true
    (Result.is_error (Heap.free h (Value.Ptr p)));
  let q = Heap.alloc h 2 in
  Alcotest.(check bool) "interior free fails" true
    (Result.is_error
       (Heap.free h (Value.Ptr { q with Value.offset = 1 })));
  Alcotest.(check bool) "free of null fails" true
    (Result.is_error (Heap.free h Value.Null));
  Alcotest.(check int) "one live block" 1 (Heap.live_blocks h);
  Alcotest.(check bool) "release_block works once" true
    (Heap.release_block h q.Value.block);
  Alcotest.(check bool) "release_block idempotent-ish" false
    (Heap.release_block h q.Value.block)

let heap_snapshot_isolated () =
  let h = Heap.create () in
  let p = Heap.alloc h 1 in
  ignore (Heap.store h (Value.Ptr p) 0 (Value.Int 1));
  let s = Heap.snapshot h in
  ignore (Heap.store h (Value.Ptr p) 0 (Value.Int 2));
  Alcotest.(check bool) "snapshot unaffected" true
    (Heap.load s (Value.Ptr p) 0 = Ok (Value.Int 1))

(* --- Locks ------------------------------------------------------------ *)

let locks_basics () =
  let t = Locks.create [ "a" ] in
  Alcotest.(check bool) "free initially" true (Locks.is_free t "a");
  Alcotest.(check bool) "acquire" true (Locks.try_acquire t "a" ~tid:1);
  Alcotest.(check bool) "held now" false (Locks.is_free t "a");
  Alcotest.(check bool) "re-acquire by self fails (non-reentrant)" false
    (Locks.try_acquire t "a" ~tid:1);
  Alcotest.(check bool) "acquire by other fails" false
    (Locks.try_acquire t "a" ~tid:2);
  Alcotest.(check bool) "release by non-owner fails" true
    (Result.is_error (Locks.release t "a" ~tid:2));
  Alcotest.(check bool) "release by owner" true
    (Locks.release t "a" ~tid:1 = Ok ());
  Alcotest.(check bool) "release when free fails" true
    (Result.is_error (Locks.release t "a" ~tid:1));
  (* dynamic creation on first use *)
  Alcotest.(check bool) "unknown lock springs into existence" true
    (Locks.try_acquire t "fresh" ~tid:3);
  (* forced release for compensation *)
  Alcotest.(check bool) "force release by owner" true
    (Locks.force_release t "fresh" ~tid:3);
  Alcotest.(check bool) "force release when free is a no-op" false
    (Locks.force_release t "fresh" ~tid:3)

(* --- Arithmetic and control flow -------------------------------------- *)

let arithmetic_semantics () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.add f "a" (B.int 20) (B.int 22);
    B.sub f "b" (B.reg "a") (B.int 2);
    B.mul f "c" (B.reg "b") (B.int 3);
    B.binop f "d" Instr.Div (B.reg "c") (B.int 5);
    B.binop f "e" Instr.Mod (B.reg "c") (B.int 5);
    B.output f "%v %v %v %v %v"
      [ B.reg "a"; B.reg "b"; B.reg "c"; B.reg "d"; B.reg "e" ];
    B.exit_ f
  in
  expect_outputs [ "42 40 120 24 0" ] r

let comparison_semantics () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.lt f "a" (B.int 1) (B.int 2);
    B.binop f "b" Instr.Le (B.int 2) (B.int 2);
    B.gt f "c" (B.int 1) (B.int 2);
    B.binop f "d" Instr.Ge (B.int 1) (B.int 2);
    B.eq f "e" (B.int 3) (B.int 3);
    B.ne f "f" (B.int 3) (B.int 3);
    B.binop f "g" Instr.And (B.reg "a") (B.reg "c");
    B.binop f "h" Instr.Or (B.reg "a") (B.reg "c");
    B.output f "%v %v %v %v %v %v %v %v"
      [ B.reg "a"; B.reg "b"; B.reg "c"; B.reg "d"; B.reg "e"; B.reg "f";
        B.reg "g"; B.reg "h" ];
    B.exit_ f
  in
  expect_outputs [ "true true false false true false false true" ] r

let unop_semantics () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.unop f "a" Instr.Not (B.bool false);
    B.unop f "b" Instr.Neg (B.int 5);
    B.unop f "c" Instr.Is_null B.null;
    B.unop f "d" Instr.Is_null (B.int 0);
    B.output f "%v %v %v %v" [ B.reg "a"; B.reg "b"; B.reg "c"; B.reg "d" ];
    B.exit_ f
  in
  expect_outputs [ "true -5 true false" ] r

let division_by_zero_faults () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.binop f "a" Instr.Div (B.int 1) (B.int 0);
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

let undefined_register_faults () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.add f "a" (B.reg "never_defined") (B.int 1);
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

(* --- Memory ------------------------------------------------------------ *)

let globals_and_stack () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.load f "a" (Instr.Global "g1");
    B.store f (Instr.Global "g0") (B.reg "a");
    B.load f "b" (Instr.Global "g0");
    (* stack slots read as zero before first write *)
    B.load f "z" (Instr.Stack "local");
    B.store f (Instr.Stack "local") (B.int 5);
    B.load f "l" (Instr.Stack "local");
    B.output f "%v %v %v" [ B.reg "b"; B.reg "z"; B.reg "l" ];
    B.exit_ f
  in
  expect_outputs [ "11 0 5" ] r

let undeclared_global_faults () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.load f "a" (Instr.Global "not_declared");
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

let heap_instructions () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 2);
    B.store_idx f (B.reg "p") (B.int 0) (B.int 7);
    B.store_idx f (B.reg "p") (B.int 1) (B.int 8);
    B.load_idx f "a" (B.reg "p") (B.int 0);
    B.load_idx f "b" (B.reg "p") (B.int 1);
    B.add f "s" (B.reg "a") (B.reg "b");
    B.free f (B.reg "p");
    B.output f "%v" [ B.reg "s" ];
    B.exit_ f
  in
  expect_outputs [ "15" ] r

let null_deref_is_segfault () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.load_idx f "a" B.null (B.int 0);
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

let use_after_free_is_segfault () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.alloc f "p" (B.int 1);
    B.free f (B.reg "p");
    B.load_idx f "a" (B.reg "p") (B.int 0);
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault r

(* --- Calls, returns, outputs ------------------------------------------- *)

let call_and_return () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "sq" ~params:[ "x" ] @@ fun f ->
     B.label f "entry";
     B.mul f "y" (B.reg "x") (B.reg "x");
     B.ret f (Some (B.reg "y")));
    (B.func b "twice" ~params:[ "x" ] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"a" "sq" [ B.reg "x" ];
     B.call f ~into:"b" "sq" [ B.reg "a" ];
     B.ret f (Some (B.reg "b")));
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f ~into:"r" "twice" [ B.int 3 ];
    B.output f "%v" [ B.reg "r" ];
    B.exit_ f
  in
  expect_outputs [ "81" ] (run p)

let missing_return_value_faults () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "noret" ~params:[] @@ fun f ->
     B.label f "entry";
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f ~into:"r" "noret" [];
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault (run p)

let recursion_works () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "fact" ~params:[ "n" ] @@ fun f ->
     B.label f "entry";
     B.gt f "c" (B.reg "n") (B.int 1);
     B.branch f (B.reg "c") "rec" "base";
     B.label f "rec";
     B.sub f "m" (B.reg "n") (B.int 1);
     B.call f ~into:"r" "fact" [ B.reg "m" ];
     B.mul f "r" (B.reg "r") (B.reg "n");
     B.ret f (Some (B.reg "r"));
     B.label f "base";
     B.ret f (Some (B.int 1)));
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.call f ~into:"r" "fact" [ B.int 6 ];
    B.output f "%v" [ B.reg "r" ];
    B.exit_ f
  in
  expect_outputs [ "720" ] (run p)

let output_formatting () =
  let r =
    run_body @@ fun f ->
    B.label f "entry";
    B.output f "a=%v, b=%v, trailing %v" [ B.int 1; B.bool true ];
    B.exit_ f
  in
  (* missing argument leaves the placeholder *)
  expect_outputs [ "a=1, b=true, trailing %v" ] r

(* --- Threads and scheduling -------------------------------------------- *)

let spawn_join_order () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "x" (Value.Int 0);
    (B.func b "child" ~params:[] @@ fun f ->
     B.label f "entry";
     B.store f (Instr.Global "x") (B.int 42);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "child" [];
    B.join f (B.reg "t");
    B.load f "v" (Instr.Global "x");
    B.output f "%v" [ B.reg "v" ];
    B.exit_ f
  in
  (* join guarantees the child's store is visible *)
  expect_outputs [ "42" ] (run p);
  expect_outputs [ "42" ] (run ~policy:(Sched.Random 7) p)

let exit_terminates_everything () =
  let p =
    B.build ~main:"main" @@ fun b ->
    (B.func b "spinner" ~params:[] @@ fun f ->
     B.label f "loop";
     B.nop f;
     B.jump f "loop");
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "spinner" [];
    B.exit_ f
  in
  (* exit() ends the program even with a live spinner *)
  expect_success (run p)

let infinite_loop_exhausts_fuel () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "loop";
    B.nop f;
    B.jump f "loop"
  in
  let r = run ~fuel:1000 p in
  match r.outcome with
  | Outcome.Fuel_exhausted n -> Alcotest.(check int) "at the budget" 1000 n
  | o -> Alcotest.failf "expected fuel exhaustion, got %a" Outcome.pp o

let self_deadlock_hangs () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.lock f (B.mutex_ref "m");
    B.lock f (B.mutex_ref "m");
    B.exit_ f
  in
  expect_hang (run p)

let unlock_not_held_faults () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.unlock f (B.mutex_ref "m");
    B.exit_ f
  in
  expect_failure_kind Instr.Seg_fault (run p)

let lock_contention_resolves () =
  (* Two threads increment a shared counter under a lock: the result is
     always exactly 2, under any schedule. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.global b "n" (Value.Int 0);
    (B.func b "incr" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "m");
     B.load f "v" (Instr.Global "n");
     B.add f "v" (B.reg "v") (B.int 1);
     B.store f (Instr.Global "n") (B.reg "v");
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "incr" [];
    B.spawn f "t2" "incr" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.load f "v" (Instr.Global "n");
    B.output f "%v" [ B.reg "v" ];
    B.exit_ f
  in
  for seed = 0 to 20 do
    expect_outputs [ "2" ] (run ~policy:(Sched.Random seed) p)
  done

let timed_lock_timeout_fires () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    (B.func b "holder" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "m");
     B.sleep f 500;
     B.unlock f (B.mutex_ref "m");
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t" "holder" [];
    B.sleep f 5;
    (* hand-written timed lock, as the transformation would emit *)
    B.emit f (Instr.Timed_lock (Ident.Reg.v "ok", B.mutex_ref "m", 50));
    B.output f "%v" [ B.reg "ok" ];
    B.join f (B.reg "t");
    B.exit_ f
  in
  expect_outputs [ "false" ] (run p)

let timed_lock_acquires_when_free () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "m";
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.emit f (Instr.Timed_lock (Ident.Reg.v "ok", B.mutex_ref "m", 50));
    B.output f "%v" [ B.reg "ok" ];
    B.unlock f (B.mutex_ref "m");
    B.exit_ f
  in
  expect_outputs [ "true" ] (run p)

let sleep_delays_thread () =
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "order" (Value.Int 0);
    (B.func b "slow" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 100;
     B.store f (Instr.Global "order") (B.int 2);
     B.ret f None);
    (B.func b "fast" ~params:[] @@ fun f ->
     B.label f "entry";
     B.store f (Instr.Global "order") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "slow" [];
    B.spawn f "t2" "fast" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.load f "v" (Instr.Global "order");
    B.output f "%v" [ B.reg "v" ];
    B.exit_ f
  in
  (* slow writes last despite being spawned first *)
  expect_outputs [ "2" ] (run p)

let determinism_same_seed () =
  let p = Test_util.order_violation_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let run_once () =
    let r = run_hardened ~policy:(Sched.Random 99) h in
    (Format.asprintf "%a" Outcome.pp r.outcome, r.outputs, r.stats.steps)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical reruns" true (a = b)

let round_robin_is_fair () =
  (* Two spinning threads plus a finishing main: both spinners advance. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "a" (Value.Int 0);
    B.global b "b" (Value.Int 0);
    (B.func b "wa" ~params:[] @@ fun f ->
     B.label f "entry";
     B.store f (Instr.Global "a") (B.int 1);
     B.ret f None);
    (B.func b "wb" ~params:[] @@ fun f ->
     B.label f "entry";
     B.store f (Instr.Global "b") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "wa" [];
    B.spawn f "t2" "wb" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.load f "x" (Instr.Global "a");
    B.load f "y" (Instr.Global "b");
    B.add f "s" (B.reg "x") (B.reg "y");
    B.output f "%v" [ B.reg "s" ];
    B.exit_ f
  in
  expect_outputs [ "2" ] (run p)

(* --- Recovery engine pieces -------------------------------------------- *)

let compensation_frees_blocks () =
  (* An allocation inside the reexecution region is freed on rollback: the
     retry loop must not leak. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "flag" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.alloc f "buf" (B.int 4);
     B.load f "v" (Instr.Global "flag");
     B.assert_ f (B.reg "v") ~msg:"flag set";
     B.store_idx f (B.reg "buf") (B.int 0) (B.reg "v");
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 60;
     B.store f (Instr.Global "flag") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "worker" [];
    B.spawn f "t2" "setter" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check bool) "rolled back" true (r.stats.rollbacks > 0);
  Alcotest.(check bool) "blocks were compensated" true
    (r.stats.compensated_blocks > 0);
  (* every retry allocated one block; all but the last were released *)
  Alcotest.(check int) "no leak beyond live data" 1
    (match r.machine with
    | Engine.M_fast m -> Heap.live_blocks m.Machine.heap
    | _ -> Alcotest.fail "expected the fast engine")

let retry_counters_per_site () =
  (* Distinct sites get distinct retry budgets. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "x" (Value.Int 0);
    B.global b "y" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "a" (Instr.Global "x");
     B.assert_ f (B.reg "a") ~msg:"x set";
     B.load f "b" (Instr.Global "y");
     B.assert_ f (B.reg "b") ~msg:"y set";
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 40;
     B.store f (Instr.Global "x") (B.int 1);
     B.sleep f 40;
     B.store f (Instr.Global "y") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "worker" [];
    B.spawn f "t2" "setter" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check int) "two recovery episodes" 2
    (List.length r.stats.episodes)

let deadlock_backoff_avoids_livelock () =
  (* A symmetric deadlock: both threads' inner locks are recoverable, and
     without randomized backoff they could retry in lockstep forever. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "a";
    B.mutex b "b";
    B.global b "done1" (Value.Int 0);
    (B.func b "w1" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "a");
     B.sleep f 10;
     B.lock f (B.mutex_ref "b");
     B.unlock f (B.mutex_ref "b");
     B.unlock f (B.mutex_ref "a");
     B.ret f None);
    (B.func b "w2" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "b");
     B.sleep f 10;
     B.lock f (B.mutex_ref "a");
     B.unlock f (B.mutex_ref "a");
     B.unlock f (B.mutex_ref "b");
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "w1" [];
    B.spawn f "t2" "w2" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  expect_hang (run p);
  let h = Conair.harden_exn p Conair.Survival in
  expect_success (run_hardened h)

let checkpoint_keeps_latest () =
  (* Two checkpoints in a row: rollback goes to the most recent one. *)
  let p =
    B.build ~main:"main" @@ fun b ->
    B.global b "flag" (Value.Int 0);
    B.global b "probe" (Value.Int 0);
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     (* first region boundary *)
     B.store f (Instr.Global "probe") (B.int 1);
     B.load f "p" (Instr.Global "probe");
     (* second region boundary *)
     B.store f (Instr.Global "probe") (B.int 2);
     B.load f "v" (Instr.Global "flag");
     B.assert_ f (B.reg "v") ~msg:"flag";
     B.ret f None);
    (B.func b "setter" ~params:[] @@ fun f ->
     B.label f "entry";
     B.sleep f 50;
     B.store f (Instr.Global "flag") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.spawn f "t1" "worker" [];
    B.spawn f "t2" "setter" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    B.exit_ f
  in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  (* rollback to the latest point must not re-execute the first store:
     probe stays 2 and tracecheck sees nothing *)
  Alcotest.(check int) "no violations" 0 r.stats.tracecheck_violations

let stats_consistency () =
  let p = Test_util.interproc_segfault_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  let s = r.stats in
  Alcotest.(check int) "steps = instrs + idle" s.steps (s.instrs + s.idle);
  Alcotest.(check bool) "episodes retried" true (Stats.total_retries s > 0);
  Alcotest.(check bool) "recovery time positive" true
    (Stats.max_recovery_time s > 0);
  (* per-checkpoint hit counts sum to the total *)
  let sum = Hashtbl.fold (fun _ n acc -> n + acc) s.ckpt_hits 0 in
  Alcotest.(check int) "ckpt hits sum" s.checkpoints sum

let suites =
  [
    ( "heap",
      [
        case "alloc/load/store" heap_alloc_load_store;
        case "free semantics" heap_free_semantics;
        case "snapshot isolation" heap_snapshot_isolated;
      ] );
    ("locks", [ case "basics" locks_basics ]);
    ( "interp",
      [
        case "arithmetic" arithmetic_semantics;
        case "comparisons and booleans" comparison_semantics;
        case "unary operators" unop_semantics;
        case "division by zero faults" division_by_zero_faults;
        case "undefined register faults" undefined_register_faults;
        case "globals and stack slots" globals_and_stack;
        case "undeclared global faults" undeclared_global_faults;
        case "heap instructions" heap_instructions;
        case "null dereference is a segfault" null_deref_is_segfault;
        case "use after free is a segfault" use_after_free_is_segfault;
        case "call and return" call_and_return;
        case "missing return value faults" missing_return_value_faults;
        case "recursion" recursion_works;
        case "output formatting" output_formatting;
      ] );
    ( "sched",
      [
        case "spawn/join ordering" spawn_join_order;
        case "exit terminates everything" exit_terminates_everything;
        case "fuel exhaustion" infinite_loop_exhausts_fuel;
        case "self deadlock hangs" self_deadlock_hangs;
        case "unlock of unheld lock faults" unlock_not_held_faults;
        case "lock contention resolves under any seed"
          lock_contention_resolves;
        case "timed lock timeout" timed_lock_timeout_fires;
        case "timed lock acquires when free" timed_lock_acquires_when_free;
        case "sleep delays a thread" sleep_delays_thread;
        case "determinism for a fixed seed" determinism_same_seed;
        case "round robin is fair" round_robin_is_fair;
      ] );
    ( "recovery-engine",
      [
        case "compensation frees blocks" compensation_frees_blocks;
        case "per-site retry counters" retry_counters_per_site;
        case "deadlock backoff avoids livelock"
          deadlock_backoff_avoids_livelock;
        case "rollback targets the latest checkpoint" checkpoint_keeps_latest;
        case "stats are consistent" stats_consistency;
      ] );
  ]
