(* Tests for automated fix synthesis (lib/fix).

   Four layers: candidate synthesis on hand-built racy programs (grammar
   coverage, Validate-cleanliness, dedup, caps) plus the Rewrite
   primitive it leans on; each validation gate rejecting a deliberately
   bad candidate; the end-to-end pipeline over the bugbench catalog
   (every buggy app must yield a surviving candidate, MySQL1 at the
   acceptance budget of 100 sweep seeds); and the cross-engine
   byte-identity of the fix report JSON. The fix.docs suite pins the
   worked example of docs/FIXING.md. *)

open Test_util
open Conair.Ir
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome
module Rewrite = Conair.Transform.Rewrite
module Race = Conair.Race
module Driver = Conair.Replay.Driver
module Log = Conair.Replay.Log
module Patch = Conair.Fix.Patch
module Gates = Conair.Fix.Gates
module Pipeline = Conair.Fix.Pipeline
module Json = Conair.Obs.Json
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

(* --- helpers ------------------------------------------------------- *)

let detect_config = { Machine.default_config with fuel = 8_000_000 }

let report_of p =
  let h = Conair.harden_exn p Conair.Survival in
  snd (Conair.detect_hardened ~config:detect_config h)

let instance name variant =
  match Registry.find name with
  | None -> Alcotest.failf "no bugbench app named %s" name
  | Some s -> s.Spec.make ~variant ~oracle:s.Spec.info.needs_oracle

let strategies cands = List.map (fun c -> c.Patch.p_strategy) cands

let op_of_iid p iid =
  let found = ref None in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          if i.Instr.iid = iid then found := Some i.Instr.op));
  match !found with
  | Some op -> op
  | None -> Alcotest.failf "no instruction with iid %d" iid

let instr_count p =
  let n = ref 0 in
  Program.iter_funcs p (fun f -> n := !n + Func.instr_count f);
  !n

(* --- candidate synthesis ------------------------------------------- *)

let synthesis_order_violation () =
  let p = order_violation_program ~buggy:true () in
  let report = report_of p in
  let cands = Patch.synthesize p report in
  Alcotest.(check bool) "candidates synthesized" true (cands <> []);
  List.iter (fun (c : Patch.t) -> check_valid c.Patch.p_program) cands;
  let strats = strategies cands in
  Alcotest.(check bool) "lock ladder present" true
    (List.mem Patch.Lock_span strats || List.mem Patch.Lock_access strats);
  Alcotest.(check bool) "order candidates present" true
    (List.mem Patch.Order strats);
  (* both directions of the order enforcement are offered *)
  let order_ids =
    List.filter_map
      (fun c -> if c.Patch.p_strategy = Patch.Order then Some c.Patch.p_id else None)
      cands
  in
  Alcotest.(check int) "two order directions" 2 (List.length order_ids);
  (* ids are unique within a synthesis run *)
  let ids = List.map (fun c -> c.Patch.p_id) cands in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* a lock-ladder candidate declares the fresh mutex it introduces *)
  List.iter
    (fun (c : Patch.t) ->
      if List.mem Patch.fix_mutex c.Patch.p_sync then
        Alcotest.(check bool) "fix mutex declared" true
          (List.mem Patch.fix_mutex c.Patch.p_program.Program.mutexes))
    cands;
  (* inserted instructions got fresh ids: the patched program's id space
     strictly grows where edits were made *)
  List.iter
    (fun (c : Patch.t) ->
      if c.Patch.p_strategy <> Patch.Fuse then
        Alcotest.(check bool)
          (c.Patch.p_id ^ ": patched program gained instructions")
          true
          (instr_count c.Patch.p_program > instr_count p))
    cands

let synthesis_deadlock () =
  let p = deadlock_program ~buggy:true () in
  let report = report_of p in
  Alcotest.(check bool) "fixture deadlocks" true
    (List.exists (fun c -> c.Race.Report.cy_actual) report.Race.Report.cycles);
  let cands = Patch.synthesize p report in
  List.iter (fun (c : Patch.t) -> check_valid c.Patch.p_program) cands;
  let fuse =
    List.filter (fun c -> c.Patch.p_strategy = Patch.Fuse) cands
  in
  (match fuse with
  | [ f ] ->
      Alcotest.(check (list string)) "fuse introduces the fused mutex"
        [ Patch.fuse_mutex ] f.Patch.p_sync;
      Alcotest.(check bool) "fused mutex declared" true
        (List.mem Patch.fuse_mutex f.Patch.p_program.Program.mutexes);
      (* fusion rewrites in place: no instructions added or removed *)
      Alcotest.(check int) "fusion preserves instruction count"
        (instr_count p)
        (instr_count f.Patch.p_program)
  | l -> Alcotest.failf "expected exactly 1 fuse candidate, got %d" (List.length l))

let synthesis_quiet () =
  let p = straightline_program () in
  let report = report_of p in
  let cands = Patch.synthesize p report in
  Alcotest.(check int) "quiet report, no candidates" 0 (List.length cands)

let synthesis_cap () =
  let p = order_violation_program ~buggy:true () in
  let report = report_of p in
  let all = Patch.synthesize p report in
  let capped = Patch.synthesize ~max_candidates:2 p report in
  Alcotest.(check bool) "fixture yields more than two" true
    (List.length all > 2);
  Alcotest.(check int) "cap respected" 2 (List.length capped);
  (* the cap keeps the grammar's prefix, in order *)
  Alcotest.(check (list string)) "cap is a prefix"
    (List.filteri (fun i _ -> i < 2) (List.map (fun c -> c.Patch.p_id) all))
    (List.map (fun c -> c.Patch.p_id) capped)

let synthesis_deterministic () =
  let p = order_violation_program ~buggy:true () in
  let report = report_of p in
  let edits c = String.concat "\n" c.Patch.p_edits in
  Alcotest.(check (list string)) "same program, same candidates"
    (List.map edits (Patch.synthesize p report))
    (List.map edits (Patch.synthesize p report))

(* --- the Rewrite primitive the synthesizer leans on ----------------- *)

let replace_op_swaps () =
  let p = deadlock_program ~buggy:true () in
  let lock_iid =
    let found = ref None in
    Program.iter_funcs p (fun f ->
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Lock (Instr.Const (Value.Mutex "nlock")) when !found = None
              ->
                found := Some i.Instr.iid
            | _ -> ()));
    Option.get !found
  in
  let rw = Rewrite.create () in
  Rewrite.replace_op rw lock_iid
    (Instr.Lock (Instr.Const (Value.Mutex "slock")));
  let p', _ = Rewrite.apply rw p in
  check_valid p';
  (match op_of_iid p' lock_iid with
  | Instr.Lock (Instr.Const (Value.Mutex "slock")) -> ()
  | _ -> Alcotest.fail "operation was not swapped in place");
  Alcotest.(check int) "replacement adds no instructions" (instr_count p)
    (instr_count p')

let replace_op_conflicts () =
  let rw = Rewrite.create () in
  Rewrite.replace_op rw 1 Instr.Nop;
  match Rewrite.replace_op rw 1 Instr.Nop with
  | () -> Alcotest.fail "double replacement must be rejected"
  | exception Invalid_argument _ -> ()

(* --- the three gates ----------------------------------------------- *)

let gate_config = { Machine.default_config with fuel = 500_000 }

(* The unpatched program is the canonical bad candidate: its own failing
   schedule must keep failing through the directed feed. *)
let replay_gate_rejects_unpatched () =
  let p = deadlock_program ~buggy:true () in
  let ident = Log.ident ~variant:"buggy" ~mode:"none" "deadlock-fixture" in
  let rb, log = Driver.record ~config:gate_config ~ident p in
  Alcotest.(check bool) "recorded run fails" false
    (Outcome.is_success rb.Driver.rb_outcome);
  let g = Gates.replay_gate ~log p in
  Alcotest.(check bool) "unpatched program fails gate 1" false g.Gates.g_passed

let replay_gate_accepts_fused () =
  let p = deadlock_program ~buggy:true () in
  let ident = Log.ident ~variant:"buggy" ~mode:"none" "deadlock-fixture" in
  let _, log = Driver.record ~config:gate_config ~ident p in
  let fuse =
    List.find
      (fun c -> c.Patch.p_strategy = Patch.Fuse)
      (Patch.synthesize p (report_of p))
  in
  let g = Gates.replay_gate ~log fuse.Patch.p_program in
  Alcotest.(check bool)
    ("lock fusion passes gate 1: " ^ g.Gates.g_detail)
    true g.Gates.g_passed

let regression_gate_directions () =
  let bad = Gates.sweep ~config:gate_config ~seeds:8
      (deadlock_program ~buggy:true ())
  in
  Alcotest.(check bool) "buggy sweep records failures" true
    (bad.Gates.sw_failures > 0);
  let g = Gates.regression_gate bad in
  Alcotest.(check bool) "failing sweep fails gate 2" false g.Gates.g_passed;
  let ok = Gates.sweep ~config:gate_config ~seeds:8 (straightline_program ()) in
  let g = Gates.regression_gate ok in
  Alcotest.(check bool) "clean sweep passes gate 2" true g.Gates.g_passed

let deadlock_gate_directions () =
  let cyclic =
    Gates.sweep ~config:gate_config ~seeds:8 (deadlock_program ~buggy:true ())
  in
  Alcotest.(check bool) "cycle keys minted" true
    (cyclic.Gates.sw_cycle_keys <> []);
  let quiet =
    Gates.sweep ~config:gate_config ~seeds:8 (straightline_program ())
  in
  (* a candidate minting cycles the baseline never had is rejected... *)
  let g = Gates.deadlock_gate ~baseline:quiet cyclic in
  Alcotest.(check bool) "fresh cycles fail gate 3" false g.Gates.g_passed;
  (* ...but pre-existing cycles are not held against it *)
  let g = Gates.deadlock_gate ~baseline:cyclic cyclic in
  Alcotest.(check bool) "pre-existing cycles pass gate 3" true
    g.Gates.g_passed

(* --- the end-to-end pipeline --------------------------------------- *)

let all_gates_passed (c : Pipeline.candidate) =
  List.for_all (fun g -> g.Gates.g_passed) c.c_gates

(* Acceptance budget: >= 100 fuzz seeds behind gates 2+3. *)
let mysql1_end_to_end () =
  let inst = instance "MySQL1" Spec.Buggy in
  let options =
    { Pipeline.default_options with sweep_seeds = 100; search_seeds = 10 }
  in
  let t =
    Pipeline.run ~options ~accept:inst.Spec.accept ~app:"MySQL1"
      ~variant:"buggy" inst.Spec.program
  in
  Alcotest.(check bool) "a failing schedule was found" true
    (t.Pipeline.fx_failure <> None);
  (match t.Pipeline.fx_minimized with
  | Some (before, after) ->
      Alcotest.(check bool) "minimization never widens" true (after <= before)
  | None -> Alcotest.fail "failing schedule was not minimized");
  Alcotest.(check bool) "at least one candidate survives all gates" true
    (t.Pipeline.fx_survivors >= 1);
  (* every reported survivor actually passed all three gates and was
     costed; every non-survivor records which gate rejected it *)
  List.iter
    (fun (c : Pipeline.candidate) ->
      Alcotest.(check int)
        (c.c_patch.Patch.p_id ^ ": three gates")
        3
        (List.length c.c_gates);
      if c.c_survived then begin
        Alcotest.(check bool) (c.c_patch.Patch.p_id ^ ": gates green") true
          (all_gates_passed c);
        Alcotest.(check bool) (c.c_patch.Patch.p_id ^ ": costed") true
          (c.c_cost <> None)
      end
      else
        Alcotest.(check bool)
          (c.c_patch.Patch.p_id ^ ": a gate names the rejection")
          true
          (not (all_gates_passed c)))
    t.Pipeline.fx_candidates;
  (* the walk-outward story: the narrowest ladder rung does not heal
     MySQL1, a wider extent does *)
  let by_strategy s =
    List.filter
      (fun (c : Pipeline.candidate) -> c.c_patch.Patch.p_strategy = s)
      t.Pipeline.fx_candidates
  in
  Alcotest.(check bool) "per-access locking is rejected" true
    (List.exists (fun (c : Pipeline.candidate) -> not c.c_survived)
       (by_strategy Patch.Lock_access));
  Alcotest.(check bool) "a wider ladder rung survives" true
    (List.exists (fun (c : Pipeline.candidate) -> c.c_survived)
       (by_strategy Patch.Lock_span @ by_strategy Patch.Lock_block));
  (* ranking: survivors first, cheapest first *)
  let rec check_ranked seen_rejected prev = function
    | [] -> ()
    | (c : Pipeline.candidate) :: rest ->
        if c.c_survived then begin
          Alcotest.(check bool) "survivors precede rejections" false
            seen_rejected;
          (match (prev, c.c_cost) with
          | Some a, Some b ->
              Alcotest.(check bool) "survivors ordered by mean cost" true
                (a.Conair.Obs.Overhead.k_mean_instrs
                <= b.Conair.Obs.Overhead.k_mean_instrs)
          | _ -> ());
          check_ranked seen_rejected c.c_cost rest
        end
        else check_ranked true prev rest
  in
  check_ranked false None t.Pipeline.fx_candidates;
  (* the paper's cost story: a real fix is far cheaper than hardening
     the program for perpetual recovery *)
  match (t.Pipeline.fx_hardened_overhead_pct, t.Pipeline.fx_candidates) with
  | Some hardened, { c_overhead_pct = Some fix; _ } :: _ ->
      Alcotest.(check bool) "fixing beats perpetual recovery" true
        (fix < hardened)
  | _ -> Alcotest.fail "missing overhead measurements"

(* Every fixable buggy catalog app must end the pipeline with at least
   one surviving candidate — the detect -> explain -> repair loop
   closes on the whole bug suite. Apache is the honest exception: its
   check-then-act bug overflows a capacity even under full
   serialization (the real fix is semantic — wait for the flusher), so
   the grammar has no fixing candidate and the pipeline must say so
   with zero survivors rather than pass a placebo. *)
let catalog_sweep () =
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.Spec.make ~variant:Spec.Buggy ~oracle:s.Spec.info.needs_oracle in
      let options =
        { Pipeline.default_options with sweep_seeds = 16; search_seeds = 10 }
      in
      let t =
        Pipeline.run ~options ~accept:inst.Spec.accept ~app:s.Spec.info.name
          ~variant:"buggy" inst.Spec.program
      in
      if s.Spec.info.name = "Apache" then begin
        Alcotest.(check bool) "Apache: candidates were synthesized and gated"
          true
          (t.Pipeline.fx_candidates <> []);
        Alcotest.(check int) "Apache: no placebo survives the gates" 0
          t.Pipeline.fx_survivors
      end
      else
        Alcotest.(check bool)
          (s.Spec.info.name ^ ": at least one surviving candidate")
          true
          (t.Pipeline.fx_survivors >= 1))
    (Registry.all @ Registry.extended)

let clean_variant_quiet () =
  let inst = instance "MySQL1" Spec.Clean in
  let options =
    { Pipeline.default_options with sweep_seeds = 4; search_seeds = 4 }
  in
  let t =
    Pipeline.run ~options ~accept:inst.Spec.accept ~app:"MySQL1"
      ~variant:"clean" inst.Spec.program
  in
  Alcotest.(check bool) "no failing schedule on the clean variant" true
    (t.Pipeline.fx_failure = None);
  Alcotest.(check int) "no candidates" 0 (List.length t.Pipeline.fx_candidates);
  Alcotest.(check int) "no survivors" 0 t.Pipeline.fx_survivors

(* --- report determinism -------------------------------------------- *)

let json_engine_identity () =
  let inst = instance "HawkNL" Spec.Buggy in
  let report_on engine =
    let options =
      {
        Pipeline.default_options with
        engine;
        sweep_seeds = 16;
        search_seeds = 5;
      }
    in
    let t =
      Pipeline.run ~options ~accept:inst.Spec.accept ~app:"HawkNL"
        ~variant:"buggy" inst.Spec.program
    in
    Json.to_string (Pipeline.to_json t)
  in
  let fast = report_on Conair.Runtime.Engine.Fast in
  Alcotest.(check string) "ref report is byte-identical"
    fast
    (report_on Conair.Runtime.Engine.Ref);
  Alcotest.(check string) "block report is byte-identical"
    fast
    (report_on Conair.Runtime.Engine.Block)

(* --- docs/FIXING.md ------------------------------------------------ *)

(* cwd is test/ under [dune runtest] but the project root under
   [dune exec test/test_main.exe] *)
let fixing_doc_path () =
  if Sys.file_exists "../docs/FIXING.md" then "../docs/FIXING.md"
  else "docs/FIXING.md"

(* The worked example of docs/FIXING.md, performed in-process: same app,
   same knobs, and every number the text commits to. If this test moves,
   the doc moves with it. *)
let fixing_doc_walkthrough () =
  let doc = In_channel.with_open_text (fixing_doc_path ()) In_channel.input_all in
  let pinned = "fix MySQL1 --sweep-seeds 25 --search-seeds 10" in
  Alcotest.(check bool) "the doc shows the pinned command" true
    (let rec scan i =
       i + String.length pinned <= String.length doc
       && (String.sub doc i (String.length pinned) = pinned || scan (i + 1))
     in
     scan 0);
  let inst = instance "MySQL1" Spec.Buggy in
  let options =
    { Pipeline.default_options with sweep_seeds = 25; search_seeds = 10 }
  in
  let t =
    Pipeline.run ~options ~accept:inst.Spec.accept ~app:"MySQL1"
      ~variant:"buggy" inst.Spec.program
  in
  (* the numbers the doc's transcript shows *)
  Alcotest.(check int) "five candidates" 5 (List.length t.Pipeline.fx_candidates);
  Alcotest.(check int) "three survivors" 3 t.Pipeline.fx_survivors;
  Alcotest.(check (option (pair int int))) "minimized 6 -> 2 preemptions"
    (Some (6, 2)) t.Pipeline.fx_minimized;
  Alcotest.(check (option string)) "round-robin found the failure"
    (Some "round-robin") t.Pipeline.fx_fail_policy;
  (* and its shape: lock-access rejected, the order fix cheapest *)
  (match t.Pipeline.fx_candidates with
  | first :: _ ->
      Alcotest.(check bool) "cheapest survivor is the order fix" true
        (first.c_patch.Patch.p_strategy = Patch.Order && first.c_survived)
  | [] -> Alcotest.fail "no candidates");
  Alcotest.(check bool) "lock-access is rejected" true
    (List.exists
       (fun (c : Pipeline.candidate) ->
         c.c_patch.Patch.p_strategy = Patch.Lock_access && not c.c_survived)
       t.Pipeline.fx_candidates)

let suites =
  [
    ( "fix.synthesis",
      [
        case "order violation grammar" synthesis_order_violation;
        case "deadlock fusion" synthesis_deadlock;
        case "quiet report" synthesis_quiet;
        case "candidate cap" synthesis_cap;
        case "deterministic" synthesis_deterministic;
      ] );
    ( "fix.rewrite",
      [
        case "replace_op swaps in place" replace_op_swaps;
        case "replace_op conflicts" replace_op_conflicts;
      ] );
    ( "fix.gates",
      [
        case "replay gate rejects the unpatched program"
          replay_gate_rejects_unpatched;
        case "replay gate accepts lock fusion" replay_gate_accepts_fused;
        case "regression gate both directions" regression_gate_directions;
        case "deadlock gate both directions" deadlock_gate_directions;
      ] );
    ( "fix.pipeline",
      [
        slow_case "MySQL1 end to end (100 seeds)" mysql1_end_to_end;
        slow_case "catalog sweep" catalog_sweep;
        case "clean variant stays quiet" clean_variant_quiet;
      ] );
    ( "fix.guarantees",
      [ slow_case "engines agree on the report" json_engine_identity ] );
    ("fix.docs", [ slow_case "FIXING.md walkthrough" fixing_doc_walkthrough ]);
  ]
