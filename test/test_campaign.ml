(* Schedule-coverage observability and campaign aggregation:
   [Obs.Coverage] signatures and coverage maps, and the [Obs.Campaign]
   fold over worker JSONL streams — in particular the determinism
   properties the campaign leans on: signatures stable across repeated
   recordings, reports byte-identical across coordinator restarts and
   worker orderings. *)

module Json = Conair.Obs.Json
module Coverage = Conair.Obs.Coverage
module Campaign = Conair.Obs.Campaign
module Metrics = Conair.Obs.Metrics
module Sched = Conair.Runtime.Sched
module Machine = Conair.Runtime.Machine
module Gen = Conair_genprog.Genprog

let config = { Machine.default_config with fuel = 300_000 }

(* ---------------- signatures ---------------- *)

let signature_properties () =
  let s ?context ?orders ~preemptions () =
    Coverage.signature ?context ?orders ~decisions:[| 0; 1; 0; 1 |]
      ~preemptions ()
  in
  let base = s ~preemptions:[| 1; 3 |] () in
  Alcotest.(check string)
    "same inputs, same signature" base
    (s ~preemptions:[| 1; 3 |] ());
  Alcotest.(check bool)
    "preemption set matters" false
    (base = s ~preemptions:[| 1 |] ());
  Alcotest.(check bool)
    "context matters" false
    (base = s ~context:"other-app" ~preemptions:[| 1; 3 |] ());
  Alcotest.(check bool)
    "access orders matter" false
    (base = s ~orders:[ ("global:x", "t0w@b;t1r@c;") ] ~preemptions:[| 1; 3 |] ());
  Alcotest.(check int) "MD5 hex digest" 32 (String.length base)

(* The facade signature of a real recorded run is stable across repeated
   recordings — the restart-determinism property at the single-run
   level. *)
let signature_stable_across_recordings () =
  let p = Gen.racy_program (Gen.racy_spec_gen (Random.State.make [| 3 |])) in
  let one () =
    let coll = Coverage.collector () in
    let _, log =
      Conair.record_run
        ~config:{ config with policy = Sched.Random 11 }
        ~ident:(Conair.Replay.Log.ident "sigtest")
        ~race:(Coverage.probe coll) p
    in
    Conair.interleaving_signature
      ~orders:(Coverage.observed coll).Coverage.ob_orders log
  in
  Alcotest.(check string) "recorded twice, same signature" (one ()) (one ())

(* ---------------- the coverage map ---------------- *)

let coverage_map () =
  let cover = Coverage.create () in
  let coll = Coverage.collector () in
  let _, _ =
    Conair.record_run
      ~config:{ config with policy = Sched.Random 5 }
      ~ident:(Conair.Replay.Log.ident "cov")
      ~race:(Coverage.probe coll)
      (Gen.racy_program (Gen.racy_spec_gen (Random.State.make [| 9 |])))
  in
  let ob = Coverage.observed coll in
  Alcotest.(check bool) "observed some points" true (ob.Coverage.ob_points <> []);
  Alcotest.(check (float 1e-9))
    "everything novel on an empty map" 1.
    (Coverage.novelty cover ~app:"racy" ob);
  Coverage.note cover ~app:"racy" ob;
  Alcotest.(check (float 1e-9))
    "nothing novel after noting" 0.
    (Coverage.novelty cover ~app:"racy" ob);
  Alcotest.(check (float 1e-9))
    "unknown app is all-novel" 1.
    (Coverage.novelty cover ~app:"elsewhere" ob);
  Alcotest.(check bool) "fresh signature" true
    (Coverage.note_signature cover "sig-1");
  Alcotest.(check bool) "known signature" false
    (Coverage.note_signature cover "sig-1");
  (* a worker dump merges losslessly into another map *)
  let other = Coverage.create () in
  (match Coverage.merge_json other (Coverage.to_json cover) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string))
    "merged points" (Coverage.points cover ~app:"racy")
    (Coverage.points other ~app:"racy");
  Alcotest.(check (list string))
    "merged edges" (Coverage.edges cover ~app:"racy")
    (Coverage.edges other ~app:"racy")

(* ---------------- worker streams ---------------- *)

let sig_a = String.make 32 'a'
let sig_b = String.make 32 'b'
let sig_c = String.make 32 'c'

let run_line case seed =
  Printf.sprintf
    "{\"type\":\"run\",\"case\":%S,\"seed\":%d,\"outcome\":\"success\",\"steps\":40,\"instrs\":30,\"rollbacks\":1,\"episodes\":1,\"retries\":2,\"max_episode_steps\":7,\"sites\":[]}"
    case seed

let finding_line ~signature ~case ~seed ~run_index ~log =
  Printf.sprintf
    "{\"type\":\"finding\",\"signature\":%S,\"case\":%S,\"seed\":%d,\"outcome\":\"failed\",\"run_index\":%d,\"novelty\":0.5,\"log\":%S}"
    signature case seed run_index log

let summary_line ~worker ~runs ~findings =
  Printf.sprintf
    "{\"type\":\"fuzz_summary\",\"worker\":%d,\"engine\":\"fast\",\"elapsed_sec\":2.0,\"checks\":12,\"failures\":0,\"hardened_runs\":%d,\"total_runs\":%d,\"findings\":%d}"
    worker (runs / 2) runs findings

let coverage_line () =
  let c = Coverage.create () in
  Json.to_string (Coverage.to_json c)

let worker0 =
  [
    run_line "racy" 1;
    finding_line ~signature:sig_a ~case:"racy" ~seed:1 ~run_index:2
      ~log:"w0/a.sched.jsonl";
    run_line "racy" 2;
    finding_line ~signature:sig_b ~case:"racy" ~seed:2 ~run_index:3 ~log:"";
    coverage_line ();
    summary_line ~worker:0 ~runs:4 ~findings:2;
  ]

let worker1 =
  [
    finding_line ~signature:sig_a ~case:"racy" ~seed:7 ~run_index:1
      ~log:"w1/a.sched.jsonl";
    run_line "wakeup" 8;
    finding_line ~signature:sig_c ~case:"wakeup" ~seed:8 ~run_index:5
      ~log:"w1/c.sched.jsonl";
    coverage_line ();
    summary_line ~worker:1 ~runs:6 ~findings:2;
  ]

let fold ?elapsed workers =
  match Campaign.of_worker_lines ?elapsed workers with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let campaign_fold () =
  let c = fold ~elapsed:2.5 [ (0, worker0); (1, worker1) ] in
  Alcotest.(check int) "total runs" 10 c.Campaign.c_runs;
  Alcotest.(check int) "workers" 2 (List.length c.Campaign.c_workers);
  Alcotest.(check int) "unique findings" 3 (List.length c.Campaign.c_findings);
  Alcotest.(check int) "duplicates" 1 c.Campaign.c_duplicates;
  Alcotest.(check (list string)) "engines" [ "fast" ] c.Campaign.c_engines;
  Alcotest.(check (float 1e-9)) "elapsed override" 2.5 c.Campaign.c_elapsed;
  Alcotest.(check (float 1e-9)) "runs/sec" 4. c.Campaign.c_runs_per_sec;
  (* deterministic discovery order: ascending (run_index, case, seed) *)
  Alcotest.(check (list string))
    "finding order" [ sig_a; sig_b; sig_c ]
    (List.map (fun f -> f.Campaign.f_signature) c.Campaign.c_findings);
  (* the duplicate's count lands on the surviving finding *)
  (match c.Campaign.c_findings with
  | a :: _ -> Alcotest.(check int) "sig_a seen twice" 2 a.Campaign.f_count
  | [] -> Alcotest.fail "no findings");
  (* the curve is nondecreasing and ends at (total runs, uniques) *)
  let rec nondecreasing = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        x1 <= x2 && y1 <= y2 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "curve nondecreasing" true
    (nondecreasing c.Campaign.c_curve);
  (match List.rev c.Campaign.c_curve with
  | (x, y) :: _ ->
      Alcotest.(check (pair int int)) "curve endpoint" (10, 3) (x, y)
  | [] -> Alcotest.fail "empty curve");
  (* aggregate folded the run records *)
  Alcotest.(check int) "aggregate runs" 3 c.Campaign.c_agg.Conair.Obs.Aggregate.g_runs

let campaign_restart_determinism () =
  let report workers =
    Json.to_string (Campaign.to_json (fold ~elapsed:2.5 workers))
  in
  let once = report [ (0, worker0); (1, worker1) ] in
  Alcotest.(check string) "re-folded report identical" once
    (report [ (0, worker0); (1, worker1) ]);
  Alcotest.(check string) "worker order irrelevant" once
    (report [ (1, worker1); (0, worker0) ])

let campaign_minimized_and_digest () =
  let c = fold [ (0, worker0); (1, worker1) ] in
  let digest = Campaign.signatures_digest c in
  Alcotest.(check string)
    "digest only depends on the signature set" digest
    (Campaign.signatures_digest (fold [ (1, worker1); (0, worker0) ]));
  let c' = Campaign.set_minimized c ~signature:sig_b ~path:"corpus/b.jsonl" in
  let f =
    List.find (fun f -> f.Campaign.f_signature = sig_b) c'.Campaign.c_findings
  in
  Alcotest.(check (option string))
    "minimized path recorded"
    (Some "corpus/b.jsonl") f.Campaign.f_minimized;
  Alcotest.(check string) "digest unchanged by corpus paths" digest
    (Campaign.signatures_digest c')

let campaign_metrics () =
  let c = fold ~elapsed:2.5 [ (0, worker0); (1, worker1) ] in
  let reg = Metrics.create () in
  let runs = Metrics.counter reg "conair_campaign_runs_total" in
  let uniq = Metrics.counter reg "conair_campaign_unique_failures" in
  let dups = Metrics.counter reg "conair_campaign_duplicates_total" in
  ignore (Campaign.metrics ~into:reg c);
  Alcotest.(check int) "runs counter" 10 (Metrics.counter_value runs);
  Alcotest.(check int) "unique counter" 3 (Metrics.counter_value uniq);
  Alcotest.(check int) "duplicates counter" 1 (Metrics.counter_value dups);
  (* folding again into the same registry must not double-count *)
  ignore (Campaign.metrics ~into:reg c);
  Alcotest.(check int) "idempotent re-export" 10 (Metrics.counter_value runs)

let seed_range_syntax () =
  (match Campaign.parse_seed_range "3..17" with
  | Ok r -> Alcotest.(check (pair int int)) "inclusive bounds" (3, 17) r
  | Error e -> Alcotest.fail e);
  (match Campaign.parse_seed_range "5..5" with
  | Ok r -> Alcotest.(check (pair int int)) "singleton range" (5, 5) r
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Campaign.parse_seed_range bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error e ->
          Alcotest.(check bool)
            (bad ^ ": error text carries usage help")
            true
            (String.length e > 0))
    [ "7..3"; "abc"; "1...9"; "4"; ".." ]

let bench_document () =
  let c = fold ~elapsed:2.0 [ (0, worker0); (1, worker1) ] in
  let agree name =
    match
      Json.member "signature_agreement"
        (Campaign.bench_json ~jobs:2 ~iterations:10 name)
    with
    | Some (Json.Bool b) -> b
    | _ -> Alcotest.fail "signature_agreement missing"
  in
  Alcotest.(check bool)
    "same streams agree" true
    (agree [ ("ref", c); ("fast", c); ("block", c) ]);
  let divergent = fold [ (0, worker0) ] in
  Alcotest.(check bool)
    "different signature sets disagree" false
    (agree [ ("ref", c); ("fast", divergent) ])

let suites =
  [
    ( "campaign",
      [
        Alcotest.test_case "signature properties" `Quick signature_properties;
        Alcotest.test_case "signature stable across recordings" `Quick
          signature_stable_across_recordings;
        Alcotest.test_case "coverage map" `Quick coverage_map;
        Alcotest.test_case "fold worker streams" `Quick campaign_fold;
        Alcotest.test_case "restart determinism" `Quick
          campaign_restart_determinism;
        Alcotest.test_case "minimized paths and digest" `Quick
          campaign_minimized_and_digest;
        Alcotest.test_case "prometheus counters" `Quick campaign_metrics;
        Alcotest.test_case "--seeds syntax" `Quick seed_range_syntax;
        Alcotest.test_case "bench document" `Quick bench_document;
      ] );
  ]
