(* The recovery-as-a-service layer: protocol codecs (round-trips,
   malformed input, the inline-payload size guard), the per-tenant FIFO
   worker pool (ordering, backpressure, shutdown draining), the
   per-connection outbox (delivery, dead-peer discard), an in-process
   end-to-end exchange over a Unix socket (ack -> telemetry -> result,
   report identical to direct [Job.execute], survival of an abrupt
   client disconnect), the hook re-entrancy property the daemon leans on
   (interleaved in-process runs with different probes produce the same
   reports as sequential runs), and the [Obs.Aggregate] guards against
   degenerate percentile and throughput inputs. *)

module Json = Conair.Obs.Json
module Jsonl = Conair.Obs.Jsonl
module Aggregate = Conair.Obs.Aggregate
module Machine = Conair.Runtime.Machine
module Sched = Conair.Runtime.Sched
module Engine = Conair.Runtime.Engine
module Protocol = Conair_server.Protocol
module Pool = Conair_server.Pool
module Outbox = Conair_server.Outbox
module Job = Conair_server.Job
module Server = Conair_server.Server
module Client = Conair_server.Client
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

let mb = 1_000_000

(* --- protocol codecs ------------------------------------------------ *)

let roundtrip (r : Protocol.request) =
  let line = Protocol.request_to_line r in
  match Protocol.request_of_line ~max_program_bytes:mb line with
  | Error e -> Alcotest.failf "decode of %s: %s" line e
  | Ok r' ->
      Alcotest.(check string) "round-trips" line (Protocol.request_to_line r')

let protocol_roundtrip () =
  let bench = Protocol.Bench { app = "HawkNL"; variant = "buggy"; oracle = false } in
  let exec = { Protocol.default_exec with seed = Some 7; fuel = 100_000 } in
  List.iter roundtrip
    [
      Protocol.Submit
        {
          tenant = "t0";
          id = "j0";
          job = Protocol.Run { target = bench; mode = "survival"; exec };
        };
      Protocol.Submit
        {
          tenant = "t0";
          id = "j1";
          job = Protocol.Harden { target = bench; mode = "fix" };
        };
      Protocol.Submit
        {
          tenant = "t1";
          id = "j2";
          job = Protocol.Detect { target = bench; original = true; exec };
        };
      Protocol.Submit
        {
          tenant = "t1";
          id = "j3";
          job =
            Protocol.Minimize
              { log = [ "{\"type\":\"meta\"}" ]; max_tests = 40; detect = false };
        };
      Protocol.Submit
        {
          tenant = "t2";
          id = "j4";
          job =
            Protocol.Fuzz { target = bench; runs = 3; base_seed = 11; exec };
        };
      Protocol.Submit
        {
          tenant = "t2";
          id = "j5";
          job =
            Protocol.Run
              {
                target = Protocol.Source "thread t0 { nop }";
                mode = "none";
                exec = Protocol.default_exec;
              };
        };
      Protocol.Status;
      Protocol.Metrics;
      Protocol.Spans { tenant = "t0"; id = "j0" };
      Protocol.Ping;
      Protocol.Shutdown;
    ]

let rejects line why =
  match Protocol.request_of_line ~max_program_bytes:mb line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "accepted %s (%s)" line why

let protocol_malformed () =
  rejects "not json at all" "unparsable line";
  rejects "{\"op\":\"frobnicate\"}" "unknown op";
  rejects "{\"op\":\"submit\"}" "submit without tenant/id/kind";
  rejects
    {|{"op":"submit","tenant":"t","id":"j","kind":"warp"}|}
    "unknown job kind";
  rejects
    {|{"op":"submit","tenant":"t","id":"j","kind":"run","app":"HawkNL","mode":"sideways"}|}
    "unknown mode";
  rejects
    {|{"op":"submit","tenant":"t","id":"j","kind":"run","app":"HawkNL","engine":"warp9"}|}
    "unknown engine";
  rejects
    {|{"op":"submit","tenant":"","id":"j","kind":"run","app":"HawkNL"}|}
    "empty tenant";
  (* well-formed requests still decode after the failures above *)
  match Protocol.request_of_line ~max_program_bytes:mb {|{"op":"ping"}|} with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping stopped decoding"

let protocol_oversized () =
  let big = String.make 200 'x' in
  let line =
    Printf.sprintf
      {|{"op":"submit","tenant":"t","id":"j","kind":"run","program":%s}|}
      (Json.to_string (Json.String big))
  in
  (match Protocol.request_of_line ~max_program_bytes:100 line with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized inline source accepted");
  (match Protocol.request_of_line ~max_program_bytes:1_000 line with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "within-budget source rejected: %s" e);
  let log_line = String.make 60 'y' in
  let min_line =
    Printf.sprintf
      {|{"op":"submit","tenant":"t","id":"j","kind":"minimize","log":[%s,%s,%s]}|}
      (Json.to_string (Json.String log_line))
      (Json.to_string (Json.String log_line))
      (Json.to_string (Json.String log_line))
  in
  (match Protocol.request_of_line ~max_program_bytes:100 min_line with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized minimize log accepted");
  match Protocol.request_of_line ~max_program_bytes:1_000 min_line with
  | Ok (Protocol.Submit { job = Protocol.Minimize { log; _ }; _ }) ->
      Alcotest.(check int) "log lines survive decoding" 3 (List.length log)
  | Ok _ -> Alcotest.fail "decoded to the wrong request"
  | Error e -> Alcotest.failf "within-budget log rejected: %s" e

(* --- the worker pool ------------------------------------------------ *)

let pool_fifo_per_tenant () =
  let pool = Pool.create ~workers:3 ~max_pending:64 () in
  let mu = Mutex.create () in
  let seen = ref [] in
  let tenants = [ "a"; "b"; "c" ] in
  List.iter
    (fun tenant ->
      for i = 0 to 19 do
        match
          Pool.submit pool ~tenant (fun () ->
              Mutex.lock mu;
              seen := (tenant, i) :: !seen;
              Mutex.unlock mu)
        with
        | Ok seq -> Alcotest.(check int) "per-tenant sequence" i seq
        | Error e -> Alcotest.failf "submit refused: %s" e
      done)
    tenants;
  Pool.wait_drained pool;
  Pool.shutdown pool;
  let order = List.rev !seen in
  Alcotest.(check int) "all jobs ran" 60 (List.length order);
  List.iter
    (fun tenant ->
      let mine =
        List.filter_map
          (fun (t, i) -> if t = tenant then Some i else None)
          order
      in
      Alcotest.(check (list int))
        (tenant ^ " in submission order")
        (List.init 20 Fun.id) mine)
    tenants

let pool_backpressure () =
  let pool = Pool.create ~workers:1 ~max_pending:2 () in
  let gate_mu = Mutex.create () and gate_cv = Condition.create () in
  let open_gate = ref false in
  let ran = ref 0 and ran_mu = Mutex.create () in
  let job blocking () =
    if blocking then begin
      Mutex.lock gate_mu;
      while not !open_gate do
        Condition.wait gate_cv gate_mu
      done;
      Mutex.unlock gate_mu
    end;
    Mutex.lock ran_mu;
    incr ran;
    Mutex.unlock ran_mu
  in
  (* job 1 runs and blocks on the gate; job 2 fills the queue *)
  (match Pool.submit pool ~tenant:"t" (job true) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "submit 1: %s" e);
  (match Pool.submit pool ~tenant:"t" (job false) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "submit 2: %s" e);
  (* job 3 must block in submit until a slot frees — not be dropped,
     not error, and not hang forever once the gate opens *)
  let third_done = ref false in
  let submitter =
    Thread.create
      (fun () ->
        (match Pool.submit pool ~tenant:"t" (job false) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "submit 3: %s" e);
        third_done := true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "third submit is blocked" false !third_done;
  Mutex.lock gate_mu;
  open_gate := true;
  Condition.broadcast gate_cv;
  Mutex.unlock gate_mu;
  Thread.join submitter;
  Alcotest.(check bool) "third submit completed" true !third_done;
  Pool.wait_drained pool;
  Pool.shutdown pool;
  Alcotest.(check int) "all three jobs ran" 3 !ran

let pool_shutdown_drains () =
  let pool = Pool.create ~workers:2 ~max_pending:64 () in
  let ran = ref 0 and mu = Mutex.create () in
  for _ = 1 to 10 do
    match
      Pool.submit pool ~tenant:"t" (fun () ->
          Thread.delay 0.002;
          Mutex.lock mu;
          incr ran;
          Mutex.unlock mu)
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "submit: %s" e
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "shutdown drained every accepted job" 10 !ran;
  match Pool.submit pool ~tenant:"t" (fun () -> ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit accepted after shutdown"

(* --- the outbox ----------------------------------------------------- *)

let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> ()

let outbox_delivers () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let ob = Outbox.create ~max:8 a in
  Outbox.send ob "one";
  Outbox.send ob "two";
  Outbox.send ob "three";
  Outbox.close ob;
  Unix.close a;
  let ic = Unix.in_channel_of_descr b in
  let lines =
    List.init 3 (fun _ ->
        Option.value ~default:"<eof>" (In_channel.input_line ic))
  in
  Unix.close b;
  Alcotest.(check (list string))
    "lines in order" [ "one"; "two"; "three" ] lines

let outbox_dead_peer_discards () =
  ignore_sigpipe ();
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.close b;
  let ob = Outbox.create ~max:4 a in
  (* far more lines than the queue bound: if discard mode did not kick
     in, this loop would block forever on a full queue *)
  for i = 1 to 200 do
    Outbox.send ob (string_of_int i)
  done;
  Alcotest.(check bool) "peer marked dead" true (Outbox.is_dead ob);
  Outbox.close ob;
  Unix.close a

(* --- end to end over a Unix socket ---------------------------------- *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "conair-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let run_spec =
  Protocol.Run
    {
      target = Protocol.Bench { app = "HawkNL"; variant = "buggy"; oracle = false };
      mode = "survival";
      exec = { Protocol.default_exec with seed = Some 5; fuel = 400_000 };
    }

let with_server k =
  let sock = fresh_socket () in
  (try Sys.remove sock with Sys_error _ -> ());
  let cfg =
    {
      (Server.default_config (Server.Unix_path sock)) with
      workers = 2;
      max_pending = 8;
    }
  in
  let _server, thread = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      k (Server.Unix_path sock);
      let c = Client.connect (Server.Unix_path sock) in
      Client.send c Protocol.Shutdown;
      (match Client.recv_until c (fun f -> Client.frame_type f = "bye") with
      | Some _ -> ()
      | None -> Alcotest.fail "no bye frame on shutdown");
      Client.close c;
      Thread.join thread)

let str_member key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> ""

let serve_end_to_end () =
  with_server @@ fun address ->
  let c = Client.connect address in
  Client.send c Protocol.Ping;
  (match Client.recv c with
  | Some f when Client.frame_type f = "pong" -> ()
  | _ -> Alcotest.fail "no pong");
  (match Client.submit c ~tenant:"acme" ~id:"r1" run_spec with
  | Error e -> Alcotest.failf "submit: %s" e
  | Ok (result, telemetry) ->
      Alcotest.(check string) "status ok" "ok" (str_member "status" result);
      Alcotest.(check bool)
        "run job streams telemetry" true
        (List.length telemetry > 0);
      let direct = Job.execute run_spec in
      let served =
        match Json.member "report" result with
        | Some r -> Json.to_string r
        | None -> Alcotest.fail "result without report"
      in
      Alcotest.(check string)
        "served report identical to direct execution"
        (Json.to_string direct.Job.jr_report)
        served);
  (* status endpoint reflects the completed job *)
  Client.send c Protocol.Status;
  (match Client.recv_until c (fun f -> Client.frame_type f = "serve_status") with
  | None -> Alcotest.fail "no status frame"
  | Some f -> (
      match Json.member "tenants" f with
      | Some (Json.List ts) ->
          Alcotest.(check bool)
            "tenant acme appears" true
            (List.exists (fun t -> str_member "tenant" t = "acme") ts)
      | _ -> Alcotest.fail "status without tenants"));
  Client.close c

let serve_malformed_line_keeps_connection () =
  with_server @@ fun address ->
  let sock = match address with Server.Unix_path p -> p | _ -> assert false in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let write_line s =
    let b = Bytes.of_string (s ^ "\n") in
    ignore (Unix.write fd b 0 (Bytes.length b))
  in
  let ic = Unix.in_channel_of_descr fd in
  let read_type () =
    match In_channel.input_line ic with
    | None -> "<eof>"
    | Some line -> (
        match Json.of_string line with
        | Ok j -> str_member "type" j
        | Error e -> "<bad: " ^ e ^ ">")
  in
  write_line "this is not json";
  Alcotest.(check string) "malformed line yields an error frame" "error"
    (read_type ());
  write_line (Protocol.request_to_line Protocol.Ping);
  Alcotest.(check string) "connection survives the error" "pong"
    (read_type ());
  Unix.close fd

let serve_survives_disconnect () =
  with_server @@ fun address ->
  (* first client submits a job and vanishes without reading frames *)
  let c1 = Client.connect address in
  Client.send c1
    (Protocol.Submit { tenant = "ghost"; id = "g1"; job = run_spec });
  Client.close c1;
  (* the daemon must still serve a fresh connection end to end *)
  let c2 = Client.connect address in
  (match Client.submit c2 ~tenant:"live" ~id:"l1" run_spec with
  | Error e -> Alcotest.failf "post-disconnect submit: %s" e
  | Ok (result, _) ->
      Alcotest.(check string) "status ok" "ok" (str_member "status" result));
  Client.close c2

(* --- hook re-entrancy: interleaved runs match sequential ------------ *)

let instance app =
  match Registry.find app with
  | None -> Alcotest.failf "no bench %s" app
  | Some spec -> spec.Spec.make ~variant:Spec.Buggy ~oracle:false

let report_of ?trace_writer app seed =
  let inst = instance app in
  let config =
    { Machine.default_config with fuel = 400_000; policy = Sched.Random seed }
  in
  let rr =
    Conair.run_report_of ~config ~mode:(Some Conair.Survival) ?trace_writer
      inst.Spec.program
  in
  Json.to_string rr.Conair.report

let interleaved_runs_match_sequential () =
  (* sequential baselines: one run traced, one untraced *)
  let traced_lines = ref 0 in
  let w = { Jsonl.write = (fun _ -> incr traced_lines) } in
  let seq_a = report_of ~trace_writer:w "HawkNL" 5 in
  let seq_b = report_of "MySQL1" 9 in
  Alcotest.(check bool) "probe observed events" true (!traced_lines > 0);
  (* same two runs concurrently, with different probe configurations —
     per-run hook bundles mean neither observes the other *)
  let out_a = ref "" and out_b = ref "" in
  let ta =
    Thread.create
      (fun () ->
        let w = { Jsonl.write = (fun _ -> ()) } in
        out_a := report_of ~trace_writer:w "HawkNL" 5)
      ()
  in
  let tb = Thread.create (fun () -> out_b := report_of "MySQL1" 9) () in
  Thread.join ta;
  Thread.join tb;
  Alcotest.(check string) "traced run unchanged when interleaved" seq_a !out_a;
  Alcotest.(check string) "untraced run unchanged when interleaved" seq_b
    !out_b

(* --- Aggregate guards ----------------------------------------------- *)

let aggregate_percentile_guards () =
  Alcotest.(check int) "empty list" 0 (Aggregate.percentile [] 50.);
  Alcotest.(check int) "empty list, NaN p" 0 (Aggregate.percentile [] Float.nan);
  Alcotest.(check int)
    "NaN p clamps to 0 (min)" 1
    (Aggregate.percentile [ 3; 1; 2 ] Float.nan);
  Alcotest.(check int)
    "p over 100 clamps to max" 3
    (Aggregate.percentile [ 3; 1; 2 ] 150.);
  Alcotest.(check int)
    "negative p clamps to min" 1
    (Aggregate.percentile [ 3; 1; 2 ] (-10.));
  Alcotest.(check int) "p50 of singleton" 7 (Aggregate.percentile [ 7 ] 50.)

let record fields = Json.Obj (("type", Json.String "run") :: fields)

let aggregate_throughput_guards () =
  let empty = Aggregate.of_records [] in
  Alcotest.(check int) "no runs" 0 empty.Aggregate.g_runs;
  Alcotest.(check (float 0.)) "no runs -> zero runs/sec" 0.
    empty.Aggregate.g_runs_per_sec;
  let run =
    record
      [
        ("outcome", Json.String "success");
        ("steps", Json.Int 10);
        ("episodes", Json.Int 0);
      ]
  in
  let summary elapsed =
    Json.Obj
      [
        ("type", Json.String "fuzz_summary");
        ("engine", Json.String "fast");
        ("elapsed_sec", elapsed);
      ]
  in
  let zero = Aggregate.of_records [ run; summary (Json.Float 0.) ] in
  Alcotest.(check (float 0.)) "zero elapsed -> zero runs/sec" 0.
    zero.Aggregate.g_runs_per_sec;
  let nan = Aggregate.of_records [ run; summary (Json.Float Float.nan) ] in
  Alcotest.(check (float 0.)) "NaN elapsed ignored" 0.
    nan.Aggregate.g_runs_per_sec;
  let neg = Aggregate.of_records [ run; summary (Json.Float (-3.)) ] in
  Alcotest.(check (float 0.)) "negative elapsed ignored" 0.
    neg.Aggregate.g_runs_per_sec;
  let ok = Aggregate.of_records [ run; summary (Json.Float 2.) ] in
  Alcotest.(check (float 0.001)) "positive elapsed folds" 0.5
    ok.Aggregate.g_runs_per_sec;
  (* the JSON document stays finite for every degenerate input *)
  List.iter
    (fun (a : Aggregate.t) ->
      match Json.of_string (Json.to_string (Aggregate.to_json a)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "aggregate JSON does not round-trip: %s" e)
    [ empty; zero; nan; neg; ok ]

let suites =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "round-trips" `Quick protocol_roundtrip;
        Alcotest.test_case "malformed requests" `Quick protocol_malformed;
        Alcotest.test_case "oversized payloads" `Quick protocol_oversized;
      ] );
    ( "serve.pool",
      [
        Alcotest.test_case "per-tenant FIFO" `Quick pool_fifo_per_tenant;
        Alcotest.test_case "backpressure blocks, not drops" `Quick
          pool_backpressure;
        Alcotest.test_case "shutdown drains" `Quick pool_shutdown_drains;
      ] );
    ( "serve.outbox",
      [
        Alcotest.test_case "delivers in order" `Quick outbox_delivers;
        Alcotest.test_case "dead peer discards" `Quick
          outbox_dead_peer_discards;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "end to end" `Quick serve_end_to_end;
        Alcotest.test_case "malformed line keeps connection" `Quick
          serve_malformed_line_keeps_connection;
        Alcotest.test_case "survives client disconnect" `Quick
          serve_survives_disconnect;
      ] );
    ( "serve.reentrancy",
      [
        Alcotest.test_case "interleaved runs match sequential" `Quick
          interleaved_runs_match_sequential;
      ] );
    ( "serve.aggregate",
      [
        Alcotest.test_case "percentile guards" `Quick
          aggregate_percentile_guards;
        Alcotest.test_case "throughput guards" `Quick
          aggregate_throughput_guards;
      ] );
  ]
