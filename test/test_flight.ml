(* Flight recorder and post-mortem diagnostic bundles (lib/runtime
   Flight_ring, lib/obs Flight, lib/replay Bundle, facade run_flight).

   Four layers: ring wraparound exactness against the full recorder
   (the retained tail must be the exact suffix of the recorded decision
   stream — on both the fast and block engines, holding the block
   engine's bulk window accounting to the same stream); cross-engine
   byte-identity of dumped bundles over the bugbench catalog; the
   bundle -> regenerate -> replay -> minimize round trip, including a
   wrapped ring and tamper rejection; and the zero-cost-when-off
   differential (attaching the recorder never changes a run). The
   flight.docs suite pins the post-mortem walkthrough of
   docs/TUTORIAL.md. *)

open Test_util
module Machine = Conair.Runtime.Machine
module Engine = Conair.Runtime.Engine
module Hooks = Conair.Runtime.Hooks
module Outcome = Conair.Runtime.Outcome
module Flight_ring = Conair.Runtime.Flight_ring
module Flight = Conair.Obs.Flight
module Replay = Conair.Replay
module Log = Replay.Log
module Recorder = Replay.Recorder
module Bundle = Replay.Bundle
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

(* --- helpers ------------------------------------------------------- *)

(* the fuel the CLI's @flight gate uses for the failing unhardened runs *)
let config = { Machine.default_config with fuel = 200_000 }

let spec name =
  match Registry.find name with
  | None -> Alcotest.failf "no bugbench app named %s" name
  | Some s -> s

let instance name variant =
  let s = spec name in
  s.Spec.make ~variant ~oracle:s.Spec.info.needs_oracle

let ident name =
  let s = spec name in
  Log.ident ~oracle:s.Spec.info.needs_oracle name

let ints = Alcotest.(array int)

(* Run [p] once on [engine] with a flight ring of [cap] decisions and a
   full recorder tapping the same scheduler, so the ring's retained tail
   can be checked against ground truth. *)
let ring_vs_recorder ?cap engine p =
  let ring = Flight_ring.create ?cap () in
  let r = Recorder.create () in
  let _m, _out =
    Engine.run_program ~config
      ~hooks:(Hooks.bundle ~flight:ring ~tap:(Recorder.tap r) ())
      engine p
  in
  (ring, r)

let check_exact_suffix ring r =
  let decisions = Recorder.decisions r in
  let total = Flight_ring.total ring in
  Alcotest.(check int) "ring total = recorder count" (Recorder.count r) total;
  let first = Flight_ring.tail_first ring in
  Alcotest.(check int) "tail_first"
    (max 0 (total - Flight_ring.capacity ring))
    first;
  Alcotest.check ints "tail is the exact decision suffix"
    (Array.sub decisions first (total - first))
    (Flight_ring.tail ring);
  let expected_preemptions =
    Array.of_list
      (List.filter (fun o -> o >= first)
         (Array.to_list (Recorder.preemptions r)))
  in
  Alcotest.check ints "tail preemptions are the recorder's, filtered"
    expected_preemptions
    (Flight_ring.tail_preemptions ring)

(* --- ring wraparound exactness ------------------------------------- *)

(* HawkNL's deadlock takes 12 decisions: everything is retained and the
   tail must equal the whole recorded stream. *)
let ring_full_retention () =
  let inst = instance "HawkNL" Spec.Buggy in
  let ring, r = ring_vs_recorder Engine.Fast inst.Spec.program in
  Alcotest.(check int) "nothing evicted" 0 (Flight_ring.tail_first ring);
  check_exact_suffix ring r

(* MySQL1's wrong-output needs 17527 decisions; with a 512-entry ring
   the tail wraps ~34 times and must still be the exact suffix. *)
let ring_wraparound () =
  let inst = instance "MySQL1" Spec.Buggy in
  let ring, r = ring_vs_recorder ~cap:512 Engine.Fast inst.Spec.program in
  Alcotest.(check bool) "ring actually wrapped" true
    (Flight_ring.tail_first ring > 0);
  check_exact_suffix ring r

(* A pathologically small ring still retains an exact (tiny) suffix. *)
let ring_tiny () =
  let inst = instance "HawkNL" Spec.Buggy in
  let ring, r = ring_vs_recorder ~cap:5 Engine.Fast inst.Spec.program in
  Alcotest.(check int) "five retained" 5
    (Array.length (Flight_ring.tail ring));
  check_exact_suffix ring r

(* The block engine accounts compiled windows in bulk (push_run); its
   ring must agree entry-for-entry with the fast engine's, which pushes
   one decision at a time. No recorder tap here — the tap would force
   the block engine off its window fast path, hiding the bulk path this
   test exists to check. *)
let ring_block_bulk_accounting () =
  let inst = instance "MySQL1" Spec.Buggy in
  let run engine =
    let ring = Flight_ring.create ~cap:512 () in
    let _m, _out =
      Engine.run_program ~config
        ~hooks:(Hooks.bundle ~flight:ring ())
        engine inst.Spec.program
    in
    ring
  in
  let fast = run Engine.Fast and block = run Engine.Block in
  Alcotest.(check int) "same total" (Flight_ring.total fast)
    (Flight_ring.total block);
  Alcotest.(check int) "same tail_first" (Flight_ring.tail_first fast)
    (Flight_ring.tail_first block);
  Alcotest.check ints "same tail" (Flight_ring.tail fast)
    (Flight_ring.tail block);
  Alcotest.check ints "same preemptions" (Flight_ring.tail_preemptions fast)
    (Flight_ring.tail_preemptions block);
  Alcotest.(check bool) "same events" true
    (Flight_ring.events fast = Flight_ring.events block)

(* --- cross-engine byte-identity over the catalog ------------------- *)

(* Every buggy catalog app must dump byte-identical bundles on all three
   engines, modulo the "engine" field itself. *)
let bundles_cross_engine () =
  List.iter
    (fun (s : Spec.t) ->
      let name = s.Spec.info.name in
      let inst = s.Spec.make ~variant:Spec.Buggy ~oracle:s.Spec.info.needs_oracle in
      let dump engine =
        let _m, _out, b =
          Bundle.capture ~engine ~config ~ident:(ident name) inst.Spec.program
        in
        b
      in
      let normalized b = Flight.to_string { b with Flight.fb_engine = "-" } in
      let bundles = List.map dump Engine.all in
      (match bundles with
      | [ r; f; k ] ->
          Alcotest.(check string) (name ^ ": engine fields") "ref fast block"
            (String.concat " "
               [ r.Flight.fb_engine; f.Flight.fb_engine; k.Flight.fb_engine ])
      | _ -> Alcotest.fail "three engines expected");
      match List.map normalized bundles with
      | first :: rest ->
          List.iteri
            (fun i other ->
              Alcotest.(check string)
                (Printf.sprintf "%s: bundle identical on engine %d" name (i + 1))
                first other)
            rest
      | [] -> Alcotest.fail "no bundles")
    Registry.all

(* Bundles survive the JSON codec byte-for-byte, for both a fully
   retained and a wrapped ring. *)
let bundle_json_roundtrip () =
  List.iter
    (fun name ->
      let inst = instance name Spec.Buggy in
      let _m, _out, b =
        Bundle.capture ~config ~cap:512 ~ident:(ident name) inst.Spec.program
      in
      match Flight.of_string (Flight.to_string b) with
      | Error e -> Alcotest.failf "%s: decode failed: %s" name e
      | Ok b' ->
          Alcotest.(check string) (name ^ ": codec round trip")
            (Flight.to_string b) (Flight.to_string b');
          Alcotest.(check string) (name ^ ": md5 of embedded text")
            b.Flight.fb_program_md5
            (match b'.Flight.fb_program_text with
            | Some src -> Digest.to_hex (Digest.string src)
            | None -> "no embedded program"))
    [ "HawkNL"; "MySQL1" ]

(* --- bundle -> regenerate -> replay -> minimize round trip --------- *)

(* The tail is a regeneration recipe: recover a full schedule log from
   the bundle, strict-replay it, and minimize — reaching the same
   preemption count as the full-recording path on the same run. *)
let roundtrip name expect_minimized =
  let inst = instance name Spec.Buggy in
  (* post-mortem path: flight bundle with a wrapped-or-not 512 ring *)
  let _m, _out, b =
    Bundle.capture ~config ~cap:512 ~ident:(ident name) inst.Spec.program
  in
  let log =
    match Bundle.recover_log b with
    | Ok log -> log
    | Error e -> Alcotest.failf "recover_log: %s" e
  in
  (match Conair.replay log with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "regenerated log diverged: %s" (Replay.Driver.error_to_string e));
  let m =
    match Conair.minimize log with
    | Ok m -> m
    | Error e -> Alcotest.failf "minimize: %s" e
  in
  (* full-recording path on the identical deterministic run *)
  let _run, full_log = Conair.record_run ~config ~ident:(ident name) inst.Spec.program in
  let m_full =
    match Conair.minimize full_log with
    | Ok m -> m
    | Error e -> Alcotest.failf "minimize (full path): %s" e
  in
  Alcotest.(check int) "same preemption count as the full-recording path"
    m_full.Replay.Minimize.mn_minimized m.Replay.Minimize.mn_minimized;
  Alcotest.(check int) "expected minimized preemptions" expect_minimized
    m.Replay.Minimize.mn_minimized;
  match Conair.replay m.Replay.Minimize.mn_log with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "minimized log diverged: %s" (Replay.Driver.error_to_string e)

let roundtrip_full_retention () = roundtrip "HawkNL" 0
let roundtrip_wrapped () = roundtrip "MySQL1" 2

(* Tampering with the recipe must be rejected, not silently replayed. *)
let regeneration_rejects_tampering () =
  let inst = instance "HawkNL" Spec.Buggy in
  let _m, _out, b =
    Bundle.capture ~config ~ident:(ident "HawkNL") inst.Spec.program
  in
  let expect_error what b =
    match Bundle.recover_log b with
    | Ok _ -> Alcotest.failf "%s: tampered bundle accepted" what
    | Error _ -> ()
  in
  let tail = Array.copy b.Flight.fb_tail in
  tail.(Array.length tail - 1) <- tail.(Array.length tail - 1) + 1;
  expect_error "flipped tail decision" { b with Flight.fb_tail = tail };
  expect_error "md5 mismatch"
    { b with Flight.fb_program_md5 = String.make 32 '0' };
  expect_error "no embedded program" { b with Flight.fb_program_text = None }

(* --- zero cost when off -------------------------------------------- *)

(* Attaching the recorder never changes a run: outcome, outputs and
   stats are identical with no hooks, with an empty hook bundle, and
   with a flight ring installed — on all three engines. *)
let recorder_never_changes_a_run () =
  List.iter
    (fun (name, variant) ->
      let inst = instance name variant in
      List.iter
        (fun engine ->
          let bare = Engine.run_program ~config engine inst.Spec.program in
          let empty =
            Engine.run_program ~config ~hooks:(Hooks.bundle ()) engine
              inst.Spec.program
          in
          let flight =
            Engine.run_program ~config
              ~hooks:(Hooks.bundle ~flight:(Flight_ring.create ()) ())
              engine inst.Spec.program
          in
          let obs (m, out) =
            (out, Engine.outputs m, Engine.steps m, Engine.stats m)
          in
          let label s =
            Printf.sprintf "%s/%s on %s: %s" name
              (match variant with Spec.Buggy -> "buggy" | Spec.Clean -> "clean")
              (Engine.name engine) s
          in
          Alcotest.(check bool) (label "empty hook bundle is a no-op") true
            (obs bare = obs empty);
          Alcotest.(check bool) (label "flight ring is invisible") true
            (obs bare = obs flight))
        Engine.all)
    [ ("HawkNL", Spec.Buggy); ("MySQL1", Spec.Buggy); ("MySQL1", Spec.Clean) ]

(* --- docs/TUTORIAL.md ----------------------------------------------- *)

let tutorial_doc_path () =
  if Sys.file_exists "../docs/TUTORIAL.md" then "../docs/TUTORIAL.md"
  else "docs/TUTORIAL.md"

(* The post-mortem stage of docs/TUTORIAL.md, performed in-process: same
   app, same numbers as the transcript the doc shows. *)
let tutorial_post_mortem_walkthrough () =
  let doc =
    In_channel.with_open_text (tutorial_doc_path ()) In_channel.input_all
  in
  let contains pinned =
    Alcotest.(check bool)
      (Printf.sprintf "the doc shows %S" pinned)
      true
      (let rec scan i =
         i + String.length pinned <= String.length doc
         && (String.sub doc i (String.length pinned) = pinned || scan (i + 1))
       in
       scan 0)
  in
  contains "run HawkNL --no-harden --flight --bundle-out .";
  contains "bundle replay flight_hawknl.bundle.json";
  contains "bundle minimize flight_hawknl.bundle.json";
  contains "12 of 12 decisions retained";
  let inst = instance "HawkNL" Spec.Buggy in
  let run, b =
    Conair.run_flight ~config ~reason:"failure" ~ident:(ident "HawkNL")
      inst.Spec.program
  in
  (* the numbers the doc's transcript shows *)
  Alcotest.(check bool) "the run failed" false
    (Outcome.is_success run.Conair.outcome);
  Alcotest.(check int) "12 decisions, all retained" 12 b.Flight.fb_tail_total;
  Alcotest.(check int) "nothing evicted" 0 b.Flight.fb_tail_first;
  Alcotest.(check int) "4 preemptions in the tail" 4
    (Array.length b.Flight.fb_tail_preemptions);
  Alcotest.(check int) "6 events retained" 6 (List.length b.Flight.fb_events);
  let log =
    match Bundle.recover_log b with
    | Ok log -> log
    | Error e -> Alcotest.failf "recover_log: %s" e
  in
  let m =
    match Conair.minimize log with
    | Ok m -> m
    | Error e -> Alcotest.failf "minimize: %s" e
  in
  Alcotest.(check (pair int int)) "minimized 4 -> 0 preemptions" (4, 0)
    (m.Replay.Minimize.mn_original, m.Replay.Minimize.mn_minimized);
  Alcotest.(check int) "2 candidate executions" 2 m.Replay.Minimize.mn_tests;
  match m.Replay.Minimize.mn_races with
  | Some r ->
      Alcotest.(check int) "the detector names one lock cycle" 1
        (List.length r.Conair.Race.Report.cycles)
  | None -> Alcotest.fail "no detector report on the minimized schedule"

(* ------------------------------------------------------------------- *)

let suites =
  [
    ( "flight.ring",
      [
        case "full retention matches the recorder" ring_full_retention;
        case "wraparound retains the exact suffix" ring_wraparound;
        case "tiny ring retains the exact suffix" ring_tiny;
        case "block bulk accounting matches fast" ring_block_bulk_accounting;
      ] );
    ( "flight.bundle",
      [
        slow_case "byte-identical across engines (catalog)"
          bundles_cross_engine;
        case "JSON codec round trip" bundle_json_roundtrip;
      ] );
    ( "flight.regen",
      [
        case "full-retention bundle round trip" roundtrip_full_retention;
        slow_case "wrapped bundle round trip" roundtrip_wrapped;
        case "tampered bundles rejected" regeneration_rejects_tampering;
      ] );
    ( "flight.off",
      [ slow_case "recorder never changes a run" recorder_never_changes_a_run ] );
    ( "flight.docs",
      [
        slow_case "TUTORIAL.md post-mortem walkthrough"
          tutorial_post_mortem_walkthrough;
      ] );
  ]
