(* The pre-resolved engine ([Machine]) and the block-compiled engine
   ([Block_machine]) against the reference interpreter ([Ref_machine]):
   bit-for-bit semantic identity over the whole bugbench catalog — every
   Table 2 benchmark (buggy and clean), every taxonomy catalog entry,
   every Fig 2 micro pattern — under both scheduling policies, original
   and hardened.

   "Identical" means: outcome, final outputs, step/instruction/idle
   counts, checkpoint and rollback counts, compensation counts, the full
   recovery-episode list (per-site retry stats included), the per-id
   checkpoint-hit table, the complete trace-event stream, and the cost
   profiler's full attribution (per-context flamegraph lines, per-site
   wasted-step charges). It also extends to the serialized artifacts:
   JSONL event logs, race-detector report JSON, and recorded schedule
   logs must match byte for byte across all three engines.

   Each comparison runs twice per engine: once fully hooked (trace sink
   and cost profiler installed) and once bare. The bare pass matters for
   the block engine, whose compiled straight-line windows only engage
   when no hooks are installed. *)

open Conair.Ir
module Machine = Conair.Runtime.Machine
module Ref_machine = Conair.Runtime.Ref_machine
module Engine = Conair.Runtime.Engine
module Hooks = Conair.Runtime.Hooks
module Sched = Conair.Runtime.Sched
module Stats = Conair.Runtime.Stats
module Trace = Conair.Runtime.Trace
module Outcome = Conair.Runtime.Outcome
module Registry = Conair_bugbench.Registry
module Spec = Conair_bugbench.Bench_spec
module Catalog = Conair_bugbench.Catalog
module Micro = Conair_bugbench.Micro_patterns

(* Enough fuel for every benchmark to reach its outcome, small enough to
   bound livelocking configurations. *)
let config policy = { Machine.default_config with policy; fuel = 200_000 }

let outcome_t = Alcotest.testable Outcome.pp ( = )

let sorted_hits tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let check_traces name (ref_sink : Trace.sink) (fast_sink : Trace.sink) =
  let ra = Trace.events ref_sink and fa = Trace.events fast_sink in
  if ra <> fa then begin
    let rec first_diff i a b =
      match (a, b) with
      | [], [] -> None
      | x :: _, [] -> Some (i, Some x, None)
      | [], y :: _ -> Some (i, None, Some y)
      | x :: a', y :: b' ->
          if x = y then first_diff (i + 1) a' b' else Some (i, Some x, Some y)
    in
    match first_diff 0 ra fa with
    | None -> ()
    | Some (i, x, y) ->
        let pp ppf = function
          | None -> Format.fprintf ppf "<end of trace>"
          | Some ev -> Trace.pp_event ppf ev
        in
        Alcotest.failf "%s: traces diverge at event %d:@ reference: %a@ fast: %a"
          name i pp x pp y
  end

let check_stats name (r : Stats.t) (f : Stats.t) =
  let check what = Alcotest.(check int) (name ^ ": " ^ what) in
  check "steps" r.steps f.steps;
  check "instrs" r.instrs f.instrs;
  check "idle" r.idle f.idle;
  check "checkpoints" r.checkpoints f.checkpoints;
  check "rollbacks" r.rollbacks f.rollbacks;
  check "compensated locks" r.compensated_locks f.compensated_locks;
  check "compensated blocks" r.compensated_blocks f.compensated_blocks;
  check "tracecheck violations" r.tracecheck_violations f.tracecheck_violations;
  check "outputs" r.outputs f.outputs;
  if r.episodes <> f.episodes then
    Alcotest.failf "%s: recovery episodes differ (%d vs %d, or per-site stats)"
      name (List.length r.episodes) (List.length f.episodes);
  if sorted_hits r.ckpt_hits <> sorted_hits f.ckpt_hits then
    Alcotest.failf "%s: per-checkpoint hit counts differ" name

module Prof = Conair.Obs.Prof

(* The profile comparison covers the whole attribution model: totals per
   class, per-site rollback waste, and every collapsed-stack line of
   every class. *)
let check_profiles name (rp : Prof.t) (fp : Prof.t) =
  let check what = Alcotest.(check int) (name ^ ": profile " ^ what) in
  check "useful steps" (Prof.useful_steps rp) (Prof.useful_steps fp);
  check "checkpoint steps" (Prof.checkpoint_steps rp)
    (Prof.checkpoint_steps fp);
  check "wasted steps" (Prof.wasted_steps rp) (Prof.wasted_steps fp);
  check "idle steps" (Prof.idle_steps rp) (Prof.idle_steps fp);
  if Prof.site_costs rp <> Prof.site_costs fp then
    Alcotest.failf "%s: per-site wasted-step attribution differs" name;
  List.iter
    (fun kind ->
      Alcotest.(check (list string))
        (name ^ ": collapsed " ^ Prof.kind_name kind)
        (Prof.to_collapsed rp kind)
        (Prof.to_collapsed fp kind))
    [ Prof.Useful; Prof.Checkpoint; Prof.Wasted; Prof.Total ]

(* Everything one hooked run exposes. *)
type observed = {
  o_outcome : Outcome.t;
  o_outputs : string list;
  o_steps : int;
  o_stats : Stats.t;
  o_sink : Trace.sink;
  o_prof : Prof.t;
}

(* One fully-hooked run of [p] on [engine]: trace sink and cost profiler
   installed for the whole execution. *)
let observe engine ?meta config (p : Program.t) =
  let sink = Trace.create () in
  let prof = Prof.create () in
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ~trace:sink ~profile:(Prof.probe prof) ())
      engine p
  in
  let outcome = Engine.run m in
  Prof.finalize prof;
  {
    o_outcome = outcome;
    o_outputs = Engine.outputs m;
    o_steps = Engine.steps m;
    o_stats = Engine.stats m;
    o_sink = sink;
    o_prof = prof;
  }

(* One bare run: no hooks at all. On the block engine this is the path
   that actually retires compiled straight-line windows. *)
let bare engine ?meta config (p : Program.t) =
  let m = Engine.create ~config ?meta engine p in
  let outcome = Engine.run m in
  (outcome, Engine.outputs m, Engine.steps m, Engine.stats m)

(* The engines measured against the reference interpreter. *)
let engines = [ ("fast", Engine.Fast); ("block", Engine.Block) ]

(* Run [p] through all three engines under identical configuration and
   insist on identical observable behaviour, hooked and bare. *)
let check_same name ?meta config (p : Program.t) =
  let r = observe Engine.Ref ?meta config p in
  let jsonl sink =
    String.concat "\n" (Conair.Obs.Jsonl.events_to_lines (Trace.events sink))
  in
  List.iter
    (fun (ename, engine) ->
      let name = name ^ "#" ^ ename in
      let o = observe engine ?meta config p in
      Alcotest.check outcome_t (name ^ ": outcome") r.o_outcome o.o_outcome;
      Alcotest.(check (list string))
        (name ^ ": outputs") r.o_outputs o.o_outputs;
      Alcotest.(check int) (name ^ ": virtual time") r.o_steps o.o_steps;
      check_stats name r.o_stats o.o_stats;
      check_traces name r.o_sink o.o_sink;
      (* the differential guarantee extends to the serialized telemetry:
         every engine must produce byte-identical JSONL event logs *)
      Alcotest.(check string)
        (name ^ ": serialized JSONL event log")
        (jsonl r.o_sink) (jsonl o.o_sink);
      (* ... and to the cost profiler: identical per-context and per-site
         attribution, down to every flamegraph line *)
      check_profiles name r.o_prof o.o_prof;
      (* the bare run must agree with the hooked reference run too:
         telemetry is observation, never behaviour *)
      let b_outcome, b_outputs, b_steps, b_stats =
        bare engine ?meta config p
      in
      Alcotest.check outcome_t (name ^ ": bare outcome") r.o_outcome b_outcome;
      Alcotest.(check (list string))
        (name ^ ": bare outputs") r.o_outputs b_outputs;
      Alcotest.(check int) (name ^ ": bare virtual time") r.o_steps b_steps;
      check_stats (name ^ "/bare") r.o_stats b_stats)
    engines

(* ------------------------------------------------------------------ *)
(* The program corpus: the full bugbench catalog                       *)
(* ------------------------------------------------------------------ *)

let corpus () =
  let of_spec (s : Spec.t) =
    let buggy = s.make ~variant:Spec.Buggy ~oracle:true in
    let clean = s.make ~variant:Spec.Clean ~oracle:false in
    [
      (s.info.name ^ "/buggy", buggy.program);
      (s.info.name ^ "/clean", clean.program);
    ]
  in
  List.concat_map of_spec (Registry.all @ Registry.extended)
  @ List.map
      (fun (e : Catalog.entry) -> ("catalog/" ^ e.name, e.program))
      (Catalog.all ())
  @ List.map
      (fun (pt : Micro.pattern) -> ("micro/" ^ pt.name, pt.program))
      (Micro.all ())

let policies =
  [ ("round-robin", Sched.Round_robin); ("random", Sched.Random 42) ]

let sweep_original (pname, policy) () =
  List.iter
    (fun (name, p) -> check_same (name ^ "@" ^ pname) (config policy) p)
    (corpus ())

let sweep_hardened (pname, policy) () =
  List.iter
    (fun (name, p) ->
      match Conair.harden p Conair.Survival with
      | Error _ -> ()
      | Ok h ->
          let meta = Machine.meta_of_harden h.hardened in
          check_same
            (name ^ "/hardened@" ^ pname)
            ~meta (config policy) h.hardened.program)
    (corpus ())

(* The baselines' knobs exercise the remaining engine paths: timing
   perturbation draws on the rng, wait-graph detection changes lock
   eligibility. Both engines must still agree. *)
let sweep_perturbed () =
  let config =
    {
      (config (Sched.Random 7)) with
      perturb_timing = true;
      deadlock_detection = Machine.Wait_graph;
    }
  in
  List.iter
    (fun (name, p) ->
      match Conair.harden p Conair.Survival with
      | Error _ -> check_same (name ^ "@perturbed") config p
      | Ok h ->
          let meta = Machine.meta_of_harden h.hardened in
          check_same (name ^ "/hardened@perturbed") ~meta config
            h.hardened.program)
    (corpus ())

(* The race/deadlock detector's serialized report must match byte for
   byte across the engines: the detector only sees probe events, and
   every engine must emit the same stream. *)
let sweep_detector_reports () =
  let config = config (Sched.Random 42) in
  List.iter
    (fun (name, p) ->
      let report engine =
        let _, rep = Conair.run_detected ~config ~engine p in
        Conair.Obs.Json.to_string (Conair.Race.Report.to_json rep)
      in
      let ref_report = report Engine.Ref in
      List.iter
        (fun (ename, engine) ->
          Alcotest.(check string)
            (name ^ "#" ^ ename ^ ": race report JSON")
            ref_report (report engine))
        engines)
    (corpus ())

(* Recorded schedule logs must serialize identically across the engines
   — modulo the engine stamp itself, which names the recorder and is
   checked separately. *)
let sweep_recorded_logs () =
  let config = config (Sched.Random 42) in
  let module Log = Conair.Replay.Log in
  let check_logs name log_of =
    let log_lines engine =
      let log : Log.t = log_of engine in
      Alcotest.(check string)
        (name ^ ": engine stamp")
        (Engine.name engine) log.Log.engine;
      Log.to_lines { log with Log.engine = "fast" }
    in
    let ref_lines = log_lines Engine.Ref in
    List.iter
      (fun (ename, engine) ->
        Alcotest.(check (list string))
          (name ^ "#" ^ ename ^ ": schedule log bytes")
          ref_lines (log_lines engine))
      engines
  in
  List.iter
    (fun (name, p) ->
      check_logs name (fun engine ->
          snd (Conair.record_run ~config ~engine ~ident:(Log.ident name) p));
      match Conair.harden p Conair.Survival with
      | Error _ -> ()
      | Ok h ->
          check_logs (name ^ "/hardened") (fun engine ->
              snd
                (Conair.run_recorded ~config ~engine ~ident:(Log.ident name) h)))
    (corpus ())

(* Interleaving signatures — the campaign's dedupe key — must be
   byte-identical across engines: they hash the decision stream and the
   race-probe access orders, both covered by the differential
   guarantee. *)
let sweep_signatures () =
  let config = config (Sched.Random 7) in
  let module Log = Conair.Replay.Log in
  let module Coverage = Conair.Obs.Coverage in
  let signature_of name engine p =
    let coll = Coverage.collector () in
    let _, log =
      Conair.record_run ~config ~engine ~ident:(Log.ident name)
        ~race:(Coverage.probe coll) p
    in
    let ob = Coverage.observed coll in
    Conair.interleaving_signature ~orders:ob.Coverage.ob_orders log
  in
  List.iter
    (fun (name, p) ->
      let ref_sig = signature_of name Engine.Ref p in
      List.iter
        (fun (ename, engine) ->
          Alcotest.(check string)
            (name ^ "#" ^ ename ^ ": interleaving signature")
            ref_sig (signature_of name engine p))
        engines)
    (corpus ())

(* [Sched.choose_idx] must mirror [Sched.choose] pick-for-pick: same
   selections, same cursor movement, same rng consumption. *)
let choose_idx_agrees () =
  List.iter
    (fun policy ->
      let s_list = Sched.create policy in
      let s_idx = Sched.create policy in
      let tid_sets =
        [
          [ 0 ]; [ 0; 1 ]; [ 1; 3; 7 ]; [ 2 ]; [ 0; 1; 2; 3; 4 ]; [ 5; 9 ];
          [ 4; 5; 6 ]; [ 0; 8 ]; [ 3 ]; [ 1; 2; 9; 12 ];
        ]
      in
      List.iter
        (fun tids ->
          let arr = Array.of_list tids in
          let from_list = Sched.choose s_list tids in
          let k =
            Sched.choose_idx s_idx ~tid_of:(fun i -> arr.(i)) (Array.length arr)
          in
          Alcotest.(check int) "same pick" from_list arr.(k);
          Alcotest.(check int)
            "same cursor" s_list.Sched.cursor s_idx.Sched.cursor)
        tid_sets)
    [ Sched.Round_robin; Sched.Random 13 ]

let suites =
  [
    ( "fast-exec",
      List.map
        (fun ((pname, _) as pol) ->
          Alcotest.test_case
            ("differential: original programs, " ^ pname)
            `Quick (sweep_original pol))
        policies
      @ List.map
          (fun ((pname, _) as pol) ->
            Alcotest.test_case
              ("differential: hardened programs, " ^ pname)
              `Quick (sweep_hardened pol))
          policies
      @ [
          Alcotest.test_case "differential: perturbed + wait-graph" `Quick
            sweep_perturbed;
          Alcotest.test_case "differential: race-detector reports" `Quick
            sweep_detector_reports;
          Alcotest.test_case "differential: recorded schedule logs" `Quick
            sweep_recorded_logs;
          Alcotest.test_case "differential: interleaving signatures" `Quick
            sweep_signatures;
          Alcotest.test_case "choose_idx mirrors choose" `Quick
            choose_idx_agrees;
        ] );
  ]
