(* Schedule record-and-replay: a recorded decision stream must replay
   bit-for-bit — same outcome, outputs, step/instruction/rollback counts
   and serialized JSONL telemetry — on all three engines, over the whole
   bugbench catalog (both variants), original and hardened, under both
   scheduling policies. Logs are engine-interchangeable: record on any
   engine, replay on any other, zero divergence. Divergence must surface
   as a structured error, and the minimizer must shrink failing
   schedules to strictly fewer preemptions that still reproduce the same
   failure, deterministically. *)

open Conair.Ir
module Machine = Conair.Runtime.Machine
module Ref_machine = Conair.Runtime.Ref_machine
module Engine = Conair.Runtime.Engine
module Hooks = Conair.Runtime.Hooks
module Sched = Conair.Runtime.Sched
module Trace = Conair.Runtime.Trace
module Outcome = Conair.Runtime.Outcome
module Json = Conair.Obs.Json
module Jsonl = Conair.Obs.Jsonl
module Registry = Conair_bugbench.Registry
module Spec = Conair_bugbench.Bench_spec
module Replay = Conair.Replay
module Log = Replay.Log
module Recorder = Replay.Recorder
module Feed = Replay.Feed
module Driver = Replay.Driver
module Inspect = Replay.Inspect
module Minimize = Replay.Minimize

let case name f = Alcotest.test_case name `Quick f
let config policy = { Machine.default_config with policy; fuel = 200_000 }

let corpus () =
  List.concat_map
    (fun (s : Spec.t) ->
      let buggy = s.make ~variant:Spec.Buggy ~oracle:true in
      let clean = s.make ~variant:Spec.Clean ~oracle:false in
      [
        (s.info.name ^ "/buggy", buggy.program);
        (s.info.name ^ "/clean", clean.program);
      ])
    (Registry.all @ Registry.extended)

let policies =
  [ ("round-robin", Sched.Round_robin); ("random", Sched.Random 42) ]

(* ------------------------------------------------------------------ *)
(* Recording and replaying with the trace sink attached, so the        *)
(* byte-identity check extends to the serialized telemetry             *)
(* ------------------------------------------------------------------ *)

let jsonl sink = String.concat "\n" (Jsonl.events_to_lines (Trace.events sink))

let record_traced config ?meta p =
  let sink = Trace.create () in
  let r = Recorder.create () in
  let m =
    Machine.create ~config ?meta
      ~hooks:(Hooks.bundle ~trace:sink ~tap:(Recorder.tap r) ())
      p
  in
  let outcome = Machine.run m in
  let bundle =
    {
      Driver.rb_outcome = outcome;
      rb_outputs = Machine.outputs m;
      rb_stats = Machine.stats m;
      rb_steps = m.Machine.step;
    }
  in
  let log =
    Driver.log_of_run ~config ?meta ~ident:(Log.ident "test") ~program:p r
      bundle
  in
  (log, jsonl sink)

let replay_traced engine ?meta p (log : Log.t) =
  let config = log.Log.config in
  let sink = Trace.create () in
  let h = Feed.strict log.Log.decisions in
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ~trace:sink ~feed:(Feed.strict_decide h) ())
      engine p
  in
  let outcome = Engine.run m in
  ( {
      Driver.rb_outcome = outcome;
      rb_outputs = Engine.outputs m;
      rb_stats = Engine.stats m;
      rb_steps = Engine.steps m;
    },
    jsonl sink )

(* Record [p] once, then insist all three engines replay it
   byte-for-byte: trailer check plus identical serialized JSONL event
   logs. *)
let check_roundtrip name config ?meta p =
  let log, recorded_jsonl = record_traced config ?meta p in
  List.iter
    (fun engine ->
      let ename = Driver.engine_name engine in
      let bundle, replayed_jsonl = replay_traced engine ?meta p log in
      (match Driver.check log bundle with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s (%s replay): %s" name ename e);
      Alcotest.(check string)
        (name ^ " (" ^ ename ^ " replay): JSONL telemetry")
        recorded_jsonl replayed_jsonl)
    [ Driver.Ref; Driver.Fast; Driver.Block ]

let sweep_original (pname, policy) () =
  List.iter
    (fun (name, p) -> check_roundtrip (name ^ "@" ^ pname) (config policy) p)
    (corpus ())

let sweep_hardened (pname, policy) () =
  List.iter
    (fun (name, p) ->
      match Conair.harden p Conair.Survival with
      | Error _ -> ()
      | Ok h ->
          let meta = Machine.meta_of_harden h.Conair.hardened in
          check_roundtrip
            (name ^ "/hardened@" ^ pname)
            ~meta (config policy) h.Conair.hardened.program)
    (corpus ())

(* Recording on any engine and replaying on any other must agree: the
   log is engine-independent. Every ordered pair of distinct engines —
   notably record-on-block replayed on fast/ref and vice versa. *)
let cross_engine () =
  let spec = Option.get (Registry.find "HawkNL") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  List.iter
    (fun (rec_engine, replay_engine) ->
      let pair =
        Driver.engine_name rec_engine ^ "->" ^ Driver.engine_name replay_engine
      in
      let _, log =
        Driver.record ~engine:rec_engine
          ~config:(config Sched.Round_robin)
          ~ident:(Log.ident "hawknl") inst.program
      in
      Alcotest.(check string)
        (pair ^ ": log names the recording engine")
        (Driver.engine_name rec_engine)
        log.Log.engine;
      match Driver.replay ~engine:replay_engine ~program:inst.program log with
      | Error e ->
          Alcotest.failf "cross-engine replay (%s): %s" pair
            (Driver.error_to_string e)
      | Ok b -> (
          match Driver.check log b with
          | Ok () -> ()
          | Error e -> Alcotest.failf "cross-engine (%s): %s" pair e))
    (List.concat_map
       (fun r -> List.filter_map
          (fun p -> if p <> r then Some (r, p) else None)
          [ Driver.Ref; Driver.Fast; Driver.Block ])
       [ Driver.Ref; Driver.Fast; Driver.Block ])

(* ------------------------------------------------------------------ *)
(* The facade: run_recorded on a hardened program, replay resolving    *)
(* program and recovery metadata from the log alone                    *)
(* ------------------------------------------------------------------ *)

let facade_self_contained () =
  let spec = Option.get (Registry.find "MySQL1") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  let h = Conair.harden_exn inst.program Conair.Survival in
  let run, log =
    Conair.run_recorded ~config:(config (Sched.Random 7)) h
  in
  Alcotest.(check string) "mode rides in the ident" "survival"
    log.Log.ident.Log.id_mode;
  Alcotest.(check bool) "recovery fired while recording" true
    (run.Conair.stats.rollbacks > 0);
  (* no program, no meta: both come back out of the log *)
  match Conair.replay log with
  | Error e -> Alcotest.failf "facade replay: %s" (Driver.error_to_string e)
  | Ok b ->
      (match Driver.check log b with
      | Ok () -> ()
      | Error e -> Alcotest.failf "facade replay: %s" e);
      Alcotest.(check int) "rollbacks reproduced"
        run.Conair.stats.rollbacks b.Driver.rb_stats.rollbacks

let save_load_roundtrip () =
  let spec = Option.get (Registry.find "SQLite") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  let _, log =
    Conair.record_run
      ~config:(config Sched.Round_robin)
      ~ident:(Log.ident ~oracle:true "sqlite") inst.program
  in
  let path = Filename.temp_file "conair-sched" ".sched.jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Log.save log path;
      match Log.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok log' ->
          Alcotest.(check string) "app" log.Log.ident.Log.id_app
            log'.Log.ident.Log.id_app;
          Alcotest.(check bool) "decisions survive" true
            (log.Log.decisions = log'.Log.decisions);
          Alcotest.(check bool) "preemptions survive" true
            (log.Log.preemptions = log'.Log.preemptions);
          Alcotest.(check bool) "trailer survives" true
            ( log.Log.steps = log'.Log.steps
            && log.Log.instrs = log'.Log.instrs
            && log.Log.outcome = log'.Log.outcome
            && log.Log.outputs = log'.Log.outputs );
          (* and the loaded log is self-contained: replayable as-is *)
          (match Conair.replay log' with
          | Error e ->
              Alcotest.failf "loaded replay: %s" (Driver.error_to_string e)
          | Ok b -> (
              match Driver.check log' b with
              | Ok () -> ()
              | Error e -> Alcotest.failf "loaded replay: %s" e)))

(* ------------------------------------------------------------------ *)
(* Divergence detection                                                *)
(* ------------------------------------------------------------------ *)

(* cwd is test/ under [dune runtest] but the project root under
   [dune exec test/test_main.exe] *)
let tutorial_program () =
  let path =
    if Sys.file_exists "../examples/tutorial.mir" then
      "../examples/tutorial.mir"
    else "examples/tutorial.mir"
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  match Parse.program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "tutorial.mir: %a" Parse.pp_error e

let recorded_tutorial () =
  let p = tutorial_program () in
  let _, log =
    Conair.record_run
      ~config:(config Sched.Round_robin)
      ~ident:(Log.ident "tutorial") p
  in
  (p, log)

let divergence_tampered () =
  let p, log = recorded_tutorial () in
  let k = Array.length log.Log.decisions / 2 in
  let decisions = Array.copy log.Log.decisions in
  decisions.(k) <- 999 (* never an eligible tid *);
  match Conair.replay ~program:p { log with Log.decisions } with
  | Ok _ -> Alcotest.fail "tampered log replayed cleanly"
  | Error (Driver.Diverged d) ->
      Alcotest.(check int) "divergence names the decision" k d.Driver.dv_decision;
      Alcotest.(check (option int)) "and the recorded tid" (Some 999)
        d.Driver.dv_expected;
      Alcotest.(check bool) "and the eligible set" true
        (d.Driver.dv_actual <> [])
  | Error e -> Alcotest.failf "wrong error: %s" (Driver.error_to_string e)

let divergence_truncated () =
  let p, log = recorded_tutorial () in
  let k = Array.length log.Log.decisions / 2 in
  let decisions = Array.sub log.Log.decisions 0 k in
  match Conair.replay ~program:p { log with Log.decisions } with
  | Ok _ -> Alcotest.fail "truncated log replayed cleanly"
  | Error (Driver.Diverged d) ->
      Alcotest.(check int) "exhausted exactly at the cut" k
        d.Driver.dv_decision;
      Alcotest.(check (option int)) "log-exhausted is expected=None" None
        d.Driver.dv_expected
  | Error e -> Alcotest.failf "wrong error: %s" (Driver.error_to_string e)

let divergence_leftover () =
  let p, log = recorded_tutorial () in
  let decisions = Array.append log.Log.decisions [| 0; 0; 0 |] in
  match Conair.replay ~program:p { log with Log.decisions } with
  | Ok _ -> Alcotest.fail "padded log replayed cleanly"
  | Error (Driver.Diverged d) ->
      Alcotest.(check int) "leftover decisions detected"
        (Array.length log.Log.decisions)
        d.Driver.dv_decision
  | Error e -> Alcotest.failf "wrong error: %s" (Driver.error_to_string e)

let wrong_program () =
  let _, log = recorded_tutorial () in
  let spec = Option.get (Registry.find "FFT") in
  let other = (spec.make ~variant:Spec.Clean ~oracle:false).program in
  match Conair.replay ~program:other log with
  | Error (Driver.Program_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Driver.error_to_string e)
  | Ok _ -> Alcotest.fail "mismatched program replayed"

(* ------------------------------------------------------------------ *)
(* Time-travel inspection                                              *)
(* ------------------------------------------------------------------ *)

let inspector_states () =
  let _, log = recorded_tutorial () in
  let make stride =
    match Inspect.create ~stride log with
    | Ok t -> t
    | Error e -> Alcotest.failf "inspect: %s" e
  in
  let coarse = make Inspect.default_stride and fine = make 16 in
  let final = Inspect.final_step coarse in
  Alcotest.(check int) "final step matches the trailer" log.Log.steps final;
  let state t target =
    match Inspect.state_at t target with
    | Ok j -> Json.to_string j
    | Error e -> Alcotest.failf "state at %d: %s" target e
  in
  (* waypoint-restored reconstruction must be independent of the
     waypoint stride: every step's state is a pure function of the log *)
  List.iter
    (fun target ->
      Alcotest.(check string)
        (Printf.sprintf "state at step %d" target)
        (state coarse target) (state fine target))
    [ 0; 1; final / 3; final / 2; final - 1; final ];
  (* seeking backwards after seeking forwards lands on the same bytes *)
  let late = state coarse final in
  let early = state coarse 1 in
  Alcotest.(check string) "re-seek forward" late (state coarse final);
  Alcotest.(check string) "re-seek backward" early (state coarse 1)

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)
(* ------------------------------------------------------------------ *)

let minimize_ok log =
  match Conair.minimize log with
  | Ok m -> m
  | Error e -> Alcotest.failf "minimize: %s" e

(* The failing schedule must shrink to strictly fewer preemptions (the
   round-robin recording switches on every decision, almost all of them
   irrelevant), still fail the same way, replay strictly, and be
   deterministic: two minimizations of the same log, same bytes. *)
let check_minimized name (log : Log.t) =
  let m = minimize_ok log in
  Alcotest.(check bool)
    (name ^ ": strictly fewer preemptions "
    ^ Printf.sprintf "(%d -> %d)" m.Minimize.mn_original
        m.Minimize.mn_minimized)
    true
    (m.Minimize.mn_minimized < m.Minimize.mn_original
    || m.Minimize.mn_original = 0);
  Alcotest.(check bool)
    (name ^ ": minimized run still fails the same way")
    true
    (Minimize.same_failure log.Log.outcome m.Minimize.mn_log.Log.outcome);
  (match Conair.replay m.Minimize.mn_log with
  | Error e ->
      Alcotest.failf "%s: minimized log replay: %s" name
        (Driver.error_to_string e)
  | Ok b -> (
      match Driver.check m.Minimize.mn_log b with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: minimized log replay: %s" name e));
  let m' = minimize_ok log in
  Alcotest.(check string)
    (name ^ ": minimization is deterministic")
    (Json.to_string (Minimize.to_json m))
    (Json.to_string (Minimize.to_json m'));
  m

let minimize_tutorial () =
  let _, log = recorded_tutorial () in
  Alcotest.(check bool) "tutorial fails unhardened" false
    (Outcome.is_success log.Log.outcome);
  let m = check_minimized "tutorial" log in
  (* golden: the tutorial bug needs NO preemption at all — the buggy
     variant's injected sleep already forces the audit thread to read
     between the two halves of the unprotected update, so every one of
     the recording's preemptive switches is scheduling noise *)
  Alcotest.(check int) "recorded preemptions" 4 m.Minimize.mn_original;
  Alcotest.(check int) "tutorial minimal schedule" 0 m.Minimize.mn_minimized;
  (* the explanation still walks the (forced) context switches *)
  Alcotest.(check int) "switches rendered" 3
    (List.length m.Minimize.mn_switches);
  Alcotest.(check bool) "all of them forced" true
    (List.for_all
       (fun s -> not s.Minimize.sw_preemptive)
       m.Minimize.mn_switches);
  (* and the detector, replaying the minimized schedule, names the race *)
  match m.Minimize.mn_races with
  | None -> Alcotest.fail "no detector report on the minimized schedule"
  | Some r ->
      Alcotest.(check int) "detector fires on the minimized schedule" 1
        (List.length r.Conair.Race.Report.races)

(* HawkNL's deadlock hang: the lock-order inversion is likewise forced
   by the injected sleeps, so the minimal preemption set is empty — and
   the minimized schedule still ends blocked. *)
let minimize_hawknl () =
  let spec = Option.get (Registry.find "HawkNL") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  let _, log =
    Conair.record_run
      ~config:(config Sched.Round_robin)
      ~ident:(Log.ident "hawknl") inst.program
  in
  (match log.Log.outcome with
  | Outcome.Hang _ -> ()
  | o -> Alcotest.failf "expected a hang, got %s" (Outcome.to_string o));
  let m = check_minimized "hawknl" log in
  Alcotest.(check int) "recorded preemptions" 4 m.Minimize.mn_original;
  Alcotest.(check int) "hawknl minimal schedule" 0 m.Minimize.mn_minimized;
  match m.Minimize.mn_log.Log.outcome with
  | Outcome.Hang _ -> ()
  | o -> Alcotest.failf "minimized outcome: %s" (Outcome.to_string o)

(* MySQL1 is the counterpoint: its wrong-output bug genuinely needs two
   preemptions beyond the forced switches — ddmin keeps exactly those. *)
let minimize_mysql1 () =
  let spec = Option.get (Registry.find "MySQL1") in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  let _, log =
    Conair.record_run
      ~config:(config Sched.Round_robin)
      ~ident:(Log.ident "mysql1") inst.program
  in
  let m = check_minimized "mysql1" log in
  Alcotest.(check int) "recorded preemptions" 6 m.Minimize.mn_original;
  Alcotest.(check int) "mysql1 minimal schedule" 2 m.Minimize.mn_minimized;
  let pre =
    List.filter (fun s -> s.Minimize.sw_preemptive) m.Minimize.mn_switches
  in
  Alcotest.(check bool) "the preemptive switches are explained" true
    (pre <> []
    && List.for_all
         (fun s ->
           s.Minimize.sw_from_at <> "" && s.Minimize.sw_to_at <> "")
         pre)

let minimize_failing_catalog () =
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:true in
      let _, log =
        Conair.record_run
          ~config:(config Sched.Round_robin)
          ~ident:(Log.ident s.info.name) inst.program
      in
      if not (Outcome.is_success log.Log.outcome) then
        ignore (check_minimized s.info.name log))
    (Registry.all @ Registry.extended)

let minimize_rejects_success () =
  let spec = Option.get (Registry.find "FFT") in
  let inst = spec.make ~variant:Spec.Clean ~oracle:false in
  let _, log =
    Conair.record_run ~config:(config Sched.Round_robin)
      ~ident:(Log.ident "fft") inst.program
  in
  match Conair.minimize log with
  | Ok _ -> Alcotest.fail "minimized a successful run"
  | Error _ -> ()

let suites =
  [
    ( "replay.identity",
      List.map
        (fun ((pname, _) as pol) ->
          case ("record/replay: original programs, " ^ pname)
            (sweep_original pol))
        policies
      @ List.map
          (fun ((pname, _) as pol) ->
            case ("record/replay: hardened programs, " ^ pname)
              (sweep_hardened pol))
          policies
      @ [
          case "cross-engine logs" cross_engine;
          case "facade: hardened record, self-contained replay"
            facade_self_contained;
          case "save/load round trip" save_load_roundtrip;
        ] );
    ( "replay.divergence",
      [
        case "tampered decision" divergence_tampered;
        case "truncated log" divergence_truncated;
        case "leftover decisions" divergence_leftover;
        case "wrong program" wrong_program;
      ] );
    ("replay.inspect", [ case "stride-independent states" inspector_states ]);
    ( "replay.minimize",
      [
        case "tutorial golden" minimize_tutorial;
        case "hawknl golden" minimize_hawknl;
        case "mysql1 golden" minimize_mysql1;
        case "every failing catalog app shrinks" minimize_failing_catalog;
        case "successful runs are rejected" minimize_rejects_success;
      ] );
  ]
