(* Tests for the dynamic race/deadlock detector (lib/race).

   Four layers: unit tests of the vector-clock algebra and of each lens
   driven by hand-built event sequences; pattern tests over the bug
   catalog; the bugbench ground-truth sweep (every app, both variants,
   against the expected findings recorded in [Bench_spec.info.detect]);
   and the differential/determinism guarantees — byte-identical JSON
   reports across the two engines and across repeated seeded runs. *)

open Test_util
open Conair.Ir
module B = Builder
module Machine = Conair.Runtime.Machine
module Ref_machine = Conair.Runtime.Ref_machine
module Sched = Conair.Runtime.Sched
module Race_probe = Conair.Runtime.Race_probe
module Hooks = Conair.Runtime.Hooks
module Race = Conair.Race
module Json = Conair.Obs.Json
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Catalog = Conair_bugbench.Catalog

(* --- vector clocks ------------------------------------------------- *)

let vc_basics () =
  let c = Race.Vclock.create () in
  Alcotest.(check int) "fresh reads 0" 0 (Race.Vclock.get c 7);
  Race.Vclock.set c 2 5;
  Race.Vclock.incr c 2;
  Alcotest.(check int) "set+incr" 6 (Race.Vclock.get c 2);
  (* growth well past the initial capacity *)
  Race.Vclock.set c 40 1;
  Alcotest.(check int) "grown entry" 1 (Race.Vclock.get c 40);
  Alcotest.(check int) "old entry survives growth" 6 (Race.Vclock.get c 2);
  Alcotest.(check int) "max_tid" 40 (Race.Vclock.max_tid c)

let vc_join_leq () =
  let a = Race.Vclock.create () and b = Race.Vclock.create () in
  Race.Vclock.set a 0 3;
  Race.Vclock.set b 1 2;
  Alcotest.(check bool) "incomparable: not a<=b" false (Race.Vclock.leq a b);
  Alcotest.(check bool) "incomparable: not b<=a" false (Race.Vclock.leq b a);
  Race.Vclock.join ~into:a b;
  Alcotest.(check int) "join keeps own" 3 (Race.Vclock.get a 0);
  Alcotest.(check int) "join takes other" 2 (Race.Vclock.get a 1);
  Alcotest.(check bool) "b <= a after join" true (Race.Vclock.leq b a);
  let a' = Race.Vclock.copy a in
  Race.Vclock.incr a 0;
  Alcotest.(check int) "copy is independent" 3 (Race.Vclock.get a' 0)

let vc_epochs () =
  let c = Race.Vclock.create () in
  Race.Vclock.set c 1 4;
  let e = Race.Vclock.epoch_of c 1 in
  Alcotest.(check int) "epoch tid" 1 e.Race.Vclock.e_tid;
  Alcotest.(check int) "epoch clock" 4 e.Race.Vclock.e_clock;
  Alcotest.(check bool) "e <= its own clock" true (Race.Vclock.epoch_leq e c);
  let other = Race.Vclock.create () in
  Alcotest.(check bool) "e not <= fresh clock" false
    (Race.Vclock.epoch_leq e other);
  Alcotest.(check bool) "bottom <= anything" true
    (Race.Vclock.epoch_leq Race.Vclock.bottom other)

(* --- hand-built event sequences ------------------------------------ *)

let access ?(step = 0) ?(iid = 0) ?(locks = []) ~tid kind addr =
  {
    Race.Report.ac_step = step;
    ac_tid = tid;
    ac_iid = iid;
    ac_stack = [ "f" ];
    ac_block = "entry";
    ac_kind = kind;
    ac_addr = addr;
    ac_locks = locks;
  }

let g = Race_probe.A_global "x"

let hb_read_write_race () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_spawn h ~parent:0 ~child:2;
  Race.Hb.on_access h (access ~tid:1 ~iid:10 Race_probe.Read g);
  Race.Hb.on_access h (access ~tid:2 ~iid:20 Race_probe.Write g);
  match Race.Hb.races h with
  | [ r ] ->
      Alcotest.(check string) "read-write" "read-write"
        (Race.Report.kind_string r.Race.Report.rc_prev.ac_kind
           r.Race.Report.rc_curr.ac_kind);
      Alcotest.(check int) "prev iid" 10 r.Race.Report.rc_prev.ac_iid;
      Alcotest.(check int) "curr iid" 20 r.Race.Report.rc_curr.ac_iid
  | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)

let hb_write_write_race () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_spawn h ~parent:0 ~child:2;
  Race.Hb.on_access h (access ~tid:1 Race_probe.Write g);
  Race.Hb.on_access h (access ~tid:2 Race_probe.Write g);
  Alcotest.(check int) "one write-write race" 1
    (List.length (Race.Hb.races h))

(* SHB's defining property: a write observed by a reader orders the
   reader behind it (reads-from), so the reader's later write does not
   race — where plain happens-before with write-only checks would still
   be quiet but Eraser-style or unordered-pair analyses would cry wolf. *)
let hb_reads_from_orders () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_spawn h ~parent:0 ~child:2;
  Race.Hb.on_access h (access ~tid:1 Race_probe.Write g);
  Race.Hb.on_access h (access ~tid:2 Race_probe.Read g);
  (* rf edge *)
  Race.Hb.on_access h (access ~tid:2 Race_probe.Write g);
  Alcotest.(check int) "read-observed hand-off is quiet" 0
    (List.length (Race.Hb.races h))

let hb_lock_orders () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_spawn h ~parent:0 ~child:2;
  Race.Hb.on_acquire h ~tid:1 ~lock:"m";
  Race.Hb.on_access h (access ~tid:1 ~locks:[ "m" ] Race_probe.Write g);
  Race.Hb.on_release h ~tid:1 ~lock:"m";
  Race.Hb.on_acquire h ~tid:2 ~lock:"m";
  Race.Hb.on_access h (access ~tid:2 ~locks:[ "m" ] Race_probe.Write g);
  Race.Hb.on_release h ~tid:2 ~lock:"m";
  Alcotest.(check int) "lock-ordered writes are quiet" 0
    (List.length (Race.Hb.races h))

let hb_join_orders () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_access h (access ~tid:1 Race_probe.Write g);
  Race.Hb.on_join h ~tid:0 ~joined:1;
  Race.Hb.on_access h (access ~tid:0 Race_probe.Write g);
  Alcotest.(check int) "join-ordered writes are quiet" 0
    (List.length (Race.Hb.races h))

let hb_free_race () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_spawn h ~parent:0 ~child:2;
  Race.Hb.on_access h
    (access ~tid:1 ~iid:1 Race_probe.Write (Race_probe.A_cell (3, 0)));
  Race.Hb.on_access h
    (access ~tid:2 ~iid:2 Race_probe.Write (Race_probe.A_block 3));
  (* the whole-block free conflicts with the unordered cell write; the
     block address itself is fresh, so exactly one race reports *)
  Alcotest.(check int) "free races the unordered cell write" 1
    (List.length (Race.Hb.races h))

let hb_dedup () =
  let h = Race.Hb.create () in
  Race.Hb.on_spawn h ~parent:0 ~child:1;
  Race.Hb.on_spawn h ~parent:0 ~child:2;
  Race.Hb.on_access h (access ~tid:1 ~iid:10 Race_probe.Read g);
  Race.Hb.on_access h (access ~tid:2 ~iid:20 Race_probe.Write g);
  Race.Hb.on_access h (access ~tid:1 ~iid:10 Race_probe.Read g);
  Race.Hb.on_access h (access ~tid:2 ~iid:20 Race_probe.Write g);
  Alcotest.(check int) "same instruction pair reported once" 1
    (List.length (Race.Hb.races h))

let lockset_consistent () =
  let ls = Race.Lockset.create () in
  Race.Lockset.on_access ls (access ~tid:1 ~locks:[ "m" ] Race_probe.Write g);
  Race.Lockset.on_access ls (access ~tid:2 ~locks:[ "m" ] Race_probe.Write g);
  Race.Lockset.on_access ls (access ~tid:1 ~locks:[ "m" ] Race_probe.Read g);
  Alcotest.(check int) "consistently locked: no warning" 0
    (List.length (Race.Lockset.warnings ls))

let lockset_violation_once () =
  let ls = Race.Lockset.create () in
  Race.Lockset.on_access ls (access ~tid:1 Race_probe.Write g);
  Race.Lockset.on_access ls (access ~tid:2 ~iid:5 Race_probe.Write g);
  Race.Lockset.on_access ls (access ~tid:1 ~iid:6 Race_probe.Write g);
  (match Race.Lockset.warnings ls with
  | [ w ] -> Alcotest.(check int) "warns at the emptying access" 5 w.w_curr.ac_iid
  | ws -> Alcotest.failf "expected 1 warning, got %d" (List.length ws));
  (* refinement to empty happens only once per location *)
  Race.Lockset.on_access ls (access ~tid:2 Race_probe.Write g);
  Alcotest.(check int) "warned once" 1 (List.length (Race.Lockset.warnings ls))

let lockset_exclusive_quiet () =
  let ls = Race.Lockset.create () in
  for i = 0 to 9 do
    Race.Lockset.on_access ls (access ~tid:1 ~iid:i Race_probe.Write g)
  done;
  Alcotest.(check int) "single-thread access never warns" 0
    (List.length (Race.Lockset.warnings ls))

let lockorder_potential () =
  let lo = Race.Lockorder.create () in
  (* t1: A then B; t2: B then A — but never blocked simultaneously *)
  Race.Lockorder.on_acquire lo ~tid:1 ~iid:1 ~step:1 ~lock:"A" ~locks:[ "A" ];
  Race.Lockorder.on_acquire lo ~tid:1 ~iid:2 ~step:2 ~lock:"B"
    ~locks:[ "A"; "B" ];
  Race.Lockorder.on_acquire lo ~tid:2 ~iid:3 ~step:3 ~lock:"B" ~locks:[ "B" ];
  Race.Lockorder.on_acquire lo ~tid:2 ~iid:4 ~step:4 ~lock:"A"
    ~locks:[ "A"; "B" ];
  match Race.Lockorder.finalize lo with
  | [ c ] ->
      Alcotest.(check bool) "potential, not actual" false c.Race.Report.cy_actual;
      Alcotest.(check (list string)) "canonical lock list" [ "A"; "B" ]
        c.Race.Report.cy_locks
  | cs -> Alcotest.failf "expected 1 cycle, got %d" (List.length cs)

let lockorder_actual () =
  let lo = Race.Lockorder.create () in
  Race.Lockorder.on_acquire lo ~tid:1 ~iid:1 ~step:1 ~lock:"A" ~locks:[ "A" ];
  Race.Lockorder.on_acquire lo ~tid:2 ~iid:2 ~step:2 ~lock:"B" ~locks:[ "B" ];
  Race.Lockorder.on_request lo ~tid:1 ~iid:3 ~step:3 ~lock:"B" ~locks:[ "A" ];
  Race.Lockorder.on_request lo ~tid:2 ~iid:4 ~step:4 ~lock:"A" ~locks:[ "B" ];
  match Race.Lockorder.finalize lo with
  | [ c ] ->
      Alcotest.(check bool) "actual" true c.Race.Report.cy_actual;
      Alcotest.(check (list string)) "locks" [ "A"; "B" ] c.Race.Report.cy_locks
  | cs -> Alcotest.failf "expected 1 cycle, got %d" (List.length cs)

let lockorder_self () =
  let lo = Race.Lockorder.create () in
  Race.Lockorder.on_acquire lo ~tid:1 ~iid:1 ~step:1 ~lock:"m" ~locks:[ "m" ];
  Race.Lockorder.on_request lo ~tid:1 ~iid:2 ~step:2 ~lock:"m" ~locks:[ "m" ];
  match Race.Lockorder.finalize lo with
  | [ c ] ->
      Alcotest.(check bool) "actual" true c.Race.Report.cy_actual;
      Alcotest.(check (list string)) "self cycle" [ "m" ] c.Race.Report.cy_locks
  | cs -> Alcotest.failf "expected 1 cycle, got %d" (List.length cs)

(* A cleared pending request must not count as a closed cycle: t1's
   blocked request resolves (it acquires and moves on) before t2 blocks
   the other way — inconsistent order, but nobody deadlocked. *)
let lockorder_cleared_pending () =
  let lo = Race.Lockorder.create () in
  Race.Lockorder.on_acquire lo ~tid:1 ~iid:1 ~step:1 ~lock:"A" ~locks:[ "A" ];
  Race.Lockorder.on_request lo ~tid:1 ~iid:2 ~step:2 ~lock:"B" ~locks:[ "A" ];
  Race.Lockorder.on_acquire lo ~tid:1 ~iid:2 ~step:3 ~lock:"B"
    ~locks:[ "A"; "B" ];
  Race.Lockorder.on_acquire lo ~tid:2 ~iid:4 ~step:9 ~lock:"B" ~locks:[ "B" ];
  Race.Lockorder.on_request lo ~tid:2 ~iid:5 ~step:10 ~lock:"A" ~locks:[ "B" ];
  match Race.Lockorder.finalize lo with
  | [ c ] ->
      Alcotest.(check bool) "potential only — the wait resolved" false
        c.Race.Report.cy_actual
  | cs -> Alcotest.failf "expected 1 cycle, got %d" (List.length cs)

(* --- whole-machine detection --------------------------------------- *)

let detect_config =
  { Machine.default_config with fuel = 8_000_000 }

let detect_hardened ?(config = detect_config) p =
  let h = Conair.harden_exn p Conair.Survival in
  snd (Conair.detect_hardened ~config h)

let race_addrs (r : Race.Report.t) =
  List.sort_uniq compare
    (List.map
       (fun rc -> Race.Report.addr_string rc.Race.Report.rc_addr)
       r.Race.Report.races)

let has_actual (r : Race.Report.t) =
  List.exists (fun c -> c.Race.Report.cy_actual) r.Race.Report.cycles

let actual_locks (r : Race.Report.t) =
  List.filter_map
    (fun c ->
      if c.Race.Report.cy_actual then Some c.Race.Report.cy_locks else None)
    r.Race.Report.cycles

(* A data-race-free program: both threads touch the shared counter only
   under the lock. Nothing may be reported, on any lens, hardened or
   not. *)
let drf_program () =
  B.build ~main:"main" @@ fun b ->
  B.global b "counter" (Value.Int 0);
  B.mutex b "m";
  (B.func b "bump" ~params:[] @@ fun f ->
   B.label f "entry";
   B.lock f (B.mutex_ref "m");
   B.load f "c" (Instr.Global "counter");
   B.add f "c'" (B.reg "c") (B.int 1);
   B.store f (Instr.Global "counter") (B.reg "c'");
   B.unlock f (B.mutex_ref "m");
   B.ret f None);
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.spawn f "t1" "bump" [];
  B.spawn f "t2" "bump" [];
  B.join f (B.reg "t1");
  B.join f (B.reg "t2");
  (* locked even though the joins order it: Eraser has no happens-before,
     so an unlocked read here would (correctly, for Eraser) warn *)
  B.lock f (B.mutex_ref "m");
  B.load f "c" (Instr.Global "counter");
  B.unlock f (B.mutex_ref "m");
  B.output f "count=%v" [ B.reg "c" ];
  B.exit_ f

let drf_quiet () =
  let p = drf_program () in
  List.iter
    (fun report ->
      Alcotest.(check int) "no races" 0 (List.length report.Race.Report.races);
      Alcotest.(check int) "no warnings" 0
        (List.length report.Race.Report.warnings);
      Alcotest.(check int) "no cycles" 0
        (List.length report.Race.Report.cycles))
    [
      detect_hardened p;
      snd (Conair.run_detected ~config:detect_config p);
      snd
        (Conair.run_detected
           ~config:{ detect_config with policy = Sched.Random 3 }
           p);
    ]

(* Catalog patterns: the unrecoverable ones (self-deadlock) retry until
   their budget runs out, so keep it small — detection sees the events
   either way. *)
let pattern_config =
  { Machine.default_config with fuel = 500_000; max_retries = 400 }

let catalog_entry name =
  match List.find_opt (fun (e : Catalog.entry) -> e.name = name) (Catalog.all ())
  with
  | Some e -> e
  | None -> Alcotest.failf "no catalog entry %s" name

let catalog_three_way () =
  let report =
    detect_hardened ~config:pattern_config
      (catalog_entry "three-way-deadlock").program
  in
  Alcotest.(check (list (list string))) "one actual 3-cycle"
    [ [ "A"; "B"; "C" ] ]
    (actual_locks report)

let catalog_self_deadlock () =
  let report =
    detect_hardened ~config:pattern_config (catalog_entry "self-deadlock").program
  in
  Alcotest.(check (list (list string))) "self cycle" [ [ "m" ] ]
    (actual_locks report)

(* The use-after-free's root cause is the unsynchronized check-then-use
   on the [freed] flag: the flag write races the guard read. (The freed
   cell itself stays quiet here — the racy read follows the last write
   to the block, and SHB checks conflicts only at writes.) *)
let catalog_racy_free () =
  let report =
    detect_hardened ~config:pattern_config (catalog_entry "racy-free").program
  in
  Alcotest.(check (list string)) "the guard flag races" [ "global:freed" ]
    (race_addrs report)

let catalog_multi_producer () =
  let report =
    detect_hardened ~config:pattern_config
      (catalog_entry "multi-producer").program
  in
  Alcotest.(check bool) "the unprotected pattern races" true
    (report.Race.Report.races <> [])

(* --- bugbench ground truth ----------------------------------------- *)

let ground_truth_case (s : Spec.t) variant () =
  let inst = s.Spec.make ~variant ~oracle:s.Spec.info.needs_oracle in
  let report = detect_hardened inst.Spec.program in
  let gt = s.Spec.info.detect in
  let expected_races, expected_deadlock =
    match variant with
    | Spec.Buggy -> (gt.Spec.races_buggy, gt.Spec.deadlock_buggy)
    | Spec.Clean -> (gt.Spec.races_clean, gt.Spec.deadlock_clean)
  in
  Alcotest.(check (list string))
    (s.Spec.info.name ^ ": race addresses match the ground truth")
    expected_races (race_addrs report);
  Alcotest.(check bool)
    (s.Spec.info.name ^ ": actual-deadlock verdict matches")
    expected_deadlock (has_actual report)

let ground_truth_cases =
  List.concat_map
    (fun (s : Spec.t) ->
      [
        case (s.Spec.info.name ^ " buggy") (ground_truth_case s Spec.Buggy);
        case (s.Spec.info.name ^ " clean") (ground_truth_case s Spec.Clean);
      ])
    (Registry.all @ Registry.extended)

(* Clean variants whose ground truth is empty stay completely quiet on
   the race lens — the zero-false-positive guarantee SHB buys us. *)
let clean_zero_false_positives () =
  List.iter
    (fun (s : Spec.t) ->
      if s.Spec.info.detect.Spec.races_clean = [] then begin
        let inst = s.Spec.make ~variant:Spec.Clean ~oracle:s.Spec.info.needs_oracle in
        let report = detect_hardened inst.Spec.program in
        Alcotest.(check (list string))
          (s.Spec.info.name ^ ": clean variant is race-quiet")
          [] (race_addrs report)
      end)
    Registry.all

(* --- differential and determinism ---------------------------------- *)

let differential_on ~policy (p : Program.t) meta name =
  let config = { Machine.default_config with policy; fuel = 8_000_000 } in
  let fast =
    let d = Race.Detect.create () in
    let m =
      Machine.create ~config ?meta
        ~hooks:(Hooks.bundle ~race:(Race.Detect.probe d) ())
        p
    in
    ignore (Machine.run m);
    Json.to_string (Race.Report.to_json (Race.Detect.report d))
  in
  let slow =
    let d = Race.Detect.create () in
    let m =
      Ref_machine.create ~config ?meta
        ~hooks:(Hooks.bundle ~race:(Race.Detect.probe d) ())
        p
    in
    ignore (Ref_machine.run m);
    Json.to_string (Race.Report.to_json (Race.Detect.report d))
  in
  Alcotest.(check string) (name ^ ": engines agree byte-for-byte") fast slow

let differential_corpus () =
  let hardened_of p =
    let h = Conair.harden_exn p Conair.Survival in
    (h.Conair.hardened.Conair_transform.Harden.program,
     Some (Machine.meta_of_harden h.Conair.hardened))
  in
  let apps =
    List.filter_map
      (fun name ->
        Option.map
          (fun (s : Spec.t) ->
            let i = s.Spec.make ~variant:Spec.Buggy ~oracle:s.Spec.info.needs_oracle in
            (name, i.Spec.program))
          (Registry.find name))
      [ "HawkNL"; "SQLite"; "MySQL2"; "FFT" ]
  in
  let patterns =
    List.map
      (fun n -> (n, (catalog_entry n).Catalog.program))
      [ "three-way-deadlock"; "racy-free"; "multi-producer" ]
  in
  List.iter
    (fun (name, p) ->
      let hp, meta = hardened_of p in
      differential_on ~policy:Sched.Round_robin hp meta (name ^ "/rr");
      differential_on ~policy:(Sched.Random 42) hp meta (name ^ "/rand42"))
    (apps @ patterns)

(* The Sched guarantee: reports are deterministic in (program, policy,
   seed) — same seed, byte-identical race report. *)
let seeded_determinism () =
  let s = Option.get (Registry.find "SQLite") in
  let i = s.Spec.make ~variant:Spec.Buggy ~oracle:false in
  let h = Conair.harden_exn i.Spec.program Conair.Survival in
  let once () =
    let config =
      { Machine.default_config with policy = Sched.Random 11; fuel = 8_000_000 }
    in
    let _, report = Conair.detect_hardened ~config h in
    Json.to_string (Race.Report.to_json report)
  in
  Alcotest.(check string) "same seed, same bytes" (once ()) (once ())

(* --- the tutorial program ------------------------------------------ *)

(* cwd is test/ under [dune runtest] but the project root under
   [dune exec test/test_main.exe] *)
let tutorial_path =
  if Sys.file_exists "../examples/tutorial.mir" then "../examples/tutorial.mir"
  else "examples/tutorial.mir"

let tutorial_program () =
  let src = In_channel.with_open_text tutorial_path In_channel.input_all in
  match Parse.program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "tutorial.mir: %a" Parse.pp_error e

(* Every step of docs/TUTORIAL.md, in order: the bug manifests
   unhardened, the detector names the root cause, hardening recovers. *)
let tutorial_walkthrough () =
  let p = tutorial_program () in
  check_valid p;
  let r0 = run p in
  expect_failure_kind Instr.Assert_fail r0;
  let report = detect_hardened p in
  Alcotest.(check (list string)) "detector names the racy global"
    [ "global:balance" ] (race_addrs report);
  Alcotest.(check int) "lockset agrees" 1
    (List.length report.Race.Report.warnings);
  Alcotest.(check int) "no deadlock" 0 (List.length report.Race.Report.cycles);
  let h = Conair.harden_exn p Conair.Survival in
  let r1 = run_hardened h in
  expect_success r1;
  Alcotest.(check (list string)) "recovered output" [ "audit saw 100" ]
    r1.outputs;
  Alcotest.(check bool) "recovery actually ran" true (r1.stats.rollbacks > 0)

let suites =
  [
    ( "race.vclock",
      [
        case "basics" vc_basics;
        case "join and leq" vc_join_leq;
        case "epochs" vc_epochs;
      ] );
    ( "race.hb",
      [
        case "read-write race" hb_read_write_race;
        case "write-write race" hb_write_write_race;
        case "reads-from orders" hb_reads_from_orders;
        case "lock orders" hb_lock_orders;
        case "join orders" hb_join_orders;
        case "free race" hb_free_race;
        case "dedup" hb_dedup;
      ] );
    ( "race.lockset",
      [
        case "consistent locking is quiet" lockset_consistent;
        case "violation warns once" lockset_violation_once;
        case "exclusive is quiet" lockset_exclusive_quiet;
      ] );
    ( "race.lockorder",
      [
        case "potential cycle" lockorder_potential;
        case "actual cycle" lockorder_actual;
        case "self deadlock" lockorder_self;
        case "cleared pending is only potential" lockorder_cleared_pending;
      ] );
    ( "race.patterns",
      [
        case "drf program is quiet" drf_quiet;
        case "three-way deadlock" catalog_three_way;
        case "self-deadlock" catalog_self_deadlock;
        case "racy free" catalog_racy_free;
        case "multi-producer" catalog_multi_producer;
      ] );
    ("race.ground-truth", ground_truth_cases);
    ( "race.guarantees",
      [
        case "clean variants race-quiet" clean_zero_false_positives;
        slow_case "engines agree" differential_corpus;
        case "seeded determinism" seeded_determinism;
      ] );
    ("race.tutorial", [ case "walkthrough" tutorial_walkthrough ]);
  ]
