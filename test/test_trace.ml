(* Tests for the structured execution trace: event presence, ordering,
   and the recovery summary. *)

open Test_util
module Machine = Conair.Runtime.Machine
module Trace = Conair.Runtime.Trace

let traced_run ?(policy = Conair.Runtime.Sched.Round_robin) h =
  let meta = Machine.meta_of_harden h.Conair.hardened in
  let config = { Machine.default_config with policy; fuel = 500_000 } in
  let sink = Trace.create () in
  let m =
    Machine.create ~config ~meta
      ~hooks:(Conair.Runtime.Hooks.bundle ~trace:sink ())
      h.Conair.hardened.program
  in
  let outcome = Machine.run m in
  (outcome, sink)

let recovery_story_has_expected_shape () =
  let p = order_violation_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let outcome, sink = traced_run h in
  Alcotest.(check bool) "run succeeded" true
    (Conair.Runtime.Outcome.is_success outcome);
  let evs = Trace.events sink in
  let has pred = List.exists pred evs in
  Alcotest.(check bool) "spawn events" true
    (has (function Trace.Ev_spawn _ -> true | _ -> false));
  Alcotest.(check bool) "checkpoint events" true
    (has (function Trace.Ev_checkpoint _ -> true | _ -> false));
  Alcotest.(check bool) "failure detected" true
    (has (function Trace.Ev_failure_detected _ -> true | _ -> false));
  Alcotest.(check bool) "rollback events" true
    (has (function Trace.Ev_rollback _ -> true | _ -> false));
  Alcotest.(check bool) "recovered event" true
    (has (function Trace.Ev_recovered _ -> true | _ -> false));
  Alcotest.(check bool) "output event" true
    (has (function Trace.Ev_output _ -> true | _ -> false))

let event_order_detect_before_recover () =
  let p = order_violation_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let _, sink = traced_run h in
  let evs = Trace.events sink in
  let index pred =
    let rec go i = function
      | [] -> -1
      | e :: rest -> if pred e then i else go (i + 1) rest
    in
    go 0 evs
  in
  let first_ckpt = index (function Trace.Ev_checkpoint _ -> true | _ -> false) in
  let first_detect =
    index (function Trace.Ev_failure_detected _ -> true | _ -> false)
  in
  let first_rollback = index (function Trace.Ev_rollback _ -> true | _ -> false) in
  let recovered = index (function Trace.Ev_recovered _ -> true | _ -> false) in
  Alcotest.(check bool) "checkpoint before detection" true
    (0 <= first_ckpt && first_ckpt < first_detect);
  Alcotest.(check bool) "detection before rollback" true
    (first_detect < first_rollback);
  Alcotest.(check bool) "rollback before recovered" true
    (first_rollback < recovered)

let compensation_events_for_deadlock () =
  let p = deadlock_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let outcome, sink = traced_run h in
  Alcotest.(check bool) "recovered" true
    (Conair.Runtime.Outcome.is_success outcome);
  Alcotest.(check bool) "a lock was released by compensation" true
    (List.exists
       (function Trace.Ev_compensate_lock _ -> true | _ -> false)
       (Trace.events sink));
  Alcotest.(check bool) "block events recorded" true
    (List.exists
       (function Trace.Ev_block _ -> true | _ -> false)
       (Trace.events sink))

let rollback_count_matches_stats () =
  let p = interproc_segfault_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let meta = Machine.meta_of_harden h.Conair.hardened in
  let sink = Trace.create () in
  let m =
    Machine.create ~config:{ Machine.default_config with fuel = 500_000 }
      ~meta
      ~hooks:(Conair.Runtime.Hooks.bundle ~trace:sink ())
      h.Conair.hardened.program
  in
  ignore (Machine.run m);
  let rollback_events =
    List.length
      (List.filter
         (function Trace.Ev_rollback _ -> true | _ -> false)
         (Trace.events sink))
  in
  Alcotest.(check int) "trace agrees with stats"
    (Machine.stats m).rollbacks rollback_events

let recovery_summary_is_compact () =
  let p = order_violation_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let _, sink = traced_run h in
  let summary = Trace.recovery_events sink in
  Alcotest.(check bool) "summary is much smaller than the full trace" true
    (List.length summary * 2 < Trace.length sink);
  (* and it renders *)
  let text = Format.asprintf "%a" Trace.pp_recovery_summary sink in
  Alcotest.(check bool) "summary text nonempty" true (String.length text > 0)

let no_trace_no_cost () =
  (* Without a sink the machine keeps no events (the sink list is the only
     storage, so this is really an API check). *)
  let p = order_violation_program ~buggy:true () in
  let h = Conair.harden_exn p Conair.Survival in
  let r = run_hardened h in
  expect_success r;
  Alcotest.(check bool) "machine has no sink" true
    (match r.machine with
    | Conair.Runtime.Engine.M_fast m -> m.Machine.trace = None
    | _ -> Alcotest.fail "expected the fast engine")

let suites =
  [
    ( "trace",
      [
        case "recovery story has the expected events"
          recovery_story_has_expected_shape;
        case "events are causally ordered" event_order_detect_before_recover;
        case "deadlock compensation appears" compensation_events_for_deadlock;
        case "rollback events match stats" rollback_count_matches_stats;
        case "recovery summary is compact" recovery_summary_is_compact;
        case "tracing is opt-in" no_trace_no_cost;
      ] );
  ]
