(* The observability layer: the JSON encoder (escaping, round-trips, the
   parser), the streaming JSONL sink (golden log for a tiny deterministic
   program, batch/stream agreement on a catalog app), the metrics
   registry (JSON and Prometheus exposition), and the span builder — in
   particular the invariant that every completed [Stats.episode] yields
   exactly one [Recovered] span with matching start/end steps. *)

open Conair.Ir
open Test_util
module B = Builder
module Json = Conair.Obs.Json
module Jsonl = Conair.Obs.Jsonl
module Metrics = Conair.Obs.Metrics
module Span = Conair.Obs.Span
module Report = Conair.Obs.Report
module Prof = Conair.Obs.Prof
module Overhead = Conair.Obs.Overhead
module Aggregate = Conair.Obs.Aggregate
module Machine = Conair.Runtime.Machine
module Hooks = Conair.Runtime.Hooks
module Trace = Conair.Runtime.Trace
module Stats = Conair.Runtime.Stats
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Catalog = Conair_bugbench.Catalog

(* --- Json: encoding and escaping ----------------------------------- *)

let json_escaping () =
  let enc v = Json.to_string v in
  Alcotest.(check string) "quote and backslash" {|"a\"b\\c"|}
    (enc (Json.String "a\"b\\c"));
  Alcotest.(check string) "newline tab cr" {|"x\ny\tz\r"|}
    (enc (Json.String "x\ny\tz\r"));
  Alcotest.(check string) "control chars as \\u" {|"\u0001\u001f"|}
    (enc (Json.String "\x01\x1f"));
  Alcotest.(check string) "utf-8 passes through" "\"\xc3\xa9\""
    (enc (Json.String "\xc3\xa9"));
  Alcotest.(check string) "empty containers" {|{"a":[],"b":{}}|}
    (enc (Json.Obj [ ("a", Json.List []); ("b", Json.Obj []) ]));
  Alcotest.(check string) "scalars" {|[null,true,false,-3,1.5]|}
    (enc
       (Json.List
          [ Json.Null; Json.Bool true; Json.Bool false; Json.Int (-3);
            Json.Float 1.5 ]));
  (* non-finite floats have no JSON encoding; they degrade to null *)
  Alcotest.(check string) "nan is null" "[null,null,null]"
    (enc (Json.List [ Json.Float nan; Json.Float infinity;
                      Json.Float neg_infinity ]))

let json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool false;
      Json.Int max_int;
      Json.Int min_int;
      Json.Float 0.1;
      Json.Float (-1e-30);
      Json.Float 1.7976931348623157e308;
      Json.String "";
      Json.String "plain";
      Json.String "esc \" \\ \n \t \x00 \x7f é";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [
          ("nested", Json.List [ Json.Obj [ ("k", Json.Int 1) ]; Json.Null ]);
          ("s", Json.String "v");
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' ->
          if not (Json.equal v v') then
            Alcotest.failf "compact round-trip changed %s" (Json.to_string v)
      | Error e -> Alcotest.failf "reparse of %s: %s" (Json.to_string v) e)
    samples;
  (* the pretty encoding parses back to the same value too *)
  let big = Json.Obj [ ("all", Json.List samples) ] in
  (match Json.of_string (Json.to_string_pretty big) with
  | Ok v' ->
      Alcotest.(check bool) "pretty round-trip" true (Json.equal big v')
  | Error e -> Alcotest.failf "pretty reparse: %s" e)

let json_parser () =
  let parse s =
    match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check bool) "unicode escape" true
    (Json.equal (Json.String "A") (parse {|"\u0041"|}));
  Alcotest.(check bool) "surrogate pair" true
    (Json.equal (Json.String "\xf0\x9f\x98\x80") (parse {|"\ud83d\ude00"|}));
  Alcotest.(check bool) "whitespace tolerated" true
    (Json.equal
       (Json.Obj [ ("a", Json.List [ Json.Int 1 ]) ])
       (parse " {\n \"a\" : [ 1 ] } \t"));
  Alcotest.(check bool) "exponent is float" true
    (Json.equal (Json.Float 1500.) (parse "1.5e3"));
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "nul";
      "{\"a\" 1}"; "[1] garbage" ]

(* --- Jsonl: the streaming sink ------------------------------------- *)

(* A two-instruction single-threaded program: the whole event log is
   small and stable enough to pin as a golden value. *)
let tiny_program () =
  B.build ~main:"main" @@ fun b ->
  B.func b "main" ~params:[] @@ fun f ->
  B.label f "entry";
  B.output f "hi" [];
  B.exit_ f

let jsonl_golden () =
  let b = Buffer.create 256 in
  let meta = Jsonl.run_meta ~variant:"clean" "tiny" in
  let sink = Jsonl.sink ~meta ~store:true (Jsonl.buffer_writer b) in
  let m =
    Machine.create ~hooks:(Hooks.bundle ~trace:sink ()) (tiny_program ())
  in
  let outcome = Machine.run m in
  Alcotest.(check bool) "tiny program succeeds" true
    (Conair.Runtime.Outcome.is_success outcome);
  let expected =
    String.concat "\n"
      [
        {|{"type":"meta","app":"tiny","variant":"clean","engine":"fast","hardened":false}|};
        {|{"type":"event","ev":"schedule","step":0,"tid":0}|};
        {|{"type":"event","ev":"output","step":0,"tid":0,"text":"hi"}|};
        {|{"type":"event","ev":"schedule","step":1,"tid":0}|};
      ]
    ^ "\n"
  in
  Alcotest.(check string) "golden JSONL log" expected (Buffer.contents b)

let jsonl_stream_matches_batch () =
  (* on a real catalog app: the streamed log equals the batch
     serialization of the retained events, every line parses, and the
     sink's stored stream is the machine's trace *)
  let entry =
    List.find (fun (e : Catalog.entry) -> e.name = "uninit-read")
      (Catalog.all ())
  in
  let b = Buffer.create 4096 in
  let config = Machine.default_config in
  let meta = Jsonl.run_meta ~variant:"buggy" "uninit-read" in
  let sink = Jsonl.sink ~config ~meta ~store:true (Jsonl.buffer_writer b) in
  let m =
    Machine.create ~config ~hooks:(Hooks.bundle ~trace:sink ()) entry.program
  in
  ignore (Machine.run m);
  let events = Trace.events sink in
  Alcotest.(check bool) "events retained" true (events <> []);
  let streamed = Buffer.contents b in
  let batch =
    String.concat "\n" (Jsonl.events_to_lines ~config ~meta events) ^ "\n"
  in
  Alcotest.(check string) "stream equals batch" batch streamed;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' streamed)
  in
  Alcotest.(check int) "one line per event plus meta"
    (List.length events + 1) (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.failf "line is not an object: %s" line
      | Error e -> Alcotest.failf "unparseable line %s: %s" line e)
    lines;
  (* the meta header carries the config *)
  match Json.of_string (List.hd lines) with
  | Ok meta_line ->
      Alcotest.(check bool) "meta has config" true
        (Json.member "config" meta_line <> None);
      Alcotest.(check bool) "meta type" true
        (Json.member "type" meta_line = Some (Json.String "meta"))
  | Error e -> Alcotest.failf "meta line: %s" e

(* --- Span builder: one span per episode ---------------------------- *)

let run_observed_app name =
  let spec =
    List.find
      (fun (s : Spec.t) ->
        String.lowercase_ascii s.info.name = String.lowercase_ascii name)
      (Registry.all @ Registry.extended)
  in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  let h = Conair.harden_exn inst.program Conair.Survival in
  Conair.run_observed h

let spans_match_episodes () =
  let total_episodes = ref 0 in
  List.iter
    (fun app ->
      let rr = run_observed_app app in
      let stats = rr.Conair.run.stats in
      let episodes = Stats.episodes_chronological stats in
      total_episodes := !total_episodes + List.length episodes;
      let recovered =
        List.filter (fun s -> s.Span.sp_outcome = Span.Recovered) rr.spans
      in
      Alcotest.(check int)
        (app ^ ": one Recovered span per completed episode")
        (List.length episodes) (List.length recovered);
      List.iter
        (fun (ep : Stats.episode) ->
          match
            List.find_opt
              (fun s ->
                s.Span.sp_tid = ep.ep_tid
                && s.Span.sp_site_id = ep.ep_site_id
                && s.Span.sp_start = ep.ep_start)
              recovered
          with
          | None ->
              Alcotest.failf "%s: no span for episode at site %d step %d" app
                ep.ep_site_id ep.ep_start
          | Some s ->
              Alcotest.(check int)
                (app ^ ": span end matches episode end")
                ep.ep_end s.Span.sp_end;
              Alcotest.(check bool)
                (app ^ ": span counted rollbacks")
                true
                (s.Span.sp_rollbacks >= 1))
        episodes)
    [ "HawkNL"; "Apache"; "MozillaXP" ];
  Alcotest.(check bool) "the sweep exercised real episodes" true
    (!total_episodes > 0)

let spans_synthetic () =
  (* hand-built streams pin the outcome classification *)
  let open Trace in
  let stream =
    [
      Ev_schedule { step = 0; tid = 1 };
      Ev_failure_detected
        { step = 5; tid = 1; site_id = 3; kind = Instr.Assert_fail };
      Ev_rollback { step = 5; tid = 1; site_id = 3; retry = 1 };
      Ev_rollback { step = 9; tid = 1; site_id = 3; retry = 2 };
      Ev_recovered { step = 12; tid = 1; site_id = 3 };
      Ev_failure_detected
        { step = 20; tid = 2; site_id = 7; kind = Instr.Deadlock };
      Ev_rollback { step = 20; tid = 2; site_id = 7; retry = 1 };
      Ev_fail_stop { step = 31; tid = 2; site_id = 7 };
    ]
  in
  match Span.of_events stream with
  | [ a; b ] ->
      Alcotest.(check int) "span 1 start" 5 a.Span.sp_start;
      Alcotest.(check int) "span 1 end" 12 a.Span.sp_end;
      Alcotest.(check int) "span 1 rollbacks" 2 a.Span.sp_rollbacks;
      Alcotest.(check bool) "span 1 recovered" true
        (a.Span.sp_outcome = Span.Recovered);
      Alcotest.(check bool) "span 1 kind" true
        (a.Span.sp_kind = Some Instr.Assert_fail);
      Alcotest.(check int) "span 2 tid" 2 b.Span.sp_tid;
      Alcotest.(check bool) "span 2 fail-stopped" true
        (b.Span.sp_outcome = Span.Fail_stopped);
      Alcotest.(check int) "span 2 duration" 11 (Span.duration b)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let chrome_trace_shape () =
  let rr = run_observed_app "HawkNL" in
  let doc = Span.to_chrome ~events:rr.Conair.events rr.Conair.spans in
  (* must survive a serialization round-trip *)
  (match Json.of_string (Json.to_string_pretty doc) with
  | Error e -> Alcotest.failf "chrome doc reparse: %s" e
  | Ok _ -> ());
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
      let phase ev =
        match Json.member "ph" ev with
        | Some (Json.String p) -> p
        | _ -> Alcotest.fail "trace event without ph"
      in
      let phases = List.map phase evs in
      Alcotest.(check bool) "has metadata events" true
        (List.mem "M" phases);
      let completes =
        List.filter (fun ev -> phase ev = "X") evs
      in
      Alcotest.(check int) "one complete event per span"
        (List.length rr.Conair.spans) (List.length completes);
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              if Json.member k ev = None then
                Alcotest.failf "complete event missing %S" k)
            [ "name"; "ts"; "dur"; "pid"; "tid" ])
        completes
  | _ -> Alcotest.fail "no traceEvents list"

(* --- Stats.episodes_chronological ---------------------------------- *)

let episodes_are_chronological () =
  let rr = run_observed_app "HawkNL" in
  let eps = Stats.episodes_chronological rr.Conair.run.stats in
  Alcotest.(check bool) "has episodes" true (eps <> []);
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        a.Stats.ep_start <= b.Stats.ep_start && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending start steps" true (ascending eps);
  Alcotest.(check int) "same episodes, reversed"
    (List.length rr.Conair.run.stats.episodes)
    (List.length eps)

(* --- Metrics registry ---------------------------------------------- *)

let metrics_basics () =
  let t = Metrics.create () in
  let c = Metrics.counter t "jobs_total" ~help:"jobs" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  Alcotest.(check int) "counter value" 5 (Metrics.counter_value c);
  (match Metrics.inc ~by:(-1) c with
  | () -> Alcotest.fail "negative increment accepted"
  | exception Invalid_argument _ -> ());
  let c' = Metrics.counter t "jobs_total" in
  Metrics.inc c';
  Alcotest.(check int) "same identity, same cell" 6 (Metrics.counter_value c);
  let labeled = Metrics.counter t "jobs_total" ~labels:[ ("k", "v") ] in
  Metrics.inc labeled;
  Alcotest.(check int) "labels split identity" 1
    (Metrics.counter_value labeled);
  let g = Metrics.gauge t "depth" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram t "lat" ~buckets:[ 1.; 5.; 10. ] in
  List.iter (Metrics.observe h) [ 0.5; 3.; 7.; 100. ];
  Alcotest.(check int) "histogram count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 110.5 (Metrics.histogram_sum h);
  (match Metrics.histogram t "bad" ~buckets:[ 5.; 5. ] with
  | _ -> Alcotest.fail "non-increasing buckets accepted"
  | exception Invalid_argument _ -> ())

let metrics_exposition () =
  let t = Metrics.create () in
  let c = Metrics.counter t "reqs_total" ~help:"requests" in
  Metrics.inc ~by:3 c;
  let h = Metrics.histogram t "lat_steps" ~buckets:[ 1.; 10. ] in
  List.iter (Metrics.observe h) [ 0.5; 2.; 50. ];
  let json = Metrics.to_json t in
  (match Json.of_string (Json.to_string json) with
  | Error e -> Alcotest.failf "metrics json reparse: %s" e
  | Ok _ -> ());
  (match Json.member "metrics" json with
  | Some (Json.List [ cj; hj ]) ->
      Alcotest.(check bool) "counter value in json" true
        (Json.member "value" cj = Some (Json.Int 3));
      (match Json.member "buckets" hj with
      | Some (Json.List buckets) ->
          (* cumulative: le=1 → 1, le=10 → 2, +Inf → 3 *)
          let counts =
            List.map
              (fun b ->
                match Json.member "count" b with
                | Some (Json.Int n) -> n
                | _ -> Alcotest.fail "bucket without count")
              buckets
          in
          Alcotest.(check (list int)) "cumulative buckets" [ 1; 2; 3 ] counts
      | _ -> Alcotest.fail "histogram without buckets")
  | _ -> Alcotest.fail "unexpected metrics json shape");
  let text = Metrics.to_prometheus t in
  List.iter
    (fun needle ->
      if
        not
          (List.exists
             (fun line -> line = needle)
             (String.split_on_char '\n' text))
      then Alcotest.failf "prometheus text missing %S:\n%s" needle text)
    [
      "# HELP reqs_total requests";
      "# TYPE reqs_total counter";
      "reqs_total 3";
      "lat_steps_bucket{le=\"1.0\"} 1";
      "lat_steps_bucket{le=\"10.0\"} 2";
      "lat_steps_bucket{le=\"+Inf\"} 3";
      "lat_steps_sum 52.5";
      "lat_steps_count 3";
    ]

let standard_metrics_track_stats () =
  let rr = run_observed_app "HawkNL" in
  let stats = rr.Conair.run.stats in
  let v name =
    match Json.member "metrics" (Metrics.to_json rr.Conair.metrics) with
    | Some (Json.List ms) -> (
        match
          List.find_opt (fun m -> Json.member "name" m = Some (Json.String name))
            ms
        with
        | Some m -> Json.member "value" m
        | None -> None)
    | _ -> None
  in
  Alcotest.(check bool) "steps metric" true
    (v "conair_steps_total" = Some (Json.Int stats.steps));
  Alcotest.(check bool) "rollbacks metric" true
    (v "conair_rollbacks_total" = Some (Json.Int stats.rollbacks));
  Alcotest.(check bool) "episodes metric" true
    (v "conair_recovery_episodes_total"
    = Some (Json.Int (List.length stats.episodes)));
  (* live counters agree with the final stats *)
  Alcotest.(check bool) "live rollbacks agree" true
    (v "conair_live_rollbacks_total" = Some (Json.Int stats.rollbacks))

(* --- Prof: the deterministic cost profiler ------------------------- *)

let prof_tiny_exact () =
  (* the two-instruction program pins the attribution exactly: two useful
     steps, both in main/entry, nothing else *)
  let prof = Prof.create () in
  let m =
    Machine.create
      ~hooks:(Hooks.bundle ~profile:(Prof.probe prof) ())
      (tiny_program ())
  in
  ignore (Machine.run m);
  Prof.finalize prof;
  Alcotest.(check int) "useful" 2 (Prof.useful_steps prof);
  Alcotest.(check int) "checkpoint" 0 (Prof.checkpoint_steps prof);
  Alcotest.(check int) "wasted" 0 (Prof.wasted_steps prof);
  Alcotest.(check int) "idle" 0 (Prof.idle_steps prof);
  Alcotest.(check (list string)) "collapsed total" [ "main;entry 2" ]
    (Prof.to_collapsed prof Prof.Total);
  Alcotest.(check (list string)) "collapsed wasted is empty" []
    (Prof.to_collapsed prof Prof.Wasted)

let run_profiled_app name =
  let spec =
    List.find
      (fun (s : Spec.t) -> s.info.name = name)
      (Registry.all @ Registry.extended)
  in
  let inst = spec.make ~variant:Spec.Buggy ~oracle:true in
  let h = Conair.harden_exn inst.program Conair.Survival in
  Conair.run_profiled h

let prof_accounts_for_every_step () =
  List.iter
    (fun app ->
      let r, prof = run_profiled_app app in
      let stats = r.Conair.stats in
      (* conservation: every scheduler step lands in exactly one class *)
      Alcotest.(check int)
        (app ^ ": attributed + idle = total steps")
        stats.steps
        (Prof.attributed_steps prof + Prof.idle_steps prof);
      Alcotest.(check int)
        (app ^ ": attributed = useful + checkpoint + wasted")
        (Prof.useful_steps prof + Prof.checkpoint_steps prof
        + Prof.wasted_steps prof)
        (Prof.attributed_steps prof);
      Alcotest.(check int)
        (app ^ ": one checkpoint step per dynamic checkpoint")
        stats.checkpoints (Prof.checkpoint_steps prof);
      (* per-site charges cover the run's rollbacks and wasted steps *)
      let costs = Prof.site_costs prof in
      Alcotest.(check int)
        (app ^ ": site rollbacks sum to stats.rollbacks")
        stats.rollbacks
        (List.fold_left (fun acc c -> acc + c.Prof.sc_rollbacks) 0 costs);
      Alcotest.(check int)
        (app ^ ": site wasted steps sum to the wasted total")
        (Prof.wasted_steps prof)
        (List.fold_left (fun acc c -> acc + c.Prof.sc_wasted) 0 costs);
      if stats.rollbacks > 0 then begin
        Alcotest.(check bool) (app ^ ": rollbacks wasted steps") true
          (Prof.wasted_steps prof > 0);
        Alcotest.(check bool) (app ^ ": wasted ratio positive") true
          (Prof.wasted_ratio prof > 0.)
      end)
    [ "HawkNL"; "MozillaXP"; "Transmission" ]

let prof_collapsed_and_json () =
  let _, prof = run_profiled_app "HawkNL" in
  (* every collapsed line is "frame;frame;... N" with positive count *)
  let parse_line line =
    match String.rindex_opt line ' ' with
    | None -> Alcotest.failf "collapsed line without count: %s" line
    | Some i ->
        let frames = String.sub line 0 i in
        let count = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
        Alcotest.(check bool) "positive count" true (count > 0);
        List.iter
          (fun f ->
            Alcotest.(check bool) "non-empty frame" true (f <> ""))
          (String.split_on_char ';' frames);
        count
  in
  let total kind =
    List.fold_left (fun acc l -> acc + parse_line l) 0
      (Prof.to_collapsed prof kind)
  in
  Alcotest.(check int) "total lines sum to attributed steps"
    (Prof.attributed_steps prof) (total Prof.Total);
  Alcotest.(check int) "useful lines sum" (Prof.useful_steps prof)
    (total Prof.Useful);
  Alcotest.(check int) "wasted lines sum" (Prof.wasted_steps prof)
    (total Prof.Wasted);
  (* the JSON document and the counter events survive a round-trip *)
  (match Json.of_string (Json.to_string (Prof.to_json prof)) with
  | Error e -> Alcotest.failf "profile json reparse: %s" e
  | Ok j ->
      Alcotest.(check bool) "profile type tag" true
        (Json.member "type" j = Some (Json.String "profile")));
  List.iter
    (fun ev ->
      Alcotest.(check bool) "counter event phase" true
        (Json.member "ph" ev = Some (Json.String "C")))
    (Prof.counter_events prof);
  Alcotest.(check bool) "samples exist" true (Prof.samples prof <> [])

let prof_is_deterministic () =
  let profile_once () =
    let _, prof = run_profiled_app "MozillaXP" in
    Json.to_string (Prof.to_json prof)
  in
  Alcotest.(check string) "same program, same profile bytes"
    (profile_once ()) (profile_once ())

(* --- Aggregate: cross-run percentile summaries --------------------- *)

let aggregate_percentiles () =
  Alcotest.(check int) "empty" 0 (Aggregate.percentile [] 50.);
  let hundred = List.init 100 (fun i -> 100 - i) in
  Alcotest.(check int) "p50 of 1..100" 50 (Aggregate.percentile hundred 50.);
  Alcotest.(check int) "p95 of 1..100" 95 (Aggregate.percentile hundred 95.);
  Alcotest.(check int) "p100 of 1..100" 100
    (Aggregate.percentile hundred 100.);
  Alcotest.(check int) "p50 of singleton" 7 (Aggregate.percentile [ 7 ] 50.)

let aggregate_synthetic () =
  let record i =
    Printf.sprintf
      {|{"type":"run","case":"racy","seed":%d,"outcome":"success","steps":100,"episodes":%d,"retries":%d,"max_episode_steps":%d,"sites":[{"site":3,"episodes":%d,"retries":%d,"steps":%d}]}|}
      i
      (if i mod 2 = 0 then 1 else 0)
      (if i mod 2 = 0 then i else 0)
      (if i mod 2 = 0 then 10 * i else 0)
      (if i mod 2 = 0 then 1 else 0)
      (if i mod 2 = 0 then i else 0)
      (if i mod 2 = 0 then 10 * i else 0)
  in
  let lines =
    {|{"type":"meta","app":"conair_fuzz"}|}
    :: List.init 10 (fun i -> record (i + 1))
    @ [ {|{"type":"fuzz_summary","checks":1}|}; "" ]
  in
  match Aggregate.of_lines lines with
  | Error e -> Alcotest.failf "aggregate: %s" e
  | Ok agg ->
      (* runs 1..10; even seeds (2,4,6,8,10) have one episode each *)
      Alcotest.(check int) "runs counted, meta/summary skipped" 10
        agg.Aggregate.g_runs;
      Alcotest.(check int) "recovery runs" 5 agg.Aggregate.g_recovery_runs;
      Alcotest.(check int) "total steps" 1000 agg.Aggregate.g_total_steps;
      (* recovery steps are 20,40,60,80,100 *)
      Alcotest.(check int) "p50 recovery steps" 60
        agg.Aggregate.g_p50_recovery_steps;
      Alcotest.(check int) "max recovery steps" 100
        agg.Aggregate.g_max_recovery_steps;
      Alcotest.(check int) "max retries" 10 agg.Aggregate.g_max_retries;
      (match agg.Aggregate.g_sites with
      | [ s ] ->
          Alcotest.(check int) "site id" 3 s.Aggregate.g_site;
          Alcotest.(check int) "site episodes" 5 s.Aggregate.g_episodes;
          Alcotest.(check int) "site retries" 30 s.Aggregate.g_retries;
          Alcotest.(check int) "site steps" 300 s.Aggregate.g_steps;
          Alcotest.(check (float 1e-9)) "site ratio" 0.3 s.Aggregate.g_ratio
      | sites -> Alcotest.failf "expected 1 site, got %d" (List.length sites));
      (match Json.of_string (Json.to_string (Aggregate.to_json agg)) with
      | Error e -> Alcotest.failf "aggregate json reparse: %s" e
      | Ok _ -> ());
      Alcotest.(check bool) "render is non-empty" true
        (Aggregate.render agg <> [])

let aggregate_rejects_corrupt_lines () =
  match Aggregate.of_lines [ {|{"type":"run","steps":1}|}; "{oops" ] with
  | Ok _ -> Alcotest.fail "corrupt line accepted"
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e >= 7 && String.sub e 0 7 = "line 2:")

(* --- Overhead: the paper-style harness ----------------------------- *)

let overhead_case name =
  let spec =
    List.find (fun (s : Spec.t) -> s.info.name = name) Registry.all
  in
  let inst variant oracle =
    let i = spec.Spec.make ~variant ~oracle in
    {
      Overhead.program = i.Spec.program;
      fix_iids = i.Spec.fix_site_iids;
      accept = i.Spec.accept;
    }
  in
  let needs = spec.Spec.info.needs_oracle in
  {
    Overhead.name;
    needs_oracle = needs;
    buggy_fix = inst Spec.Buggy true;
    buggy_survival = inst Spec.Buggy needs;
    clean_fix = inst Spec.Clean true;
    clean_survival = inst Spec.Clean needs;
  }

let overhead_harness () =
  let rows =
    Overhead.measure_all [ overhead_case "HawkNL"; overhead_case "MySQL2" ]
  in
  Alcotest.(check int) "one row per case" 2 (List.length rows);
  List.iter
    (fun (r : Overhead.row) ->
      Alcotest.(check bool) (r.o_name ^ ": fix recovers") true
        r.o_fix_recovered;
      Alcotest.(check bool) (r.o_name ^ ": survival recovers") true
        r.o_surv_recovered;
      Alcotest.(check int)
        (r.o_name ^ ": all random runs succeed")
        r.o_runs r.o_fix_ok;
      Alcotest.(check bool)
        (r.o_name ^ ": fix overhead below the paper bound")
        true
        (r.o_fix_overhead_pct >= 0. && r.o_fix_overhead_pct < 1.);
      Alcotest.(check bool)
        (r.o_name ^ ": survival overhead small")
        true
        (r.o_surv_overhead_pct >= 0. && r.o_surv_overhead_pct < 5.);
      Alcotest.(check bool) (r.o_name ^ ": recovery did work") true
        (r.o_rollbacks > 0 && r.o_wasted_steps > 0);
      Alcotest.(check int)
        (r.o_name ^ ": site retries sum to the total")
        r.o_retries
        (List.fold_left (fun acc s -> acc + s.Overhead.sr_retries) 0 r.o_sites))
    rows;
  let s = Overhead.summary rows in
  Alcotest.(check int) "summary counts cases" 2 s.Overhead.s_cases;
  Alcotest.(check int) "summary fix recoveries" 2 s.Overhead.s_fix_recovered;
  (match Json.of_string (Json.to_string (Overhead.to_json rows)) with
  | Error e -> Alcotest.failf "overhead json reparse: %s" e
  | Ok j ->
      Alcotest.(check bool) "overhead type tag" true
        (Json.member "type" j = Some (Json.String "overhead")));
  (* header plus one line per case *)
  Alcotest.(check int) "table rows" 3
    (List.length (Overhead.table_rows rows))

let suites =
  [
    ( "obs",
      [
        case "json escaping" json_escaping;
        case "json round-trips" json_roundtrip;
        case "json parser" json_parser;
        case "jsonl golden log" jsonl_golden;
        case "jsonl stream equals batch" jsonl_stream_matches_batch;
        case "one span per recovery episode" spans_match_episodes;
        case "span builder on synthetic streams" spans_synthetic;
        case "chrome trace shape" chrome_trace_shape;
        case "episodes are chronological" episodes_are_chronological;
        case "metrics basics" metrics_basics;
        case "metrics exposition" metrics_exposition;
        case "standard metrics track stats" standard_metrics_track_stats;
        case "profiler: exact attribution on the tiny program"
          prof_tiny_exact;
        case "profiler: every step accounted for" prof_accounts_for_every_step;
        case "profiler: collapsed stacks and json exports"
          prof_collapsed_and_json;
        case "profiler: byte-identical across runs" prof_is_deterministic;
        case "aggregate: nearest-rank percentiles" aggregate_percentiles;
        case "aggregate: synthetic run records" aggregate_synthetic;
        case "aggregate: corrupt lines rejected"
          aggregate_rejects_corrupt_lines;
        case "overhead: harness on two benchmarks" overhead_harness;
      ] );
  ]
