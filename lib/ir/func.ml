(* Functions: parameters are registers; the body is a CFG of basic blocks
   stored in definition order (the entry block first by convention, but the
   [entry] field is authoritative). *)

module Label = Ident.Label
module Fname = Ident.Fname
module Reg = Ident.Reg

type t = {
  name : Fname.t;
  params : Reg.t list;
  entry : Label.t;
  blocks : Block.t list;
}

let v ~name ~params ~entry ~blocks = { name; params; entry; blocks }

let find_block f label =
  List.find_opt (fun (b : Block.t) -> Label.equal b.label label) f.blocks

let block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
      invalid_arg
        (Format.asprintf "Func.block_exn: no block %a in %a" Label.pp label
           Fname.pp f.name)

(** Iterate over every instruction of the function. *)
let iter_instrs f g =
  List.iter (fun (b : Block.t) -> Array.iter (g b) b.instrs) f.blocks

(** All instructions of the function, in block order. *)
let instrs f =
  List.concat_map (fun (b : Block.t) -> Array.to_list b.instrs) f.blocks

let instr_count f =
  List.fold_left (fun n b -> n + Block.length b) 0 f.blocks

(** Every register the function can ever touch, in a deterministic order:
    parameters first (in declaration order), then defs and uses in block /
    instruction order, each name once. This is the interning universe the
    runtime's link pass assigns dense indices over — index [i] of a
    parameter equals its position in [params]. *)
let reg_universe f =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add r =
    if not (Hashtbl.mem seen (Reg.name r)) then begin
      Hashtbl.replace seen (Reg.name r) ();
      out := r :: !out
    end
  in
  List.iter add f.params;
  List.iter
    (fun (b : Block.t) ->
      Array.iter
        (fun (i : Instr.t) ->
          Option.iter add (Instr.def i.op);
          List.iter add (Instr.uses i.op))
        b.instrs;
      List.iter add (Instr.term_uses b.term))
    f.blocks;
  List.rev !out

(** Locate an instruction by id: returns the block and the index within it. *)
let find_instr f iid =
  let found = ref None in
  List.iter
    (fun (b : Block.t) ->
      Array.iteri
        (fun i (ins : Instr.t) ->
          if ins.iid = iid && !found = None then found := Some (b, i))
        b.instrs)
    f.blocks;
  !found

let pp ppf f =
  Format.fprintf ppf "@[<v 2>func %a(%a) entry=%a@ %a@]" Fname.pp f.name
    Format.(
      pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") Reg.pp)
    f.params Label.pp f.entry
    Format.(pp_print_list ~pp_sep:pp_print_cut Block.pp)
    f.blocks
