(* Instruction set of the Mir IR.

   The design mirrors the abstraction level ConAir analyses LLVM bitcode at:

   - virtual registers ([Ident.Reg]) are in unbounded supply and are the only
     state an idempotent region may modify (they are restored from the
     checkpointed register image on rollback);
   - named memory locations are either [Global] (shared between threads) or
     [Stack] (private, frame-local) — both are "real memory", so writing one
     destroys idempotency;
   - the heap is reached through pointer values with explicit dereference
     instructions, which are the potential segmentation-fault sites;
   - locks are first-class values; [Lock]/[Timed_lock] acquisitions are the
     potential deadlock sites.

   The [Checkpoint] / [Try_recover] / [Fail_stop] instructions never appear
   in source programs: they are inserted by the ConAir transformation and
   interpreted by the recovery runtime. *)

module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg | Is_null

type operand = Reg of Reg.t | Const of Value.t

(** A named, non-register memory location. *)
type mem =
  | Global of string  (** shared across threads *)
  | Stack of string  (** private to the enclosing frame *)

(** Why a [Try_recover]/[Fail_stop] fired — the four failure symptoms of
    §3.1.1 of the paper. *)
type failure_kind = Assert_fail | Wrong_output | Seg_fault | Deadlock

type op =
  | Move of Reg.t * operand
  | Binop of Reg.t * binop * operand * operand
  | Unop of Reg.t * unop * operand
  | Load of Reg.t * mem  (** read a named location *)
  | Store of mem * operand  (** write a named location *)
  | Load_idx of Reg.t * operand * operand
      (** [r := ptr[idx]] — heap read, potential segfault *)
  | Store_idx of operand * operand * operand
      (** [ptr[idx] := v] — heap write, potential segfault *)
  | Alloc of Reg.t * operand  (** allocate [n] heap cells *)
  | Free of operand
  | Lock of operand
  | Unlock of operand
  | Assert of { cond : operand; msg : string; oracle : bool }
      (** [oracle] marks a developer-supplied output-correctness condition
          (Fig 9 of the paper); it is reported as a wrong-output site *)
  | Output of { fmt : string; args : operand list }
  | Call of Reg.t option * Fname.t * operand list
  | Spawn of Reg.t * Fname.t * operand list
  | Join of operand
  | Sleep of int  (** benchmark noise injection: skip [n] scheduler slots *)
  | Nop
  | Wait of string
      (** block until the named event is notified (pulse semantics: a
          notify with no waiter is lost — the lost-wakeup hang class) *)
  | Notify of string  (** wake every thread currently waiting on the event *)
  (* --- inserted by the ConAir transformation only --- *)
  | Checkpoint of int  (** setjmp analogue; payload is the checkpoint id *)
  | Ptr_guard of Reg.t * operand * operand
      (** [r := valid(ptr, idx)] — the pointer sanity check inserted before
          a potential segmentation-fault site (Fig 5c) *)
  | Timed_lock of Reg.t * operand * int
      (** acquire with a timeout in scheduler steps; writes [Bool] success *)
  | Timed_wait of Reg.t * string * int
      (** wait with a timeout; writes [Bool] "was notified" *)
  | Try_recover of { site_id : int; kind : failure_kind }
      (** longjmp-with-retry-budget analogue; falls through when exhausted *)
  | Fail_stop of { site_id : int; kind : failure_kind; msg : string }

(** An instruction is an operation tagged with a program-unique id. Ids
    survive the ConAir transformation, so analysis results expressed in ids
    remain valid in the hardened program. *)
type t = { iid : int; op : op }

type terminator =
  | Jump of Label.t
  | Branch of operand * Label.t * Label.t
  | Return of operand option
  | Exit  (** terminate the whole program successfully *)

(** Classification of an operation for the idempotent-region analysis
    (§3.2.1 / §4.1 of the paper). *)
type idem_class =
  | Safe  (** may appear anywhere inside an idempotent region *)
  | Compensable
      (** allowed inside a region because the runtime logs the acquired
          resource and releases it at the failure site (§4.1): heap
          allocation and lock acquisition *)
  | Destroying  (** ends any idempotent region *)

let classify = function
  | Move _ | Binop _ | Unop _ | Load _ | Load_idx _ | Assert _ | Nop | Sleep _
  | Ptr_guard _ ->
      Safe
  | Alloc _ | Lock _ | Timed_lock _ -> Compensable
  | Store _ | Store_idx _ | Free _ | Unlock _ | Output _ | Call _ | Spawn _
  | Join _ | Notify _ ->
      Destroying
  (* a re-executed Wait may block forever: conservatively a boundary (its
     own failure-site guard handles its recovery); Timed_wait is what the
     transformation emits and sits at the region end *)
  | Wait _ | Timed_wait _ -> Destroying
  (* Recovery pseudo-instructions never end a region: a [Checkpoint] *starts*
     one and the others only run on the failure path. *)
  | Checkpoint _ | Try_recover _ | Fail_stop _ -> Safe

let is_destroying i = classify i.op = Destroying

(** Does executing this operation actually mutate state that a rollback
    cannot undo? This is the *dynamic* counterpart of [Destroying]: a
    [Call] is a static region boundary only because the callee might have
    side effects — the frame push itself is perfectly idempotent, which is
    exactly what inter-procedural recovery (§4.3) relies on when it rolls
    back across a call. [Join] merely blocks and can be re-executed. *)
let dynamically_destroying = function
  | Store _ | Store_idx _ | Free _ | Unlock _ | Output _ | Spawn _
  | Notify _ ->
      true
  | Move _ | Binop _ | Unop _ | Load _ | Load_idx _ | Alloc _ | Lock _
  | Assert _ | Call _ | Join _ | Sleep _ | Nop | Checkpoint _ | Ptr_guard _
  | Timed_lock _ | Wait _ | Timed_wait _ | Try_recover _ | Fail_stop _ ->
      false

(** The register written by an operation, if any. *)
let def = function
  | Move (r, _)
  | Binop (r, _, _, _)
  | Unop (r, _, _)
  | Load (r, _)
  | Load_idx (r, _, _)
  | Alloc (r, _)
  | Spawn (r, _, _)
  | Timed_lock (r, _, _)
  | Timed_wait (r, _, _) ->
      Some r
  | Call (r, _, _) -> r
  | Ptr_guard (r, _, _) -> Some r
  | Store _ | Store_idx _ | Free _ | Lock _ | Unlock _ | Assert _ | Output _
  | Join _ | Sleep _ | Nop | Wait _ | Notify _ | Checkpoint _
  | Try_recover _ | Fail_stop _ ->
      None

let regs_of_operand = function Reg r -> [ r ] | Const _ -> []

let regs_of_operands ops = List.concat_map regs_of_operand ops

(** Registers read by an operation. *)
let uses = function
  | Move (_, a) | Unop (_, _, a) | Alloc (_, a) -> regs_of_operand a
  | Binop (_, _, a, b) | Load_idx (_, a, b) | Ptr_guard (_, a, b) ->
      regs_of_operands [ a; b ]
  | Store (_, a) -> regs_of_operand a
  | Store_idx (p, i, v) -> regs_of_operands [ p; i; v ]
  | Load _ | Sleep _ | Nop | Wait _ | Notify _ | Timed_wait _ | Checkpoint _
  | Try_recover _ | Fail_stop _ ->
      []
  | Free a | Lock a | Unlock a | Join a | Timed_lock (_, a, _) ->
      regs_of_operand a
  | Assert { cond; _ } -> regs_of_operand cond
  | Output { args; _ } -> regs_of_operands args
  | Call (_, _, args) | Spawn (_, _, args) -> regs_of_operands args

(** Registers read by a terminator. *)
let term_uses = function
  | Branch (c, _, _) -> regs_of_operand c
  | Return (Some a) -> regs_of_operand a
  | Jump _ | Return None | Exit -> []

(** Named locations read by an operation ([Load] only — dereferences go
    through pointer values, not names). *)
let mem_reads = function Load (_, m) -> [ m ] | _ -> []

let mem_writes = function Store (m, _) -> [ m ] | _ -> []

(** Does this operation read shared state (a global or the heap)? Used by
    the §4.2 optimization: a non-deadlock site is only recoverable if its
    slice reaches such a read inside the reexecution region. *)
let reads_shared = function
  | Load (_, Global _) | Load_idx _ -> true
  | _ -> false

(** Is this operation a lock acquisition? Used by the deadlock-site
    optimization (§4.2). *)
let acquires_lock = function Lock _ | Timed_lock _ -> true | _ -> false

let pp_binop ppf op =
  let s =
    match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | Mod -> "mod"
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Le -> "le"
    | Gt -> "gt"
    | Ge -> "ge"
    | And -> "and"
    | Or -> "or"
  in
  Format.pp_print_string ppf s

let pp_unop ppf op =
  Format.pp_print_string ppf
    (match op with Not -> "not" | Neg -> "neg" | Is_null -> "is_null")

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Const v -> Value.pp ppf v

let pp_mem ppf = function
  | Global g -> Format.fprintf ppf "$%s" g
  | Stack s -> Format.fprintf ppf "~%s" s

let pp_failure_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Assert_fail -> "assert"
    | Wrong_output -> "wrong-output"
    | Seg_fault -> "segfault"
    | Deadlock -> "deadlock")

let pp_args ppf args =
  Format.(pp_print_list ~pp_sep:(fun f () -> fprintf f ", ") pp_operand)
    ppf args

let pp_op ppf = function
  | Move (r, a) -> Format.fprintf ppf "%a = %a" Reg.pp r pp_operand a
  | Binop (r, op, a, b) ->
      Format.fprintf ppf "%a = %a %a, %a" Reg.pp r pp_binop op pp_operand a
        pp_operand b
  | Unop (r, op, a) ->
      Format.fprintf ppf "%a = %a %a" Reg.pp r pp_unop op pp_operand a
  | Load (r, m) -> Format.fprintf ppf "%a = load %a" Reg.pp r pp_mem m
  | Store (m, a) -> Format.fprintf ppf "store %a, %a" pp_mem m pp_operand a
  | Load_idx (r, p, i) ->
      Format.fprintf ppf "%a = load %a[%a]" Reg.pp r pp_operand p pp_operand i
  | Store_idx (p, i, v) ->
      Format.fprintf ppf "store %a[%a], %a" pp_operand p pp_operand i
        pp_operand v
  | Alloc (r, n) -> Format.fprintf ppf "%a = alloc %a" Reg.pp r pp_operand n
  | Free a -> Format.fprintf ppf "free %a" pp_operand a
  | Lock a -> Format.fprintf ppf "lock %a" pp_operand a
  | Unlock a -> Format.fprintf ppf "unlock %a" pp_operand a
  | Assert { cond; msg; oracle } ->
      Format.fprintf ppf "%s %a %S"
        (if oracle then "oracle" else "assert")
        pp_operand cond msg
  | Output { fmt; args } -> Format.fprintf ppf "output %S (%a)" fmt pp_args args
  | Call (None, f, args) ->
      Format.fprintf ppf "call %a(%a)" Fname.pp f pp_args args
  | Call (Some r, f, args) ->
      Format.fprintf ppf "%a = call %a(%a)" Reg.pp r Fname.pp f pp_args args
  | Spawn (r, f, args) ->
      Format.fprintf ppf "%a = spawn %a(%a)" Reg.pp r Fname.pp f pp_args args
  | Join a -> Format.fprintf ppf "join %a" pp_operand a
  | Sleep n -> Format.fprintf ppf "sleep %d" n
  | Nop -> Format.fprintf ppf "nop"
  | Wait e -> Format.fprintf ppf "wait %s" e
  | Notify e -> Format.fprintf ppf "notify %s" e
  | Timed_wait (r, e, t) ->
      Format.fprintf ppf "%a = timedwait %s timeout=%d" Reg.pp r e t
  | Checkpoint id -> Format.fprintf ppf "checkpoint #%d" id
  | Ptr_guard (r, p, i) ->
      Format.fprintf ppf "%a = ptr_guard %a[%a]" Reg.pp r pp_operand p
        pp_operand i
  | Timed_lock (r, a, t) ->
      Format.fprintf ppf "%a = timedlock %a timeout=%d" Reg.pp r pp_operand a t
  | Try_recover { site_id; kind } ->
      Format.fprintf ppf "try_recover site=%d kind=%a" site_id pp_failure_kind
        kind
  | Fail_stop { site_id; kind; msg } ->
      Format.fprintf ppf "fail_stop site=%d kind=%a %S" site_id
        pp_failure_kind kind msg

let pp ppf i = Format.fprintf ppf "[%d] %a" i.iid pp_op i.op

let pp_terminator ppf = function
  | Jump l -> Format.fprintf ppf "jump %a" Label.pp l
  | Branch (c, t, f) ->
      Format.fprintf ppf "branch %a, %a, %a" pp_operand c Label.pp t Label.pp f
  | Return None -> Format.fprintf ppf "return"
  | Return (Some a) -> Format.fprintf ppf "return %a" pp_operand a
  | Exit -> Format.fprintf ppf "exit"
