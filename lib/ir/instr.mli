(** The instruction set of the Mir IR, and the classification the ConAir
    analyses rely on.

    The abstraction level mirrors what the paper analyses: virtual
    registers are in unbounded supply and are the only state an idempotent
    region may modify (rollback restores them from the checkpointed
    register image); writes to named memory, the heap, or I/O destroy
    idempotency; heap allocation and lock acquisition are allowed inside a
    region with run-time compensation (§4.1). *)

module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg | Is_null

type operand = Reg of Reg.t | Const of Value.t

(** A named, non-register memory location. *)
type mem =
  | Global of string  (** shared across threads *)
  | Stack of string  (** private to the enclosing frame *)

(** The four failure symptoms of §3.1.1. *)
type failure_kind = Assert_fail | Wrong_output | Seg_fault | Deadlock

type op =
  | Move of Reg.t * operand
  | Binop of Reg.t * binop * operand * operand
  | Unop of Reg.t * unop * operand
  | Load of Reg.t * mem
  | Store of mem * operand
  | Load_idx of Reg.t * operand * operand
      (** [r := ptr[idx]] — heap read, potential segfault site *)
  | Store_idx of operand * operand * operand
      (** [ptr[idx] := v] — heap write, potential segfault site *)
  | Alloc of Reg.t * operand  (** allocate [n] zeroed heap cells *)
  | Free of operand
  | Lock of operand
  | Unlock of operand
  | Assert of { cond : operand; msg : string; oracle : bool }
      (** [oracle] marks a developer output-correctness condition (Fig 9);
          it is classified as a wrong-output site *)
  | Output of { fmt : string; args : operand list }
      (** each ["%v"] in [fmt] consumes one argument *)
  | Call of Reg.t option * Fname.t * operand list
  | Spawn of Reg.t * Fname.t * operand list
  | Join of operand
  | Sleep of int  (** benchmark noise injection: yield for [n] steps *)
  | Nop
  | Wait of string
      (** block until the named event is notified (pulse semantics: a
          notify with no waiter is lost — the lost-wakeup hang class) *)
  | Notify of string  (** wake every thread currently waiting on the event *)
  (* --- inserted by the ConAir transformation only --- *)
  | Checkpoint of int  (** setjmp analogue; payload is the checkpoint id *)
  | Ptr_guard of Reg.t * operand * operand
      (** [r := valid(ptr, idx)] — the Fig 5c pointer sanity check *)
  | Timed_lock of Reg.t * operand * int
      (** acquire with a step timeout; writes [Bool] success *)
  | Timed_wait of Reg.t * string * int
      (** wait with a timeout; writes [Bool] "was notified" *)
  | Try_recover of { site_id : int; kind : failure_kind }
      (** compensate + longjmp with a retry budget; falls through when
          exhausted *)
  | Fail_stop of { site_id : int; kind : failure_kind; msg : string }

type t = { iid : int; op : op }
(** An instruction: an operation with a program-unique id. Ids survive the
    transformation, so analysis results stated in ids stay valid. *)

type terminator =
  | Jump of Label.t
  | Branch of operand * Label.t * Label.t
  | Return of operand option
  | Exit  (** terminate the whole program successfully, like [exit(0)] *)

(** Classification for the idempotent-region analysis (§3.2.1 / §4.1). *)
type idem_class =
  | Safe  (** allowed anywhere inside a region *)
  | Compensable
      (** allowed with run-time compensation: allocation and lock
          acquisition *)
  | Destroying  (** ends any idempotent region *)

val classify : op -> idem_class

val is_destroying : t -> bool
(** [classify i.op = Destroying]. *)

val dynamically_destroying : op -> bool
(** Does *executing* the operation mutate state a rollback cannot undo?
    Weaker than [Destroying]: a [Call]'s frame push is idempotent (which
    inter-procedural recovery relies on); only the callee's own effects
    count, at the callee's own instructions. *)

val def : op -> Reg.t option
(** The register the operation writes, if any. *)

val uses : op -> Reg.t list
(** The registers the operation reads. *)

val term_uses : terminator -> Reg.t list
(** Registers read by a terminator (branch conditions, return values). *)

val mem_reads : op -> mem list
val mem_writes : op -> mem list

val reads_shared : op -> bool
(** Reads a global or the heap — what the §4.2 recoverability slice looks
    for inside a region. *)

val acquires_lock : op -> bool
(** [Lock] or [Timed_lock] — what the §4.2 deadlock-site test looks for. *)

val pp_binop : Format.formatter -> binop -> unit
val pp_unop : Format.formatter -> unop -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp_mem : Format.formatter -> mem -> unit
val pp_failure_kind : Format.formatter -> failure_kind -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit
