(** Functions: parameters are registers; the body is a list of basic
    blocks with a designated entry. *)

module Label = Ident.Label
module Fname = Ident.Fname
module Reg = Ident.Reg

type t = {
  name : Fname.t;
  params : Reg.t list;
  entry : Label.t;
  blocks : Block.t list;
}

val v :
  name:Fname.t -> params:Reg.t list -> entry:Label.t -> blocks:Block.t list -> t

val find_block : t -> Label.t -> Block.t option

val block_exn : t -> Label.t -> Block.t
(** @raise Invalid_argument if the label does not exist. *)

val iter_instrs : t -> (Block.t -> Instr.t -> unit) -> unit
(** Iterate over every instruction, with its enclosing block. *)

val instrs : t -> Instr.t list
(** All instructions, in block order. *)

val instr_count : t -> int

val find_instr : t -> int -> (Block.t * int) option
(** Locate an instruction by id: its block and index within it. *)

val reg_universe : t -> Reg.t list
(** Every register the function mentions, deduplicated, in a
    deterministic order: parameters first (in declaration order, so a
    parameter's position doubles as its interned index), then defs and
    uses in block/instruction order. *)

val pp : Format.formatter -> t -> unit
