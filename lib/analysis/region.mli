(** Idempotent-region / reexecution-point identification (§3.2.2): a
    backward, instruction-level CFG walk from each failure site that emits
    a reexecution point right after every idempotency-destroying
    instruction it meets, or at the function entry; safe and compensable
    instructions (§4.1) are part of the region. Linear in the function
    size; terminates on loops via a visited set.

    Safety invariant (property-tested): on every entry-to-site path, a
    point follows the path's last destroying instruction — so at run time
    the thread's most recent checkpoint always lies within the site's
    idempotent region. *)

open Conair_ir
module Fname = Ident.Fname
module Label = Ident.Label

type point =
  | Entry of Fname.t  (** at the entrance of the function *)
  | After of int  (** immediately after the instruction with this id *)

val point_equal : point -> point -> bool
val pp_point : Format.formatter -> point -> unit

module Iid_set : Set.S with type elt = int

type t = {
  site : Site.t;
  points : point list;  (** the reexecution points of this site *)
  region_iids : Iid_set.t;
      (** safe/compensable instructions inside the region *)
  boundary_iids : Iid_set.t;
      (** the destroying instructions delimiting it *)
  branch_conds : Ident.Reg.t list;
      (** condition registers of branches crossed inside the region —
          control-dependence seeds for the slice *)
  reaches_entry_clean : bool;
      (** every backward path reaches the entry destroying-free — the
          §4.3 inter-procedural condition (1) *)
}

val walk :
  Cfg.t ->
  label:Label.t ->
  idx:int ->
  point list * Iid_set.t * Iid_set.t * Ident.Reg.t list * bool
(** Walk backwards from just before instruction [idx] of block [label];
    returns (points, region, boundary, branch conds, clean-to-entry).
    Exposed so the inter-procedural analysis can walk from a call site. *)

val of_site : Cfg.t -> Site.t -> t
(** The region of a site in the function [Cfg.t] was built from.
    @raise Invalid_argument if the site is not in that function. *)

val contains_lock_acquisition : Cfg.t -> t -> bool
(** The §4.2 deadlock-site recoverability test (the site's own lock does
    not count). *)

val covers_iids : t -> int list -> bool
(** Do all the given instruction ids fall inside this region (its
    safe/compensable body — boundary instructions do not count)? The fix
    synthesizer uses this to report whether a candidate patch's protected
    extent stays within the racy access's idempotent region, i.e. whether
    the lock scope it introduces is no wider than what ConAir would
    re-execute on recovery. *)
