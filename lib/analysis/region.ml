(* Idempotent-region / reexecution-point identification (§3.2.2).

   For a failure site [f], we walk the instruction-level CFG backwards from
   the position just before [f]:

   - hitting an idempotency-destroying instruction [d] ends that path and
     emits the reexecution point "right after [d]";
   - hitting the entrance of the enclosing function emits the point "at the
     function entry" (the basic design never crosses into callers — §4.3
     revisits this);
   - safe and compensable instructions (§4.1: allocation and lock
     acquisition) are part of the region and the walk continues through
     them;
   - a visited set makes the walk linear in the function size and makes it
     terminate on loops: a destroying instruction *inside* a loop on the way
     to [f] gets a point after it inside the loop, so at run time the most
     recent checkpoint is always within the idempotent region.

   One deliberate strengthening versus the paper's prose: when the entry
   block is also a loop target (a back edge jumps to the function's first
   block), we both emit the entry point and keep exploring the back-edge
   predecessors, because at run time "before the first instruction" can be
   reached from inside the loop too. *)

open Conair_ir
module Label = Ident.Label
module Fname = Ident.Fname

(** A reexecution point, i.e. where the transformation inserts a
    checkpoint. *)
type point =
  | Entry of Fname.t  (** at the entrance of the function *)
  | After of int  (** immediately after the instruction with this id *)

let point_equal a b =
  match (a, b) with
  | Entry f, Entry g -> Fname.equal f g
  | After i, After j -> i = j
  | (Entry _ | After _), _ -> false

let pp_point ppf = function
  | Entry f -> Format.fprintf ppf "entry(%a)" Fname.pp f
  | After i -> Format.fprintf ppf "after(%d)" i

module Iid_set = Set.Make (Int)

type t = {
  site : Site.t;
  points : point list;
  region_iids : Iid_set.t;
      (** safe/compensable instructions inside the region (candidates for
          slicing and for the lock-acquisition check) *)
  boundary_iids : Iid_set.t;
      (** the destroying instructions that delimit the region *)
  branch_conds : Ident.Reg.t list;
      (** condition registers of branches crossed inside the region —
          control-dependence seeds for the slice *)
  reaches_entry_clean : bool;
      (** true iff every backward path from the site reaches the function
          entrance without meeting a destroying instruction — the §4.3
          inter-procedural condition (1) *)
}

(* A walk position: [Before_instr (l, i)] examines instruction [i] of block
   [l]; [Block_start l] is the point before any instruction of [l]. *)
type pos = Before_instr of Label.t * int | Block_start of Label.t

let pos_compare = compare

module Pos_set = Set.Make (struct
  type nonrec t = pos

  let compare = pos_compare
end)

(* The walk can start either just before an instruction of the function, or
   (for the inter-procedural analysis) just before a call instruction. Both
   reduce to a list of initial positions. *)
let start_positions label idx =
  if idx > 0 then [ Before_instr (label, idx - 1) ] else [ Block_start label ]

let preds_positions (cfg : Cfg.t) label =
  List.map
    (fun p ->
      let b = Cfg.block cfg p in
      let n = Block.length b in
      if n > 0 then Before_instr (p, n - 1) else Block_start p)
    (Cfg.preds cfg label)

(* Branch-condition register of a block's terminator, if any. *)
let branch_cond (cfg : Cfg.t) label =
  match (Cfg.block cfg label).term with
  | Instr.Branch (Instr.Reg r, _, _) -> Some r
  | Instr.Branch (Instr.Const _, _, _)
  | Instr.Jump _ | Instr.Return _ | Instr.Exit ->
      None

(** Walk backwards from the position just before instruction index [idx] of
    block [label]. Exposed separately from {!of_site} so the
    inter-procedural analysis can walk from a call site. *)
let walk (cfg : Cfg.t) ~label ~idx =
  let points = ref [] in
  let region = ref Iid_set.empty in
  let boundary = ref Iid_set.empty in
  let conds = ref [] in
  let dirty_path = ref false in
  let add_point p =
    if not (List.exists (point_equal p) !points) then points := p :: !points
  in
  let visited = ref Pos_set.empty in
  let rec go = function
    | [] -> ()
    | pos :: rest when Pos_set.mem pos !visited -> go rest
    | pos :: rest -> (
        visited := Pos_set.add pos !visited;
        match pos with
        | Block_start l ->
            (* Crossing from a block start into its predecessors also
               crosses the predecessors' terminators: collect branch
               conditions for control-dependence slicing. *)
            let preds = Cfg.preds cfg l in
            List.iter
              (fun p ->
                match branch_cond cfg p with
                | Some r -> conds := r :: !conds
                | None -> ())
              preds;
            if Cfg.is_entry cfg l then begin
              add_point (Entry cfg.func.name);
              go (preds_positions cfg l @ rest)
            end
            else if preds = [] then
              (* unreachable block head: nothing executes before it *)
              go rest
            else go (preds_positions cfg l @ rest)
        | Before_instr (l, i) ->
            let instr = (Cfg.block cfg l).instrs.(i) in
            (match Instr.classify instr.op with
            | Instr.Destroying ->
                boundary := Iid_set.add instr.iid !boundary;
                dirty_path := true;
                add_point (After instr.iid);
                go rest
            | Instr.Safe | Instr.Compensable ->
                region := Iid_set.add instr.iid !region;
                let next =
                  if i > 0 then Before_instr (l, i - 1) else Block_start l
                in
                go (next :: rest)))
  in
  go (start_positions label idx);
  let points = List.rev !points in
  let reaches_entry_clean =
    (not !dirty_path)
    && List.exists (function Entry _ -> true | After _ -> false) points
  in
  ( points,
    !region,
    !boundary,
    List.sort_uniq Ident.Reg.compare !conds,
    reaches_entry_clean )

(** Compute the reexecution region for [site], which must live in the
    function [cfg] was built from. *)
let of_site (cfg : Cfg.t) (site : Site.t) =
  match Func.find_instr cfg.func site.iid with
  | None ->
      invalid_arg
        (Format.asprintf "Region.of_site: site %a not found in %a" Site.pp
           site Fname.pp cfg.func.name)
  | Some (b, idx) ->
      let points, region_iids, boundary_iids, branch_conds, reaches_entry_clean
          =
        walk cfg ~label:b.Block.label ~idx
      in
      { site; points; region_iids; boundary_iids; branch_conds;
        reaches_entry_clean }

(** Does some region of this site contain a lock acquisition? (the §4.2
    deadlock-site recoverability test — the site's own lock does not
    count). *)
(* Do all the given instruction ids fall inside the region's body? The
   fix synthesizer compares a candidate patch's protected extent against
   the racy access's idempotent region this way. *)
let covers_iids (r : t) iids =
  List.for_all (fun iid -> Iid_set.mem iid r.region_iids) iids

let contains_lock_acquisition (cfg : Cfg.t) (r : t) =
  Iid_set.exists
    (fun iid ->
      match Func.find_instr cfg.func iid with
      | Some (b, i) -> Instr.acquires_lock b.Block.instrs.(i).op
      | None -> false)
    r.region_iids
