(** The paper-style overhead harness: paired unhardened/hardened runs
    with the cost profiler attached, regenerating the EXPERIMENTS.md
    Table 3 numbers (recovery verdicts, fix/survival overhead %) plus the
    recovery-cost columns only the profiler can supply — per-site retry
    counts, max/mean recovery steps, wasted-step attribution.

    Parameterized over [case] values rather than the bugbench registry
    (which lives above this library in the dependency order); the CLI's
    [overhead] subcommand builds the cases from the registry. *)

open Conair_ir

type inst = {
  program : Program.t;
  fix_iids : int list;  (** instruction ids of the observed failure *)
  accept : string list -> bool;  (** output oracle *)
}

(** The four instances [bench/main.ml]'s table3 pairs per benchmark:
    buggy with the oracle always on (fix mode), buggy with the paper's
    oracle setting (survival mode), and the matching clean variants for
    the overhead measurements. *)
type case = {
  name : string;
  needs_oracle : bool;  (** the paper's "yes*": needs a developer oracle *)
  buggy_fix : inst;
  buggy_survival : inst;
  clean_fix : inst;
  clean_survival : inst;
}

type site_retry = {
  sr_site : int;
  sr_episodes : int;
  sr_retries : int;
  sr_wasted : int;  (** steps rolled back because of this site *)
}

type row = {
  o_name : string;
  o_needs_oracle : bool;
  o_fix_recovered : bool;
  o_fix_ok : int;  (** successful runs, out of [o_runs] *)
  o_surv_recovered : bool;
  o_surv_ok : int;
  o_runs : int;
  o_fix_overhead_pct : float;
  o_surv_overhead_pct : float;
  o_rollbacks : int;
  o_retries : int;
  o_max_recovery_steps : int;
  o_mean_recovery_steps : float;
  o_useful_steps : int;
  o_checkpoint_steps : int;
  o_wasted_steps : int;
  o_sites : site_retry list;  (** ascending site id *)
  o_detected_by : string list;
      (** detector lenses that flag the buggy program ("hb", "lockset",
          "deadlock"); empty when no [detect] callback was supplied *)
}

type summary = {
  s_cases : int;
  s_fix_recovered : int;
  s_surv_recovered : int;
  s_max_fix_overhead_pct : float;
  s_max_surv_overhead_pct : float;
}

val measure :
  ?config:Conair_runtime.Machine.config ->
  ?random_runs:int ->
  ?detect:(case -> string list) ->
  case -> row
(** Recovery verdicts (deterministic schedule + [random_runs] seeded
    random schedules, default 5 — the bench's "6/6"), instruction-count
    overhead on the clean pairs, and a profiled deterministic
    survival-mode buggy run for the recovery-cost columns. [detect]
    names the detector lenses flagging the case's buggy program — a
    callback because the detector library sits above this one in the
    dependency order; the CLI closes over [Conair.Race] and hands it
    down.
    @raise Failure if the analysis rejects a program. *)

val measure_all :
  ?config:Conair_runtime.Machine.config ->
  ?random_runs:int ->
  ?detect:(case -> string list) ->
  case list ->
  row list

val summary : row list -> summary

val to_json : row list -> Json.t
(** The [BENCH_overhead.json] document: per-case rows plus the summary. *)

val table_rows : row list -> string list
(** Text table in the shape of EXPERIMENTS.md Table 3 (header line
    first). *)

(** {1 Deterministic run-cost measurement}

    Used by the fix synthesizer to rank surviving candidates and to put
    fixed-forever cost next to ConAir-hardened cost. Always measured on
    the fast engine: instruction and step counts are part of the
    engines' differential guarantee, so the numbers are
    engine-independent. *)

type cost = {
  k_runs : int;
  k_instrs : int;  (** total executed instructions across the runs *)
  k_steps : int;  (** total scheduler steps across the runs *)
  k_mean_instrs : float;
}

val cost_of :
  ?config:Conair_runtime.Machine.config ->
  ?meta:Conair_runtime.Machine.meta ->
  ?seeds:int list ->
  Program.t ->
  cost
(** One deterministic round-robin run plus one seeded random run per
    entry of [seeds] (default [[1; 2; 3]]), totalled. [meta] carries the
    recovery metadata when costing a hardened program. *)

val cost_overhead_pct : base:cost -> cost -> float
(** Mean-instruction overhead of a measured program relative to [base],
    in percent (negative = cheaper than base). *)

val cost_json : cost -> Json.t
