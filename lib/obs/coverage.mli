(** Schedule-coverage observability: canonical interleaving signatures,
    a race-probe-backed collector of schedulable program points, and a
    per-app coverage map with novelty scoring.

    The paper's evaluation (§5) turns on how {e narrow} the buggy
    interleaving window is — how many schedules hit the bug. This module
    gives that window a first-class representation:

    - an {b interleaving signature} ({!signature}): a digest of a run's
      preemption-point sequence (from the schedule recorder) plus its
      per-address access-order tallies (from the race probe). Two runs
      with the same signature exercised the same interleaving shape, so
      campaign findings dedupe by it. Both inputs are byte-identical
      across the ref/fast/block engines, making signatures
      engine-independent and stable across coordinator restarts;

    - a {b collector} ({!collector}, {!probe}): a
      {!Conair_runtime.Race_probe.probe} that watches a run and distils
      it to an {!observed} summary — which schedulable program points
      (block × access kind, lock operations) and which cross-thread
      happens-before edge shapes were exercised, plus the per-address
      access orders the signature hashes;

    - a {b coverage map} ({!t}): per-app sets of exercised points and
      edges plus the set of known signatures, with {!novelty} scoring so
      a fuzzer can prefer seeds whose decision streams diverge from the
      corpus. Maps serialize to JSON and {!merge_json} folds worker dumps
      into the coordinator's map.

    Everything here is plain data in, plain data out: no file I/O, no
    dependency above [Conair_runtime]. See [docs/OBSERVABILITY.md]. *)

open Conair_runtime

val addr_string : Race_probe.addr -> string
(** The stable textual form of an address ("global:x", "slot:TID:name",
    "cell:BLOCK:OFF", "block:ID") — the same vocabulary the race
    detector's reports use. *)

(** What the collector saw of one run, in canonical (sorted, deduped)
    form. *)
type observed = {
  ob_orders : (string * string) list;
      (** per-address access-order tally, ascending address; long orders
          are folded to an ["md5:..."] digest so entries stay bounded *)
  ob_points : string list;
      (** schedulable program points exercised: ["BLOCK/r"], ["BLOCK/w"],
          ["lock:NAME"], ["wait:NAME"] — sorted, deduped *)
  ob_edges : string list;
      (** cross-thread happens-before edge shapes: consecutive accesses
          to one address by different threads, as
          ["CLASS:KINDS:BLOCK->BLOCK"] — sorted, deduped *)
}

val observed_empty : observed

val observed_to_json : observed -> Json.t
val observed_of_json : Json.t -> (observed, string) result

type collector

val collector : unit -> collector

val probe : collector -> Race_probe.probe
(** Install on a machine (via [Hooks.with_installed ~race]) to build the
    {!observed} summary as the run executes. *)

val observed : collector -> observed
(** The canonical summary of everything seen so far. *)

val signature :
  ?context:string ->
  ?orders:(string * string) list ->
  decisions:int array ->
  preemptions:int array ->
  unit ->
  string
(** The canonical interleaving signature: an MD5 hex digest over the
    preemption-point sequence ([(ordinal, from-tid, chosen-tid)] per
    preemption, plus the decision count) and the per-address access-order
    tallies of [orders] (default none). [context] (default [""]) is mixed
    in verbatim — pass the app/case name or program MD5 so identical
    interleaving shapes of different programs do not collide. *)

(** {1 The coverage map} *)

type t

val create : unit -> t

val note : t -> app:string -> observed -> unit
(** Fold one run's points and edges into [app]'s coverage. *)

val note_signature : t -> string -> bool
(** Record a signature; [true] when it was not yet known — the
    coordinator's dedupe primitive. *)

val seen_signature : t -> string -> bool
val signatures : t -> int

val novelty : t -> app:string -> observed -> float
(** The fraction of [observed]'s points and edges not yet covered for
    [app], in [0, 1] ([1.] = everything new, [0.] = nothing new, and by
    convention [0.] for an empty observation). Campaign workers prefer
    seeds with high novelty. *)

val apps : t -> string list
(** Ascending. *)

val points : t -> app:string -> string list
val edges : t -> app:string -> string list

val to_json : t -> Json.t
(** [{"type":"coverage","signatures":N,"apps":{APP:{"points":[...],
    "edges":[...]}}}] with all lists sorted — byte-stable for a given
    coverage state. *)

val merge_json : t -> Json.t -> (unit, string) result
(** Union a {!to_json} dump (e.g. a worker's) into [t]. Signature counts
    are not merged — signatures travel individually via finding records
    and {!note_signature}. *)
