(** The glue between the runtime's measurements ({!Conair_runtime.Stats},
    {!Conair_runtime.Outcome}, the trace stream) and the exposition
    formats: the standard ConAir metric set, JSON views of stats and
    outcomes, and the full structured run report the facade and the CLI
    emit. *)

open Conair_runtime

val outcome_json : Outcome.t -> Json.t

val outcome_of_json : Json.t -> (Outcome.t, string) result
(** The inverse of {!outcome_json} — used when loading a recorded
    schedule log's outcome back for replay verification. *)

val episode_json : Stats.episode -> Json.t

val stats_json : Stats.t -> Json.t
(** Counters plus the episode list (chronological) and the
    per-checkpoint hit table (sorted by checkpoint id). *)

val standard_metrics : ?into:Metrics.t -> Stats.t -> Metrics.t
(** The standard ConAir metric set from a finished run's statistics:

    - [conair_steps_total], [conair_instrs_total], [conair_idle_total]
    - [conair_checkpoints_total], [conair_rollbacks_total]
    - [conair_compensated_locks_total], [conair_compensated_blocks_total]
    - [conair_outputs_total], [conair_tracecheck_violations_total]
    - [conair_recovery_episodes_total]
    - [conair_episode_duration_steps] (histogram)
    - [conair_episode_retries] (histogram)
    - [conair_checkpoint_executions_total{ckpt="N"}] per checkpoint id
    - [conair_instrs_between_checkpoints] (gauge: mean distance)

    Pass [~into] to add them to an existing registry. *)

val live_metrics : Metrics.t -> Trace.event -> unit
(** A live hook for {!Trace.create}'s [emit]: maintains the
    [conair_live_*] counter set (schedules, blocks, wakes, spawns,
    outputs, checkpoints, failures detected, rollbacks, compensations,
    recoveries, fail-stops) as the machine runs — telemetry that exists
    even if the process never reaches the post-run report. *)

val run_json :
  ?meta:Jsonl.run_meta ->
  ?config:Machine.config ->
  ?spans:Span.t list ->
  outcome:Outcome.t ->
  outputs:string list ->
  Stats.t ->
  Json.t
(** The full structured run report: metadata, outcome, outputs, stats,
    spans (when supplied) and the standard metric set. *)
