(** A minimal, dependency-free JSON representation: enough to emit every
    telemetry artifact (JSONL event logs, metric dumps, Chrome traces)
    and to re-parse them for validation. Not a general-purpose JSON
    library — no streaming parser, no number-precision guarantees beyond
    OCaml [int]/[float], object keys kept in insertion order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** keys in emission order *)

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) encoding; strings are escaped per RFC 8259
    (["\""], ["\\"], control characters as [\uXXXX]; all other bytes pass
    through, so valid UTF-8 input stays valid UTF-8). *)

val to_string : t -> string
(** Compact single-line encoding — one call, one JSONL-ready line. *)

val to_string_pretty : t -> string
(** Indented multi-line encoding for files meant to be read by humans. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (surrounding whitespace allowed).
    Accepts exactly what [to_string] emits plus standard JSON; rejects
    trailing garbage. Numbers with [.], [e] or [E] parse as [Float],
    everything else as [Int]. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing key or non-object. *)

val equal : t -> t -> bool
(** Structural equality with order-insensitive object comparison
    (duplicate keys compare positionally after sorting). *)
