(* Schedule-coverage observability: interleaving signatures, the
   race-probe collector, and the per-app coverage map.

   Determinism is the load-bearing property. The signature inputs — the
   recorder's decision/preemption arrays and the race probe's event
   stream — are byte-identical across the ref/fast/block engines (the
   differential guarantee of test_fast_exec), so everything derived here
   is too: the same recorded run yields the same signature no matter
   which engine executed it, which worker observed it, or how many times
   the coordinator restarted. All sets are rendered sorted. *)

open Conair_runtime
module SS = Set.Make (String)

let addr_string : Race_probe.addr -> string = function
  | A_global g -> "global:" ^ g
  | A_slot (tid, s) -> Printf.sprintf "slot:%d:%s" tid s
  | A_cell (b, i) -> Printf.sprintf "cell:%d:%d" b i
  | A_block b -> Printf.sprintf "block:%d" b

let addr_class : Race_probe.addr -> string = function
  | A_global _ -> "global"
  | A_slot _ -> "slot"
  | A_cell _ -> "cell"
  | A_block _ -> "block"

let kind_char : Race_probe.kind -> char = function Read -> 'r' | Write -> 'w'

type observed = {
  ob_orders : (string * string) list;
  ob_points : string list;
  ob_edges : string list;
}

let observed_empty = { ob_orders = []; ob_points = []; ob_edges = [] }

let observed_to_json (o : observed) : Json.t =
  Json.Obj
    [
      ("type", Json.String "observed");
      ( "orders",
        Json.Obj (List.map (fun (a, t) -> (a, Json.String t)) o.ob_orders) );
      ("points", Json.List (List.map (fun p -> Json.String p) o.ob_points));
      ("edges", Json.List (List.map (fun e -> Json.String e) o.ob_edges));
    ]

let string_list_of_json name j =
  match j with
  | Json.List l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (name ^ " holds a non-string element")
      in
      go [] l
  | _ -> Error (name ^ " is not a list")

let observed_of_json (j : Json.t) : (observed, string) result =
  let ( let* ) = Result.bind in
  let* orders =
    match Json.member "orders" j with
    | Some (Json.Obj kvs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (a, Json.String t) :: rest -> go ((a, t) :: acc) rest
          | _ -> Error "orders holds a non-string member"
        in
        go [] kvs
    | Some _ -> Error "orders is not an object"
    | None -> Ok []
  in
  let member_list name =
    match Json.member name j with
    | Some l -> string_list_of_json name l
    | None -> Ok []
  in
  let* points = member_list "points" in
  let* edges = member_list "edges" in
  Ok { ob_orders = orders; ob_points = points; ob_edges = edges }

(* --- the collector ------------------------------------------------- *)

(* Per address we keep the access-order tally (a buffer of
   "t<tid><r|w>@<block>;" entries) and the last access for edge
   derivation. Tallies longer than [order_cap] bytes are folded into a
   rolling MD5 so pathological runs stay bounded while the rendering
   stays deterministic. *)

let order_cap = 2048

type per_addr = {
  mutable pa_folded : string option;  (* rolling digest of overflowed text *)
  pa_buf : Buffer.t;
  mutable pa_last : (int * string * Race_probe.kind) option;
      (* (tid, block, kind) of the previous access *)
}

type collector = {
  addrs : (string, per_addr) Hashtbl.t;
  cl_classes : (string, string) Hashtbl.t;  (* addr -> class, for edges *)
  mutable cl_points : SS.t;
  mutable cl_edges : SS.t;
}

let collector () =
  {
    addrs = Hashtbl.create 64;
    cl_classes = Hashtbl.create 64;
    cl_points = SS.empty;
    cl_edges = SS.empty;
  }

let per_addr c addr cls =
  match Hashtbl.find_opt c.addrs addr with
  | Some pa -> pa
  | None ->
      let pa = { pa_folded = None; pa_buf = Buffer.create 32; pa_last = None } in
      Hashtbl.replace c.addrs addr pa;
      Hashtbl.replace c.cl_classes addr cls;
      pa

let fold_if_full pa =
  if Buffer.length pa.pa_buf > order_cap then begin
    let text =
      Option.value ~default:"" pa.pa_folded ^ Buffer.contents pa.pa_buf
    in
    pa.pa_folded <- Some (Digest.to_hex (Digest.string text));
    Buffer.clear pa.pa_buf
  end

let on_access c ~tid ~block ~(kind : Race_probe.kind) ~addr =
  let a = addr_string addr in
  let cls = addr_class addr in
  let pa = per_addr c a cls in
  Buffer.add_string pa.pa_buf
    (Printf.sprintf "t%d%c@%s;" tid (kind_char kind) block);
  fold_if_full pa;
  c.cl_points <-
    SS.add (Printf.sprintf "%s/%c" block (kind_char kind)) c.cl_points;
  (match pa.pa_last with
  | Some (ptid, pblock, pkind) when ptid <> tid ->
      (* a cross-thread consecutive-access pair: the happens-before edge
         shape this schedule exercised on this address *)
      c.cl_edges <-
        SS.add
          (Printf.sprintf "%s:%c%c:%s->%s" cls (kind_char pkind)
             (kind_char kind) pblock block)
          c.cl_edges
  | _ -> ());
  pa.pa_last <- Some (tid, block, kind)

let probe (c : collector) : Race_probe.probe =
  {
    rp_access =
      (fun ~step:_ ~tid ~iid:_ ~stack:_ ~block ~kind ~addr ~locks:_ ->
        on_access c ~tid ~block ~kind ~addr);
    rp_acquire =
      (fun ~step:_ ~tid:_ ~iid:_ ~lock ~locks:_ ->
        c.cl_points <- SS.add ("lock:" ^ lock) c.cl_points);
    rp_request =
      (fun ~step:_ ~tid:_ ~iid:_ ~lock ~locks:_ ->
        c.cl_points <- SS.add ("wait:" ^ lock) c.cl_points);
    rp_release = (fun ~step:_ ~tid:_ ~lock:_ -> ());
    rp_spawn = (fun ~step:_ ~parent:_ ~child:_ -> ());
    rp_join = (fun ~step:_ ~tid:_ ~joined:_ -> ());
    rp_wake = (fun ~step:_ ~waker:_ ~woken:_ -> ());
  }

let order_text pa =
  match pa.pa_folded with
  | None -> Buffer.contents pa.pa_buf
  | Some d -> "md5:" ^ Digest.to_hex (Digest.string (d ^ Buffer.contents pa.pa_buf))

let observed (c : collector) : observed =
  {
    ob_orders =
      Hashtbl.fold (fun a pa acc -> (a, order_text pa) :: acc) c.addrs []
      |> List.sort compare;
    ob_points = SS.elements c.cl_points;
    ob_edges = SS.elements c.cl_edges;
  }

(* --- the signature ------------------------------------------------- *)

let signature ?(context = "") ?(orders = []) ~(decisions : int array)
    ~(preemptions : int array) () : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "conair-sig-v1|c:";
  Buffer.add_string b context;
  Buffer.add_string b (Printf.sprintf "|n:%d" (Array.length decisions));
  Array.iter
    (fun p ->
      let from = if p > 0 && p <= Array.length decisions then decisions.(p - 1) else -1 in
      let chosen =
        if p >= 0 && p < Array.length decisions then decisions.(p) else -1
      in
      Buffer.add_string b (Printf.sprintf "|p:%d:%d>%d" p from chosen))
    preemptions;
  List.iter
    (fun (a, t) -> Buffer.add_string b (Printf.sprintf "|a:%s=%s" a t))
    (List.sort compare orders);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- the coverage map ---------------------------------------------- *)

type app_cov = { mutable ac_points : SS.t; mutable ac_edges : SS.t }

type t = {
  cov_apps : (string, app_cov) Hashtbl.t;
  mutable cov_sigs : SS.t;
}

let create () = { cov_apps = Hashtbl.create 8; cov_sigs = SS.empty }

let app_cov t app =
  match Hashtbl.find_opt t.cov_apps app with
  | Some ac -> ac
  | None ->
      let ac = { ac_points = SS.empty; ac_edges = SS.empty } in
      Hashtbl.replace t.cov_apps app ac;
      ac

let note t ~app (o : observed) =
  let ac = app_cov t app in
  ac.ac_points <- List.fold_left (fun s p -> SS.add p s) ac.ac_points o.ob_points;
  ac.ac_edges <- List.fold_left (fun s e -> SS.add e s) ac.ac_edges o.ob_edges

let note_signature t s =
  if SS.mem s t.cov_sigs then false
  else begin
    t.cov_sigs <- SS.add s t.cov_sigs;
    true
  end

let seen_signature t s = SS.mem s t.cov_sigs
let signatures t = SS.cardinal t.cov_sigs

let novelty t ~app (o : observed) =
  let total = List.length o.ob_points + List.length o.ob_edges in
  if total = 0 then 0.
  else
    match Hashtbl.find_opt t.cov_apps app with
    | None -> 1.
    | Some ac ->
        let fresh =
          List.length
            (List.filter (fun p -> not (SS.mem p ac.ac_points)) o.ob_points)
          + List.length
              (List.filter (fun e -> not (SS.mem e ac.ac_edges)) o.ob_edges)
        in
        float_of_int fresh /. float_of_int total

let apps t =
  Hashtbl.fold (fun app _ acc -> app :: acc) t.cov_apps [] |> List.sort compare

let points t ~app =
  match Hashtbl.find_opt t.cov_apps app with
  | None -> []
  | Some ac -> SS.elements ac.ac_points

let edges t ~app =
  match Hashtbl.find_opt t.cov_apps app with
  | None -> []
  | Some ac -> SS.elements ac.ac_edges

let to_json t : Json.t =
  Json.Obj
    [
      ("type", Json.String "coverage");
      ("signatures", Json.Int (signatures t));
      ( "apps",
        Json.Obj
          (List.map
             (fun app ->
               ( app,
                 Json.Obj
                   [
                     ( "points",
                       Json.List
                         (List.map (fun p -> Json.String p) (points t ~app)) );
                     ( "edges",
                       Json.List
                         (List.map (fun e -> Json.String e) (edges t ~app)) );
                   ] ))
             (apps t)) );
    ]

let merge_json t (j : Json.t) : (unit, string) result =
  match Json.member "apps" j with
  | Some (Json.Obj apps_kv) ->
      let rec go = function
        | [] -> Ok ()
        | (app, entry) :: rest -> (
            let pts =
              Option.value ~default:(Json.List [])
                (Json.member "points" entry)
            in
            let eds =
              Option.value ~default:(Json.List []) (Json.member "edges" entry)
            in
            match
              ( string_list_of_json "points" pts,
                string_list_of_json "edges" eds )
            with
            | Ok ps, Ok es ->
                note t ~app
                  { ob_orders = []; ob_points = ps; ob_edges = es };
                go rest
            | Error e, _ | _, Error e ->
                Error (Printf.sprintf "app %S: %s" app e))
      in
      go apps_kv
  | Some _ -> Error "\"apps\" is not an object"
  | None -> Error "no \"apps\" member"
