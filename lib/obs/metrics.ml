(* Counters, gauges and fixed-bucket histograms with JSON and
   Prometheus-style text exposition. Deliberately minimal: no label
   cardinality tracking, no timestamps, no global default registry. *)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  upper_bounds : float array;  (** strictly increasing; +Inf implicit *)
  bucket_counts : int array;  (** per-bound, non-cumulative; last = +Inf *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  instrument : instrument;
}

type t = { mutable metrics : metric list (* newest first *) }

let create () = { metrics = [] }

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name
  && not (match name.[0] with '0' .. '9' -> true | _ -> false)

let find t name labels =
  List.find_opt (fun m -> m.name = name && m.labels = labels) t.metrics

let register t name help labels instrument =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let m = { name; help; labels; instrument } in
  t.metrics <- m :: t.metrics;
  m

let counter ?(help = "") ?(labels = []) t name =
  match find t name labels with
  | Some { instrument = Counter c; _ } -> c
  | Some _ -> invalid_arg (name ^ ": registered with another type")
  | None ->
      let c = { c_value = 0 } in
      ignore (register t name help labels (Counter c));
      c

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.inc: negative increment";
  c.c_value <- c.c_value + by

let counter_value c = c.c_value

let gauge ?(help = "") ?(labels = []) t name =
  match find t name labels with
  | Some { instrument = Gauge g; _ } -> g
  | Some _ -> invalid_arg (name ^ ": registered with another type")
  | None ->
      let g = { g_value = 0.0 } in
      ignore (register t name help labels (Gauge g));
      g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram ?(help = "") ?(labels = []) ~buckets t name =
  match find t name labels with
  | Some { instrument = Histogram h; _ } -> h
  | Some _ -> invalid_arg (name ^ ": registered with another type")
  | None ->
      if buckets = [] then invalid_arg "Metrics.histogram: no buckets";
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      if not (increasing buckets) then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing";
      let upper_bounds = Array.of_list buckets in
      let h =
        {
          upper_bounds;
          bucket_counts = Array.make (Array.length upper_bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      ignore (register t name help labels (Histogram h));
      h

let observe h v =
  let n = Array.length h.upper_bounds in
  let rec slot i = if i < n && v > h.upper_bounds.(i) then slot (i + 1) else i in
  let i = slot 0 in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* Cumulative counts in bound order, +Inf last — the Prometheus shape. *)
let cumulative h =
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      !acc)
    h.bucket_counts

let ordered t = List.rev t.metrics

let bound_label b =
  if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%.1f" b
  else Printf.sprintf "%.12g" b

(* --- JSON exposition ----------------------------------------------- *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let metric_json (m : metric) : Json.t =
  let base =
    [ ("name", Json.String m.name) ]
    @ (if m.help = "" then [] else [ ("help", Json.String m.help) ])
    @ if m.labels = [] then [] else [ ("labels", labels_json m.labels) ]
  in
  match m.instrument with
  | Counter c ->
      Json.Obj
        (base
        @ [ ("type", Json.String "counter"); ("value", Json.Int c.c_value) ])
  | Gauge g ->
      Json.Obj
        (base
        @ [ ("type", Json.String "gauge"); ("value", Json.Float g.g_value) ])
  | Histogram h ->
      let cum = cumulative h in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i bound ->
               Json.Obj
                 [
                   ("le", Json.String (bound_label bound));
                   ("count", Json.Int cum.(i));
                 ])
             h.upper_bounds)
        @ [
            Json.Obj
              [
                ("le", Json.String "+Inf");
                ("count", Json.Int h.h_count);
              ];
          ]
      in
      Json.Obj
        (base
        @ [
            ("type", Json.String "histogram");
            ("buckets", Json.List buckets);
            ("sum", Json.Float h.h_sum);
            ("count", Json.Int h.h_count);
          ])

let to_json t = Json.Obj [ ("metrics", Json.List (List.map metric_json (ordered t))) ]

(* --- Prometheus text exposition ------------------------------------ *)

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
             labels)
      ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun m ->
      match m.instrument with
      | Counter c ->
          header m.name "counter" m.help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (render_labels m.labels)
               c.c_value)
      | Gauge g ->
          header m.name "gauge" m.help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
               (bound_label g.g_value))
      | Histogram h ->
          header m.name "histogram" m.help;
          let cum = cumulative h in
          Array.iteri
            (fun i bound ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (render_labels (m.labels @ [ ("le", bound_label bound) ]))
                   cum.(i)))
            h.upper_bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" m.name
               (render_labels (m.labels @ [ ("le", "+Inf") ]))
               h.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (render_labels m.labels)
               (bound_label h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels)
               h.h_count))
    (ordered t);
  Buffer.contents buf
