(** Campaign-level aggregation: fold the JSONL streams of many parallel
    fuzz workers into one deduplicated, coverage-annotated report.

    A campaign orchestrator (see [conair_fuzz --jobs]) shards a seed
    range across worker processes; each worker streams one JSONL file of
    records:

    - ["run"] — one hardened execution (the {!Aggregate} vocabulary);
    - ["finding"] — a failing run, carrying its interleaving
      ["signature"] ({!Coverage.signature}), the worker-local
      ["run_index"] at discovery, and the saved schedule-log ["log"]
      path when recording was on;
    - ["coverage"] — the worker's final {!Coverage.to_json} dump;
    - ["fuzz_summary"] — the stream trailer with ["worker"], ["engine"],
      ["elapsed_sec"], check counts and the [--detect] race tallies.

    {!of_workers} folds any number of such streams deterministically
    (workers in id order, records in stream order): findings dedupe by
    signature, the unique-failures-vs-runs curve is rebuilt, run records
    flow through {!Aggregate} for the recovery percentiles, coverage
    dumps merge into one {!Coverage.t}, and per-address detector tallies
    sum. The result renders as text, as JSON ({!to_json}) and as live
    Prometheus instruments ({!metrics}). See [docs/OBSERVABILITY.md]. *)

(** One deduplicated failure. *)
type finding = {
  f_signature : string;
  f_case : string;  (** generator case or bugbench app name *)
  f_seed : int;
  f_outcome : string;
  f_log : string option;  (** recorded schedule log, when saved *)
  f_minimized : string option;  (** corpus path, once minimized *)
  f_run_index : int;  (** worker-local run ordinal at first discovery *)
  f_count : int;  (** runs that hit this signature, across all workers *)
}

(** One worker's stream trailer. *)
type worker = {
  w_id : int;
  w_engine : string;
  w_runs : int;  (** total executions, unhardened probe runs included *)
  w_checks : int;
  w_check_failures : int;
  w_findings : int;  (** finding records, duplicates included *)
  w_elapsed : float;
}

type t = {
  c_workers : worker list;  (** ascending id *)
  c_runs : int;
  c_elapsed : float;
      (** wall-clock: the [elapsed] override when given, else the longest
          worker stream *)
  c_runs_per_sec : float;
  c_engines : string list;  (** distinct, sorted *)
  c_findings : finding list;  (** unique, in deterministic discovery order *)
  c_duplicates : int;  (** finding records folded into an existing one *)
  c_curve : (int * int) list;
      (** unique-failures-vs-runs growth: (approximate campaign runs,
          cumulative unique findings), nondecreasing in both columns *)
  c_detected : (string * int) list;
      (** address -> schedules that raced it, summed over workers *)
  c_agg : Aggregate.t;  (** recovery percentiles over every run record *)
  c_coverage : Coverage.t;  (** merged schedule coverage *)
}

val of_workers :
  ?elapsed:float -> (int * Json.t list) list -> (t, string) result
(** Fold the parsed records of each worker ([(worker id, records)]).
    [elapsed] overrides the campaign wall-clock (the coordinator knows
    it; workers only know their own). *)

val of_worker_lines :
  ?elapsed:float -> (int * string list) list -> (t, string) result
(** {!of_workers} over raw JSONL lines; [Error] names the first bad
    line. Blank lines are skipped. *)

val set_minimized : t -> signature:string -> path:string -> t
(** Record the corpus path of a finding's minimized schedule. *)

val signatures_digest : t -> string
(** MD5 hex over the sorted unique signatures — one value to compare
    across engines or coordinator restarts. *)

val to_json : t -> Json.t
(** The campaign report document
    ([{"type":"campaign_report",...}]). *)

val render : t -> string list

val metrics : ?into:Metrics.t -> t -> Metrics.t
(** The campaign counter set ([conair_campaign_runs_total],
    [..._unique_failures], [..._duplicates_total], per-app coverage
    gauges, ...) registered into [into] (default a fresh registry) —
    ready for {!Metrics.to_prometheus} exposition. Counters are set
    idempotently from the folded state, so re-exporting after each fold
    gives live campaign counters. *)

val parse_seed_range : string -> (int * int, string) result
(** Parse the [--seeds LO..HI] syntax (inclusive bounds, [HI >= LO]).
    The error text is user-facing usage help. *)

val bench_json : jobs:int -> iterations:int -> (string * t) list -> Json.t
(** The [BENCH_fuzz.json] document: per-engine runs/sec and
    unique-signature growth from one campaign per engine, plus
    ["signature_agreement"] — whether every engine produced the same
    {!signatures_digest}. Validated by [json_check]. *)
