(* Campaign-level aggregation over parallel fuzz workers' JSONL streams.

   Everything folds deterministically: workers are processed in
   ascending id order and each stream in record order, so the same set
   of worker files produces byte-identical reports no matter when or how
   often the coordinator restarts — the property the signature
   determinism tests pin down. *)

type finding = {
  f_signature : string;
  f_case : string;
  f_seed : int;
  f_outcome : string;
  f_log : string option;
  f_minimized : string option;
  f_run_index : int;
  f_count : int;
}

type worker = {
  w_id : int;
  w_engine : string;
  w_runs : int;
  w_checks : int;
  w_check_failures : int;
  w_findings : int;
  w_elapsed : float;
}

type t = {
  c_workers : worker list;
  c_runs : int;
  c_elapsed : float;
  c_runs_per_sec : float;
  c_engines : string list;
  c_findings : finding list;
  c_duplicates : int;
  c_curve : (int * int) list;
  c_detected : (string * int) list;
  c_agg : Aggregate.t;
  c_coverage : Coverage.t;
}

let string_member key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> ""

let int_member key j =
  match Json.member key j with
  | Some (Json.Int n) -> n
  | Some (Json.Float f) -> int_of_float f
  | _ -> 0

let float_member key j =
  match Json.member key j with
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.

let opt_string_member key j =
  match Json.member key j with
  | Some (Json.String s) when s <> "" -> Some s
  | _ -> None

let finding_of_json j =
  {
    f_signature = string_member "signature" j;
    f_case = string_member "case" j;
    f_seed = int_member "seed" j;
    f_outcome = string_member "outcome" j;
    f_log = opt_string_member "log" j;
    f_minimized = opt_string_member "minimized" j;
    f_run_index = int_member "run_index" j;
    f_count = 1;
  }

(* One worker's stream, split by record type. *)
type stream = {
  s_id : int;
  s_records : Json.t list;  (* run + summary records, for Aggregate *)
  s_findings : finding list;  (* in stream order *)
  s_coverage : Json.t list;
  s_summary : Json.t option;
}

let split_stream (id, records) =
  let runs = ref [] and findings = ref [] and cov = ref [] in
  let summary = ref None in
  List.iter
    (fun r ->
      match string_member "type" r with
      | "run" -> runs := r :: !runs
      | "finding" -> findings := finding_of_json r :: !findings
      | "coverage" -> cov := r :: !cov
      | "fuzz_summary" ->
          summary := Some r;
          runs := r :: !runs
      | _ -> ())
    records;
  {
    s_id = id;
    s_records = List.rev !runs;
    s_findings = List.rev !findings;
    s_coverage = List.rev !cov;
    s_summary = !summary;
  }

let worker_of_stream s =
  let runs_seen =
    List.length
      (List.filter (fun r -> string_member "type" r = "run") s.s_records)
  in
  match s.s_summary with
  | None ->
      {
        w_id = s.s_id;
        w_engine = "";
        w_runs = runs_seen;
        w_checks = 0;
        w_check_failures = 0;
        w_findings = List.length s.s_findings;
        w_elapsed = 0.;
      }
  | Some j ->
      {
        w_id = s.s_id;
        w_engine = string_member "engine" j;
        w_runs =
          (* total executions (probe + hardened) when the trailer has
             them; older streams only counted hardened runs *)
          (let n = int_member "total_runs" j in
           let n = if n > 0 then n else int_member "hardened_runs" j in
           if n > 0 then n else runs_seen);
        w_checks = int_member "checks" j;
        w_check_failures = int_member "failures" j;
        w_findings = List.length s.s_findings;
        w_elapsed = float_member "elapsed_sec" j;
      }

(* The unique-failures-vs-runs curve. Workers run concurrently, so the
   campaign-global run count at a discovery is unknowable from the logs;
   assuming uniform worker progress, a finding at worker-local run
   ordinal r happened around campaign run r * W. The curve is exact in
   its y column (cumulative uniques in fold order) and approximate in x,
   clamped to the real total. *)
let fold_findings ~workers ~total_runs streams =
  let ordered =
    List.concat_map (fun s -> s.s_findings) streams
    |> List.stable_sort (fun a b ->
           compare
             (a.f_run_index, a.f_case, a.f_seed)
             (b.f_run_index, b.f_case, b.f_seed))
  in
  let seen = Hashtbl.create 64 in
  let uniques = ref [] and dups = ref 0 and curve = ref [ (0, 0) ] in
  let unique_count = ref 0 in
  List.iter
    (fun f ->
      (match Hashtbl.find_opt seen f.f_signature with
      | Some () -> incr dups
      | None ->
          Hashtbl.replace seen f.f_signature ();
          incr unique_count;
          uniques := f :: !uniques);
      let x = min total_runs (f.f_run_index * max 1 workers) in
      match !curve with
      | (px, py) :: rest when px = x -> curve := (x, max py !unique_count) :: rest
      | _ -> curve := (x, !unique_count) :: !curve)
    ordered;
  (* duplicate counts onto the surviving findings *)
  let counts = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.replace counts f.f_signature
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts f.f_signature)))
    ordered;
  let uniques =
    List.rev_map
      (fun f ->
        {
          f with
          f_count =
            Option.value ~default:1 (Hashtbl.find_opt counts f.f_signature);
        })
      !uniques
  in
  let curve =
    let c = List.rev !curve in
    if total_runs > 0 then c @ [ (total_runs, !unique_count) ] else c
  in
  (* collapse repeated trailing x (the append above may duplicate) *)
  let rec dedup = function
    | (x1, _) :: ((x2, _) :: _ as rest) when x1 = x2 -> dedup rest
    | p :: rest -> p :: dedup rest
    | [] -> []
  in
  (uniques, !dups, dedup curve)

let sum_detected streams =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match s.s_summary with
      | None -> ()
      | Some j -> (
          match Json.member "detected_races" j with
          | Some (Json.Obj kvs) ->
              List.iter
                (fun (addr, v) ->
                  let n =
                    match v with
                    | Json.Int n -> n
                    | Json.Float f -> int_of_float f
                    | _ -> 0
                  in
                  Hashtbl.replace tbl addr
                    (n + Option.value ~default:0 (Hashtbl.find_opt tbl addr)))
                kvs
          | _ -> ()))
    streams;
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) tbl [] |> List.sort compare

let of_workers ?elapsed (workers : (int * Json.t list) list) :
    (t, string) result =
  let streams =
    List.map split_stream
      (List.sort (fun (a, _) (b, _) -> compare a b) workers)
  in
  let ws = List.map worker_of_stream streams in
  let total_runs = List.fold_left (fun n w -> n + w.w_runs) 0 ws in
  let max_elapsed = List.fold_left (fun e w -> Float.max e w.w_elapsed) 0. ws in
  let elapsed = Option.value ~default:max_elapsed elapsed in
  let coverage = Coverage.create () in
  let rec merge_all = function
    | [] -> Ok ()
    | s :: rest ->
        let rec per_dump = function
          | [] -> merge_all rest
          | d :: ds -> (
              match Coverage.merge_json coverage d with
              | Ok () -> per_dump ds
              | Error e ->
                  Error (Printf.sprintf "worker %d coverage: %s" s.s_id e))
        in
        per_dump s.s_coverage
  in
  match merge_all streams with
  | Error e -> Error e
  | Ok () ->
      let findings, dups, curve =
        fold_findings ~workers:(List.length ws) ~total_runs streams
      in
      List.iter
        (fun f -> ignore (Coverage.note_signature coverage f.f_signature))
        findings;
      let agg =
        Aggregate.of_records (List.concat_map (fun s -> s.s_records) streams)
      in
      Ok
        {
          c_workers = ws;
          c_runs = total_runs;
          c_elapsed = elapsed;
          c_runs_per_sec =
            (if elapsed > 0. then float_of_int total_runs /. elapsed else 0.);
          c_engines =
            List.sort_uniq compare
              (List.filter_map
                 (fun w -> if w.w_engine = "" then None else Some w.w_engine)
                 ws);
          c_findings = findings;
          c_duplicates = dups;
          c_curve = curve;
          c_detected = sum_detected streams;
          c_agg = agg;
          c_coverage = coverage;
        }

let of_worker_lines ?elapsed workers =
  let rec parse_worker id acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line' = String.trim line in
        if line' = "" then parse_worker id acc (i + 1) rest
        else begin
          match Json.of_string line' with
          | Ok j -> parse_worker id (j :: acc) (i + 1) rest
          | Error e -> Error (Printf.sprintf "worker %d line %d: %s" id i e)
        end
  in
  let rec go acc = function
    | [] -> of_workers ?elapsed (List.rev acc)
    | (id, lines) :: rest -> (
        match parse_worker id [] 1 lines with
        | Ok records -> go ((id, records) :: acc) rest
        | Error e -> Error e)
  in
  go [] workers

let set_minimized t ~signature ~path =
  {
    t with
    c_findings =
      List.map
        (fun f ->
          if f.f_signature = signature then { f with f_minimized = Some path }
          else f)
        t.c_findings;
  }

let signatures_digest t =
  let sigs = List.sort compare (List.map (fun f -> f.f_signature) t.c_findings) in
  Digest.to_hex (Digest.string (String.concat "\n" sigs))

let finding_json f =
  Json.Obj
    ([
       ("signature", Json.String f.f_signature);
       ("case", Json.String f.f_case);
       ("seed", Json.Int f.f_seed);
       ("outcome", Json.String f.f_outcome);
       ("run_index", Json.Int f.f_run_index);
       ("count", Json.Int f.f_count);
     ]
    @ (match f.f_log with
      | Some p -> [ ("log", Json.String p) ]
      | None -> [])
    @
    match f.f_minimized with
    | Some p -> [ ("minimized", Json.String p) ]
    | None -> [])

let to_json t : Json.t =
  Json.Obj
    [
      ("type", Json.String "campaign_report");
      ( "workers",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("worker", Json.Int w.w_id);
                   ("engine", Json.String w.w_engine);
                   ("runs", Json.Int w.w_runs);
                   ("checks", Json.Int w.w_checks);
                   ("check_failures", Json.Int w.w_check_failures);
                   ("findings", Json.Int w.w_findings);
                   ("elapsed_sec", Json.Float w.w_elapsed);
                 ])
             t.c_workers) );
      ("runs", Json.Int t.c_runs);
      ("elapsed_sec", Json.Float t.c_elapsed);
      ("runs_per_sec", Json.Float t.c_runs_per_sec);
      ("engines", Json.List (List.map (fun e -> Json.String e) t.c_engines));
      ("unique_failures", Json.Int (List.length t.c_findings));
      ("duplicates", Json.Int t.c_duplicates);
      ("signatures_md5", Json.String (signatures_digest t));
      ("findings", Json.List (List.map finding_json t.c_findings));
      ( "curve",
        Json.List
          (List.map
             (fun (x, y) -> Json.List [ Json.Int x; Json.Int y ])
             t.c_curve) );
      ( "detected_races",
        Json.Obj (List.map (fun (a, n) -> (a, Json.Int n)) t.c_detected) );
      ("aggregate", Aggregate.to_json t.c_agg);
      ("coverage", Coverage.to_json t.c_coverage);
    ]

let render t : string list =
  [
    Printf.sprintf "campaign: %d runs over %d workers%s" t.c_runs
      (List.length t.c_workers)
      (match t.c_engines with
      | [] -> ""
      | es -> " (" ^ String.concat ", " es ^ ")");
    Printf.sprintf "throughput: %.1f runs/sec over %.2fs" t.c_runs_per_sec
      t.c_elapsed;
    Printf.sprintf "failures: %d unique (%d duplicates deduped), md5 %s"
      (List.length t.c_findings) t.c_duplicates
      (String.sub (signatures_digest t) 0 12);
  ]
  @ List.map
      (fun f ->
        Printf.sprintf "  %s %s seed %d ×%d%s"
          (String.sub f.f_signature 0 12)
          f.f_case f.f_seed f.f_count
          (match f.f_minimized with
          | Some p -> " -> " ^ p
          | None -> (
              match f.f_log with Some p -> " @ " ^ p | None -> "")))
      t.c_findings
  @ (match t.c_detected with
    | [] -> []
    | d ->
        Printf.sprintf "detected races on %d addresses" (List.length d)
        :: List.map
             (fun (a, n) -> Printf.sprintf "  %s: %d schedules" a n)
             d)
  @ Printf.sprintf "coverage: %s"
      (String.concat ", "
         (List.map
            (fun app ->
              Printf.sprintf "%s %d points / %d edges" app
                (List.length (Coverage.points t.c_coverage ~app))
                (List.length (Coverage.edges t.c_coverage ~app)))
            (Coverage.apps t.c_coverage)))
    :: List.map (fun l -> "aggregate: " ^ l) (Aggregate.render t.c_agg)

let metrics ?into t =
  let reg = match into with Some r -> r | None -> Metrics.create () in
  let c name help v =
    let c = Metrics.counter ~help reg name in
    let cur = Metrics.counter_value c in
    if v > cur then Metrics.inc ~by:(v - cur) c
  in
  let g name help v = Metrics.set (Metrics.gauge ~help reg name) v in
  c "conair_campaign_runs_total" "hardened runs executed" t.c_runs;
  c "conair_campaign_findings_total" "failing runs found (duplicates included)"
    (t.c_duplicates + List.length t.c_findings);
  c "conair_campaign_unique_failures" "deduped interleaving signatures"
    (List.length t.c_findings);
  c "conair_campaign_duplicates_total" "findings deduped by signature"
    t.c_duplicates;
  c "conair_campaign_recovery_runs_total" "runs with >= 1 recovery episode"
    t.c_agg.Aggregate.g_recovery_runs;
  g "conair_campaign_workers" "worker streams folded"
    (float_of_int (List.length t.c_workers));
  g "conair_campaign_runs_per_sec" "campaign throughput" t.c_runs_per_sec;
  List.iter
    (fun app ->
      Metrics.set
        (Metrics.gauge ~help:"schedulable points exercised"
           ~labels:[ ("app", app) ] reg "conair_campaign_coverage_points")
        (float_of_int (List.length (Coverage.points t.c_coverage ~app)));
      Metrics.set
        (Metrics.gauge ~help:"cross-thread edge shapes exercised"
           ~labels:[ ("app", app) ] reg "conair_campaign_coverage_edges")
        (float_of_int (List.length (Coverage.edges t.c_coverage ~app))))
    (Coverage.apps t.c_coverage);
  reg

let parse_seed_range s =
  let usage = "expected LO..HI (two integers, HI >= LO), e.g. --seeds 0..99" in
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && (i + 2 >= String.length s || s.[i + 2] <> '.') -> (
      let lo = String.sub s 0 i in
      let hi = String.sub s (i + 2) (String.length s - i - 2) in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when hi >= lo -> Ok (lo, hi)
      | Some lo, Some hi ->
          Error
            (Printf.sprintf "--seeds %d..%d is empty (HI < LO): %s" lo hi usage)
      | _ -> Error (Printf.sprintf "--seeds %S: %s" s usage))
  | _ -> Error (Printf.sprintf "--seeds %S: %s" s usage)

let bench_json ~jobs ~iterations (engines : (string * t) list) : Json.t =
  let digests = List.map (fun (_, t) -> signatures_digest t) engines in
  let agreement =
    match digests with [] -> true | d :: rest -> List.for_all (( = ) d) rest
  in
  Json.Obj
    [
      ("type", Json.String "bench_fuzz");
      ("iterations", Json.Int iterations);
      ("jobs", Json.Int jobs);
      ( "engines",
        Json.Obj
          (List.map
             (fun (name, t) ->
               ( name,
                 Json.Obj
                   [
                     ("runs", Json.Int t.c_runs);
                     ("elapsed_sec", Json.Float t.c_elapsed);
                     ("runs_per_sec", Json.Float t.c_runs_per_sec);
                     ("unique_signatures", Json.Int (List.length t.c_findings));
                     ( "findings",
                       Json.Int (t.c_duplicates + List.length t.c_findings) );
                     ("signatures_md5", Json.String (signatures_digest t));
                     ( "curve",
                       Json.List
                         (List.map
                            (fun (x, y) -> Json.List [ Json.Int x; Json.Int y ])
                            t.c_curve) );
                   ] ))
             engines) );
      ("signature_agreement", Json.Bool agreement);
    ]
