(** Recovery spans: the trace stream folded into one interval per
    recovery episode — from the first rollback for a failure until the
    thread passed the site (or fail-stopped, or the run ended). Spans are
    the unit of the Chrome trace-event export (viewable in Perfetto or
    [chrome://tracing], one track per thread).

    For every completed episode in {!Conair_runtime.Stats.t} the builder
    produces exactly one [Recovered] span whose [start_step]/[end_step]
    equal the episode's [ep_start]/[ep_end] — asserted by the test
    suite. *)

open Conair_runtime

type outcome =
  | Recovered  (** the thread made it past the failure site *)
  | Fail_stopped  (** retries exhausted or no applicable checkpoint *)
  | Unresolved  (** the run ended with the episode still open *)

type t = {
  sp_tid : int;
  sp_site_id : int;
  sp_kind : Conair_ir.Instr.failure_kind option;
      (** from the detection event that opened the episode *)
  sp_start : int;  (** step of the first rollback *)
  sp_end : int;
  sp_rollbacks : int;
  sp_outcome : outcome;
}

val duration : t -> int

val of_events : Trace.event list -> t list
(** Fold a chronological event stream (as returned by
    {!Trace.events}) into recovery spans, in order of span start. A
    fail-stop with no preceding rollback (nothing to recover from)
    yields a zero-length [Fail_stopped] span. *)

val outcome_name : outcome -> string

val to_json : t -> Json.t

(** {2 Chrome trace-event export}

    The produced document is the JSON object format of the Chrome
    trace-event specification: [{"traceEvents": [...]}], with one
    complete ("ph":"X") event per span, thread-name metadata so every
    thread gets its own track, and one instant ("ph":"i") event per
    rollback when the full event stream is supplied. Virtual scheduler
    steps are mapped 1:1 to microseconds. *)

val to_chrome :
  ?events:Trace.event list -> ?counters:Json.t list -> t list -> Json.t
(** [counters] are extra trace events appended verbatim — e.g. the
    ["ph":"C"] cost track from {!Prof.counter_events}. *)

val chrome_of_run : Trace.event list -> Json.t
(** [to_chrome ~events (of_events events)] — the one-call export. *)
