(** A small process-local metrics registry: named counters, gauges and
    fixed-bucket histograms, with JSON and Prometheus-style text
    exposition. No global state — callers create registries and thread
    them where needed. Registration order is preserved in both outputs.

    Metric identity is [(name, labels)]; registering the same identity
    twice returns the existing instrument (so per-site counters can be
    looked up idempotently from a hot loop). *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : ?help:string -> ?labels:(string * string) list -> t -> string
  -> counter
(** Monotonically increasing integer. *)

val inc : ?by:int -> counter -> unit
(** @raise Invalid_argument on a negative increment. *)

val counter_value : counter -> int

val gauge : ?help:string -> ?labels:(string * string) list -> t -> string
  -> gauge
(** A point-in-time float value. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> ?labels:(string * string) list ->
  buckets:float list -> t -> string -> histogram
(** Fixed cumulative buckets given by their inclusive upper bounds
    (strictly increasing; a [+Inf] bucket is implicit).
    @raise Invalid_argument on empty or non-increasing bucket lists. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
(** Total observations. *)

val histogram_sum : histogram -> float

val to_json : t -> Json.t
(** [{"metrics":[{"name":...,"type":...,"labels":{...},"value":...} ...]}];
    histograms carry ["buckets"] (cumulative counts per upper bound, the
    [+Inf] bound encoded as the string ["+Inf"]), ["sum"] and ["count"]. *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] comments, one
    sample per line, histogram buckets as [name_bucket{le="..."}] plus
    [name_sum]/[name_count]. *)
