(* The paper-style overhead harness: paired unhardened/hardened runs with
   the cost profiler attached, reproducing the EXPERIMENTS.md Table 3
   numbers (recovery verdicts, fix/survival overhead %) and extending them
   with what only the profiler can see — per-site retry counts, max/mean
   recovery cost in steps, and wasted-step attribution.

   The module is parameterized over [case] values instead of reading the
   bugbench registry directly: the obs library sits *below* the bugbench
   library in the dependency order (bugbench depends on the core facade,
   which re-exports obs), so the CLI builds the case list from the
   registry and hands it down. The four instances per case mirror exactly
   what [bench/main.ml]'s table3 runs:

   - [buggy_fix]: buggy variant, output oracle always on — fix mode needs
     the observed failure's assert;
   - [buggy_survival]: buggy variant, oracle only when the paper needed a
     developer oracle ([needs_oracle]);
   - [clean_fix] / [clean_survival]: the clean variants paired the same
     way, for the overhead measurements.

   Overhead is the paper's §5 measure transplanted to virtual time:
   (hardened instrs - base instrs) / base instrs on the *clean* runs,
   where checkpoint executions are the hardening's only dynamic cost. *)

open Conair_ir
open Conair_runtime
module Plan = Conair_analysis.Plan
module Harden = Conair_transform.Harden

type inst = {
  program : Program.t;
  fix_iids : int list;  (** instruction ids of the observed failure *)
  accept : string list -> bool;  (** output oracle *)
}

type case = {
  name : string;
  needs_oracle : bool;
  buggy_fix : inst;
  buggy_survival : inst;
  clean_fix : inst;
  clean_survival : inst;
}

(** Per failure site, from the deterministic survival-mode buggy run:
    episodes/retries from the episode list, wasted steps from the
    profiler. *)
type site_retry = {
  sr_site : int;
  sr_episodes : int;
  sr_retries : int;
  sr_wasted : int;
}

type row = {
  o_name : string;
  o_needs_oracle : bool;
  o_fix_recovered : bool;
  o_fix_ok : int;  (** successful runs, out of [o_runs] *)
  o_surv_recovered : bool;
  o_surv_ok : int;
  o_runs : int;  (** deterministic run + seeded random runs *)
  o_fix_overhead_pct : float;
  o_surv_overhead_pct : float;
  o_rollbacks : int;
  o_retries : int;
  o_max_recovery_steps : int;
  o_mean_recovery_steps : float;
  o_useful_steps : int;
  o_checkpoint_steps : int;
  o_wasted_steps : int;
  o_sites : site_retry list;
  o_detected_by : string list;
      (** which detector lenses flagged the buggy program ("hb",
          "lockset", "deadlock"); empty when no detector was supplied *)
}

type summary = {
  s_cases : int;
  s_fix_recovered : int;
  s_surv_recovered : int;
  s_max_fix_overhead_pct : float;
  s_max_surv_overhead_pct : float;
}

let harden_exn name mode (i : inst) : Harden.t =
  match Plan.analyze i.program mode with
  | Error e -> failwith (Printf.sprintf "overhead: %s: analysis failed: %s" name e)
  | Ok plan -> Harden.apply plan

let run_hardened ~config (h : Harden.t) =
  let meta = Machine.meta_of_harden h in
  Machine.run_program ~config ~meta h.Harden.program

(* The bench's recovery verdict: the deterministic failure-inducing
   schedule, plus [random_runs] seeded random schedules. *)
let verdict ~config ~random_runs (i : inst) (h : Harden.t) =
  let ok (m, outcome) = Outcome.is_success outcome && i.accept (Machine.outputs m) in
  let det_ok = ok (run_hardened ~config h) in
  let rand_ok = ref 0 in
  for k = 1 to random_runs do
    if ok (run_hardened ~config:{ config with policy = Sched.Random (2 + k) } h)
    then incr rand_ok
  done;
  let total_ok = (if det_ok then 1 else 0) + !rand_ok in
  (det_ok && !rand_ok = random_runs, total_ok)

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let overhead_pct ~config (base : inst) (h : Harden.t) =
  let bm, _ = Machine.run_program ~config base.program in
  let hm, _ = run_hardened ~config h in
  let bi = (Machine.stats bm).Stats.instrs
  and hi = (Machine.stats hm).Stats.instrs in
  pct (hi - bi) bi

let site_retries (stats : Stats.t) (prof : Prof.t) : site_retry list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Stats.episode) ->
      let eps, rts =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl e.Stats.ep_site_id)
      in
      Hashtbl.replace tbl e.Stats.ep_site_id (eps + 1, rts + e.Stats.ep_retries))
    (Stats.episodes_chronological stats);
  (* a site can waste steps without completing an episode (fail-stop);
     union with the profiler's site table *)
  List.iter
    (fun (sc : Prof.site_cost) ->
      if not (Hashtbl.mem tbl sc.Prof.sc_site) then
        Hashtbl.replace tbl sc.Prof.sc_site (0, 0))
    (Prof.site_costs prof);
  let wasted_of site =
    match
      List.find_opt
        (fun (sc : Prof.site_cost) -> sc.Prof.sc_site = site)
        (Prof.site_costs prof)
    with
    | Some sc -> sc.Prof.sc_wasted
    | None -> 0
  in
  Hashtbl.fold
    (fun site (eps, rts) acc ->
      { sr_site = site; sr_episodes = eps; sr_retries = rts;
        sr_wasted = wasted_of site }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.sr_site b.sr_site)

(** Measure one case: recovery verdicts in both modes, overhead in both
    modes, and a profiled deterministic survival-mode buggy run for the
    recovery-cost columns. [random_runs] extra seeded schedules per
    verdict (default 5, the bench's "6/6"). [detect] names the detector
    lenses that flag the case's buggy program — a callback because the
    detector library sits above this one in the dependency order, so the
    CLI closes over it and hands it down (same pattern as [case]
    itself). *)
let measure ?(config = Machine.default_config) ?(random_runs = 5) ?detect
    (c : case) : row =
  let h_fix = harden_exn c.name (Plan.Fix c.buggy_fix.fix_iids) c.buggy_fix in
  let h_surv = harden_exn c.name Plan.Survival c.buggy_survival in
  let fix_recovered, fix_ok = verdict ~config ~random_runs c.buggy_fix h_fix in
  let surv_recovered, surv_ok =
    verdict ~config ~random_runs c.buggy_survival h_surv
  in
  let fix_ovh =
    overhead_pct ~config c.clean_fix
      (harden_exn c.name (Plan.Fix c.clean_fix.fix_iids) c.clean_fix)
  in
  let surv_ovh =
    overhead_pct ~config c.clean_survival
      (harden_exn c.name Plan.Survival c.clean_survival)
  in
  (* the profiled run: deterministic buggy schedule, survival hardening *)
  let prof = Prof.create () in
  let meta = Machine.meta_of_harden h_surv in
  let m =
    Machine.create ~config ~meta
      ~hooks:(Hooks.bundle ~profile:(Prof.probe prof) ())
      h_surv.Harden.program
  in
  ignore (Machine.run m);
  Prof.finalize prof;
  let stats = Machine.stats m in
  {
    o_name = c.name;
    o_needs_oracle = c.needs_oracle;
    o_fix_recovered = fix_recovered;
    o_fix_ok = fix_ok;
    o_surv_recovered = surv_recovered;
    o_surv_ok = surv_ok;
    o_runs = 1 + random_runs;
    o_fix_overhead_pct = fix_ovh;
    o_surv_overhead_pct = surv_ovh;
    o_rollbacks = stats.Stats.rollbacks;
    o_retries = Stats.total_retries stats;
    o_max_recovery_steps = Stats.max_recovery_time stats;
    o_mean_recovery_steps = Stats.mean_recovery_time stats;
    o_useful_steps = Prof.useful_steps prof;
    o_checkpoint_steps = Prof.checkpoint_steps prof;
    o_wasted_steps = Prof.wasted_steps prof;
    o_sites = site_retries stats prof;
    o_detected_by = (match detect with None -> [] | Some f -> f c);
  }

let measure_all ?config ?random_runs ?detect cases =
  List.map (measure ?config ?random_runs ?detect) cases

let summary rows =
  {
    s_cases = List.length rows;
    s_fix_recovered =
      List.length (List.filter (fun r -> r.o_fix_recovered) rows);
    s_surv_recovered =
      List.length (List.filter (fun r -> r.o_surv_recovered) rows);
    s_max_fix_overhead_pct =
      List.fold_left (fun m r -> Float.max m r.o_fix_overhead_pct) 0. rows;
    s_max_surv_overhead_pct =
      List.fold_left (fun m r -> Float.max m r.o_surv_overhead_pct) 0. rows;
  }

(* --- export ---------------------------------------------------------- *)

let row_json (r : row) : Json.t =
  Json.Obj
    [
      ("app", Json.String r.o_name);
      ("needs_oracle", Json.Bool r.o_needs_oracle);
      ( "fix",
        Json.Obj
          [
            ("recovered", Json.Bool r.o_fix_recovered);
            ("ok_runs", Json.Int r.o_fix_ok);
            ("runs", Json.Int r.o_runs);
            ("overhead_pct", Json.Float r.o_fix_overhead_pct);
          ] );
      ( "survival",
        Json.Obj
          [
            ("recovered", Json.Bool r.o_surv_recovered);
            ("ok_runs", Json.Int r.o_surv_ok);
            ("runs", Json.Int r.o_runs);
            ("overhead_pct", Json.Float r.o_surv_overhead_pct);
          ] );
      ( "recovery",
        Json.Obj
          [
            ("rollbacks", Json.Int r.o_rollbacks);
            ("retries", Json.Int r.o_retries);
            ("max_steps", Json.Int r.o_max_recovery_steps);
            ("mean_steps", Json.Float r.o_mean_recovery_steps);
            ("useful_steps", Json.Int r.o_useful_steps);
            ("checkpoint_steps", Json.Int r.o_checkpoint_steps);
            ("wasted_steps", Json.Int r.o_wasted_steps);
            ( "sites",
              Json.List
                (List.map
                   (fun s ->
                     Json.Obj
                       [
                         ("site", Json.Int s.sr_site);
                         ("episodes", Json.Int s.sr_episodes);
                         ("retries", Json.Int s.sr_retries);
                         ("wasted_steps", Json.Int s.sr_wasted);
                       ])
                   r.o_sites) );
          ] );
      ( "detected_by",
        Json.List (List.map (fun s -> Json.String s) r.o_detected_by) );
    ]

let to_json rows : Json.t =
  let s = summary rows in
  Json.Obj
    [
      ("type", Json.String "overhead");
      ("cases", Json.List (List.map row_json rows));
      ( "summary",
        Json.Obj
          [
            ("cases", Json.Int s.s_cases);
            ("fix_recovered", Json.Int s.s_fix_recovered);
            ("survival_recovered", Json.Int s.s_surv_recovered);
            ("max_fix_overhead_pct", Json.Float s.s_max_fix_overhead_pct);
            ("max_survival_overhead_pct", Json.Float s.s_max_surv_overhead_pct);
          ] );
    ]

(* Text rows in the shape of EXPERIMENTS.md Table 3, one line per case
   (yes* = recovered given a developer output oracle). *)
let table_rows rows : string list =
  let verdict_cell recovered ok runs needs_oracle =
    if recovered then
      Printf.sprintf "%s (%d/%d)" (if needs_oracle then "yes*" else "yes") ok runs
    else Printf.sprintf "NO (%d/%d)" ok runs
  in
  Printf.sprintf "%-13s %-12s %-16s %9s %9s %8s %8s %10s %11s  %s" "App."
    "fix recov." "survival recov." "fix ovh." "surv ovh." "retries"
    "rollbacks" "max rec." "wasted" "detected by"
  :: List.map
       (fun r ->
         Printf.sprintf
           "%-13s %-12s %-16s %8.1f%% %8.1f%% %8d %8d %10d %11d  %s" r.o_name
           (verdict_cell r.o_fix_recovered r.o_fix_ok r.o_runs r.o_needs_oracle)
           (verdict_cell r.o_surv_recovered r.o_surv_ok r.o_runs
              r.o_needs_oracle)
           r.o_fix_overhead_pct r.o_surv_overhead_pct r.o_retries r.o_rollbacks
           r.o_max_recovery_steps r.o_wasted_steps
           (match r.o_detected_by with
           | [] -> "-"
           | l -> String.concat "," l))
       rows

(* --- deterministic run-cost measurement ----------------------------- *)

(* The fix synthesizer ranks surviving candidates by this: the
   deterministic round-robin run plus a small fixed seed sweep, totalled
   in executed instructions and scheduler steps. Measured on the fast
   engine regardless of the caller's engine choice — instruction and
   step counts are part of the differential guarantee, so the numbers
   (and any JSON derived from them) are engine-independent. *)

type cost = {
  k_runs : int;
  k_instrs : int;  (* total executed instructions across the runs *)
  k_steps : int;  (* total scheduler steps across the runs *)
  k_mean_instrs : float;
}

let cost_of ?(config = Machine.default_config) ?meta ?(seeds = [ 1; 2; 3 ])
    (p : Program.t) : cost =
  let instrs = ref 0 and steps = ref 0 and n = ref 0 in
  let one policy =
    let m, _ = Machine.run_program ~config:{ config with policy } ?meta p in
    let st = Machine.stats m in
    instrs := !instrs + st.Stats.instrs;
    steps := !steps + st.Stats.steps;
    incr n
  in
  one Sched.Round_robin;
  List.iter (fun s -> one (Sched.Random s)) seeds;
  {
    k_runs = !n;
    k_instrs = !instrs;
    k_steps = !steps;
    k_mean_instrs = float_of_int !instrs /. float_of_int (max 1 !n);
  }

let cost_overhead_pct ~base (c : cost) =
  if base.k_instrs = 0 then 0.
  else 100. *. (c.k_mean_instrs -. base.k_mean_instrs) /. base.k_mean_instrs

let cost_json (c : cost) : Json.t =
  Json.Obj
    [
      ("runs", Json.Int c.k_runs);
      ("instrs", Json.Int c.k_instrs);
      ("steps", Json.Int c.k_steps);
      ("mean_instrs", Json.Float c.k_mean_instrs);
    ]
