(** Cross-run aggregation: fold a JSONL stream of per-run records (the
    fuzzer's [--jsonl] output) into percentile summaries of recovery
    cost — p50/p95/max recovery steps and retries over the runs that
    recovered — and a per-site table of episodes, retries, recovery
    steps, and the wasted-step ratio (site recovery steps / total steps
    of all runs).

    ["fuzz_summary"] records contribute their ["engine"] and
    ["elapsed_sec"] members, so the aggregate reports throughput
    (runs/sec) without re-parsing logs. Lines of any other ["type"] (the
    meta header) are skipped; an unparsable line is an error. *)

type site_agg = {
  g_site : int;
  g_episodes : int;
  g_retries : int;
  g_steps : int;  (** recovery steps attributed to this site, summed *)
  g_ratio : float;  (** [g_steps] / total steps of all runs *)
}

type t = {
  g_runs : int;
  g_outcomes : (string * int) list;  (** outcome tag -> count, sorted *)
  g_recovery_runs : int;  (** runs with at least one recovery episode *)
  g_total_steps : int;
  g_p50_recovery_steps : int;
  g_p95_recovery_steps : int;
  g_max_recovery_steps : int;
  g_p50_retries : int;
  g_p95_retries : int;
  g_max_retries : int;
  g_sites : site_agg list;  (** ascending site id *)
  g_engines : string list;
      (** distinct engines named by [fuzz_summary] records, sorted *)
  g_elapsed : float;
      (** max [elapsed_sec] across [fuzz_summary] records — the stream's
          wall-clock; [0.] when no summary carried one *)
  g_runs_per_sec : float;  (** [g_runs /. g_elapsed]; [0.] when unknown *)
}

val percentile : int list -> float -> int
(** Nearest-rank percentile (the value at rank ceil(p/100*n), 1-based) of
    an unsorted list; [0] on the empty list. [p] is clamped to
    [\[0, 100\]] (NaN counts as 0), so any float is a safe argument. *)

val of_records : Json.t list -> t

val of_lines : string list -> (t, string) result
(** Parse JSONL lines and aggregate; [Error] names the first bad line. *)

val to_json : t -> Json.t
val render : t -> string list
