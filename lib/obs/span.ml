(* Folding the flat trace-event stream into recovery spans.

   The machine's episode protocol guarantees a clean nesting per thread:
   an episode opens at the first Ev_rollback while none is open, absorbs
   further rollbacks for the same site, and closes with exactly one
   Ev_recovered (also emitted when an episode is closed early by a
   destroying instruction or thread exit) or Ev_fail_stop. The builder
   mirrors that protocol, defensively treating protocol violations as
   Unresolved instead of raising. *)

open Conair_runtime
module Instr = Conair_ir.Instr

type outcome = Recovered | Fail_stopped | Unresolved

type t = {
  sp_tid : int;
  sp_site_id : int;
  sp_kind : Instr.failure_kind option;
  sp_start : int;
  sp_end : int;
  sp_rollbacks : int;
  sp_outcome : outcome;
}

let duration s = s.sp_end - s.sp_start

let outcome_name = function
  | Recovered -> "recovered"
  | Fail_stopped -> "fail-stop"
  | Unresolved -> "unresolved"

type open_span = {
  o_site : int;
  o_kind : Instr.failure_kind option;
  o_start : int;
  mutable o_rollbacks : int;
}

let of_events (events : Trace.event list) : t list =
  let open_spans : (int, open_span) Hashtbl.t = Hashtbl.create 8 in
  let pending_kind : (int, int * Instr.failure_kind) Hashtbl.t =
    Hashtbl.create 8
  in
  let finished = ref [] in
  let last_step = ref 0 in
  let close tid (o : open_span) ~step ~outcome =
    Hashtbl.remove open_spans tid;
    finished :=
      {
        sp_tid = tid;
        sp_site_id = o.o_site;
        sp_kind = o.o_kind;
        sp_start = o.o_start;
        sp_end = step;
        sp_rollbacks = o.o_rollbacks;
        sp_outcome = outcome;
      }
      :: !finished
  in
  let kind_for tid site =
    match Hashtbl.find_opt pending_kind tid with
    | Some (s, k) when s = site -> Some k
    | _ -> None
  in
  List.iter
    (fun (ev : Trace.event) ->
      (match ev with
      | Trace.Ev_schedule { step; _ }
      | Trace.Ev_block { step; _ }
      | Trace.Ev_wake { step; _ }
      | Trace.Ev_spawn { step; _ }
      | Trace.Ev_thread_done { step; _ }
      | Trace.Ev_output { step; _ }
      | Trace.Ev_checkpoint { step; _ }
      | Trace.Ev_failure_detected { step; _ }
      | Trace.Ev_rollback { step; _ }
      | Trace.Ev_compensate_lock { step; _ }
      | Trace.Ev_compensate_block { step; _ }
      | Trace.Ev_recovered { step; _ }
      | Trace.Ev_fail_stop { step; _ } ->
          last_step := max !last_step step);
      match ev with
      | Trace.Ev_failure_detected { tid; site_id; kind; _ } ->
          Hashtbl.replace pending_kind tid (site_id, kind)
      | Trace.Ev_rollback { step; tid; site_id; _ } -> (
          match Hashtbl.find_opt open_spans tid with
          | Some o when o.o_site = site_id -> o.o_rollbacks <- o.o_rollbacks + 1
          | Some o ->
              (* protocol violation: a new site rolled back with the old
                 episode still open — close it rather than miscount *)
              close tid o ~step ~outcome:Unresolved;
              Hashtbl.replace open_spans tid
                {
                  o_site = site_id;
                  o_kind = kind_for tid site_id;
                  o_start = step;
                  o_rollbacks = 1;
                }
          | None ->
              Hashtbl.replace open_spans tid
                {
                  o_site = site_id;
                  o_kind = kind_for tid site_id;
                  o_start = step;
                  o_rollbacks = 1;
                })
      | Trace.Ev_recovered { step; tid; _ } -> (
          match Hashtbl.find_opt open_spans tid with
          | Some o -> close tid o ~step ~outcome:Recovered
          | None -> ())
      | Trace.Ev_fail_stop { step; tid; site_id } -> (
          match Hashtbl.find_opt open_spans tid with
          | Some o -> close tid o ~step ~outcome:Fail_stopped
          | None ->
              (* a fail-stop with nothing to roll back to: a point span *)
              finished :=
                {
                  sp_tid = tid;
                  sp_site_id = site_id;
                  sp_kind = kind_for tid site_id;
                  sp_start = step;
                  sp_end = step;
                  sp_rollbacks = 0;
                  sp_outcome = Fail_stopped;
                }
                :: !finished)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid o -> close tid o ~step:!last_step ~outcome:Unresolved)
    (Hashtbl.copy open_spans);
  List.stable_sort
    (fun a b -> compare (a.sp_start, a.sp_tid) (b.sp_start, b.sp_tid))
    (List.rev !finished)

let to_json s =
  Json.Obj
    ([
       ("tid", Json.Int s.sp_tid);
       ("site_id", Json.Int s.sp_site_id);
     ]
    @ (match s.sp_kind with
      | None -> []
      | Some k ->
          [
            ( "kind",
              Json.String (Format.asprintf "%a" Instr.pp_failure_kind k) );
          ])
    @ [
        ("start_step", Json.Int s.sp_start);
        ("end_step", Json.Int s.sp_end);
        ("duration", Json.Int (duration s));
        ("rollbacks", Json.Int s.sp_rollbacks);
        ("outcome", Json.String (outcome_name s.sp_outcome));
      ])

(* --- Chrome trace-event export ------------------------------------- *)

(* Virtual scheduler steps map 1:1 to microseconds: Perfetto renders a
   1000-step recovery as a 1 ms slice, and relative proportions — the
   thing the visualization is for — are exact. *)

let span_name s =
  let kind =
    match s.sp_kind with
    | None -> ""
    | Some k -> Format.asprintf " (%a)" Instr.pp_failure_kind k
  in
  Printf.sprintf "recover site %d%s" s.sp_site_id kind

let complete_event s : Json.t =
  Json.Obj
    [
      ("name", Json.String (span_name s));
      ("cat", Json.String "recovery");
      ("ph", Json.String "X");
      ("pid", Json.Int 0);
      ("tid", Json.Int s.sp_tid);
      ("ts", Json.Int s.sp_start);
      ("dur", Json.Int (duration s));
      ( "args",
        Json.Obj
          [
            ("site_id", Json.Int s.sp_site_id);
            ("rollbacks", Json.Int s.sp_rollbacks);
            ("outcome", Json.String (outcome_name s.sp_outcome));
          ] );
    ]

let instant_event ~name ~step ~tid args : Json.t =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "recovery");
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("ts", Json.Int step);
      ("args", Json.Obj args);
    ]

let to_chrome ?(events = []) ?(counters = []) (spans : t list) : Json.t =
  let tids = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tids s.sp_tid ()) spans;
  List.iter
    (function
      | Trace.Ev_rollback { tid; _ } -> Hashtbl.replace tids tid ()
      | _ -> ())
    events;
  let thread_meta =
    Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
    |> List.sort compare
    |> List.map (fun tid ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "thread %d" tid)) ]);
             ])
  in
  let process_meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "conair") ]);
      ]
  in
  let instants =
    List.filter_map
      (function
        | Trace.Ev_rollback { step; tid; site_id; retry } ->
            Some
              (instant_event ~name:"rollback" ~step ~tid
                 [ ("site_id", Json.Int site_id); ("retry", Json.Int retry) ])
        | Trace.Ev_failure_detected { step; tid; site_id; kind } ->
            Some
              (instant_event ~name:"failure detected" ~step ~tid
                 [
                   ("site_id", Json.Int site_id);
                   ( "kind",
                     Json.String (Format.asprintf "%a" Instr.pp_failure_kind kind)
                   );
                 ])
        | _ -> None)
      events
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((process_meta :: thread_meta)
          @ List.map complete_event spans
          @ instants @ counters) );
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_of_run events = to_chrome ~events (of_events events)
