(* The deterministic virtual-time cost profiler: the accumulator behind
   [Runtime.Profile.probe].

   Attribution model. Every scheduler step belongs to a *context* — the
   call stack (function names, outermost first) plus the current block's
   label, rendered as the collapsed-stack frame path
   ["main;worker;loop_body"]. A step's *class* is decided later than it
   executes:

   - steps first land in a per-thread *pending* pool keyed by context;
   - a [Checkpoint] step flushes the thread's pending pool to *useful*
     (steps retired before a fresh checkpoint can never be rolled back —
     the rollback target has just moved past them) and counts itself as
     *checkpoint* cost, ConAir's proactive overhead;
   - a rollback moves the thread's pending pool to *wasted*, charged both
     per-context and to the failure site that triggered it ([Try_recover]
     resumes after the checkpoint instruction, so exactly the pending
     steps are the ones about to be re-executed);
   - [finalize] flushes what remains to useful.

   Everything is counted in scheduler steps, so a profile is a pure
   function of (program, config, seed) and byte-identical across the fast
   and reference engines — the differential test asserts this. All
   exports iterate in sorted key order; no Hashtbl iteration order leaks
   into output. *)

open Conair_runtime

type kind = Useful | Checkpoint | Wasted | Total

let kind_name = function
  | Useful -> "useful"
  | Checkpoint -> "checkpoint"
  | Wasted -> "wasted"
  | Total -> "total"

type site_cost = { sc_site : int; sc_wasted : int; sc_rollbacks : int }

type row = { r_ctx : string; r_useful : int; r_ckpt : int; r_wasted : int }

type sample = {
  sm_step : int;
  sm_useful : int;
  sm_ckpt : int;
  sm_wasted : int;
}

(* internal mutable per-site accumulator *)
type site_acc = { mutable a_wasted : int; mutable a_rollbacks : int }

type t = {
  useful : (string, int) Hashtbl.t;
  ckpt : (string, int) Hashtbl.t;
  wasted : (string, int) Hashtbl.t;
  pending : (int, (string, int) Hashtbl.t) Hashtbl.t;  (** per tid *)
  sites : (int, site_acc) Hashtbl.t;
  mutable useful_total : int;
  mutable ckpt_total : int;
  mutable wasted_total : int;
  mutable idle_total : int;
  mutable last_step : int;
  mutable samples : sample list;  (** newest first *)
  mutable finalized : bool;
}

let create () =
  {
    useful = Hashtbl.create 64;
    ckpt = Hashtbl.create 16;
    wasted = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    sites = Hashtbl.create 8;
    useful_total = 0;
    ckpt_total = 0;
    wasted_total = 0;
    idle_total = 0;
    last_step = 0;
    samples = [];
    finalized = false;
  }

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let pending_of t tid =
  match Hashtbl.find_opt t.pending tid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace t.pending tid tbl;
      tbl

(* Move a thread's pending pool into [target]; the sum moved is returned.
   Order-independent: per-key adds only. *)
let flush_pending tbl target =
  let moved = ref 0 in
  Hashtbl.iter
    (fun key n ->
      bump target key n;
      moved := !moved + n)
    tbl;
  Hashtbl.reset tbl;
  !moved

let take_sample t =
  t.samples <-
    {
      sm_step = t.last_step;
      sm_useful = t.useful_total;
      sm_ckpt = t.ckpt_total;
      sm_wasted = t.wasted_total;
    }
    :: t.samples

(* --- the probe ----------------------------------------------------- *)

let context_key ~stack ~block =
  (* [stack] arrives innermost frame first (thread stack order); the
     collapsed convention is root first with the block as leaf frame. *)
  String.concat ";" (List.rev_append stack [ block ])

let on_step t ~step ~tid ~stack ~block ~cls =
  t.last_step <- step;
  let key = context_key ~stack ~block in
  match (cls : Profile.step_class) with
  | Profile.Normal -> bump (pending_of t tid) key 1
  | Profile.Checkpoint ->
      t.useful_total <- t.useful_total + flush_pending (pending_of t tid) t.useful;
      bump t.ckpt key 1;
      t.ckpt_total <- t.ckpt_total + 1

let on_rollback t ~step ~tid ~site_id =
  t.last_step <- step;
  let moved = flush_pending (pending_of t tid) t.wasted in
  t.wasted_total <- t.wasted_total + moved;
  let acc =
    match Hashtbl.find_opt t.sites site_id with
    | Some a -> a
    | None ->
        let a = { a_wasted = 0; a_rollbacks = 0 } in
        Hashtbl.replace t.sites site_id a;
        a
  in
  acc.a_wasted <- acc.a_wasted + moved;
  acc.a_rollbacks <- acc.a_rollbacks + 1;
  take_sample t

let on_idle t ~step =
  t.last_step <- step;
  t.idle_total <- t.idle_total + 1

let probe t : Profile.probe =
  {
    Profile.p_step =
      (fun ~step ~tid ~stack ~block ~cls -> on_step t ~step ~tid ~stack ~block ~cls);
    p_rollback = (fun ~step ~tid ~site_id -> on_rollback t ~step ~tid ~site_id);
    p_idle = (fun ~step -> on_idle t ~step);
  }

(** Flush the remaining pending steps to useful and close the profile.
    Idempotent; call once the run has finished, before reading. *)
let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    Hashtbl.iter
      (fun _tid tbl -> t.useful_total <- t.useful_total + flush_pending tbl t.useful)
      t.pending;
    take_sample t
  end

(* --- accessors ------------------------------------------------------ *)

let useful_steps t = t.useful_total
let checkpoint_steps t = t.ckpt_total
let wasted_steps t = t.wasted_total
let idle_steps t = t.idle_total
let attributed_steps t = t.useful_total + t.ckpt_total + t.wasted_total

let wasted_ratio t =
  let att = attributed_steps t in
  if att = 0 then 0. else float_of_int t.wasted_total /. float_of_int att

let site_costs t =
  Hashtbl.fold
    (fun site (a : site_acc) acc ->
      { sc_site = site; sc_wasted = a.a_wasted; sc_rollbacks = a.a_rollbacks }
      :: acc)
    t.sites []
  |> List.sort (fun a b -> compare a.sc_site b.sc_site)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let rows t =
  let tbl = Hashtbl.create 64 in
  let collect field src =
    Hashtbl.iter
      (fun key n ->
        let u, c, w =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl key)
        in
        Hashtbl.replace tbl key
          (match field with
          | `U -> (u + n, c, w)
          | `C -> (u, c + n, w)
          | `W -> (u, c, w + n)))
      src
  in
  collect `U t.useful;
  collect `C t.ckpt;
  collect `W t.wasted;
  Hashtbl.fold
    (fun key (u, c, w) acc ->
      { r_ctx = key; r_useful = u; r_ckpt = c; r_wasted = w } :: acc)
    tbl []
  |> List.sort (fun a b ->
         compare
           (b.r_useful + b.r_ckpt + b.r_wasted, a.r_ctx)
           (a.r_useful + a.r_ckpt + a.r_wasted, b.r_ctx))

let samples t = List.rev t.samples

(* --- collapsed-stack export ----------------------------------------- *)

let to_collapsed t kind =
  let lines tbl =
    List.filter_map
      (fun (key, n) -> if n > 0 then Some (Printf.sprintf "%s %d" key n) else None)
      (sorted_bindings tbl)
  in
  match kind with
  | Useful -> lines t.useful
  | Checkpoint -> lines t.ckpt
  | Wasted -> lines t.wasted
  | Total ->
      let merged = Hashtbl.create 64 in
      List.iter
        (fun tbl -> Hashtbl.iter (fun k n -> bump merged k n) tbl)
        [ t.useful; t.ckpt; t.wasted ];
      lines merged

(* --- JSON export ----------------------------------------------------- *)

let table_json tbl =
  Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (sorted_bindings tbl))

let to_json t : Json.t =
  Json.Obj
    [
      ("type", Json.String "profile");
      ("useful_steps", Json.Int t.useful_total);
      ("checkpoint_steps", Json.Int t.ckpt_total);
      ("wasted_steps", Json.Int t.wasted_total);
      ("idle_steps", Json.Int t.idle_total);
      ("wasted_ratio", Json.Float (wasted_ratio t));
      ("useful", table_json t.useful);
      ("checkpoint", table_json t.ckpt);
      ("wasted", table_json t.wasted);
      ( "sites",
        Json.List
          (List.map
             (fun sc ->
               Json.Obj
                 [
                   ("site", Json.Int sc.sc_site);
                   ("wasted", Json.Int sc.sc_wasted);
                   ("rollbacks", Json.Int sc.sc_rollbacks);
                 ])
             (site_costs t)) );
      ( "samples",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("step", Json.Int s.sm_step);
                   ("useful", Json.Int s.sm_useful);
                   ("checkpoint", Json.Int s.sm_ckpt);
                   ("wasted", Json.Int s.sm_wasted);
                 ])
             (samples t)) );
    ]

(* --- Chrome counter track ------------------------------------------- *)

(* One "ph":"C" counter event per sample; rendered by Perfetto as a
   stacked area track alongside the recovery spans ([Span.to_chrome]
   appends these via its [?counters] argument). Same clock as the spans:
   one scheduler step = one microsecond. *)
let counter_events t : Json.t list =
  List.map
    (fun s ->
      Json.Obj
        [
          ("name", Json.String "conair cost (steps)");
          ("ph", Json.String "C");
          ("pid", Json.Int 0);
          ("ts", Json.Int s.sm_step);
          ( "args",
            Json.Obj
              [
                ("useful", Json.Int s.sm_useful);
                ("checkpoint", Json.Int s.sm_ckpt);
                ("wasted", Json.Int s.sm_wasted);
              ] );
        ])
    (samples t)
