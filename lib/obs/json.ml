(* A minimal JSON encoder/parser. The whole observability layer rests on
   this module, so it stays dependency-free and boring: a plain algebraic
   type, a Buffer-based encoder, and a recursive-descent parser used to
   validate what we emitted (the smoke alias, round-trip tests). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding ------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity; emit null like most encoders do. %.17g keeps
   every float round-trippable, but trim the common integral case. *)
let add_float buf f =
  if Float.is_nan f || Float.equal f Float.infinity
     || Float.equal f Float.neg_infinity
  then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else begin
    let s = Printf.sprintf "%.12g" f in
    if Float.equal (float_of_string s) f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> to_buffer buf j
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          escape_string buf k;
          Buffer.add_string buf ": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 512 in
  pretty buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
  c.pos <- c.pos + 4;
  v

(* Encode a code point as UTF-8 (we only ever re-read our own output, but
   accept anything standard). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1; go ()
        | Some 'u' ->
            c.pos <- c.pos + 1;
            let hi = parse_hex4 c in
            let cp =
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                (* surrogate pair *)
                expect c '\\';
                expect c 'u';
                let lo = parse_hex4 c in
                0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else hi
            in
            add_utf8 buf cp;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> c.pos <- c.pos + 1; true
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        c.pos <- c.pos + 1;
        true
    | _ -> false
  in
  while consume () do () done;
  let text = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length src then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Obj xs, Obj ys ->
      let sort = List.sort (fun (k, _) (k', _) -> compare k k') in
      List.length xs = List.length ys
      && List.for_all2
           (fun (k, v) (k', v') -> String.equal k k' && equal v v')
           (sort xs) (sort ys)
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | a, b -> a = b
