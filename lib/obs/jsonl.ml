(* Streaming JSONL serialization of trace events.

   The encoding here is the *contract* of the event-log file format (see
   docs/OBSERVABILITY.md): stable field names, step/tid always present,
   event-specific payload fields after them. Both interpreters emit
   identical [Trace.event] values on identical runs, so identical logs —
   the differential test compares the serialized bytes. *)

open Conair_runtime
module Instr = Conair_ir.Instr

type run_meta = {
  app : string;
  variant : string;
  seed : int option;
  engine : string;  (** "fast" ([Machine]) or "ref" ([Ref_machine]) *)
  hardened : bool;
}

let run_meta ?(variant = "") ?seed ?(engine = "fast") ?(hardened = false) app =
  { app; variant; seed; engine; hardened }

let failure_kind_name (k : Instr.failure_kind) =
  Format.asprintf "%a" Instr.pp_failure_kind k

let policy_json : Sched.policy -> Json.t = function
  | Sched.Round_robin -> Json.String "round-robin"
  | Sched.Random seed ->
      Json.Obj [ ("random", Json.Int seed) ]

let config_json (c : Machine.config) : Json.t =
  Json.Obj
    [
      ("policy", policy_json c.policy);
      ("fuel", Json.Int c.fuel);
      ("max_retries", Json.Int c.max_retries);
      ( "deadlock_detection",
        Json.String
          (match c.deadlock_detection with
          | Machine.Timeout_based -> "timeout"
          | Machine.Wait_graph -> "wait-graph") );
      ("deadlock_backoff", Json.Int c.deadlock_backoff);
      ("verify_rollbacks", Json.Bool c.verify_rollbacks);
      ("perturb_timing", Json.Bool c.perturb_timing);
      ("spawn_jitter", Json.Int c.spawn_jitter);
      ("profile_sites", Json.Bool c.profile_sites);
    ]

let policy_of_json : Json.t -> (Sched.policy, string) result = function
  | Json.String "round-robin" -> Ok Sched.Round_robin
  | Json.Obj _ as j -> (
      match Json.member "random" j with
      | Some (Json.Int seed) -> Ok (Sched.Random seed)
      | _ -> Error "config: malformed policy object")
  | _ -> Error "config: malformed policy"

(* Decode a [config_json] object. Fields absent from the object (logs
   written before a knob existed) keep their [Machine.default_config]
   value; present fields must be well-typed. *)
let config_of_json (j : Json.t) : (Machine.config, string) result =
  let ( let* ) = Result.bind in
  let field name decode default =
    match Json.member name j with
    | None -> Ok default
    | Some v -> (
        match decode v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "config: malformed %S field" name))
  in
  let int = function Json.Int n -> Some n | _ -> None in
  let bool = function Json.Bool b -> Some b | _ -> None in
  match j with
  | Json.Obj _ ->
      let d = Machine.default_config in
      let* policy =
        match Json.member "policy" j with
        | None -> Ok d.policy
        | Some p -> policy_of_json p
      in
      let* fuel = field "fuel" int d.fuel in
      let* max_retries = field "max_retries" int d.max_retries in
      let* deadlock_detection =
        field "deadlock_detection"
          (function
            | Json.String "timeout" -> Some Machine.Timeout_based
            | Json.String "wait-graph" -> Some Machine.Wait_graph
            | _ -> None)
          d.deadlock_detection
      in
      let* deadlock_backoff = field "deadlock_backoff" int d.deadlock_backoff in
      let* verify_rollbacks = field "verify_rollbacks" bool d.verify_rollbacks in
      let* perturb_timing = field "perturb_timing" bool d.perturb_timing in
      let* spawn_jitter = field "spawn_jitter" int d.spawn_jitter in
      let* profile_sites = field "profile_sites" bool d.profile_sites in
      Ok
        {
          Machine.policy;
          fuel;
          max_retries;
          deadlock_detection;
          deadlock_backoff;
          verify_rollbacks;
          perturb_timing;
          spawn_jitter;
          profile_sites;
        }
  | _ -> Error "config: expected an object"

let meta_json ?config (meta : run_meta) : Json.t =
  Json.Obj
    (("type", Json.String "meta")
     :: ("app", Json.String meta.app)
     :: (if meta.variant = "" then []
         else [ ("variant", Json.String meta.variant) ])
    @ (match meta.seed with
      | None -> []
      | Some s -> [ ("seed", Json.Int s) ])
    @ [
        ("engine", Json.String meta.engine);
        ("hardened", Json.Bool meta.hardened);
      ]
    @
    (* the execution parameters (policy + seed, fuel, retry budget, ...)
       ride in the config subobject, making the log self-describing *)
    match config with
    | None -> []
    | Some c -> [ ("config", config_json c) ])

let event_json (ev : Trace.event) : Json.t =
  let mk name step tid rest =
    Json.Obj
      (("type", Json.String "event")
      :: ("ev", Json.String name)
      :: ("step", Json.Int step)
      :: ("tid", Json.Int tid)
      :: rest)
  in
  match ev with
  | Trace.Ev_schedule { step; tid } -> mk "schedule" step tid []
  | Trace.Ev_block { step; tid; lock } ->
      mk "block" step tid [ ("lock", Json.String lock) ]
  | Trace.Ev_wake { step; tid } -> mk "wake" step tid []
  | Trace.Ev_spawn { step; parent; child } ->
      mk "spawn" step parent [ ("child", Json.Int child) ]
  | Trace.Ev_thread_done { step; tid } -> mk "thread_done" step tid []
  | Trace.Ev_output { step; tid; text } ->
      mk "output" step tid [ ("text", Json.String text) ]
  | Trace.Ev_checkpoint { step; tid; ckpt_id } ->
      mk "checkpoint" step tid [ ("ckpt_id", Json.Int ckpt_id) ]
  | Trace.Ev_failure_detected { step; tid; site_id; kind } ->
      mk "failure_detected" step tid
        [
          ("site_id", Json.Int site_id);
          ("kind", Json.String (failure_kind_name kind));
        ]
  | Trace.Ev_rollback { step; tid; site_id; retry } ->
      mk "rollback" step tid
        [ ("site_id", Json.Int site_id); ("retry", Json.Int retry) ]
  | Trace.Ev_compensate_lock { step; tid; lock } ->
      mk "compensate_lock" step tid [ ("lock", Json.String lock) ]
  | Trace.Ev_compensate_block { step; tid; block } ->
      mk "compensate_block" step tid [ ("block", Json.Int block) ]
  | Trace.Ev_recovered { step; tid; site_id } ->
      mk "recovered" step tid [ ("site_id", Json.Int site_id) ]
  | Trace.Ev_fail_stop { step; tid; site_id } ->
      mk "fail_stop" step tid [ ("site_id", Json.Int site_id) ]

let event_line ev = Json.to_string (event_json ev)

(* --- the sched_chunk encoding ---------------------------------------

   One schedule-log decision chunk: {"type":"sched_chunk","d":[tid,...]}.
   This is the contract shared by the full recorder ([Conair_replay]'s
   schedule logs) and the flight recorder's bundle tails — extracted here
   so the two can never drift and every `.sched.jsonl` consumer (replay
   feeds, checkers, the fuzz corpus) accepts either's chunks unchanged. *)

let sched_chunk_size = 4096

let sched_chunk_json (d : int array) ~pos ~len : Json.t =
  Json.Obj
    [
      ("type", Json.String "sched_chunk");
      ("d", Json.List (List.init len (fun i -> Json.Int d.(pos + i))));
    ]

let sched_chunks (d : int array) : Json.t list =
  let n = Array.length d in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let len = min sched_chunk_size (n - pos) in
      go (pos + len) (sched_chunk_json d ~pos ~len :: acc)
  in
  go 0 []

let sched_chunk_decisions (j : Json.t) : (int list, string) result =
  match Json.member "d" j with
  | Some (Json.List l) -> (
      try
        Ok (List.map (function Json.Int n -> n | _ -> raise Exit) l)
      with Exit -> Error "sched_chunk: malformed \"d\" field")
  | _ -> Error "sched_chunk: malformed \"d\" field"

type writer = { write : string -> unit }

let channel_writer oc =
  {
    write =
      (fun line ->
        output_string oc line;
        output_char oc '\n');
  }

let buffer_writer buf =
  {
    write =
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n');
  }

let write_json w j = w.write (Json.to_string j)

let sink ?config ?meta ?(store = false) (w : writer) : Trace.sink =
  (match meta with
  | Some m -> write_json w (meta_json ?config m)
  | None -> ());
  Trace.create ~emit:(fun ev -> w.write (event_line ev)) ~store ()

let events_to_lines ?config ?meta events =
  let header =
    match meta with
    | Some m -> [ Json.to_string (meta_json ?config m) ]
    | None -> []
  in
  header @ List.map event_line events
