(* Cross-run aggregation: fold a JSONL stream of per-run records — the
   fuzzer's [--jsonl] output — into percentile summaries of recovery cost
   and a per-site waste table.

   The input contract is one JSON object per line. Lines whose ["type"]
   is not ["run"] (the meta header, the fuzzer's trailing summary) are
   skipped; a line that does not parse is an error, because a corrupt log
   should fail loudly, not skew percentiles. A run record carries:

   {v
   {"type":"run","case":...,"seed":...,"outcome":"success","steps":N,
    "episodes":N,"retries":N,"max_episode_steps":N,
    "sites":[{"site":N,"episodes":N,"retries":N,"steps":N}, ...]}
   v}

   Percentiles are nearest-rank (the value at ceil(p/100 * n), 1-based)
   over the recovery runs — runs with at least one recovery episode. *)

type site_agg = {
  g_site : int;
  g_episodes : int;
  g_retries : int;
  g_steps : int;  (** recovery steps attributed to this site, summed *)
  g_ratio : float;  (** [g_steps] / total steps of all runs *)
}

type t = {
  g_runs : int;
  g_outcomes : (string * int) list;  (** outcome tag -> count, sorted *)
  g_recovery_runs : int;  (** runs with at least one episode *)
  g_total_steps : int;
  g_p50_recovery_steps : int;
  g_p95_recovery_steps : int;
  g_max_recovery_steps : int;
  g_p50_retries : int;
  g_p95_retries : int;
  g_max_retries : int;
  g_sites : site_agg list;  (** ascending site id *)
  g_engines : string list;
  g_elapsed : float;
  g_runs_per_sec : float;
}

(** Nearest-rank percentile of an unsorted list; [0] on the empty list.
    [p] in [0, 100]. *)
let percentile xs p =
  match List.sort compare xs with
  | [] -> 0
  | sorted ->
      (* A NaN or out-of-range p must not turn into a wild List.nth
         index: treat NaN as 0 and clamp to [0, 100]. *)
      let p = if Float.is_nan p then 0. else Float.max 0. (Float.min 100. p) in
      let n = List.length sorted in
      let rank =
        max 1 (int_of_float (ceil (p /. 100. *. float_of_int n)))
      in
      List.nth sorted (min n rank - 1)

let int_member key j =
  match Json.member key j with
  | Some (Json.Int n) -> n
  | Some (Json.Float f) -> int_of_float f
  | _ -> 0

let string_member key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> ""

let is_run j = string_member "type" j = "run"

(* fuzz_summary trailers carry the stream-level facts the run records do
   not repeat: which engine executed and the wall-clock the whole stream
   took. Elapsed folds by max — parallel workers' streams overlap in
   time, so the longest stream is the campaign's wall-clock. *)
let float_member key j =
  match Json.member key j with
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.

let summary_facts records =
  let engines = ref [] and elapsed = ref 0. in
  List.iter
    (fun r ->
      if string_member "type" r = "fuzz_summary" then begin
        let e = string_member "engine" r in
        if e <> "" && not (List.mem e !engines) then engines := e :: !engines;
        (* A corrupt summary (NaN/inf/negative elapsed) must not poison
           the throughput figure; only positive finite values fold. *)
        let el = float_member "elapsed_sec" r in
        if Float.is_finite el && el > 0. then
          elapsed := Float.max !elapsed el
      end)
    records;
  (List.sort compare !engines, !elapsed)

let of_records (records : Json.t list) : t =
  let engines, elapsed = summary_facts records in
  let runs = List.filter is_run records in
  let outcomes = Hashtbl.create 8 in
  let sites = Hashtbl.create 16 in
  let total_steps = ref 0 in
  let recovery_steps = ref [] in
  let retries = ref [] in
  let recovery_runs = ref 0 in
  List.iter
    (fun r ->
      let tag = string_member "outcome" r in
      let tag = if tag = "" then "unknown" else tag in
      Hashtbl.replace outcomes tag
        (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes tag));
      total_steps := !total_steps + int_member "steps" r;
      if int_member "episodes" r > 0 then begin
        incr recovery_runs;
        recovery_steps := int_member "max_episode_steps" r :: !recovery_steps;
        retries := int_member "retries" r :: !retries
      end;
      match Json.member "sites" r with
      | Some (Json.List site_objs) ->
          List.iter
            (fun s ->
              let id = int_member "site" s in
              let eps, rts, stp =
                Option.value ~default:(0, 0, 0) (Hashtbl.find_opt sites id)
              in
              Hashtbl.replace sites id
                ( eps + int_member "episodes" s,
                  rts + int_member "retries" s,
                  stp + int_member "steps" s ))
            site_objs
      | _ -> ())
    runs;
  let site_aggs =
    Hashtbl.fold
      (fun id (eps, rts, stp) acc ->
        {
          g_site = id;
          g_episodes = eps;
          g_retries = rts;
          g_steps = stp;
          g_ratio =
            (if !total_steps = 0 then 0.
             else float_of_int stp /. float_of_int !total_steps);
        }
        :: acc)
      sites []
    |> List.sort (fun a b -> compare a.g_site b.g_site)
  in
  {
    g_runs = List.length runs;
    g_outcomes =
      Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) outcomes []
      |> List.sort compare;
    g_recovery_runs = !recovery_runs;
    g_total_steps = !total_steps;
    g_p50_recovery_steps = percentile !recovery_steps 50.;
    g_p95_recovery_steps = percentile !recovery_steps 95.;
    g_max_recovery_steps = percentile !recovery_steps 100.;
    g_p50_retries = percentile !retries 50.;
    g_p95_retries = percentile !retries 95.;
    g_max_retries = percentile !retries 100.;
    g_sites = site_aggs;
    g_engines = engines;
    g_elapsed = elapsed;
    g_runs_per_sec =
      (* zero runs or unknown/zero elapsed both mean "no throughput
         figure", not a division — the JSON stays finite either way *)
      (if runs <> [] && elapsed > 0. then
         float_of_int (List.length runs) /. elapsed
       else 0.);
  }

let of_lines (lines : string list) : (t, string) result =
  let rec parse acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line' = String.trim line in
        if line' = "" then parse acc (i + 1) rest
        else begin
          match Json.of_string line' with
          | Ok j -> parse (j :: acc) (i + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e)
        end
  in
  Result.map of_records (parse [] 1 lines)

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("type", Json.String "aggregate");
      ("runs", Json.Int t.g_runs);
      ( "outcomes",
        Json.Obj (List.map (fun (tag, n) -> (tag, Json.Int n)) t.g_outcomes) );
      ("recovery_runs", Json.Int t.g_recovery_runs);
      ("total_steps", Json.Int t.g_total_steps);
      ( "engines",
        Json.List (List.map (fun e -> Json.String e) t.g_engines) );
      ("elapsed_sec", Json.Float t.g_elapsed);
      ("runs_per_sec", Json.Float t.g_runs_per_sec);
      ( "recovery_steps",
        Json.Obj
          [
            ("p50", Json.Int t.g_p50_recovery_steps);
            ("p95", Json.Int t.g_p95_recovery_steps);
            ("max", Json.Int t.g_max_recovery_steps);
          ] );
      ( "retries",
        Json.Obj
          [
            ("p50", Json.Int t.g_p50_retries);
            ("p95", Json.Int t.g_p95_retries);
            ("max", Json.Int t.g_max_retries);
          ] );
      ( "sites",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("site", Json.Int s.g_site);
                   ("episodes", Json.Int s.g_episodes);
                   ("retries", Json.Int s.g_retries);
                   ("steps", Json.Int s.g_steps);
                   ("ratio", Json.Float s.g_ratio);
                 ])
             t.g_sites) );
    ]

let render (t : t) : string list =
  [
    Printf.sprintf "runs: %d (%s)" t.g_runs
      (String.concat ", "
         (List.map (fun (tag, n) -> Printf.sprintf "%s %d" tag n) t.g_outcomes));
    Printf.sprintf "recovery runs: %d, total steps: %d" t.g_recovery_runs
      t.g_total_steps;
  ]
  @ (if t.g_elapsed > 0. then
       [
         Printf.sprintf "throughput: %.1f runs/sec over %.2fs%s"
           t.g_runs_per_sec t.g_elapsed
           (match t.g_engines with
           | [] -> ""
           | es -> " (" ^ String.concat ", " es ^ ")");
       ]
     else [])
  @ [
    Printf.sprintf "recovery steps: p50 %d, p95 %d, max %d"
      t.g_p50_recovery_steps t.g_p95_recovery_steps t.g_max_recovery_steps;
    Printf.sprintf "retries:        p50 %d, p95 %d, max %d" t.g_p50_retries
      t.g_p95_retries t.g_max_retries;
  ]
  @
  match t.g_sites with
  | [] -> []
  | sites ->
      Printf.sprintf "%6s %9s %8s %10s %8s" "site" "episodes" "retries"
        "steps" "ratio"
      :: List.map
           (fun s ->
             Printf.sprintf "%6d %9d %8d %10d %7.2f%%" s.g_site s.g_episodes
               s.g_retries s.g_steps (100. *. s.g_ratio))
           sites
