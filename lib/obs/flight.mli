(** The diagnostic bundle: one self-contained JSON document dumped from
    a flight-recorder ring plus the machine's post-mortem state when a
    run fails — or on explicit request.

    A bundle carries run identification and config, the executed program
    text and its MD5, the retained decision tail (encoded as the same
    ["sched_chunk"] objects full schedule logs use — {!Jsonl.sched_chunks}),
    the preemptive switches inside the tail, per-thread status and held
    locksets, the recent sync/recovery events, recovery-episode spans and
    the run trailer. Because runs are deterministic from (program, seed,
    config, engine), the bundle doubles as a regeneration recipe:
    [Conair_replay.Bundle] re-runs it into a full schedule log verified
    against the recorded tail. All three engines produce byte-identical
    bundles on the same run, modulo the ["engine"] field itself. *)

open Conair_runtime

(** One retained sync/recovery event (see {!Flight_ring.event}). *)
type event = {
  bv_kind : string;  (** {!Flight_ring.kind_name} of the event *)
  bv_step : int;
  bv_tid : int;
  bv_arg : int;  (** site id / child tid / wait flavor; [-1] unused *)
  bv_detail : string;  (** lock/event name or failure message; may be "" *)
}

(** One recovery-episode span (from {!Stats.episode}). *)
type episode = {
  be_site : int;
  be_tid : int;
  be_start : int;
  be_end : int;
  be_retries : int;
}

type t = {
  fb_app : string;
  fb_variant : string;
  fb_oracle : bool;
  fb_mode : string;  (** "none" (unhardened), "survival" or "fix" *)
  fb_engine : string;
  fb_reason : string;  (** why the bundle was dumped *)
  fb_config : Machine.config;
  fb_program_md5 : string;
  fb_program_text : string option;
  fb_fail_blocks : (string * int) list;
  fb_tail_first : int;  (** absolute ordinal of the first retained decision *)
  fb_tail_total : int;  (** decisions in the whole run *)
  fb_tail : int array;  (** the retained suffix of the decision stream *)
  fb_tail_preemptions : int array;  (** absolute ordinals, ascending *)
  fb_steps : int;
  fb_instrs : int;
  fb_rollbacks : int;
  fb_outcome : Outcome.t;
  fb_outputs : string list;
  fb_threads : (int * string * string list) list;
      (** (tid, status, held locks) per thread, ascending tid *)
  fb_events : event list;  (** oldest first *)
  fb_episodes : episode list;  (** chronological *)
}

val version : int

val of_ring :
  app:string ->
  variant:string ->
  oracle:bool ->
  mode:string ->
  engine:string ->
  reason:string ->
  config:Machine.config ->
  program_md5:string ->
  program_text:string option ->
  fail_blocks:(string * int) list ->
  threads:(int * string * string list) list ->
  episodes:Stats.episode list ->
  steps:int ->
  instrs:int ->
  rollbacks:int ->
  outcome:Outcome.t ->
  outputs:string list ->
  Flight_ring.t ->
  t
(** Assemble a bundle from a flight ring and the run's post-mortem
    state. The ring contributes the tail, its preemptions and the
    retained events; everything else comes from the caller. *)

val to_json : t -> Json.t
val to_string : t -> string
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val save : t -> string -> unit
(** Write as a single JSON line plus newline. *)

val load : string -> (t, string) result
