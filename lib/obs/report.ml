(* Standard exposition of a run: the ConAir metric set, JSON views of
   stats/outcomes, and the structured run report. Everything user-facing
   reads episodes through [Stats.episodes_chronological]. *)

open Conair_runtime
module Instr = Conair_ir.Instr

let failure_kind_name k = Format.asprintf "%a" Instr.pp_failure_kind k

let outcome_json : Outcome.t -> Json.t = function
  | Outcome.Success -> Json.Obj [ ("result", Json.String "success") ]
  | Outcome.Failed f ->
      Json.Obj
        ([
           ("result", Json.String "failed");
           ("kind", Json.String (failure_kind_name f.kind));
         ]
        @ (match f.site_id with
          | None -> []
          | Some s -> [ ("site_id", Json.Int s) ])
        @ (match f.iid with None -> [] | Some i -> [ ("iid", Json.Int i) ])
        @ [
            ("tid", Json.Int f.tid);
            ("step", Json.Int f.step);
            ("msg", Json.String f.msg);
          ])
  | Outcome.Hang { step; blocked } ->
      Json.Obj
        [
          ("result", Json.String "hang");
          ("step", Json.Int step);
          ("blocked", Json.List (List.map (fun t -> Json.Int t) blocked));
        ]
  | Outcome.Fuel_exhausted step ->
      Json.Obj
        [ ("result", Json.String "fuel-exhausted"); ("step", Json.Int step) ]

let failure_kind_of_name = function
  | "assert" -> Some Instr.Assert_fail
  | "wrong-output" -> Some Instr.Wrong_output
  | "segfault" -> Some Instr.Seg_fault
  | "deadlock" -> Some Instr.Deadlock
  | _ -> None

(* Decode an [outcome_json] object — the inverse used when loading a
   schedule log's recorded outcome back for replay verification. *)
let outcome_of_json (j : Json.t) : (Outcome.t, string) result =
  let int name =
    match Json.member name j with Some (Json.Int n) -> Some n | _ -> None
  in
  let str name =
    match Json.member name j with Some (Json.String s) -> Some s | _ -> None
  in
  match Json.member "result" j with
  | Some (Json.String "success") -> Ok Outcome.Success
  | Some (Json.String "failed") -> (
      let kind = Option.bind (str "kind") failure_kind_of_name in
      match (kind, int "tid", int "step", str "msg") with
      | Some kind, Some tid, Some step, Some msg ->
          Ok
            (Outcome.Failed
               {
                 kind;
                 site_id = int "site_id";
                 iid = int "iid";
                 tid;
                 step;
                 msg;
               })
      | _ -> Error "outcome: malformed failed record")
  | Some (Json.String "hang") -> (
      match (int "step", Json.member "blocked" j) with
      | Some step, Some (Json.List l) ->
          let blocked =
            List.filter_map (function Json.Int t -> Some t | _ -> None) l
          in
          if List.length blocked = List.length l then
            Ok (Outcome.Hang { step; blocked })
          else Error "outcome: malformed blocked list"
      | _ -> Error "outcome: malformed hang record")
  | Some (Json.String "fuel-exhausted") -> (
      match int "step" with
      | Some step -> Ok (Outcome.Fuel_exhausted step)
      | None -> Error "outcome: malformed fuel-exhausted record")
  | _ -> Error "outcome: missing or unknown result field"

let episode_json (e : Stats.episode) : Json.t =
  Json.Obj
    [
      ("site_id", Json.Int e.ep_site_id);
      ("tid", Json.Int e.ep_tid);
      ("start_step", Json.Int e.ep_start);
      ("end_step", Json.Int e.ep_end);
      ("duration", Json.Int (Stats.episode_duration e));
      ("retries", Json.Int e.ep_retries);
    ]

let sorted_hits tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stats_json (s : Stats.t) : Json.t =
  Json.Obj
    [
      ("steps", Json.Int s.steps);
      ("instrs", Json.Int s.instrs);
      ("idle", Json.Int s.idle);
      ("checkpoints", Json.Int s.checkpoints);
      ("rollbacks", Json.Int s.rollbacks);
      ("compensated_locks", Json.Int s.compensated_locks);
      ("compensated_blocks", Json.Int s.compensated_blocks);
      ("tracecheck_violations", Json.Int s.tracecheck_violations);
      ("outputs", Json.Int s.outputs);
      ("total_retries", Json.Int (Stats.total_retries s));
      ("max_recovery_time", Json.Int (Stats.max_recovery_time s));
      ( "episodes",
        Json.List (List.map episode_json (Stats.episodes_chronological s)) );
      ( "checkpoint_hits",
        Json.Obj
          (List.map
             (fun (id, n) -> (string_of_int id, Json.Int n))
             (sorted_hits s.ckpt_hits)) );
    ]

(* --- the standard metric set --------------------------------------- *)

(* Fixed buckets keep the histograms mergeable across runs and apps; the
   ranges cover everything the bugbench catalog produces (episodes from a
   couple of steps up to the MozillaXP thousands). *)
let duration_buckets =
  [ 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000. ]

let retry_buckets = [ 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. ]

let standard_metrics ?into (s : Stats.t) : Metrics.t =
  let r = match into with Some r -> r | None -> Metrics.create () in
  let c name help v =
    Metrics.inc ~by:v (Metrics.counter ~help r name)
  in
  c "conair_steps_total" "Scheduler steps, including idle ticks" s.steps;
  c "conair_instrs_total" "Instructions actually executed" s.instrs;
  c "conair_idle_total" "Idle scheduler ticks (all threads waiting)" s.idle;
  c "conair_checkpoints_total" "Dynamic reexecution-point executions"
    s.checkpoints;
  c "conair_rollbacks_total" "Single-threaded rollbacks performed" s.rollbacks;
  c "conair_compensated_locks_total" "Locks force-released during rollback"
    s.compensated_locks;
  c "conair_compensated_blocks_total" "Heap blocks freed during rollback"
    s.compensated_blocks;
  c "conair_outputs_total" "Program outputs emitted" s.outputs;
  c "conair_tracecheck_violations_total"
    "Rollback-safety invariant violations (should be 0)"
    s.tracecheck_violations;
  let episodes = Stats.episodes_chronological s in
  c "conair_recovery_episodes_total" "Completed recovery episodes"
    (List.length episodes);
  let dur_h =
    Metrics.histogram
      ~help:"Recovery episode duration in virtual scheduler steps"
      ~buckets:duration_buckets r "conair_episode_duration_steps"
  in
  let retry_h =
    Metrics.histogram ~help:"Rollback retries per recovery episode"
      ~buckets:retry_buckets r "conair_episode_retries"
  in
  List.iter
    (fun (e : Stats.episode) ->
      Metrics.observe dur_h (float (Stats.episode_duration e));
      Metrics.observe retry_h (float e.ep_retries))
    episodes;
  List.iter
    (fun (id, n) ->
      Metrics.inc ~by:n
        (Metrics.counter
           ~help:"Executions per static reexecution point"
           ~labels:[ ("ckpt", string_of_int id) ]
           r "conair_checkpoint_executions_total"))
    (sorted_hits s.ckpt_hits);
  let between =
    Metrics.gauge
      ~help:"Mean instructions executed between checkpoint executions"
      r "conair_instrs_between_checkpoints"
  in
  Metrics.set between
    (if s.checkpoints = 0 then Float.of_int s.instrs
     else float s.instrs /. float s.checkpoints);
  r

(* --- live metrics from the event stream ---------------------------- *)

let live_metrics (r : Metrics.t) (ev : Trace.event) =
  let bump name = Metrics.inc (Metrics.counter r name) in
  match ev with
  | Trace.Ev_schedule _ -> bump "conair_live_schedules_total"
  | Trace.Ev_block _ -> bump "conair_live_blocks_total"
  | Trace.Ev_wake _ -> bump "conair_live_wakes_total"
  | Trace.Ev_spawn _ -> bump "conair_live_spawns_total"
  | Trace.Ev_thread_done _ -> bump "conair_live_thread_exits_total"
  | Trace.Ev_output _ -> bump "conair_live_outputs_total"
  | Trace.Ev_checkpoint _ -> bump "conair_live_checkpoints_total"
  | Trace.Ev_failure_detected { kind; _ } ->
      Metrics.inc
        (Metrics.counter
           ~labels:[ ("kind", failure_kind_name kind) ]
           r "conair_live_failures_detected_total")
  | Trace.Ev_rollback _ -> bump "conair_live_rollbacks_total"
  | Trace.Ev_compensate_lock _ | Trace.Ev_compensate_block _ ->
      bump "conair_live_compensations_total"
  | Trace.Ev_recovered _ -> bump "conair_live_recoveries_total"
  | Trace.Ev_fail_stop _ -> bump "conair_live_fail_stops_total"

(* --- the structured run report ------------------------------------- *)

let run_json ?meta ?config ?spans ~outcome ~outputs (s : Stats.t) : Json.t =
  let metrics = standard_metrics s in
  Json.Obj
    ((match meta with
     | None -> []
     | Some m ->
         [
           ("app", Json.String m.Jsonl.app);
         ]
         @ (if m.Jsonl.variant = "" then []
            else [ ("variant", Json.String m.Jsonl.variant) ])
         @ (match m.Jsonl.seed with
           | None -> []
           | Some sd -> [ ("seed", Json.Int sd) ])
         @ [
             ("engine", Json.String m.Jsonl.engine);
             ("hardened", Json.Bool m.Jsonl.hardened);
           ])
    @ (match config with
      | None -> []
      | Some c -> [ ("config", Jsonl.config_json c) ])
    @ [
        ("outcome", outcome_json outcome);
        ("outputs", Json.List (List.map (fun o -> Json.String o) outputs));
        ("stats", stats_json s);
      ]
    @ (match spans with
      | None -> []
      | Some sp -> [ ("spans", Json.List (List.map Span.to_json sp)) ])
    @ [ ("metrics", Metrics.to_json metrics) ])
