(** Streaming JSONL (one JSON object per line) serialization of the
    runtime's trace stream.

    The event encoding is canonical: both engines ([Machine] and
    [Ref_machine]) feed the same {!Conair_runtime.Trace.event} values
    through {!event_json}, so the differential guarantee of
    [test_fast_exec] extends to the serialized telemetry — byte-identical
    event logs from byte-identical traces.

    A log starts with one [meta] record (["type": "meta"]) describing the
    run, followed by one ["type": "event"] record per trace event, in
    occurrence order. *)

open Conair_runtime

(** Identification of the run being logged, written as the first line. *)
type run_meta = {
  app : string;  (** benchmark/app name, or a caller-chosen label *)
  variant : string;  (** e.g. "buggy" / "clean"; "" omits the field *)
  seed : int option;  (** random-scheduler seed, when one was used *)
  engine : string;  (** "fast" ([Machine]) or "ref" ([Ref_machine]) *)
  hardened : bool;  (** whether the run executes a hardened program *)
}

val run_meta :
  ?variant:string -> ?seed:int -> ?engine:string -> ?hardened:bool ->
  string -> run_meta
(** [engine] defaults to ["fast"], [hardened] to [false]. *)

val config_json : Machine.config -> Json.t
(** The execution-affecting knobs (policy, fuel, max_retries, deadlock
    detection, perturbation) as a JSON object. *)

val policy_of_json : Json.t -> (Sched.policy, string) result

val config_of_json : Json.t -> (Machine.config, string) result
(** Decode a {!config_json} object; fields absent from the object keep
    their [Machine.default_config] value, so older logs stay loadable.
    The inverse of {!config_json} — the foundation of the self-contained
    schedule logs of [Conair_replay]. *)

val meta_json : ?config:Machine.config -> run_meta -> Json.t
(** The header record: [{"type":"meta","app":...,"variant":...,"seed":...,
    "engine":...,"hardened":...,"config":{...}}]. The config subobject
    captures the remaining knobs that affect execution (scheduling policy
    and its seed, fuel, max_retries, deadlock detection...), making the
    log self-describing. *)

val event_json : Trace.event -> Json.t
(** One trace event as [{"type":"event","ev":<name>,"step":...,...}]. *)

val event_line : Trace.event -> string
(** [event_json] encoded compactly — one JSONL line, no newline. *)

(** {1 Schedule-decision chunks}

    The [{"type":"sched_chunk","d":[tid,...]}] record shared by the full
    schedule logs of [Conair_replay] and the flight recorder's bundle
    tails. One encoder, one decoder — so `.sched.jsonl` consumers accept
    chunks from either producer unchanged. *)

val sched_chunk_size : int
(** Decisions per chunk (4096). *)

val sched_chunk_json : int array -> pos:int -> len:int -> Json.t
(** One chunk covering [d.(pos) .. d.(pos+len-1)]. *)

val sched_chunks : int array -> Json.t list
(** The whole decision array, split into [sched_chunk_size]-sized
    chunks, in order. Empty input yields no chunks. *)

val sched_chunk_decisions : Json.t -> (int list, string) result
(** Decode one chunk object's decision list. *)

(** A line-oriented writer: [write] receives complete JSON lines
    (newline excluded). Writers for channels and buffers are provided. *)
type writer = { write : string -> unit }

val channel_writer : out_channel -> writer
val buffer_writer : Buffer.t -> writer

val write_json : writer -> Json.t -> unit
(** Encode compactly and emit as one line. *)

val sink :
  ?config:Machine.config ->
  ?meta:run_meta ->
  ?store:bool ->
  writer ->
  Trace.sink
(** A trace sink that streams every event to [writer] as it is recorded.
    When [meta] is given, the header record is written immediately.
    [store] defaults to [false]: streaming does not retain events in
    memory unless asked (pass [~store:true] to also keep them for span
    building after the run). Install with [Machine.set_trace]. *)

val events_to_lines : ?config:Machine.config -> ?meta:run_meta ->
  Trace.event list -> string list
(** Batch serialization of an already-collected event list — the same
    lines [sink] would have streamed. *)
