(* The diagnostic bundle: one self-contained JSON document dumped from a
   flight-recorder ring (plus the machine's post-mortem state) when a
   run fails — or on explicit request.

   A bundle carries everything a post-mortem needs without any prior
   opt-in: run identification and config, the embedded program text and
   its MD5, the retained decision tail (encoded as the same
   "sched_chunk" objects full schedule logs use — see
   [Jsonl.sched_chunks]), the preemptive switches inside the tail,
   per-thread status + held locksets, the recent sync/recovery events,
   recovery-episode spans, and the run's trailer (steps, instrs,
   rollbacks, outcome, outputs).

   Because runs are deterministic from (program, seed, config, engine),
   the bundle is also a *regeneration recipe*: [Conair_replay.Bundle]
   re-runs the embedded program under the embedded config, checks the
   re-run's decision suffix and trailer against the recorded tail, and
   returns a full schedule log — after which ordinary replay, directed
   replay and minimization apply unchanged.

   The document is engine-independent except for the "engine" field
   itself: all three engines produce byte-identical sections on the same
   run, which the flight test suite enforces over the bugbench
   catalog. *)

open Conair_runtime
module Ring = Flight_ring

type event = {
  bv_kind : string;
  bv_step : int;
  bv_tid : int;
  bv_arg : int;
  bv_detail : string;
}

type episode = {
  be_site : int;
  be_tid : int;
  be_start : int;
  be_end : int;
  be_retries : int;
}

type t = {
  fb_app : string;
  fb_variant : string;
  fb_oracle : bool;
  fb_mode : string;
  fb_engine : string;
  fb_reason : string;  (** why the bundle was dumped *)
  fb_config : Machine.config;
  fb_program_md5 : string;
  fb_program_text : string option;
  fb_fail_blocks : (string * int) list;
  fb_tail_first : int;  (** absolute ordinal of the first retained decision *)
  fb_tail_total : int;  (** decisions in the whole run *)
  fb_tail : int array;  (** the retained suffix of the decision stream *)
  fb_tail_preemptions : int array;  (** absolute ordinals, ascending *)
  fb_steps : int;
  fb_instrs : int;
  fb_rollbacks : int;
  fb_outcome : Outcome.t;
  fb_outputs : string list;
  fb_threads : (int * string * string list) list;
  fb_events : event list;
  fb_episodes : episode list;  (** chronological *)
}

let version = 1

(* ------------------------------------------------------------------ *)
(* Construction from a ring + post-mortem machine state                 *)
(* ------------------------------------------------------------------ *)

let of_ring ~app ~variant ~oracle ~mode ~engine ~reason ~config ~program_md5
    ~program_text ~fail_blocks ~threads ~episodes ~steps ~instrs ~rollbacks
    ~outcome ~outputs (ring : Ring.t) =
  {
    fb_app = app;
    fb_variant = variant;
    fb_oracle = oracle;
    fb_mode = mode;
    fb_engine = engine;
    fb_reason = reason;
    fb_config = config;
    fb_program_md5 = program_md5;
    fb_program_text = program_text;
    fb_fail_blocks = fail_blocks;
    fb_tail_first = Ring.tail_first ring;
    fb_tail_total = Ring.total ring;
    fb_tail = Ring.tail ring;
    fb_tail_preemptions = Ring.tail_preemptions ring;
    fb_steps = steps;
    fb_instrs = instrs;
    fb_rollbacks = rollbacks;
    fb_outcome = outcome;
    fb_outputs = outputs;
    fb_threads = threads;
    fb_events =
      List.map
        (fun (e : Ring.event) ->
          {
            bv_kind = Ring.kind_name e.Ring.fe_kind;
            bv_step = e.Ring.fe_step;
            bv_tid = e.Ring.fe_tid;
            bv_arg = e.Ring.fe_arg;
            bv_detail = e.Ring.fe_detail;
          })
        (Ring.events ring);
    fb_episodes =
      List.map
        (fun (ep : Stats.episode) ->
          {
            be_site = ep.Stats.ep_site_id;
            be_tid = ep.Stats.ep_tid;
            be_start = ep.Stats.ep_start;
            be_end = ep.Stats.ep_end;
            be_retries = ep.Stats.ep_retries;
          })
        episodes;
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let ints a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let to_json t : Json.t =
  Json.Obj
    ([
       ("type", Json.String "flight_bundle");
       ("version", Json.Int version);
       ("app", Json.String t.fb_app);
       ("variant", Json.String t.fb_variant);
       ("oracle", Json.Bool t.fb_oracle);
       ("mode", Json.String t.fb_mode);
       ("engine", Json.String t.fb_engine);
       ("reason", Json.String t.fb_reason);
       ("config", Jsonl.config_json t.fb_config);
       ("program_md5", Json.String t.fb_program_md5);
     ]
    @ (match t.fb_program_text with
      | None -> []
      | Some text -> [ ("program", Json.String text) ])
    @ (match t.fb_fail_blocks with
      | [] -> []
      | fbs ->
          [
            ( "fail_blocks",
              Json.List
                (List.map
                   (fun (name, site) ->
                     Json.List [ Json.String name; Json.Int site ])
                   fbs) );
          ])
    @ [
        ( "tail",
          Json.Obj
            [
              ("first", Json.Int t.fb_tail_first);
              ("total", Json.Int t.fb_tail_total);
              ("preemptions", ints t.fb_tail_preemptions);
              ("chunks", Json.List (Jsonl.sched_chunks t.fb_tail));
            ] );
        ( "trailer",
          Json.Obj
            [
              ("steps", Json.Int t.fb_steps);
              ("instrs", Json.Int t.fb_instrs);
              ("rollbacks", Json.Int t.fb_rollbacks);
              ("outcome", Report.outcome_json t.fb_outcome);
              ( "outputs",
                Json.List (List.map (fun s -> Json.String s) t.fb_outputs) );
            ] );
        ( "threads",
          Json.List
            (List.map
               (fun (tid, status, locks) ->
                 Json.Obj
                   [
                     ("tid", Json.Int tid);
                     ("status", Json.String status);
                     ( "locks",
                       Json.List (List.map (fun l -> Json.String l) locks) );
                   ])
               t.fb_threads) );
        ( "events",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("ev", Json.String e.bv_kind);
                     ("step", Json.Int e.bv_step);
                     ("tid", Json.Int e.bv_tid);
                     ("arg", Json.Int e.bv_arg);
                     ("detail", Json.String e.bv_detail);
                   ])
               t.fb_events) );
        ( "episodes",
          Json.List
            (List.map
               (fun ep ->
                 Json.Obj
                   [
                     ("site", Json.Int ep.be_site);
                     ("tid", Json.Int ep.be_tid);
                     ("start", Json.Int ep.be_start);
                     ("end", Json.Int ep.be_end);
                     ("retries", Json.Int ep.be_retries);
                   ])
               t.fb_episodes) );
      ])

let to_string t = Json.to_string (to_json t)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bundle: missing %S field" name)

let str name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)

let int name j =
  match Json.member name j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)

let bool name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)

let int_list name j =
  match Json.member name j with
  | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int n :: rest -> go (n :: acc) rest
        | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)
      in
      go [] l
  | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)

let str_list name j =
  match Json.member name j with
  | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)
      in
      go [] l
  | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)

let obj_list name decode j =
  match Json.member name j with
  | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* v = decode item in
            go (v :: acc) rest
      in
      go [] l
  | _ -> Error (Printf.sprintf "bundle: malformed %S field" name)

let of_json (j : Json.t) : (t, string) result =
  let* ty = str "type" j in
  if ty <> "flight_bundle" then Error "bundle: not a flight_bundle document"
  else
    let* v = int "version" j in
    if v > version then Error (Printf.sprintf "bundle: unsupported version %d" v)
    else
      let* app = str "app" j in
      let* variant = str "variant" j in
      let* oracle = bool "oracle" j in
      let* mode = str "mode" j in
      let* engine = str "engine" j in
      let* reason = str "reason" j in
      let* config_j = field "config" j in
      let* config = Jsonl.config_of_json config_j in
      let* program_md5 = str "program_md5" j in
      let program_text =
        match Json.member "program" j with
        | Some (Json.String text) -> Some text
        | _ -> None
      in
      let* fail_blocks =
        match Json.member "fail_blocks" j with
        | None -> Ok []
        | Some (Json.List l) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | Json.List [ Json.String name; Json.Int site ] :: rest ->
                  go ((name, site) :: acc) rest
              | _ -> Error "bundle: malformed \"fail_blocks\" field"
            in
            go [] l
        | Some _ -> Error "bundle: malformed \"fail_blocks\" field"
      in
      let* tail_j = field "tail" j in
      let* tail_first = int "first" tail_j in
      let* tail_total = int "total" tail_j in
      let* tail_preempts = int_list "preemptions" tail_j in
      let* tail =
        match Json.member "chunks" tail_j with
        | Some (Json.List chunks) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | chunk :: rest -> (
                  match Json.member "type" chunk with
                  | Some (Json.String "sched_chunk") ->
                      let* d = Jsonl.sched_chunk_decisions chunk in
                      go (List.rev_append d acc) rest
                  | _ -> Error "bundle: tail chunk is not a sched_chunk record")
            in
            go [] chunks
        | _ -> Error "bundle: malformed \"chunks\" field"
      in
      let* trailer_j = field "trailer" j in
      let* steps = int "steps" trailer_j in
      let* instrs = int "instrs" trailer_j in
      let* rollbacks = int "rollbacks" trailer_j in
      let* outcome_j = field "outcome" trailer_j in
      let* outcome = Report.outcome_of_json outcome_j in
      let* outputs = str_list "outputs" trailer_j in
      let* threads =
        obj_list "threads"
          (fun tj ->
            let* tid = int "tid" tj in
            let* status = str "status" tj in
            let* locks = str_list "locks" tj in
            Ok (tid, status, locks))
          j
      in
      let* events =
        obj_list "events"
          (fun ej ->
            let* kind = str "ev" ej in
            let* step = int "step" ej in
            let* tid = int "tid" ej in
            let* arg = int "arg" ej in
            let* detail = str "detail" ej in
            Ok
              {
                bv_kind = kind;
                bv_step = step;
                bv_tid = tid;
                bv_arg = arg;
                bv_detail = detail;
              })
          j
      in
      let* episodes =
        obj_list "episodes"
          (fun ej ->
            let* site = int "site" ej in
            let* tid = int "tid" ej in
            let* start = int "start" ej in
            let* end_ = int "end" ej in
            let* retries = int "retries" ej in
            Ok
              {
                be_site = site;
                be_tid = tid;
                be_start = start;
                be_end = end_;
                be_retries = retries;
              })
          j
      in
      Ok
        {
          fb_app = app;
          fb_variant = variant;
          fb_oracle = oracle;
          fb_mode = mode;
          fb_engine = engine;
          fb_reason = reason;
          fb_config = config;
          fb_program_md5 = program_md5;
          fb_program_text = program_text;
          fb_fail_blocks = fail_blocks;
          fb_tail_first = tail_first;
          fb_tail_total = tail_total;
          fb_tail = Array.of_list tail;
          fb_tail_preemptions = Array.of_list tail_preempts;
          fb_steps = steps;
          fb_instrs = instrs;
          fb_rollbacks = rollbacks;
          fb_outcome = outcome;
          fb_outputs = outputs;
          fb_threads = threads;
          fb_events = events;
          fb_episodes = episodes;
        }

let of_string s =
  let* j = Json.of_string s in
  of_json j

let save t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load file =
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  with
  | text -> of_string (String.trim text)
  | exception Sys_error e -> Error ("bundle: " ^ e)
