(** The deterministic virtual-time cost profiler.

    [Prof.t] is the accumulator behind a {!Conair_runtime.Profile.probe}:
    install [probe t] on a machine ([Machine.set_profile] /
    [Ref_machine.set_profile]), run, then [finalize] and read. Every
    scheduler step is attributed to a context — the call stack plus the
    current block, rendered as a collapsed-stack frame path
    ["main;worker;loop_body"] — and classified as:

    - {e useful}: retired work that was never rolled back;
    - {e checkpoint}: executions of the [Checkpoint] pseudo-instruction,
      ConAir's proactive cost;
    - {e wasted}: work undone by a rollback, charged per-context {e and}
      to the failure site that triggered the rollback;
    - {e idle}: scheduler steps where only virtual time passed.

    Costs are scheduler steps, so a profile is a pure function of
    (program, config, seed) and byte-identical across the fast and
    reference engines. All exports are emitted in sorted order. *)

type t

type kind = Useful | Checkpoint | Wasted | Total

val kind_name : kind -> string

type site_cost = {
  sc_site : int;
  sc_wasted : int;  (** steps rolled back because of this site *)
  sc_rollbacks : int;
}

type row = { r_ctx : string; r_useful : int; r_ckpt : int; r_wasted : int }

(** A cumulative-totals snapshot, taken at every rollback and at
    [finalize] — the points of the Chrome counter track. *)
type sample = {
  sm_step : int;
  sm_useful : int;
  sm_ckpt : int;
  sm_wasted : int;
}

val create : unit -> t

val probe : t -> Conair_runtime.Profile.probe
(** The callbacks to install on a machine. One [t] profiles one run. *)

val finalize : t -> unit
(** Flush steps still awaiting classification to {e useful} and close the
    profile. Call once the run has finished, before reading; idempotent. *)

val useful_steps : t -> int
val checkpoint_steps : t -> int
val wasted_steps : t -> int
val idle_steps : t -> int

val attributed_steps : t -> int
(** useful + checkpoint + wasted — every non-idle scheduler step. *)

val wasted_ratio : t -> float
(** wasted / attributed; [0.] for an empty profile. *)

val site_costs : t -> site_cost list
(** Per failure site, ascending site id. *)

val rows : t -> row list
(** Per-context cost table, descending total. *)

val samples : t -> sample list
(** Chronological. *)

val to_collapsed : t -> kind -> string list
(** Collapsed-stack flamegraph lines (["fun;fun;block N"]), sorted by
    frame path — feed directly to flamegraph.pl or speedscope. [Total]
    merges the three classes. Zero-count contexts are omitted. *)

val to_json : t -> Json.t
(** The full profile: totals, per-context tables, per-site costs,
    samples. *)

val counter_events : t -> Json.t list
(** Chrome trace-event counter events (["ph":"C"]), one per sample — pass
    to {!Span.to_chrome} via [?counters] to get a stacked cost track
    alongside the recovery spans. *)
