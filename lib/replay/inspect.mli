(** The time-travel inspector: reconstruct the machine state at any
    virtual-time step of a recorded run.

    One forward replay drops a waypoint (whole-machine snapshot +
    scheduler rng/cursor state) every [stride] decisions; {!state_at}
    restores the nearest waypoint at or before the requested step into a
    fresh machine and strict-replays forward. The state reported for
    step N is the state *before* the instruction at virtual time N
    executes. *)

open Conair_runtime
module Json = Conair_obs.Json

type t

val default_stride : int
(** 512 decisions between waypoints. *)

val create :
  ?stride:int ->
  ?program:Conair_ir.Program.t ->
  ?meta:Machine.meta ->
  Schedule_log.t ->
  (t, string) result
(** Run the forward waypoint pass. Fails if the log does not replay
    cleanly (wrong program, corrupted decisions). *)

val final_step : t -> int
(** Virtual time when the recorded run ended. *)

val outcome : t -> Outcome.t

val state_at : t -> int -> (Json.t, string) result
(** The machine state before step N: per-thread status, stacks with
    named registers, held locks, checkpoints and recovery state, plus
    globals, lock owners and outputs so far. *)

val render : Json.t -> string
(** A terminal-friendly rendering of a {!state_at} document. *)
