(* Failing-interleaving minimization: ddmin over preemption points.

   A recorded schedule is recast as an ordered list of context-switch
   directives ("once thread FROM has run COUNT decisions, switch to
   TO"). Switches forced by the running thread blocking or finishing are
   kept unconditionally — any executor must make them, and keeping the
   recorded target preserves exact reproduction. The *preemptive*
   switches (the previous thread was still eligible) are the search
   space: running the full directive set through [Feed.attach_directed]
   reproduces the recorded run exactly, so Zeller-style delta debugging
   (ddmin) over the preemptive subset finds a locally minimal set of
   preemptions that still produces the recorded failure.

   The result is re-recorded under the winning directive set, giving a
   strict-replayable minimized log, a switch-by-switch explanation of
   where each remaining preemption lands in the program, and — when the
   detector fires on the minimized schedule — the race report that names
   the root cause the interleaving exposes. *)

open Conair_ir
open Conair_runtime
module Json = Conair_obs.Json
module Report = Conair_obs.Report
module Log = Schedule_log

type switch = {
  sw_index : int;  (** ordinal in the minimized decision stream *)
  sw_step : int;
  sw_from : int;
  sw_to : int;
  sw_from_at : string;  (** where the preempted thread stood *)
  sw_to_at : string;  (** where the incoming thread resumes *)
  sw_preemptive : bool;
}

type t = {
  mn_log : Log.t;  (** minimized, strict-replayable *)
  mn_original : int;  (** preemptive switches in the input log *)
  mn_minimized : int;  (** preemptive directives the failure needs *)
  mn_tests : int;  (** candidate executions run by ddmin *)
  mn_switches : switch list;  (** every switch of the minimized run *)
  mn_races : Conair_race.Report.t option;
}

(* ------------------------------------------------------------------ *)
(* Directive extraction                                                *)
(* ------------------------------------------------------------------ *)

(* The extraction itself lives in [Feed.directives_of] — the fix
   synthesizer's replay gate recasts logs the same way. *)
let directives_of_log (log : Log.t) =
  Feed.directives_of ~decisions:log.Log.decisions
    ~preemptions:log.Log.preemptions

let merge = Feed.merge_directives

(* ------------------------------------------------------------------ *)
(* ddmin (Zeller & Hildebrandt, TSE 2002)                              *)
(* ------------------------------------------------------------------ *)

let split items n =
  let len = List.length items in
  let rec take k xs acc =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: xs -> take (k - 1) xs (x :: acc)
  in
  let rec go acc rest i =
    if i = n then List.rev acc
    else
      (* chunk i covers [i*len/n, (i+1)*len/n) — sizes differ by at most 1 *)
      let size = ((i + 1) * len / n) - (i * len / n) in
      let chunk, rest = take size rest [] in
      go (chunk :: acc) rest (i + 1)
  in
  go [] items 0

let complements chunks =
  List.mapi
    (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks))
    chunks

let ddmin test items =
  if test [] then []
  else
    let rec go items n =
      let len = List.length items in
      if len <= 1 then items
      else
        let chunks = split items n in
        match List.find_opt test chunks with
        | Some c -> go c 2
        | None -> (
            match
              if n = 2 then None else List.find_opt test (complements chunks)
            with
            | Some c -> go c (max (n - 1) 2)
            | None -> if n < len then go items (min len (2 * n)) else items)
    in
    go items 2

(* ------------------------------------------------------------------ *)
(* The failure predicate                                               *)
(* ------------------------------------------------------------------ *)

(* Same bug, not same run: the failure kind and site must match, but
   step counts and hang participants may shift as preemptions drop. *)
let same_failure (recorded : Outcome.t) (candidate : Outcome.t) =
  match (recorded, candidate) with
  | Outcome.Failed a, Outcome.Failed b ->
      a.kind = b.kind && a.iid = b.iid && a.msg = b.msg
  | Outcome.Hang _, Outcome.Hang _ -> true
  | Outcome.Fuel_exhausted _, Outcome.Fuel_exhausted _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)
(* ------------------------------------------------------------------ *)

let locate texts (m : Machine.t) tid =
  match Hashtbl.find_opt m.Machine.threads tid with
  | None -> "<gone>"
  | Some th -> (
      match th.Thread.stack with
      | [] -> "<no frame>"
      | fr :: _ ->
          let blk = fr.Thread.block in
          let instr =
            if fr.Thread.idx < Array.length blk.Link.lb_instrs then
              Option.value ~default:"?"
                (Hashtbl.find_opt texts
                   blk.Link.lb_instrs.(fr.Thread.idx).Link.li_iid)
            else "<terminator>"
          in
          Printf.sprintf "%s:%s[%d] %s" fr.Thread.func.Link.lf_qname
            blk.Link.lb_label_name fr.Thread.idx instr)

let minimize ?(max_tests = 2000) ?(detect = true) ?program ?meta (log : Log.t)
    =
  match Driver.resolve_program ?program log with
  | Error e -> Error (Driver.error_to_string e)
  | Ok program ->
      if Outcome.is_success log.Log.outcome then
        Error "the recorded run succeeded; there is no failure to minimize"
      else begin
        let meta = Driver.resolve_meta ?meta log in
        let config = log.Log.config in
        let fixed, cand = directives_of_log log in
        let tests = ref 0 in
        let run_directed directives =
          let d = Feed.directed directives in
          (* the feed is part of this candidate machine and dies with
             it — it cannot leak onto a later candidate run *)
          let m =
            Machine.create ~config ?meta
              ~hooks:
                (Hooks.bundle
                   ~feed:(fun ~eligible -> Feed.directed_decide d ~eligible)
                   ())
              program
          in
          (Machine.run m, m)
        in
        let test subset =
          !tests < max_tests
          && begin
               incr tests;
               let outcome, _ = run_directed (merge fixed subset) in
               same_failure log.Log.outcome outcome
             end
        in
        if not (test cand) then
          Error
            "the failure does not reproduce from the recorded schedule's \
             switch points (non-round-robin recording?)"
        else
          let best = ddmin test cand in
          (* Final run: directed by the winning set, re-recorded, with
             the switch contexts captured as they happen. *)
          let m = Machine.create ~config ?meta program in
          let texts =
            let tbl = Hashtbl.create 256 in
            Program.iter_funcs program (fun f ->
                Func.iter_instrs f (fun _blk i ->
                    Hashtbl.replace tbl i.Instr.iid
                      (Format.asprintf "%a" Instr.pp i)));
            tbl
          in
          let recorder = Recorder.create () in
          let switches = ref [] in
          let prev = ref (-1) in
          let tap ~chosen ~eligible =
            (if !prev >= 0 && chosen <> !prev then
               let preemptive = List.mem !prev eligible in
               switches :=
                 {
                   sw_index = Recorder.count recorder;
                   sw_step = m.Machine.step;
                   sw_from = !prev;
                   sw_to = chosen;
                   sw_from_at = locate texts m !prev;
                   sw_to_at = locate texts m chosen;
                   sw_preemptive = preemptive;
                 }
                 :: !switches);
            prev := chosen;
            Recorder.tap recorder ~chosen ~eligible
          in
          let d = Feed.directed (merge fixed best) in
          (* the tap closure reads [m]'s state as it records, so it can
             only be built after [create]: install post-create via the
             machine's own target (still private to this machine) *)
          Hooks.install (Machine.hooks m)
            (Hooks.bundle ~tap
               ~feed:(fun ~eligible -> Feed.directed_decide d ~eligible)
               ());
          let outcome = Machine.run m in
          ignore d;
          if not (same_failure log.Log.outcome outcome) then
            Error "the minimized schedule stopped failing on re-execution"
          else
            let stats = Machine.stats m in
            let mn_log =
              {
                log with
                Log.engine = "fast";
                decisions = Recorder.decisions recorder;
                preemptions = Recorder.preemptions recorder;
                steps = m.Machine.step;
                instrs = stats.Stats.instrs;
                rollbacks = stats.Stats.rollbacks;
                outcome;
                outputs = Machine.outputs m;
              }
            in
            let mn_races =
              if not detect then None
              else begin
                (* replay the minimized schedule with the detector on *)
                let det = Conair_race.Detect.create () in
                let h = Feed.strict mn_log.Log.decisions in
                let dm =
                  Machine.create ~config ?meta
                    ~hooks:
                      (Hooks.bundle ~race:(Conair_race.Detect.probe det)
                         ~feed:(fun ~eligible ->
                           Feed.strict_decide h ~eligible)
                         ())
                    program
                in
                (match Machine.run dm with
                | _ -> ()
                | exception Feed.Diverged _ -> ());
                Some (Conair_race.Detect.report det)
              end
            in
            Ok
              {
                mn_log;
                mn_original = Array.length log.Log.preemptions;
                mn_minimized = List.length best;
                mn_tests = !tests;
                mn_switches = List.rev !switches;
                mn_races;
              }
      end

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let switch_json s =
  Json.Obj
    [
      ("index", Json.Int s.sw_index);
      ("step", Json.Int s.sw_step);
      ("from", Json.Int s.sw_from);
      ("to", Json.Int s.sw_to);
      ("from_at", Json.String s.sw_from_at);
      ("to_at", Json.String s.sw_to_at);
      ("preemptive", Json.Bool s.sw_preemptive);
    ]

let to_json t =
  let log = t.mn_log in
  Json.Obj
    ([
       ("type", Json.String "minimized_schedule");
       ("app", Json.String log.Log.ident.Log.id_app);
       ("variant", Json.String log.Log.ident.Log.id_variant);
       ("mode", Json.String log.Log.ident.Log.id_mode);
       ("original_preemptions", Json.Int t.mn_original);
       ("minimized_preemptions", Json.Int t.mn_minimized);
       ("tests", Json.Int t.mn_tests);
       ("decisions", Json.Int (Array.length log.Log.decisions));
       ("steps", Json.Int log.Log.steps);
       ("outcome", Report.outcome_json log.Log.outcome);
       ("switches", Json.List (List.map switch_json t.mn_switches));
     ]
    @
    match t.mn_races with
    | None -> []
    | Some r -> [ ("races", Conair_race.Report.to_json r) ])

let render t =
  let log = t.mn_log in
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "minimized interleaving for %s (%s, mode %s)\n" log.Log.ident.Log.id_app
    log.Log.ident.Log.id_variant log.Log.ident.Log.id_mode;
  add "  preemptions: %d -> %d (%d candidate executions)\n" t.mn_original
    t.mn_minimized t.mn_tests;
  add "  failure: %s\n" (Outcome.to_string log.Log.outcome);
  let preemptive = List.filter (fun s -> s.sw_preemptive) t.mn_switches in
  List.iteri
    (fun i s ->
      add "  switch %d @ step %d: t%d -> t%d\n" (i + 1) s.sw_step s.sw_from
        s.sw_to;
      add "    t%d preempted at %s\n" s.sw_from s.sw_from_at;
      add "    t%d resumes at %s\n" s.sw_to s.sw_to_at)
    preemptive;
  (match t.mn_races with
  | None -> ()
  | Some r ->
      let races = List.length r.Conair_race.Report.races in
      let cycles = List.length r.Conair_race.Report.cycles in
      if races > 0 || cycles > 0 then
        add
          "  detector on the minimized schedule: %d race(s), %d lock \
           cycle(s)\n"
          races cycles
      else add "  detector on the minimized schedule: quiet\n");
  Buffer.contents buf
