(** The schedule log: one recorded run's complete scheduling-decision
    stream plus enough metadata to re-execute it from the file alone.

    Serialized as JSONL — a ["sched_meta"] header (identification,
    execution config, embedded program text and MD5, fail-block table for
    hardened programs), ["sched_chunk"] lines carrying the chosen-thread
    stream, and a ["sched_end"] trailer with the decision/preemption
    counts and the recorded outcome, outputs and statistics used to
    verify a replay. See [docs/REPLAY.md] for the format. *)

open Conair_ir
open Conair_runtime

(** Identification of the recorded run, mirroring the registry
    vocabulary of the bugbench catalog. *)
type ident = {
  id_app : string;
  id_variant : string;
  id_oracle : bool;
  id_mode : string;  (** "none" (unhardened), "survival" or "fix" *)
}

val ident : ?variant:string -> ?oracle:bool -> ?mode:string -> string -> ident
(** Defaults: variant ["buggy"], oracle [false], mode ["none"]. *)

type t = {
  ident : ident;
  engine : string;  (** which engine recorded it ("fast" / "ref") *)
  config : Machine.config;
  program_md5 : string;  (** MD5 of the executed program's text *)
  program_text : string option;  (** the executed (hardened) program *)
  fail_blocks : (string * int) list;  (** fail-arm label name -> site id *)
  decisions : int array;  (** chosen tid per scheduling decision *)
  preemptions : int array;
      (** ordinals into [decisions] where the previously-running thread
          was still eligible but another was chosen — the context
          switches the minimizer searches over *)
  steps : int;  (** recorded virtual time (idle ticks included) *)
  instrs : int;
  rollbacks : int;
  outcome : Outcome.t;
  outputs : string list;
}

val version : int

val digest : string -> string
(** MD5 hex of a program text. *)

val digest_program : Program.t -> string

val fail_blocks_of_meta : Machine.meta option -> (string * int) list
(** Serialize recovery metadata as (label name, site id) pairs. *)

val meta_of_fail_blocks : (string * int) list -> Machine.meta option
(** Rebuild [Machine.meta] recovery metadata from serialized (label
    name, site id) pairs; [None] when the list is empty. *)

val machine_meta : t -> Machine.meta option
(** Rebuild the [Machine.meta] recovery metadata recorded in
    [fail_blocks]; [None] for unhardened runs. *)

val program : t -> (Program.t, string) result
(** Parse the embedded program text. *)

val to_lines : t -> string list
(** The JSONL serialization, one element per line (no newlines). *)

val of_lines : string list -> (t, string) result

val save : t -> string -> unit
val load : string -> (t, string) result
