(* Scheduler feeds: the replay half of the record/replay seam.

   [strict] forces the exact recorded decision stream and raises
   [Diverged] the moment the replayed execution disagrees with the
   recording — the recorded thread is not eligible, or the execution
   asks for more decisions than were recorded. [Sched] mirrors the
   policy's rng/cursor side effects for every fed decision, so a strict
   replay of a log against the same program and config reproduces the
   original run bit for bit, downstream random draws included.

   [directed] executes a *sparse* schedule: an ordered list of context
   switch directives ("once thread FROM has run COUNT decisions, switch
   to TO"), continuing the current thread between directives and falling
   back to round-robin order (first eligible tid after the current one,
   wrapping) when the current thread cannot run. Feeding every switch of
   a recorded run reproduces it exactly; feeding a subset is how the
   minimizer probes which preemptions a failure actually needs. *)

open Conair_runtime

type divergence_info = { at : int; expected : int option; eligible : int list }

exception Diverged of divergence_info

type strict = { decisions : int array; mutable pos : int }

let strict ?(start = 0) decisions = { decisions; pos = start }

let strict_decide h ~eligible =
  let k = h.pos in
  if k >= Array.length h.decisions then
    raise (Diverged { at = k; expected = None; eligible });
  let tid = h.decisions.(k) in
  if not (List.mem tid eligible) then
    raise (Diverged { at = k; expected = Some tid; eligible });
  h.pos <- k + 1;
  tid

let attach_strict ?start sched decisions =
  let h = strict ?start decisions in
  Sched.set_feed sched (Some (fun ~eligible -> strict_decide h ~eligible));
  h

(* ------------------------------------------------------------------ *)

type directive = { dr_from : int; dr_count : int; dr_to : int }

type directed = {
  mutable queue : directive list;
  mutable cur : int;
  counts : (int, int) Hashtbl.t;  (** tid -> decisions it has run *)
  mutable fired : int;
}

let directed_decide d ~eligible =
  let local tid = Option.value ~default:0 (Hashtbl.find_opt d.counts tid) in
  let tid =
    match d.queue with
    | dr :: rest
      when dr.dr_from = d.cur
           && local dr.dr_from >= dr.dr_count
           && List.mem dr.dr_to eligible ->
        d.queue <- rest;
        d.fired <- d.fired + 1;
        dr.dr_to
    | _ ->
        if d.cur >= 0 && List.mem d.cur eligible then d.cur
        else (
          (* round-robin order: first eligible tid after the current one,
             wrapping — exactly the forced-switch choice the recording
             policy would make *)
          match List.find_opt (fun t -> t > d.cur) eligible with
          | Some t -> t
          | None -> List.hd eligible)
  in
  d.cur <- tid;
  Hashtbl.replace d.counts tid (local tid + 1);
  tid

let directed directives =
  { queue = directives; cur = -1; counts = Hashtbl.create 16; fired = 0 }

(* Recast a recorded decision stream as context-switch directives: every
   change of chosen thread is a switch; the preemption ordinals recorded
   next to the stream tell which were preemptive (the outgoing thread was
   still eligible). [dr_count] is how many decisions the outgoing thread
   had run when the switch fired. Feeding [merge_directives fixed cand]
   back through [directed] reproduces the recording exactly. *)
let directives_of ~decisions ~preemptions =
  let preemptive = Hashtbl.create 64 in
  Array.iter (fun k -> Hashtbl.replace preemptive k ()) preemptions;
  let counts = Hashtbl.create 16 in
  let local tid = Option.value ~default:0 (Hashtbl.find_opt counts tid) in
  let fixed = ref [] and cand = ref [] in
  Array.iteri
    (fun k tid ->
      (if k > 0 then
         let prev = decisions.(k - 1) in
         if tid <> prev then begin
           let dr = (k, { dr_from = prev; dr_count = local prev; dr_to = tid }) in
           if Hashtbl.mem preemptive k then cand := dr :: !cand
           else fixed := dr :: !fixed
         end);
      Hashtbl.replace counts tid (local tid + 1))
    decisions;
  (List.rev !fixed, List.rev !cand)

(* Merge the forced directives with a (sub)set of preemptive ones, by
   original decision ordinal. *)
let merge_directives fixed subset =
  List.merge (fun (a, _) (b, _) -> compare a b) fixed subset |> List.map snd

let attach_directed sched directives =
  let d = directed directives in
  Sched.set_feed sched (Some (fun ~eligible -> directed_decide d ~eligible));
  d

let detach sched = Sched.set_feed sched None
